//! Workspace root: examples (`examples/`) and cross-crate integration
//! tests (`tests/`) for the Trio/ArckFS reproduction. See README.md for
//! the tour and DESIGN.md for the system inventory.
