#!/usr/bin/env bash
# Full verification gate: tier-1 tests, the exhaustive crash-point sweep
# at the pinned seed, and the standalone no-faults bench build that
# proves the injection hooks compile to no-ops outside the `faults`
# feature. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo
echo "== crash-point sweep (pinned seed, all points) =="
cargo test --test crash_sweep -- --nocapture

echo
echo "== zero-overhead gate: standalone trio-bench (no 'faults' feature) =="
# Built with -p, feature unification does not apply: trio-bench must
# compile and report faults_compiled() == false.
cargo bench -p trio-bench --bench micro_components 2>&1 | tee /tmp/trio_micro.$$ | sed -n '1,3p'
if grep -q "faults_compiled() == false" /tmp/trio_micro.$$; then
    rm -f /tmp/trio_micro.$$
    echo "OK: injection hooks are no-ops in the standalone bench build."
else
    rm -f /tmp/trio_micro.$$
    echo "FAIL: standalone bench build has the 'faults' feature enabled." >&2
    exit 1
fi

echo
echo "verify.sh: all gates passed."
