#!/usr/bin/env bash
# Full verification gate: tier-1 tests, the exhaustive crash-point sweep
# at the pinned seed, and the standalone no-faults bench build that
# proves the injection hooks compile to no-ops outside the `faults`
# feature. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo
echo "== lint gate: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo
echo "== lint gate: cargo xtask lint =="
# Project-specific static pass (DESIGN.md §13, §14): raw-device-access,
# no-std-sync, safety-comment, flush-fence, no-panic. Must be clean on
# the workspace and must still flag every rule on its fixture crate.
cargo xtask lint
if cargo xtask lint crates/xtask/fixtures/lint-fixture > /dev/null 2>&1; then
    echo "FAIL: xtask lint did not flag the rule-violating fixture." >&2
    exit 1
fi
echo "OK: fixture crate still trips the lint."

echo
echo "== typestate gate: raw-publish lint + compile-fail fixture =="
# Compiler-checked persistence ordering (DESIGN.md §18): the raw-publish
# rule (part of `cargo xtask lint` above) keeps shipped library code on
# the typed Dirty -> Flushed -> Durable pipeline, and typestate-check
# proves each hazard class (publish-before-persist, missing-fence,
# missing-flush) fails to compile — with a type error, not incidentally.
cargo xtask typestate-check

echo
echo "== crash-point sweep (pinned seed, all points) =="
cargo test --test crash_sweep -- --nocapture

echo
echo "== sanitize gates: mutation tests + sampled sanitized sweep =="
# The persistence-order sanitizer must catch each seeded mutant (dropped
# flush, dropped fence, publish-before-persist) and report the unmutated
# paths clean. The sweep runs sampled: the sanitizer makes each point
# pricier, and the plain build above already swept exhaustively.
cargo test -q --features sanitize --test sanitize_mutations
TRIO_SWEEP_SAMPLE=13 cargo test -q --features sanitize --test crash_sweep
# The scalability data path must also run (and pass) with the sanitizer
# hooks compiled in — catches cfg drift between the two builds.
cargo test -q --features sanitize --test datapath

echo
echo "== race-detector gate: cross-LibFS races + clean delegated path =="
cargo test -q --test race_detect

echo
echo "== chaos gate: worker-kill sweep under concurrent delegated traffic =="
# Delegation failure domains (DESIGN.md §16): TRIO_CHAOS_ITER seeded
# iterations crossing worker-kill points (after-pop / mid-payload /
# before-reply) with multi-LibFS traffic and stall injection. Gates: no
# hangs, model equivalence (no lost or doubly-applied writes), every
# death recovered. Any failure replays from (CHAOS_SEED, iteration).
# Dumps target/chaos-report.json with recovery-latency percentiles.
TRIO_CHAOS_ITER="${TRIO_CHAOS_ITER:-500}" cargo test -q --release --test chaos_delegation
python3 - target/chaos-report.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
if r["worker_deaths"] == 0 or r["worker_deaths"] != r["worker_restarts"]:
    sys.exit(f"FAIL: chaos sweep deaths/restarts inconsistent: {r}")
print(
    f"OK: chaos sweep {r['iterations']} iters, {r['worker_deaths']} kills "
    f"recovered (p50 {r['recovery_p50_ns']} ns, p99 {r['recovery_p99_ns']} ns), "
    f"{r['dedup_hits']} dedup hits."
)
EOF

echo
echo "== adversarial gate: seeded grammar-corruption campaign (2k iters) =="
# The corruption fuzzer (DESIGN.md §14) drives every mutation production
# through a hostile LibFS at a fixed seed: zero panics, zero hangs,
# victim model-equivalence, and quarantine→repair→re-admission on every
# confirmed violation. Dumps target/adversary-report.json for triage;
# any failure line carries the (seed, iteration) needed to replay it via
# TRIO_ADV_SEED/TRIO_ADV_ITER.
TRIO_FUZZ_ITERS=2000 cargo test -q --release --test adversary_fuzz
echo "OK: adversarial campaign clean (report at target/adversary-report.json)."

echo
echo "== media gate: patrol-scrub routes + 500-iter seeded fault campaign =="
# Media-fault tolerance (DESIGN.md §19): the route-by-route patrol tests
# plus the seeded campaign — poison and silent rot injected under live
# delegated traffic, crash points planted inside the recovery repair.
# Gates on target/media-report.json: 100% metadata-fault detection, zero
# silent data loss, allocator conservation intact. Any iteration replays
# from (TRIO_MEDIA_SEED, i). The scrubber is opt-in (start_patrol), so
# the perf gate below doubles as the scrubber-idle 0.00%-delta check —
# no patrol thread exists unless a workload asks for one.
TRIO_MEDIA_ITER="${TRIO_MEDIA_ITER:-500}" cargo test -q --release --test media_campaign
python3 - target/media-report.json <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
if r["metadata_faults_injected"] == 0:
    sys.exit(f"FAIL: media campaign injected no metadata faults: {r}")
if r["metadata_faults_repaired"] != r["metadata_faults_injected"]:
    sys.exit(f"FAIL: metadata-fault detection below 100%: {r}")
if r["silent_data_loss"] != 0:
    sys.exit(f"FAIL: silent data loss under media faults: {r}")
if r["conservation_violations"] != 0:
    sys.exit(f"FAIL: allocator conservation violated: {r}")
print(
    f"OK: media campaign {r['iterations']} iters, "
    f"{r['metadata_faults_repaired']}/{r['metadata_faults_injected']} metadata faults repaired, "
    f"{r['data_faults_loud']}/{r['data_faults_injected']} data faults loud, 0 silent."
)
EOF

echo
echo "== zero-overhead gate: standalone trio-bench (no 'faults' feature) =="
# Built with -p, feature unification does not apply: trio-bench must
# compile and report faults_compiled() == false.
cargo bench -p trio-bench --bench micro_components 2>&1 | tee /tmp/trio_micro.$$ | sed -n '1,3p'
if grep -q "faults_compiled() == false" /tmp/trio_micro.$$; then
    rm -f /tmp/trio_micro.$$
    echo "OK: injection hooks are no-ops in the standalone bench build."
else
    rm -f /tmp/trio_micro.$$
    echo "FAIL: standalone bench build has the 'faults' feature enabled." >&2
    exit 1
fi

echo
echo "== obs gate: obs-on bench auto-dumps a valid flight-recorder timeline =="
# With the 'obs' feature on, bench_datapath must leave a parseable
# target/obs-timeline.json behind (DESIGN.md §15): non-empty events and
# per-stage histograms covering at least the ring hop and the worker
# service stage. The obs-off half of the gate is the xtask obs-gate lint
# above: no crate outside its obs.rs shim may reference trio_obs, so the
# standalone obs-off bench build stays symbol-free.
rm -f target/obs-timeline.json
TRIO_BENCH_OUT=/tmp/trio_obs_bench.$$ TRIO_SCALE=16 \
    cargo bench -p trio-bench --features obs --bench bench_datapath > /dev/null
rm -f /tmp/trio_obs_bench.$$
python3 - target/obs-timeline.json <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
events = t.get("events", [])
stages = set(t.get("stages", {}))
if not events:
    sys.exit("FAIL: obs timeline has no events")
need = {"write/ring-hop", "write/worker-service"}
if not need <= stages:
    sys.exit(f"FAIL: obs timeline missing stages {need - stages}")
print(f"OK: obs timeline valid ({len(events)} events, {len(stages)} stages).")
EOF

echo
echo "== perf smoke gate: data-path bench vs committed baseline =="
# Regenerate BENCH numbers (virtual time: host noise cannot move them)
# and fail if delegated-write latency regressed >20% vs the committed
# BENCH_datapath.json baseline.
TRIO_BENCH_OUT=/tmp/trio_datapath.$$ TRIO_SCALE=16 \
    cargo bench -p trio-bench --bench bench_datapath
if [ -f BENCH_datapath.json ]; then
    python3 - /tmp/trio_datapath.$$ BENCH_datapath.json <<'EOF'
import json, sys
new = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
key = "delegated_write_ns_per_op"
n, b = float(new[key]), float(base[key])
if n > b * 1.2:
    sys.exit(f"FAIL: {key} regressed {n:.0f} ns vs baseline {b:.0f} ns (>20%)")
print(f"OK: {key} {n:.0f} ns vs baseline {b:.0f} ns (within 20%)")
# Typestate zero-cost gate (DESIGN.md §18): the persist-pipeline witness
# tokens are zero-sized and must compile away entirely. The bench runs in
# virtual time, so the delta vs the pre-typestate baseline is exact —
# anything beyond float formatting noise means the tokens grew code.
delta = abs(n - b) / b * 100.0
if delta > 0.05:
    sys.exit(f"FAIL: {key} moved {delta:.2f}% vs baseline; typestate tokens are not zero-cost")
print(f"OK: typestate tokens zero-cost ({key} delta {delta:.2f}%).")
# Zero-copy gate: grant-window delegation means the submit path never
# materializes a payload — one worker read from the granted pages is the
# only traversal. A nonzero copy counter is a reintroduced memcpy.
if int(new["payload_copies"]) != 0:
    sys.exit(f"FAIL: payload_copies = {new['payload_copies']}; delegation submit path copied a payload")
print("OK: payload_copies == 0 (grant windows, no materialization).")
# Inline-integrity gate: every delegated byte is checksummed in the same
# write pass (DESIGN.md §17). A shortfall means some lane silently
# skipped the streaming digest; an excess means a second traversal.
cs, dw = int(new["checksummed_bytes"]), int(new["delegated_write_bytes"])
if cs != dw:
    sys.exit(f"FAIL: checksummed_bytes {cs} != delegated_write_bytes {dw}")
print(f"OK: checksummed_bytes == delegated_write_bytes ({dw}).")
# The read lane must actually exercise delegation in the bench mix.
if int(new.get("delegated_read_bytes", 0)) == 0:
    sys.exit("FAIL: delegated_read_bytes == 0; read lane not exercised")
print(f"OK: delegated read lane exercised ({new['delegated_read_bytes']} bytes).")
# Watchdog quiescence: with no faults armed, the failure-domain machinery
# must never fire on the benched path — a nonzero counter here means the
# watchdog is adding work (and latency) to healthy delegated I/O.
quiet = ["worker_deaths", "worker_restarts", "deleg_redispatches",
         "deleg_dedup_hits", "degraded_enters", "degraded_exits"]
noisy = {k: new[k] for k in quiet if int(new.get(k, 0)) != 0}
if noisy:
    sys.exit(f"FAIL: watchdog counters nonzero in a fault-free perf run: {noisy}")
print(f"OK: watchdog counters quiescent on the benched path ({', '.join(quiet)}).")
# Lock-free control plane (DESIGN.md §20): steady-state data-path traffic
# — allocator refills, frees, spills, grant churn — must run without the
# registry control lock. The headline counter sums only the hot call
# sites; per-site attribution for any regression is in
# registry_lock_sites.
rl = int(new["registry_locks"])
if rl > 10:
    sys.exit(
        f"FAIL: registry_locks = {rl} on the benched data path (budget 10); "
        f"per-site: {new.get('registry_lock_sites')}"
    )
print(f"OK: registry_locks = {rl} on the data path (<= 10; control plane off the hot path).")
EOF
else
    echo "NOTE: no committed BENCH_datapath.json baseline; skipping comparison."
fi
rm -f /tmp/trio_datapath.$$

echo
echo "== mega-tenant gate: 128 concurrent LibFS instances, lock-free control plane =="
# DESIGN.md §20: one kernel, N = {8, 32, 128} independent LibFS tenants
# doing metadata churn plus delegated writes. Gates: per-tenant metadata
# throughput at 128 tenants stays within 0.8x of the 8-tenant rate
# (near-linear control-plane scaling), and the hot-path registry-lock
# budget holds across every rung.
TRIO_BENCH_OUT=/tmp/trio_megatenant.$$ \
    cargo bench -p trio-bench --bench bench_megatenant
python3 - /tmp/trio_megatenant.$$ <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
scaling = float(r["scaling_8_to_128"])
if scaling < 0.8:
    sys.exit(
        f"FAIL: per-tenant metadata scaling 8->128 = {scaling:.3f} (< 0.8x); "
        f"per-rung rates: {r.get('meta_ops_per_sec_per_tenant')}"
    )
print(f"OK: per-tenant metadata scaling 8->128 = {scaling:.3f} (>= 0.8x).")
hot = int(r["max_hot_registry_locks"])
if hot > 10:
    sys.exit(
        f"FAIL: hot-path registry locks = {hot} across mega-tenant rungs (budget 10); "
        f"per-site: {r.get('registry_lock_sites')}"
    )
print(f"OK: hot-path registry locks = {hot} across all rungs (<= 10).")
EOF
rm -f /tmp/trio_megatenant.$$

echo
echo "verify.sh: all gates passed."
