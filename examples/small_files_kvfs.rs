//! Customization example 1 (paper §5): **KVFS** — the mail-server /
//! small-file workload, expressed through the get/set interface KVFS adds
//! to ArckFS's core state.
//!
//! Shows both the API difference and the speedup: the same small-file
//! traffic runs through the POSIX path and the KV path, and the virtual
//! clock reports the win.
//!
//! ```text
//! cargo run --example small_files_kvfs
//! ```

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig, KvFs};
use trio_fsapi::{FileSystem, KeyValueFs, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

const MESSAGES: usize = 2_000;

fn main() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 64 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(11);
    let fs2 = Arc::clone(&fs);
    rt.spawn("maild", move || {
        let msg = vec![0x6Du8; 2048]; // A 2 KiB mail message.

        // --- POSIX path: open/write/close + open/read/close per message.
        fs2.mkdir("/spool-posix", Mode::RWX).unwrap();
        let t0 = trio_sim::now();
        for i in 0..MESSAGES {
            let p = format!("/spool-posix/msg-{i:05}");
            let fd = fs2.open(&p, OpenFlags::CREATE | OpenFlags::WRONLY, Mode::RW).unwrap();
            fs2.pwrite(fd, 0, &msg).unwrap();
            fs2.close(fd).unwrap();
        }
        let mut buf = vec![0u8; 4096];
        for i in 0..MESSAGES {
            let p = format!("/spool-posix/msg-{i:05}");
            let fd = fs2.open(&p, OpenFlags::RDONLY, Mode::empty()).unwrap();
            fs2.pread(fd, 0, &mut buf).unwrap();
            fs2.close(fd).unwrap();
        }
        let posix_ns = trio_sim::now() - t0;

        // --- KVFS path: set/get, no descriptors, fixed-array index.
        let kv = KvFs::new(Arc::clone(&fs2), "/spool-kv").unwrap();
        let t0 = trio_sim::now();
        for i in 0..MESSAGES {
            kv.kv_set(&format!("msg-{i:05}"), &msg).unwrap();
        }
        for i in 0..MESSAGES {
            kv.kv_get(&format!("msg-{i:05}"), &mut buf).unwrap();
        }
        let kv_ns = trio_sim::now() - t0;

        println!("{MESSAGES} small messages, write+read:");
        println!("  POSIX interface: {}", trio_sim::time::format_nanos(posix_ns));
        println!("  KVFS  interface: {}", trio_sim::time::format_nanos(kv_ns));
        println!("  speedup: {:.2}x", posix_ns as f64 / kv_ns as f64);
        // Same core state underneath: the POSIX view can read a KV file.
        let via_posix = trio_fsapi::read_file(&*fs2, "/spool-kv/msg-00000").unwrap();
        assert_eq!(via_posix.len(), msg.len());
        println!("KVFS files remain ordinary ArckFS files (shared core state).");
    });
    rt.run();
}
