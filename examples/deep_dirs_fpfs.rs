//! Customization example 2 (paper §5): **FPFS** — full-path indexing for
//! deep directory hierarchies.
//!
//! Builds a 20-deep tree and compares path resolution through ArckFS's
//! per-directory hash tables against FPFS's single global table.
//!
//! ```text
//! cargo run --example deep_dirs_fpfs
//! ```

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig, FpFs};
use trio_fsapi::{FileSystem, Mode};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

const DEPTH: usize = 20;
const STATS: usize = 5_000;

fn main() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 64 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(13);
    let fs2 = Arc::clone(&fs);
    rt.spawn("app", move || {
        // Build /l1/l2/.../l20 with one file at the bottom.
        let mut path = String::new();
        for i in 1..=DEPTH {
            path.push_str(&format!("/l{i}"));
            fs2.mkdir(&path, Mode::RWX).unwrap();
        }
        let leaf = format!("{path}/leaf.dat");
        trio_fsapi::write_file(&*fs2, &leaf, b"bottom of the tree").unwrap();

        // ArckFS: every stat walks 20 components.
        let t0 = trio_sim::now();
        for _ in 0..STATS {
            fs2.stat(&leaf).unwrap();
        }
        let walk_ns = trio_sim::now() - t0;

        // FPFS: one global-table probe after the first resolution.
        let fp = FpFs::new(Arc::clone(&fs2));
        fp.stat(&leaf).unwrap(); // Warm the full-path entry.
        let t0 = trio_sim::now();
        for _ in 0..STATS {
            fp.stat(&leaf).unwrap();
        }
        let fp_ns = trio_sim::now() - t0;

        println!("{STATS} stats of a {DEPTH}-deep path:");
        println!("  ArckFS component walk: {}", trio_sim::time::format_nanos(walk_ns));
        println!("  FPFS full-path index:  {}", trio_sim::time::format_nanos(fp_ns));
        println!("  speedup: {:.2}x", walk_ns as f64 / fp_ns as f64);

        // The documented weakness: rename invalidates cached paths.
        fp.rename(&format!("{path}/leaf.dat"), &format!("{path}/leaf2.dat")).unwrap();
        assert!(fp.stat(&format!("{path}/leaf2.dat")).is_ok());
        println!("rename handled (with the slow full-table sweep FPFS accepts).");
    });
    rt.run();
}
