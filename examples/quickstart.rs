//! Quickstart: mount ArckFS on an emulated NVM device and use the
//! POSIX-like API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

fn main() {
    // 1. An emulated NVM device: 2 NUMA nodes x 128 MiB.
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(2, 32 * 1024),
        ..DeviceConfig::small()
    }));

    // 2. The trusted kernel controller formats the Trio core state.
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());

    // 3. An application mounts its private LibFS (unprivileged).
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());

    // 4. Everything runs on the deterministic virtual-time runtime.
    let rt = SimRuntime::new(7);
    let fs2 = Arc::clone(&fs);
    rt.spawn("app", move || {
        fs2.mkdir("/projects", Mode::RWX).unwrap();
        fs2.mkdir("/projects/trio", Mode::RWX).unwrap();

        write_file(&*fs2, "/projects/trio/notes.txt", b"direct access to NVM!").unwrap();
        let back = read_file(&*fs2, "/projects/trio/notes.txt").unwrap();
        println!("read back: {}", String::from_utf8_lossy(&back));

        // Random-access I/O through descriptors.
        let fd = fs2
            .open("/projects/trio/data.bin", OpenFlags::CREATE | OpenFlags::RDWR, Mode::RW)
            .unwrap();
        fs2.pwrite(fd, 1 << 20, b"sparse tail").unwrap(); // 1 MiB offset: hole.
        let st = fs2.fstat(fd).unwrap();
        println!("data.bin size after sparse write: {} bytes", st.size);
        fs2.close(fd).unwrap();

        for e in fs2.readdir("/projects/trio").unwrap() {
            println!("  /projects/trio/{} (ino {})", e.name, e.ino);
        }

        // All metadata ops above were direct NVM accesses: the kernel was
        // only involved in batched page/ino allocation and mapping.
        println!(
            "virtual time elapsed: {}",
            trio_sim::time::format_nanos(trio_sim::now())
        );
    });
    rt.run();
    println!("done.");
}
