//! The Trio security story, end to end (paper §3.2, §4.3, §6.5):
//! two untrusted applications share a file; one of them turns malicious
//! and corrupts core state; the verifier catches it on the next transfer
//! and the kernel rolls the file back to its checkpoint.
//!
//! ```text
//! cargo run --example sharing_and_attacks
//! ```

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

fn main() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());

    // Two applications, each with its own private LibFS.
    let alice = ArckFs::mount(Arc::clone(&kernel), 1001, 1001, ArckFsConfig::no_delegation());
    let mallory = ArckFs::mount(Arc::clone(&kernel), 1001, 1001, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(17);
    let k = Arc::clone(&kernel);
    rt.spawn("story", move || {
        // --- Benign sharing. -------------------------------------------
        alice.mkdir("/shared", Mode(0o777)).unwrap();
        write_file(&*alice, "/shared/report.txt", b"quarterly numbers").unwrap();
        alice.release_path("/shared").unwrap();

        let got = read_file(&*mallory, "/shared/report.txt").unwrap();
        println!("mallory read what alice wrote: {:?}", String::from_utf8_lossy(&got));
        println!("(the kernel verified /shared on that first cross-process map)");

        // --- Mallory turns hostile. ------------------------------------
        // She legitimately acquires write access (the kernel checkpoints
        // the clean state here)...
        let fd = mallory.open("/shared/report.txt", OpenFlags::RDWR, Mode(0o666)).unwrap();
        mallory.pwrite(fd, 0, b"Q").unwrap();
        mallory.close(fd).unwrap();
        mallory.create("/shared/tmp", Mode(0o666)).unwrap();
        mallory.unlink("/shared/tmp").unwrap();
        // ...then scribbles a cycle into the report's index chain with raw
        // stores — which the MMU permits, because the pages ARE mapped to
        // her. Nothing stops a malicious LibFS at write time.
        run_attack(&mallory, Attack::IndexCycle, "/shared", "report.txt").unwrap();
        mallory.release_path("/shared/report.txt").unwrap();
        mallory.release_path("/shared").unwrap();
        println!("\nmallory corrupted the file's index pages and released it.");

        // --- Alice comes back. -----------------------------------------
        let result = read_file(&*alice, "/shared/report.txt");
        let events = k.take_events();
        for e in &events {
            match e {
                KernelEvent::CorruptionDetected { ino, violations } => {
                    println!("verifier: corruption detected in ino {ino} ({violations} violations)")
                }
                KernelEvent::RolledBack { ino } => {
                    println!("kernel: ino {ino} rolled back to its checkpoint")
                }
                KernelEvent::LeaseRevoked { .. } => {}
                KernelEvent::Privatized { ino, .. } => {
                    println!("kernel: ino {ino} privatized (corrupt, never checkpointed)")
                }
                KernelEvent::Quarantined { actor, tainted } => {
                    println!("kernel: actor {actor:?} quarantined ({tainted} tainted files)")
                }
                KernelEvent::Readmitted { actor } => {
                    println!("kernel: actor {actor:?} repaired and re-admitted")
                }
                KernelEvent::WorkerDied { node, worker } => {
                    println!("kernel: delegation worker {worker} on node {node} died")
                }
                KernelEvent::WorkerRestarted { node, worker } => {
                    println!("kernel: delegation worker {worker} on node {node} restarted")
                }
                KernelEvent::DelegationDegraded => {
                    println!("kernel: delegation degraded — shedding to direct access")
                }
                KernelEvent::DelegationRecovered => {
                    println!("kernel: delegation recovered — resuming")
                }
            }
        }
        match result {
            Ok(data) => println!(
                "alice reads the restored file: {:?}",
                String::from_utf8_lossy(&data[..17.min(data.len())])
            ),
            Err(e) => println!("alice's read failed cleanly: {e}"),
        }
        println!("\ncorruption was confined to the attacker; alice was never exposed.");
        println!("resilience counters: {}", k.resilience_stats().snapshot().to_json());

        // The quarantine entry above auto-dumped the obs flight recorder:
        // a replayable timeline of every span leading up to the attack.
        #[cfg(feature = "obs")]
        println!(
            "obs timeline (auto-dumped on quarantine entry): {}",
            trio_obs::timeline_path().display()
        );
    });
    rt.run();
}
