//! Data-path scalability properties: adaptive delegation routing, the
//! zero-copy batched submission path, and the sharded allocator's page
//! ledger. All scenarios are deterministic — a fixed simulation seed must
//! reproduce the exact same counter values run after run.

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, PathStatsSnapshot, Topology};
use trio_sim::SimRuntime;

fn world(cfg: ArckFsConfig) -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, cfg);
    (dev, kernel, fs)
}

/// One run of the adaptive-routing scenario: a lone writer issuing small
/// writes (should all go direct — the ring round trip would only slow them
/// down), then a thundering herd of writers on the same node (sampled load
/// crosses the bandwidth-collapse knee, so the same-sized writes should
/// start delegating). Returns `(uncontended, contended)` snapshots.
fn adaptive_scenario(seed: u64) -> (PathStatsSnapshot, PathStatsSnapshot) {
    let (_, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(seed);
    let k = Arc::clone(&kernel);
    let result = Arc::new(trio_sim::plock::Mutex::new(None));
    let result2 = Arc::clone(&result);
    rt.spawn("main", move || {
        k.delegation().start();
        let stats = Arc::clone(k.path_stats());

        // Phase 1: uncontended small writes.
        let fd = fs.open("/solo", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        fs.pwrite(fd, 0, &vec![0u8; 256 * 1024]).unwrap(); // preallocate
        let base = stats.snapshot();
        let block = vec![0xABu8; 4096];
        for i in 0..50u64 {
            fs.pwrite(fd, (i % 64) * 4096, &block).unwrap();
        }
        fs.close(fd).unwrap();
        let uncontended = stats.snapshot().delta(&base);

        // Phase 2: the same 4 KiB writes, but 24 writers deep on one node.
        // Snapshot-delta window: taken before the spawns, so no reset can
        // race a worker already inside the delegation path.
        let herd_base = stats.snapshot();
        let mut handles = Vec::new();
        for t in 0..24u64 {
            let fs2 = Arc::clone(&fs);
            handles.push(trio_sim::spawn(&format!("w{t}"), move || {
                let path = format!("/herd-{t}");
                let fd =
                    fs2.open(&path, OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
                fs2.pwrite(fd, 0, &vec![0u8; 64 * 4096]).unwrap(); // preallocate
                let block = vec![t as u8; 4096];
                for i in 0..100u64 {
                    fs2.pwrite(fd, (i % 64) * 4096, &block).unwrap();
                }
                fs2.close(fd).unwrap();
            }));
        }
        for h in handles {
            h.join();
        }
        let contended = stats.snapshot().delta(&herd_base);
        k.delegation().shutdown();
        *result2.lock() = Some((uncontended, contended));
    });
    rt.run();
    let r = result.lock().take().unwrap();
    r
}

#[test]
fn adaptive_routing_tracks_node_load() {
    let (uncontended, contended) = adaptive_scenario(77);
    // A lone writer's 4 KiB overwrites never delegate: load on the home
    // node is far below the collapse knee and nothing is remote.
    assert_eq!(
        uncontended.adaptive_delegated, 0,
        "uncontended small writes must stay on the direct path"
    );
    assert!(uncontended.adaptive_direct >= 50, "{uncontended:?}");
    assert!(uncontended.direct_write_bytes >= 50 * 4096);
    // Under a 24-writer herd the sampled load crosses the knee and the
    // very same write size flips to the delegated path.
    assert!(
        contended.adaptive_delegated > 0,
        "loaded node must start delegating small writes: {contended:?}"
    );
    assert!(contended.delegated_write_bytes > 0);
}

#[test]
fn adaptive_routing_is_deterministic_across_reruns() {
    let a = adaptive_scenario(77);
    let b = adaptive_scenario(77);
    // Identical seeds must replay the identical schedule, so every counter
    // — not just the headline ones — matches exactly.
    assert_eq!(a.0.to_json(&[]), b.0.to_json(&[]), "uncontended phase diverged");
    assert_eq!(a.1.to_json(&[]), b.1.to_json(&[]), "contended phase diverged");
}

/// Concurrent allocation and frees across several actors must balance the
/// page ledger: every page is in exactly one of {global pool, an actor's
/// allocator cache, handed out}, and unregistering flushes caches back.
#[test]
fn concurrent_alloc_free_across_actors_leaks_no_pages() {
    let rt = SimRuntime::new(91);
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(2, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        let baseline = k.free_page_count() + k.cached_page_count();
        let mut actors = Vec::new();
        let mut workers = Vec::new();
        for a in 0..4u32 {
            let reg = k.register_libfs(1000 + a, 1000 + a);
            actors.push(reg.actor);
            for t in 0..3u32 {
                let k2 = Arc::clone(&k);
                let actor = reg.actor;
                workers.push(trio_sim::spawn(&format!("a{a}t{t}"), move || {
                    let mut held: Vec<trio_nvm::PageId> = Vec::new();
                    for round in 0..40usize {
                        let n = 1 + (round * 7 + t as usize) % 8;
                        let node = Some((round + a as usize) % 2);
                        held.extend(k2.alloc_pages(actor, n, node).unwrap());
                        // Free in a different grouping than we allocated.
                        if round % 3 == 2 {
                            let give: Vec<_> = held.drain(..held.len() / 2).collect();
                            k2.free_pages(actor, &give).unwrap();
                        }
                    }
                    k2.free_pages(actor, &held).unwrap();
                }));
            }
        }
        for w in workers {
            w.join();
        }
        // Everything freed: pool + caches hold every page again.
        assert_eq!(
            k.free_page_count() + k.cached_page_count(),
            baseline,
            "ledger out of balance after concurrent alloc/free"
        );
        let snap = k.path_stats().snapshot();
        assert!(snap.alloc_fast_hits > 0, "caches never served a fast-path alloc: {snap:?}");
        // Refills take the registry lock once per batch, not once per page:
        // strictly fewer lock acquisitions than pages allocated.
        assert!(
            snap.registry_locks < snap.alloc_refill_pages,
            "lock per page defeats sharding: {snap:?}"
        );
        // Unregister flushes each actor's cache back to the global pool.
        for actor in actors {
            k.unregister(actor);
        }
        assert_eq!(k.cached_page_count(), 0, "unregister must flush caches");
        assert_eq!(k.free_page_count(), baseline, "pages leaked across unregister");
    });
    rt.run();
}

/// Truncate/re-extend churn must reach a steady state: every data page a
/// truncate frees parks in the actor's scrubbed allocator cache (or
/// spills back to the global pool past the high-water mark), and the
/// next extension allocates straight out of the cache. A leak anywhere
/// in the return→park→realloc cycle shows up as a shrinking ledger.
#[test]
fn truncate_extend_churn_recycles_pages_through_actor_cache() {
    let (_, kernel, fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(55);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        let stats = Arc::clone(k.path_stats());
        let chunk = vec![0x5Cu8; 1 << 20];
        let reg = fs.register_write_buffer(&chunk).unwrap();
        let mut steady: Option<usize> = None;
        for round in 0..20u32 {
            let fd =
                fs.open("/churn", OpenFlags::CREATE | OpenFlags::WRONLY, Mode(0o666)).unwrap();
            for i in 0..2u64 {
                fs.pwrite_registered(fd, i * chunk.len() as u64, reg, 0, chunk.len()).unwrap();
            }
            fs.close(fd).unwrap();
            fs.truncate("/churn", 0).unwrap();
            let avail = k.free_page_count() + k.cached_page_count();
            match steady {
                // Round 0 pays for index pages and directory metadata;
                // every later round must come back to the same ledger.
                None => steady = Some(avail),
                Some(s) => assert_eq!(avail, s, "page leak by round {round}"),
            }
        }
        fs.unregister_write_buffer(reg).unwrap();
        let snap = stats.snapshot();
        assert!(snap.free_cached > 0, "truncate frees never reached the actor cache: {snap:?}");
        assert!(snap.free_spills > 0, "512-page frees must spill past the high-water mark: {snap:?}");
        assert!(snap.alloc_fast_hits > 0, "re-extension never hit the cache fast path: {snap:?}");
        assert_eq!(snap.payload_copies, 0, "registered churn writes must not copy payloads: {snap:?}");
    });
    rt.run();
}

/// A delegated write shares one payload buffer across every per-node batch
/// and every retry: exactly one copy (`&[u8]` → `Arc<[u8]>`) per op, no
/// matter how many times faulted requests are re-enqueued.
#[cfg(feature = "faults")]
#[test]
fn delegated_write_copies_payload_exactly_once_across_retries() {
    let (_, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(33);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        k.delegation().start();
        let fd = fs.open("/f", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let data = vec![0xC3u8; 64 * 1024];
        fs.pwrite(fd, 0, &data).unwrap(); // preallocate pages
        // Drop every other request: the op only completes via retries.
        k.delegation().inject_faults(0, 0, 2);
        let stats = Arc::clone(k.path_stats());
        let base = stats.snapshot();
        assert_eq!(fs.pwrite(fd, 0, &data).unwrap(), data.len());
        let snap = stats.snapshot().delta(&base);
        assert!(snap.deleg_retries >= 1, "drop injection produced no retries: {snap:?}");
        assert_eq!(
            snap.payload_copies, 1,
            "retries must re-enqueue the shared payload, not copy it: {snap:?}"
        );
        k.delegation().inject_faults(0, 0, 0);
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), buf.len());
        assert_eq!(buf, data, "retried write landed wrong bytes");
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
}
