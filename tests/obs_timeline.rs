//! The obs flight recorder end to end: a forced delegation timeout and a
//! forced quarantine entry must each auto-dump a replayable JSON timeline
//! whose spans cover the delegated op pipeline, and every JSON emitter on
//! the observability path must produce output a real parser accepts (the
//! workspace hand-rolls its JSON, so this is the regression net for it).
#![cfg(all(feature = "obs", feature = "faults"))]

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::delegation::DelegationError;
use trio_kernel::{KernelConfig, KernelController, RetryPolicy};
use trio_nvm::{DeviceConfig, NvmDevice, PathStats, Topology};
use trio_sim::{SimRuntime, MILLIS};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (test-local; the workspace is
// dependency-free, so the emitters can't be checked against serde).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser { s: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? != c {
            return Err(format!("expected `{}` at byte {}", c as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(self.s[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.s.get(self.pos).copied().ok_or("bad escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                    self.pos += 1;
                }
                c => {
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            let k = self.string()?;
            self.eat(b':')?;
            kv.push((k, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline scenarios
// ---------------------------------------------------------------------------

/// `(kind, stage, phase)` triples present in a dumped timeline.
fn span_set(timeline: &Json) -> Vec<(String, String, String)> {
    timeline
        .get("events")
        .expect("events key")
        .arr()
        .iter()
        .map(|e| {
            (
                e.get("kind").unwrap().str().to_string(),
                e.get("stage").unwrap().str().to_string(),
                e.get("phase").unwrap().str().to_string(),
            )
        })
        .collect()
}

fn assert_span(spans: &[(String, String, String)], kind: &str, stage: &str, phase: &str) {
    assert!(
        spans.iter().any(|(k, s, p)| k == kind && s == stage && p == phase),
        "timeline missing {kind}/{stage}/{phase}; got {spans:?}"
    );
}

/// One test fn for both scenarios: the dump path (env override + the
/// once-per-trigger latches) is process-global state, so the two stories
/// must run in a controlled order, with a recorder reset in between.
#[test]
fn forced_failures_auto_dump_replayable_timelines() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("obs-timeline-test.json");
    std::env::set_var("TRIO_OBS_TIMELINE", &path);
    let _ = std::fs::remove_file(&path);

    // --- Scenario A: forced delegation timeout. ---------------------------
    // Drive the pool directly (the LibFS layer would fall back and emit a
    // `delegation-fallback` dump on top): one healthy 64 KiB delegated
    // write for the full submit → service → reply span chain, then a
    // total-wedge drop fault so the next op times out and auto-dumps.
    trio_obs::reset();
    {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            topology: Topology::new(2, 32 * 1024),
            ..DeviceConfig::small()
        }));
        let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
        let rt = SimRuntime::new(7);
        let k = Arc::clone(&kernel);
        rt.spawn("main", move || {
            k.delegation().start();
            let reg = k.register_libfs(1000, 1000);
            let pages = k.alloc_pages(reg.actor, 32, Some(0)).unwrap();
            let data = vec![0xEEu8; 64 * 1024];
            // Stand in for the syscall layer: give the op a real span id
            // so the worker events stitch to it.
            trio_obs::set_current_op(trio_obs::next_op_id());
            k.delegation()
                .try_write_extent(
                    reg.actor,
                    &pages,
                    0,
                    &data,
                    &RetryPolicy::new(5 * MILLIS, 0, 2, 40 * MILLIS),
                )
                .unwrap();
            k.delegation().inject_faults(0, 0, 1); // Drop 1-in-1: wedge.
            let r = k.delegation().try_write_extent(
                reg.actor,
                &pages,
                0,
                &data,
                &RetryPolicy::new(MILLIS, 0, 1, 8 * MILLIS),
            );
            assert_eq!(r, Err(DelegationError::Timeout));
            trio_obs::set_current_op(0);
            k.delegation().shutdown();
        });
        rt.run();
    }
    let text = std::fs::read_to_string(&path).expect("timeout must auto-dump a timeline");
    let timeline = Parser::parse(&text).expect("timeline must be valid JSON");
    assert_eq!(timeline.get("trigger").unwrap().str(), "delegation-timeout");
    assert!(timeline.get("events_recorded").unwrap().num() > 0.0);
    let spans = span_set(&timeline);
    // The healthy op's full pipeline: submit, worker service, NVM
    // transfer, reply — all present in the recorder at dump time.
    assert_span(&spans, "write", "ring-hop", "open");
    assert_span(&spans, "write", "worker-service", "open");
    assert_span(&spans, "write", "worker-service", "close");
    assert_span(&spans, "write", "numa-transfer", "close");
    assert_span(&spans, "write", "ring-hop", "close");
    // Stage histograms rode along and parse as objects with percentiles.
    let stages = timeline.get("stages").expect("stages key");
    let hop = stages.get("write/ring-hop").expect("ring-hop histogram");
    assert!(hop.get("count").unwrap().num() >= 1.0);
    assert!(hop.get("p50_ns").unwrap().num() >= 0.0);

    // --- Scenario B: forced quarantine entry. -----------------------------
    // The sharing-and-attacks story with delegation live: alice's 64 KiB
    // report is written through the pool, mallory corrupts its index
    // chain, and the verifier walk on alice's next map quarantines her —
    // dumping a timeline that spans syscalls, the ring, and the walk.
    trio_obs::reset();
    let _ = std::fs::remove_file(&path);
    {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            topology: Topology::new(1, 32 * 1024),
            ..DeviceConfig::small()
        }));
        let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
        let alice = ArckFs::mount(Arc::clone(&kernel), 1001, 1001, ArckFsConfig::default());
        let mallory = ArckFs::mount(Arc::clone(&kernel), 1001, 1001, ArckFsConfig::default());
        let rt = SimRuntime::new(17);
        let k = Arc::clone(&kernel);
        rt.spawn("story", move || {
            k.delegation().start();
            alice.mkdir("/shared", Mode(0o777)).unwrap();
            write_file(&*alice, "/shared/report.txt", &vec![0x51u8; 64 * 1024]).unwrap();
            alice.release_path("/shared").unwrap();
            read_file(&*mallory, "/shared/report.txt").unwrap();
            let fd = mallory.open("/shared/report.txt", OpenFlags::RDWR, Mode(0o666)).unwrap();
            mallory.pwrite(fd, 0, b"Q").unwrap();
            mallory.close(fd).unwrap();
            run_attack(&mallory, Attack::IndexCycle, "/shared", "report.txt").unwrap();
            mallory.release_path("/shared/report.txt").unwrap();
            mallory.release_path("/shared").unwrap();
            // Alice's next map re-verifies, detects the cycle, rolls the
            // file back, and quarantines mallory — the dump trigger.
            // (Auto-repair may re-admit her right away, so check the
            // entry counter, not the live quarantine set.)
            let _ = read_file(&*alice, "/shared/report.txt");
            assert!(
                k.resilience_stats().snapshot().quarantine_entries >= 1,
                "the attack must end in quarantine for this scenario to dump"
            );
            k.delegation().shutdown();
        });
        rt.run();
    }
    let text = std::fs::read_to_string(&path).expect("quarantine must auto-dump a timeline");
    let timeline = Parser::parse(&text).expect("timeline must be valid JSON");
    assert_eq!(timeline.get("trigger").unwrap().str(), "quarantine-entry");
    let spans = span_set(&timeline);
    // Delegated write pipeline plus the verifier walk that caught it.
    assert_span(&spans, "write", "syscall", "open");
    assert_span(&spans, "write", "syscall", "close");
    assert_span(&spans, "write", "ring-hop", "open");
    assert_span(&spans, "write", "worker-service", "close");
    assert_span(&spans, "write", "ring-hop", "close");
    assert_span(&spans, "verify", "verifier-walk", "open");
    assert_span(&spans, "verify", "verifier-walk", "close");

    std::env::remove_var("TRIO_OBS_TIMELINE");
}

/// `PathStatsSnapshot::to_json` round-trips through a real JSON parser
/// with the new percentile keys present and coherent.
#[test]
fn path_stats_json_round_trips_through_a_real_parser() {
    let s = PathStats::new();
    s.record_submission(3);
    s.record_ring_hop(0);
    for _ in 0..5 {
        s.record_ring_hop(512); // bucket 9 → geometric midpoint 724
    }
    s.record_ring_hop(100_000);
    s.record_delegated_bytes(1 << 20, true);
    let j = s.snapshot().to_json(&[("threads", "28".into())]);
    let v = Parser::parse(&j).expect("PathStatsSnapshot::to_json must be valid JSON");
    assert_eq!(v.get("threads").unwrap().num(), 28.0);
    assert_eq!(v.get("deleg_requests").unwrap().num(), 1.0);
    assert_eq!(v.get("ring_hop_zero").unwrap().num(), 1.0);
    assert_eq!(v.get("ring_hop_p50_ns").unwrap().num(), 724.0);
    assert_eq!(v.get("ring_hop_p99_ns").unwrap().num(), 92681.0);
    let hist = v.get("ring_hop_hist").unwrap().arr();
    assert_eq!(hist.len(), trio_nvm::HIST_BUCKETS);
    assert_eq!(hist[9].num(), 5.0);
}

/// The obs timeline emitter round-trips through the same parser even for
/// an empty recorder (edge case: empty `events` array).
#[test]
fn timeline_json_round_trips_through_a_real_parser() {
    let j = trio_obs::timeline_json("parser-check");
    let v = Parser::parse(&j).expect("timeline_json must be valid JSON");
    assert_eq!(v.get("trigger").unwrap().str(), "parser-check");
    assert!(v.get("events").unwrap().arr().len() <= trio_obs::RECORDER_SLOTS);
    assert!(v.get("stages").is_some());
}
