//! Property-based tests (proptest) on the core data structures and
//! invariants: the dirent codec, defensive index walks over arbitrary
//! bytes, the LSM store against a model, path parsing, and simulator
//! determinism.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use trio_layout::{walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, WalkError};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, NvmHandle, PageId, PagePerm, KERNEL_ACTOR};

fn handle_rw() -> NvmHandle {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    for p in 1..64 {
        dev.mmu_map(ActorId(1), PageId(p), PagePerm::Write).unwrap();
    }
    NvmHandle::new(dev, ActorId(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then decoding a dirent preserves every field (names within
    /// the 200-byte core-state limit).
    #[test]
    fn dirent_codec_roundtrip(
        ino in 1u64..u64::MAX,
        first_index in 0u64..1u64 << 40,
        size in 0u64..1u64 << 40,
        mtime in 0u64..u64::MAX,
        mode in 0u16..0o7777u16,
        is_dir in any::<bool>(),
        uid in any::<u32>(),
        gid in any::<u32>(),
        name in "[a-zA-Z0-9._-]{1,200}",
    ) {
        let mut d = DirentData::new(
            name.as_bytes(),
            if is_dir { CoreFileType::Directory } else { CoreFileType::Regular },
            trio_fsapi::Mode(mode),
            uid,
            gid,
        );
        d.ino = ino;
        d.first_index = first_index;
        d.size = size;
        d.mtime = mtime;
        let img = d.encode_bytes();
        let back = DirentData::decode_bytes(&img);
        prop_assert_eq!(back, d);
    }

    /// The defensive walk never panics and never loops on arbitrary page
    /// contents — it either returns pages or a structural error.
    #[test]
    fn walk_survives_arbitrary_index_bytes(words in proptest::collection::vec(any::<u64>(), 0..512)) {
        let h = handle_rw();
        for (i, w) in words.iter().enumerate() {
            h.write_untimed(PageId(2), i * 8, &w.to_le_bytes()).unwrap();
        }
        match walk_file(&h, 2, 32) {
            Ok(pages) => {
                // Any returned data page must be in range and unique.
                let mut seen = std::collections::HashSet::new();
                for p in pages.all_pages() {
                    prop_assert!(p.0 < h.device().topology().total_pages());
                    prop_assert!(seen.insert(p.0));
                }
            }
            Err(WalkError::Fault(_)) => prop_assert!(false, "no faults expected"),
            Err(_) => {} // Structural rejection is the correct outcome.
        }
    }

    /// Path parsing: joining a parent and validated name always re-parses
    /// to the same components.
    #[test]
    fn path_join_components_roundtrip(
        comps in proptest::collection::vec(
            "[a-zA-Z0-9._-]{1,20}".prop_filter("dot dirs are not names", |s| s != "." && s != ".."),
            1..8,
        ),
    ) {
        let path = format!("/{}", comps.join("/"));
        let parsed = trio_fsapi::path::components(&path).unwrap();
        prop_assert_eq!(&parsed, &comps);
        let (parent, name) = trio_fsapi::path::split_parent(&path).unwrap();
        prop_assert_eq!(name, comps.last().unwrap().as_str());
        prop_assert_eq!(parent.len(), comps.len() - 1);
    }

    /// The prepare/publish protocol makes the slot visible exactly when
    /// the ino is published, with all fields intact.
    #[test]
    fn prepare_publish_protocol(name in "[a-z]{1,32}", ino in 1u64..1 << 48) {
        let h = handle_rw();
        let loc = DirentLoc { page: PageId(3), slot: 5 };
        let d = DirentData::new(name.as_bytes(), CoreFileType::Regular, trio_fsapi::Mode::RW, 1, 1);
        let r = DirentRef::new(&h, loc);
        r.prepare(&d).unwrap();
        prop_assert_eq!(r.ino().unwrap(), 0);
        r.publish(ino).unwrap();
        let back = r.load().unwrap();
        prop_assert_eq!(back.ino, ino);
        prop_assert_eq!(back.name, name.as_bytes().to_vec());
    }
}

/// LSM store vs a model: arbitrary put/delete/get sequences agree with a
/// `BTreeMap` through flushes and compactions.
#[derive(Clone, Debug)]
enum LsmOp {
    Put(u8, Vec<u8>),
    Del(u8),
    Get(u8),
    Flush,
}

fn lsm_op() -> impl Strategy<Value = LsmOp> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| LsmOp::Put(k, v)),
        any::<u8>().prop_map(LsmOp::Del),
        any::<u8>().prop_map(LsmOp::Get),
        Just(LsmOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lsm_matches_model(ops in proptest::collection::vec(lsm_op(), 1..120)) {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            topology: trio_nvm::Topology::new(1, 32 * 1024),
            ..DeviceConfig::small()
        }));
        let kernel = trio_kernel::KernelController::format(dev, trio_kernel::KernelConfig::default());
        let fs: Arc<dyn trio_fsapi::FileSystem> =
            arckfs::ArckFs::mount(kernel, 0, 0, arckfs::ArckFsConfig::no_delegation());
        let rt = trio_sim::SimRuntime::new(17);
        let failed = Arc::new(parking_lot::Mutex::new(None::<String>));
        let f2 = Arc::clone(&failed);
        rt.spawn("lsm", move || {
            let db = trio_lsmkv::Db::open(
                fs,
                "/db",
                trio_lsmkv::DbConfig { memtable_bytes: 2048, ..Default::default() },
            )
            .unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in &ops {
                match op {
                    LsmOp::Put(k, v) => {
                        db.put(&[*k], v).unwrap();
                        model.insert(vec![*k], v.clone());
                    }
                    LsmOp::Del(k) => {
                        db.delete(&[*k]).unwrap();
                        model.remove(&vec![*k]);
                    }
                    LsmOp::Get(k) => {
                        let got = db.get(&[*k]).unwrap();
                        let want = model.get(&vec![*k]).cloned();
                        if got != want {
                            *f2.lock() = Some(format!("get({k}): {got:?} != {want:?}"));
                            return;
                        }
                    }
                    LsmOp::Flush => db.flush().unwrap(),
                }
            }
            // Final sweep.
            for (k, v) in &model {
                let got = db.get(k).unwrap();
                if got.as_ref() != Some(v) {
                    *f2.lock() = Some(format!("final get({k:?}) mismatch"));
                    return;
                }
            }
        });
        rt.run();
        let err = failed.lock().take();
        prop_assert!(err.is_none(), "{}", err.unwrap_or_default());
    }

    /// Simulator determinism: identical seeds and programs produce
    /// identical virtual end-times and event counts.
    #[test]
    fn sim_is_deterministic(seed in any::<u64>(), workers in 1usize..8) {
        fn run(seed: u64, workers: usize) -> (u64, u64) {
            let rt = trio_sim::SimRuntime::new(seed);
            let m = Arc::new(trio_sim::sync::SimMutex::new(0u64));
            for i in 0..workers {
                let m = Arc::clone(&m);
                rt.spawn("w", move || {
                    for k in 0..20u64 {
                        trio_sim::work(10 + (i as u64 * 13 + k * 7) % 97);
                        *m.lock() += 1;
                        let r = trio_sim::rng::gen_range(50) + 1;
                        trio_sim::work(r);
                    }
                });
            }
            let t = rt.run();
            (t, rt.events())
        }
        prop_assert_eq!(run(seed, workers), run(seed, workers));
    }
}
