//! Property-style tests on the core data structures and invariants, driven
//! by the in-tree deterministic RNG: the dirent codec, defensive index
//! walks over arbitrary bytes, the LSM store against a model, path parsing,
//! and simulator determinism. Every case derives from a printed seed, so a
//! failure reproduces by construction.

use std::collections::BTreeMap;
use std::sync::Arc;

use trio_layout::{walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, WalkError};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, NvmHandle, PageId, PagePerm};
use trio_sim::rng::SimRng;

fn handle_rw() -> NvmHandle {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    for p in 1..64 {
        dev.mmu_map(ActorId(1), PageId(p), PagePerm::Write).unwrap();
    }
    NvmHandle::new(dev, ActorId(1))
}

/// A name over `[a-zA-Z0-9._-]`, 1..=max_len bytes.
fn gen_name(rng: &mut SimRng, max_len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    let len = 1 + rng.gen_range(max_len as u64) as usize;
    (0..len).map(|_| CHARS[rng.gen_range(CHARS.len() as u64) as usize] as char).collect()
}

/// Encoding then decoding a dirent preserves every field (names within the
/// 200-byte core-state limit).
#[test]
fn dirent_codec_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0xD1E1);
    for case in 0..64 {
        let is_dir = rng.one_in(2);
        let mut d = DirentData::new(
            gen_name(&mut rng, 200).as_bytes(),
            if is_dir { CoreFileType::Directory } else { CoreFileType::Regular },
            trio_fsapi::Mode(rng.gen_range(0o7777) as u16),
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        );
        d.ino = 1 + rng.gen_range(u64::MAX - 1);
        d.first_index = rng.gen_range(1 << 40);
        d.size = rng.gen_range(1 << 40);
        d.mtime = rng.next_u64();
        let img = d.encode_bytes();
        let back = DirentData::decode_bytes(&img);
        assert_eq!(back, d, "case {case}");
    }
}

/// The defensive walk never panics and never loops on arbitrary page
/// contents — it either returns pages or a structural error.
#[test]
fn walk_survives_arbitrary_index_bytes() {
    let mut rng = SimRng::seed_from_u64(0x3A1C);
    for case in 0..64 {
        let h = handle_rw();
        let words = rng.gen_range(512) as usize;
        for i in 0..words {
            h.write_untimed(PageId(2), i * 8, &rng.next_u64().to_le_bytes()).unwrap();
        }
        match walk_file(&h, 2, 32) {
            Ok(pages) => {
                // Any returned data page must be in range and unique.
                let mut seen = std::collections::HashSet::new();
                for p in pages.all_pages() {
                    assert!(p.0 < h.device().topology().total_pages(), "case {case}");
                    assert!(seen.insert(p.0), "case {case}: duplicate page");
                }
            }
            Err(WalkError::Fault(e)) => panic!("case {case}: no faults expected, got {e}"),
            Err(_) => {} // Structural rejection is the correct outcome.
        }
    }
}

/// Path parsing: joining a parent and validated name always re-parses to
/// the same components.
#[test]
fn path_join_components_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x9A70);
    for case in 0..64 {
        let n = 1 + rng.gen_range(7) as usize;
        let comps: Vec<String> = (0..n)
            .map(|_| loop {
                let s = gen_name(&mut rng, 20);
                if s != "." && s != ".." {
                    break s;
                }
            })
            .collect();
        let path = format!("/{}", comps.join("/"));
        let parsed = trio_fsapi::path::components(&path).unwrap();
        assert_eq!(parsed, comps, "case {case}");
        let (parent, name) = trio_fsapi::path::split_parent(&path).unwrap();
        assert_eq!(name, comps.last().unwrap().as_str(), "case {case}");
        assert_eq!(parent.len(), comps.len() - 1, "case {case}");
    }
}

/// The prepare/publish protocol makes the slot visible exactly when the ino
/// is published, with all fields intact.
#[test]
fn prepare_publish_protocol() {
    let mut rng = SimRng::seed_from_u64(0x9B11);
    for case in 0..64 {
        let name = gen_name(&mut rng, 32);
        let ino = 1 + rng.gen_range((1 << 48) - 1);
        let h = handle_rw();
        let loc = DirentLoc { page: PageId(3), slot: 5 };
        let d =
            DirentData::new(name.as_bytes(), CoreFileType::Regular, trio_fsapi::Mode::RW, 1, 1);
        let r = DirentRef::new(&h, loc);
        let w = r.prepare(&d).unwrap();
        assert_eq!(r.ino().unwrap(), 0, "case {case}");
        r.publish(ino, &w).unwrap();
        let back = r.load().unwrap();
        assert_eq!(back.ino, ino, "case {case}");
        assert_eq!(back.name, name.as_bytes().to_vec(), "case {case}");
    }
}

/// LSM store vs a model: arbitrary put/delete/get sequences agree with a
/// `BTreeMap` through flushes and compactions.
#[derive(Clone, Debug)]
enum LsmOp {
    Put(u8, Vec<u8>),
    Del(u8),
    Get(u8),
    Flush,
}

fn gen_lsm_op(rng: &mut SimRng) -> LsmOp {
    match rng.gen_range(4) {
        0 => {
            let mut v = vec![0u8; rng.gen_range(64) as usize];
            rng.fill_bytes(&mut v);
            LsmOp::Put(rng.next_u64() as u8, v)
        }
        1 => LsmOp::Del(rng.next_u64() as u8),
        2 => LsmOp::Get(rng.next_u64() as u8),
        _ => LsmOp::Flush,
    }
}

#[test]
fn lsm_matches_model() {
    let mut rng = SimRng::seed_from_u64(0x15A0);
    for case in 0..24 {
        let ops: Vec<LsmOp> =
            (0..1 + rng.gen_range(119) as usize).map(|_| gen_lsm_op(&mut rng)).collect();
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            topology: trio_nvm::Topology::new(1, 32 * 1024),
            ..DeviceConfig::small()
        }));
        let kernel =
            trio_kernel::KernelController::format(dev, trio_kernel::KernelConfig::default());
        let fs: Arc<dyn trio_fsapi::FileSystem> =
            arckfs::ArckFs::mount(kernel, 0, 0, arckfs::ArckFsConfig::no_delegation());
        let rt = trio_sim::SimRuntime::new(17);
        let failed = Arc::new(trio_sim::plock::Mutex::new(None::<String>));
        let f2 = Arc::clone(&failed);
        rt.spawn("lsm", move || {
            let db = trio_lsmkv::Db::open(
                fs,
                "/db",
                trio_lsmkv::DbConfig { memtable_bytes: 2048, ..Default::default() },
            )
            .unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in &ops {
                match op {
                    LsmOp::Put(k, v) => {
                        db.put(&[*k], v).unwrap();
                        model.insert(vec![*k], v.clone());
                    }
                    LsmOp::Del(k) => {
                        db.delete(&[*k]).unwrap();
                        model.remove(&vec![*k]);
                    }
                    LsmOp::Get(k) => {
                        let got = db.get(&[*k]).unwrap();
                        let want = model.get(&vec![*k]).cloned();
                        if got != want {
                            *f2.lock() = Some(format!("get({k}): {got:?} != {want:?}"));
                            return;
                        }
                    }
                    LsmOp::Flush => db.flush().unwrap(),
                }
            }
            // Final sweep.
            for (k, v) in &model {
                let got = db.get(k).unwrap();
                if got.as_ref() != Some(v) {
                    *f2.lock() = Some(format!("final get({k:?}) mismatch"));
                    return;
                }
            }
        });
        rt.run();
        let err = failed.lock().take();
        assert!(err.is_none(), "case {case}: {}", err.unwrap_or_default());
    }
}

/// Simulator determinism: identical seeds and programs produce identical
/// virtual end-times and event counts.
#[test]
fn sim_is_deterministic() {
    fn run(seed: u64, workers: usize) -> (u64, u64) {
        let rt = trio_sim::SimRuntime::new(seed);
        let m = Arc::new(trio_sim::sync::SimMutex::new(0u64));
        for i in 0..workers {
            let m = Arc::clone(&m);
            rt.spawn("w", move || {
                for k in 0..20u64 {
                    trio_sim::work(10 + (i as u64 * 13 + k * 7) % 97);
                    *m.lock() += 1;
                    let r = trio_sim::rng::gen_range(50) + 1;
                    trio_sim::work(r);
                }
            });
        }
        let t = rt.run();
        (t, rt.events())
    }
    let mut rng = SimRng::seed_from_u64(0xDE7);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let workers = 1 + rng.gen_range(7) as usize;
        assert_eq!(run(seed, workers), run(seed, workers), "seed {seed} workers {workers}");
    }
}
