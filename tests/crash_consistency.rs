//! Crash-consistency tests (paper §4.4): with cache-line persistence
//! tracking enabled, operations are interrupted by injected crashes and
//! the surviving core state must satisfy the LibFS's guarantees —
//! metadata ops are synchronous and atomic; data ops synchronous but
//! possibly partial; rename is journaled.

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_layout::{DirentData, DirentLoc, DirentRef, DIRENTS_PER_PAGE, DIRENT_SIZE};
use trio_nvm::{DeviceConfig, NvmDevice, Topology, PAGE_SIZE};
use trio_sim::SimRuntime;

fn tracked_world() -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        track_persistence: true,
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (dev, kernel, fs)
}

/// Scans every committed dirent in `dir`'s data pages directly from core
/// state (what a post-crash verifier/LibFS rebuild would see).
fn scan_dir_core(
    fs: &ArckFs,
    dir: &str,
) -> Vec<(String, u64)> {
    let (_, _, data) = fs.debug_file_pages(dir).unwrap();
    let mut out = Vec::new();
    for page in data.iter().flatten() {
        let mut raw = vec![0u8; PAGE_SIZE];
        fs.handle().read_untimed(*page, 0, &mut raw).unwrap();
        for s in 0..DIRENTS_PER_PAGE {
            let b: &[u8; DIRENT_SIZE] =
                raw[s * DIRENT_SIZE..(s + 1) * DIRENT_SIZE].try_into().unwrap();
            let d = DirentData::decode_bytes(b);
            if d.ino != 0 {
                out.push((String::from_utf8_lossy(&d.name).into_owned(), d.ino));
            }
        }
    }
    out
}

#[test]
fn completed_creates_survive_a_crash() {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(1);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        fs2.mkdir("/d", Mode(0o777)).unwrap();
        for i in 0..40 {
            fs2.create(&format!("/d/f{i:02}"), Mode(0o666)).unwrap();
        }
    });
    rt.run();
    // Crash: revert every unflushed line. Completed creates persisted
    // their dirents with the prepare/publish protocol, so all survive.
    let report = dev.crash();
    let rt = SimRuntime::new(2);
    let fs2 = Arc::clone(&fs);
    let found = Arc::new(trio_sim::plock::Mutex::new(Vec::new()));
    let f2 = Arc::clone(&found);
    rt.spawn("t", move || {
        *f2.lock() = scan_dir_core(&fs2, "/d");
    });
    rt.run();
    let names = found.lock();
    assert_eq!(names.len(), 40, "all committed creates survive: {names:?}\n{report}");
}

#[test]
fn torn_create_is_invisible_after_crash() {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(3);
    let fs2 = Arc::clone(&fs);
    let loc_out = Arc::new(trio_sim::plock::Mutex::new(None));
    let loc2 = Arc::clone(&loc_out);
    rt.spawn("t", move || {
        fs2.mkdir("/d", Mode(0o777)).unwrap();
        fs2.create("/d/committed", Mode(0o666)).unwrap();
        // Hand-build a torn create: prepare the slot (ino 0, persisted)
        // and then store the ino WITHOUT flushing — the crash window
        // between §4.4's two steps.
        let (_, _, data) = fs2.debug_file_pages("/d").unwrap();
        let page = data[0].unwrap();
        // Find a free slot.
        let mut free = None;
        for s in 0..DIRENTS_PER_PAGE {
            let loc = DirentLoc { page, slot: s };
            if DirentRef::new(fs2.handle(), loc).ino().unwrap() == 0 {
                free = Some(loc);
                break;
            }
        }
        let loc = free.expect("free slot");
        let d = DirentData::new(b"torn", trio_layout::CoreFileType::Regular, Mode(0o666), 0, 0);
        DirentRef::new(fs2.handle(), loc).prepare(&d).unwrap();
        // Unflushed ino publication (the torn step).
        fs2.handle().write_untimed(loc.page, loc.byte_off(), &77777u64.to_le_bytes()).unwrap();
        *loc2.lock() = Some(loc);
    });
    rt.run();
    dev.crash();
    // After the crash the torn slot must read ino 0 (invisible), while the
    // committed file is intact.
    let rt = SimRuntime::new(4);
    let fs2 = Arc::clone(&fs);
    let loc = loc_out.lock().unwrap();
    rt.spawn("t", move || {
        let entries = scan_dir_core(&fs2, "/d");
        assert!(entries.iter().any(|(n, _)| n == "committed"));
        assert!(!entries.iter().any(|(n, _)| n == "torn"), "torn create leaked: {entries:?}");
        assert_eq!(DirentRef::new(fs2.handle(), loc).ino().unwrap(), 0);
    });
    rt.run();
}

#[test]
fn data_writes_are_synchronous() {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(5);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        let fd = fs2.open("/f", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        fs2.pwrite(fd, 0, &vec![0xABu8; 10_000]).unwrap();
        fs2.close(fd).unwrap();
    });
    rt.run();
    let report = dev.crash();
    // Completed pwrite: contents and size survive (no page cache).
    let rt = SimRuntime::new(6);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        let data = trio_fsapi::read_file(&*fs2, "/f").unwrap();
        assert_eq!(data.len(), 10_000, "size must survive the crash\n{report}");
        assert!(data.iter().all(|&b| b == 0xAB), "contents must survive the crash\n{report}");
    });
    rt.run();
}

#[test]
fn rename_journal_recovers_the_half_done_move() {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(7);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        fs2.mkdir("/d", Mode(0o777)).unwrap();
        trio_fsapi::write_file(&*fs2, "/d/victim", b"contents").unwrap();
        // Simulate the crash window inside rename: journal armed, dst
        // published, src cleared — then crash before disarm. Reuse the
        // journal machinery directly.
        let (_, _, data) = fs2.debug_file_pages("/d").unwrap();
        let page = data[0].unwrap();
        let src = DirentLoc { page, slot: 0 };
        let mut img = [0u8; DIRENT_SIZE];
        fs2.handle().read_untimed(src.page, src.byte_off(), &mut img).unwrap();
        let src_ino = DirentRef::new(fs2.handle(), src).ino().unwrap();
        // Destination: next free slot.
        let mut dst = None;
        for s in 1..DIRENTS_PER_PAGE {
            let loc = DirentLoc { page, slot: s };
            if DirentRef::new(fs2.handle(), loc).ino().unwrap() == 0 {
                dst = Some(loc);
                break;
            }
        }
        let dst = dst.unwrap();
        let jpage = fs2.debug_take_pool_page();
        let journal = arckfs::journal::Journal::new();
        let guard = journal
            .begin_rename(fs2.handle(), 0, src, dst, &img, || Ok(jpage))
            .unwrap();
        // Half-done move, fully persisted, but journal still armed.
        let mut moved = DirentData::decode_bytes(&img);
        moved.name = b"moved".to_vec();
        let dref = DirentRef::new(fs2.handle(), dst);
        let w = dref.prepare(&moved).unwrap();
        dref.publish(src_ino, &w).unwrap();
        DirentRef::new(fs2.handle(), src).clear().unwrap();
        std::mem::forget(guard); // Crash before disarm.
        // Recovery undoes the rename from the journal.
        let undone =
            arckfs::journal::Journal::recover(fs2.handle(), &[jpage]).unwrap();
        assert_eq!(undone, 1);
        assert_eq!(DirentRef::new(fs2.handle(), src).ino().unwrap(), src_ino);
        assert_eq!(DirentRef::new(fs2.handle(), dst).ino().unwrap(), 0);
    });
    rt.run();
    let _ = dev;
}

#[test]
fn crash_loses_nothing_when_everything_is_flushed() {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(8);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        fs2.mkdir("/a", Mode(0o777)).unwrap();
        trio_fsapi::write_file(&*fs2, "/a/x", b"12345").unwrap();
        fs2.rename("/a/x", "/a/y").unwrap();
        fs2.truncate("/a/y", 3).unwrap();
    });
    rt.run();
    let report = dev.crash(); // Dirty lines may exist (aux-ish scratch), but...
    let rt = SimRuntime::new(9);
    let fs2 = Arc::clone(&fs);
    rt.spawn("t", move || {
        // ...every completed, synchronous operation must be visible.
        let entries = scan_dir_core(&fs2, "/a");
        assert_eq!(entries.len(), 1, "exactly the renamed file survives\n{report}");
        assert_eq!(entries[0].0, "y", "rename must be durable\n{report}");
        assert_eq!(trio_fsapi::read_file(&*fs2, "/a/y").unwrap(), b"123", "truncate durable\n{report}");
    });
    rt.run();
}

// ---------------------------------------------------------------------
// Recovery idempotence (fault-injection engine satellites): the rename
// undo journal must converge to the same state no matter how many times
// recovery runs — including when a crash interrupts recovery itself.
// ---------------------------------------------------------------------

/// Builds a world frozen in the §4.4 rename crash window: journal armed,
/// destination published, source cleared, disarm never reached. Returns
/// `(device, src_loc, dst_loc, journal_page, victim_ino)`.
#[cfg(feature = "faults")]
fn armed_rename_world(
    seed: u64,
) -> (Arc<NvmDevice>, DirentLoc, DirentLoc, trio_nvm::PageId, u64) {
    let (dev, _, fs) = tracked_world();
    let rt = SimRuntime::new(seed);
    let out = Arc::new(trio_sim::plock::Mutex::new(None));
    let (o2, fs2) = (Arc::clone(&out), Arc::clone(&fs));
    rt.spawn("setup", move || {
        fs2.mkdir("/d", Mode(0o777)).unwrap();
        trio_fsapi::write_file(&*fs2, "/d/victim", b"contents").unwrap();
        let (_, _, data) = fs2.debug_file_pages("/d").unwrap();
        let page = data[0].unwrap();
        let src = DirentLoc { page, slot: 0 };
        let mut img = [0u8; DIRENT_SIZE];
        fs2.handle().read_untimed(src.page, src.byte_off(), &mut img).unwrap();
        let src_ino = DirentRef::new(fs2.handle(), src).ino().unwrap();
        let mut dst = None;
        for s in 1..DIRENTS_PER_PAGE {
            let loc = DirentLoc { page, slot: s };
            if DirentRef::new(fs2.handle(), loc).ino().unwrap() == 0 {
                dst = Some(loc);
                break;
            }
        }
        let dst = dst.unwrap();
        let jpage = fs2.debug_take_pool_page();
        let journal = arckfs::journal::Journal::new();
        let guard = journal
            .begin_rename(fs2.handle(), 0, src, dst, &img, || Ok(jpage))
            .unwrap();
        let mut moved = DirentData::decode_bytes(&img);
        moved.name = b"moved".to_vec();
        let dref = DirentRef::new(fs2.handle(), dst);
        let w = dref.prepare(&moved).unwrap();
        dref.publish(src_ino, &w).unwrap();
        DirentRef::new(fs2.handle(), src).clear().unwrap();
        std::mem::forget(guard); // Crash before disarm.
        *o2.lock() = Some((src, dst, jpage, src_ino));
    });
    rt.run();
    let (src, dst, jpage, src_ino) = out.lock().take().unwrap();
    (dev, src, dst, jpage, src_ino)
}

/// Running journal recovery twice is a no-op the second time: same
/// dirents, same journal page bytes, zero records undone.
#[cfg(feature = "faults")]
#[test]
fn journal_recovery_is_idempotent() {
    use arckfs::journal::Journal;
    let (dev, src, dst, jpage, src_ino) = armed_rename_world(21);
    let kh = trio_nvm::NvmHandle::new(Arc::clone(&dev), trio_nvm::KERNEL_ACTOR);
    assert_eq!(Journal::recover(&kh, &[jpage]).unwrap(), 1);
    assert_eq!(DirentRef::new(&kh, src).ino().unwrap(), src_ino);
    assert_eq!(DirentRef::new(&kh, dst).ino().unwrap(), 0);
    let dirents_after_first = dev.snapshot_page(src.page).unwrap();
    let journal_after_first = dev.snapshot_page(jpage).unwrap();
    // Second run: journal is disarmed; nothing changes.
    assert_eq!(Journal::recover(&kh, &[jpage]).unwrap(), 0);
    assert_eq!(dev.snapshot_page(src.page).unwrap(), dirents_after_first);
    assert_eq!(dev.snapshot_page(jpage).unwrap(), journal_after_first);
}

/// Crashing at *every* persistence point inside journal recovery and then
/// recovering again always converges to the undone state — recovery is
/// re-runnable from any prefix of itself.
#[cfg(feature = "faults")]
#[test]
fn crash_mid_journal_recovery_then_recover_again_converges() {
    use arckfs::journal::Journal;
    use trio_nvm::fault::FaultPlan;
    // Measure recovery's own persistence-point span on a throwaway world.
    let span = {
        let (dev, _, _, jpage, _) = armed_rename_world(22);
        let kh = trio_nvm::NvmHandle::new(Arc::clone(&dev), trio_nvm::KERNEL_ACTOR);
        let p0 = dev.persistence_points();
        Journal::recover(&kh, &[jpage]).unwrap();
        dev.persistence_points() - p0
    };
    assert!(span >= 3, "recovery should span several persistence points, got {span}");
    for k in 0..span {
        let (dev, src, dst, jpage, src_ino) = armed_rename_world(22);
        let kh = trio_nvm::NvmHandle::new(Arc::clone(&dev), trio_nvm::KERNEL_ACTOR);
        dev.arm_crash_plan(FaultPlan::crash_at_point(dev.persistence_points() + k));
        Journal::recover(&kh, &[jpage]).unwrap();
        let report = dev.crash();
        let undone = Journal::recover(&kh, &[jpage]).unwrap();
        let s = DirentRef::new(&kh, src).ino().unwrap();
        let d = DirentRef::new(&kh, dst).ino().unwrap();
        assert_eq!(
            (s, d),
            (src_ino, 0),
            "recovery did not converge (crash at +{k}, second pass undid {undone})\n{report}"
        );
    }
}
