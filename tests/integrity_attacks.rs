//! End-to-end metadata-integrity tests (paper §6.5): the eleven
//! handcrafted malicious-LibFS attacks, plus scripted random corruption
//! sweeps emulating buggy LibFSes. Every scenario must be *detected* on
//! the next cross-LibFS map and leave the victim with a consistent
//! (rolled-back) view.

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack, ALL_ATTACKS};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::plock::Mutex;
use trio_sim::SimRuntime;

struct AttackWorld {
    kernel: Arc<KernelController>,
    evil: Arc<ArckFs>,
    victim: Arc<ArckFs>,
}

fn world() -> AttackWorld {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let evil = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let victim = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    AttackWorld { kernel, evil, victim }
}

/// Builds the standard victim tree, hands it over once (clean verify),
/// then re-acquires write grants for the attacker (checkpointing the
/// clean state).
fn stage(w: &AttackWorld) {
    let evil = &w.evil;
    evil.mkdir("/dir", Mode(0o777)).unwrap();
    evil.mkdir("/dir/victim-sub", Mode(0o777)).unwrap();
    evil.create("/dir/victim-sub/inner", Mode(0o666)).unwrap();
    write_file(&**evil, "/dir/victim", &vec![7u8; 64 * 1024]).unwrap();
    evil.release_path("/dir").unwrap();
    let _ = w.victim.readdir("/dir").unwrap();
    let _ = read_file(&*w.victim, "/dir/victim").unwrap();
    let fd = evil.open("/dir/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
    evil.pwrite(fd, 0, &[7u8]).unwrap();
    evil.close(fd).unwrap();
    evil.create("/dir/warmup", Mode(0o666)).unwrap();
    evil.unlink("/dir/warmup").unwrap();
}

fn victim_remaps(w: &AttackWorld) -> Vec<KernelEvent> {
    let _ = w.evil.release_path("/dir/victim");
    let _ = w.evil.release_path("/dir");
    let _ = w.kernel.take_events();
    let _ = w.victim.readdir("/dir");
    let _ = read_file(&*w.victim, "/dir/victim");
    let _ = w.victim.stat("/dir/victim-sub");
    w.kernel.take_events()
}

#[test]
fn all_eleven_attacks_detected_and_recovered() {
    for attack in ALL_ATTACKS {
        let w = world();
        let rt = SimRuntime::new(99);
        let detected = Arc::new(Mutex::new((false, false)));
        let d2 = Arc::clone(&detected);
        let w = Arc::new(w);
        let w2 = Arc::clone(&w);
        rt.spawn("attack", move || {
            stage(&w2);
            let target = if attack == Attack::RemoveNonEmptyDir { "victim-sub" } else { "victim" };
            run_attack(&w2.evil, attack, "/dir", target).unwrap();
            let events = victim_remaps(&w2);
            let det = events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. }));
            let rec = events.iter().any(|e| matches!(e, KernelEvent::RolledBack { .. }));
            *d2.lock() = (det, rec);
        });
        rt.run();
        let (det, rec) = *detected.lock();
        assert!(det, "{attack:?} must be detected");
        assert!(rec, "{attack:?} must be rolled back");
    }
}

#[test]
fn victim_sees_consistent_state_after_every_attack() {
    for attack in ALL_ATTACKS {
        let w = Arc::new(world());
        let rt = SimRuntime::new(7);
        let w2 = Arc::clone(&w);
        rt.spawn("attack", move || {
            stage(&w2);
            let target = if attack == Attack::RemoveNonEmptyDir { "victim-sub" } else { "victim" };
            run_attack(&w2.evil, attack, "/dir", target).unwrap();
            let _ = victim_remaps(&w2);
            // Whatever happened, the victim's view must now be walkable and
            // internally consistent: readdir agrees with per-entry stat.
            let entries = w2.victim.readdir("/dir").unwrap();
            for e in &entries {
                let p = format!("/dir/{}", e.name);
                let st = w2.victim.stat(&p).unwrap_or_else(|err| {
                    panic!("{attack:?}: stat({p}) failed after recovery: {err}")
                });
                assert_eq!(st.ino, e.ino, "{attack:?}: ino consistent for {p}");
            }
            // No duplicate names survive.
            let mut names: Vec<&String> = entries.iter().map(|e| &e.name).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), entries.len(), "{attack:?}: duplicate names persisted");
            // A readable victim file (if it survived) reads without error.
            if entries.iter().any(|e| e.name == "victim") {
                let _ = read_file(&*w2.victim, "/dir/victim").unwrap();
            }
        });
        rt.run();
    }
}

/// Every handcrafted attack must also drive the quarantine lifecycle end
/// to end: the offender is quarantined (mappings revoked, taint recorded),
/// background repair runs, and the offender is re-admitted — after which
/// the victim's view is consistent and nothing is left quarantined.
#[test]
fn all_eleven_attacks_quarantine_repair_and_readmit() {
    for attack in ALL_ATTACKS {
        let w = Arc::new(world());
        let rt = SimRuntime::new(41);
        let w2 = Arc::clone(&w);
        rt.spawn("attack", move || {
            let evil_actor = w2.evil.actor();
            stage(&w2);
            let target = if attack == Attack::RemoveNonEmptyDir { "victim-sub" } else { "victim" };
            run_attack(&w2.evil, attack, "/dir", target).unwrap();
            let events = victim_remaps(&w2);
            let quarantined = events
                .iter()
                .any(|e| matches!(e, KernelEvent::Quarantined { actor, .. } if *actor == evil_actor));
            let readmitted = events
                .iter()
                .any(|e| matches!(e, KernelEvent::Readmitted { actor } if *actor == evil_actor));
            assert!(quarantined, "{attack:?}: offender must be quarantined");
            assert!(readmitted, "{attack:?}: offender must be repaired and re-admitted");
            assert!(
                w2.kernel.quarantined_actors().is_empty(),
                "{attack:?}: no actor may remain quarantined after repair"
            );
            // Re-admission is real: the offender can operate again...
            w2.evil.create("/dir/after-readmit", Mode(0o666)).unwrap();
            w2.evil.unlink("/dir/after-readmit").unwrap();
            let _ = w2.evil.release_path("/dir");
            // ...and the victim's view stayed consistent throughout.
            let entries = w2.victim.readdir("/dir").unwrap();
            for e in &entries {
                let st = w2.victim.stat(&format!("/dir/{}", e.name)).unwrap();
                assert_eq!(st.ino, e.ino, "{attack:?}: ino consistent after re-admission");
            }
        });
        rt.run();
    }
}

/// Scripted corruption sweeps (the paper's automated buggy-LibFS scripts;
/// §6.5 reports 134 scenarios in total — here 8 offsets × 16 seeds = 128
/// random single-word corruptions of the directory page plus the 11
/// handcrafted attacks elsewhere in this file).
#[test]
fn random_corruption_sweep_never_reaches_the_victim_unvetted() {
    let mut detected_count = 0;
    let mut harmless_count = 0;
    for seed in 0..16u64 {
        for word in 0..8usize {
            let w = Arc::new(world());
            let rt = SimRuntime::new(seed);
            let w2 = Arc::clone(&w);
            let out = Arc::new(Mutex::new(false));
            let out2 = Arc::clone(&out);
            rt.spawn("fuzz", move || {
                stage(&w2);
                // Corrupt one 8-byte word of the victim's dirent slot with
                // a seed-derived value (a "buggy LibFS" scribble).
                let (dir_loc, _, dir_data) = w2.evil.debug_file_pages("/dir").unwrap();
                let _ = dir_loc;
                let (vic_loc, _, _) = w2.evil.debug_file_pages("/dir/victim").unwrap();
                let vic_loc = vic_loc.unwrap();
                let garbage = (seed + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (word as u64) << 48;
                let off = vic_loc.byte_off() + word * 8;
                w2.evil
                    .handle()
                    .write_untimed(vic_loc.page, off, &garbage.to_le_bytes())
                    .unwrap();
                w2.evil.handle().flush(vic_loc.page, off, 8);
                w2.evil.handle().fence();
                let _ = dir_data;
                let events = victim_remaps(&w2);
                *out2.lock() =
                    events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. }));
                // Consistency must hold either way.
                let entries = w2.victim.readdir("/dir").unwrap();
                for e in &entries {
                    let _ = w2.victim.stat(&format!("/dir/{}", e.name));
                }
            });
            rt.run();
            if *out.lock() {
                detected_count += 1;
            } else {
                harmless_count += 1;
            }
        }
    }
    // Most random scribbles over (ino, first_index, size, attr, owner,
    // name) corrupt something detectable; a few land on reserved bytes or
    // happen to encode valid values — those must simply be harmless.
    assert!(
        detected_count >= 64,
        "expected most corruptions detected: {detected_count} detected, {harmless_count} harmless"
    );
}

#[test]
fn unmapped_pages_are_unreachable_to_attackers() {
    let w = Arc::new(world());
    let rt = SimRuntime::new(5);
    let w2 = Arc::clone(&w);
    rt.spawn("probe", move || {
        // Victim creates a private file the attacker never mapped.
        write_file(&*w2.victim, "/private", b"secret").unwrap();
        let (loc, _, data) = w2.victim.debug_file_pages("/private").unwrap();
        let page = data[0].unwrap();
        // The attacker's raw handle faults on both read and write.
        let mut buf = [0u8; 8];
        assert!(w2.evil.handle().read_untimed(page, 0, &mut buf).is_err());
        assert!(w2.evil.handle().write_untimed(page, 0, b"gotcha!!").is_err());
        let loc = loc.unwrap();
        assert!(w2.evil.handle().write_untimed(loc.page, loc.byte_off(), b"overwrt!").is_err());
    });
    rt.run();
}

/// Silent bit rot under a checksummed delegated extent (DESIGN.md §17).
///
/// Delegation workers record a streaming per-page digest in the page
/// sidecar atomically with the store; `corrupt_for_test` then flips one
/// data bit *without* touching the sidecar — the exact failure mode no
/// metadata invariant can see. The next verifier walk must catch it as
/// `data_checksum_mismatch` (Reject class: there is no field-level ground
/// truth to scrub rotten bytes back from), roll the file back to its
/// checkpoint, and hand the victim the checkpointed bytes, not the rot.
#[cfg(feature = "faults")]
#[test]
fn silent_bit_rot_under_checksummed_extent_rejects_on_next_walk() {
    use trio_nvm::PageId;
    use trio_verifier::VIOLATION_KINDS;

    let dev = Arc::new(trio_nvm::NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    // Delegation stays ON: only delegated writes go through
    // `write_extent_hashed`, so this world is the one where sidecars exist.
    let evil = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::default());
    let victim = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::default());

    let rt = SimRuntime::new(0xB17_0707);
    let k = Arc::clone(&kernel);
    rt.spawn("bit-rot", move || {
        k.delegation().start();
        let checkpoint_img = vec![0x7Au8; 256 * 1024];

        // Round 1: delegated write, handover, clean victim map. This both
        // establishes the rollback checkpoint and proves intact sidecars
        // verify clean (the checksum walk must not false-positive).
        write_file(&*evil, "/victim", &checkpoint_img).unwrap();
        evil.release_path("/victim").unwrap();
        let _ = k.take_events();
        assert_eq!(read_file(&*victim, "/victim").unwrap(), checkpoint_img);
        assert!(
            !k.take_events()
                .iter()
                .any(|e| matches!(e, KernelEvent::CorruptionDetected { .. })),
            "intact checksummed extent must verify clean"
        );

        // Round 2: evil dirties the file again (fresh sidecars), releases,
        // and then one bit rots under the recorded digests.
        let fd = evil.open("/victim", OpenFlags::WRONLY, Mode(0o666)).unwrap();
        assert_eq!(evil.pwrite(fd, 0, &vec![0x5Bu8; 256 * 1024]).unwrap(), 256 * 1024);
        evil.close(fd).unwrap();
        evil.release_path("/victim").unwrap();
        let page = (0..dev.topology().total_pages())
            .map(PageId)
            .find(|p| matches!(dev.page_csum(*p), Ok(Some(_))))
            .expect("delegated write must leave sidecar digests");
        dev.corrupt_for_test(page, 1234).unwrap();

        // The victim's next map triggers the walk: detection, reject-class
        // accounting, rollback.
        let _ = k.take_events();
        let _ = read_file(&*victim, "/victim");
        let events = k.take_events();
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. })),
            "bit rot under a sidecar digest must be detected: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::RolledBack { .. })),
            "checksum mismatch is reject-class: the file must roll back"
        );
        let snap = k.resilience_stats().snapshot();
        let idx =
            VIOLATION_KINDS.iter().position(|x| *x == "data_checksum_mismatch").unwrap();
        assert!(snap.by_kind[idx] >= 1, "violation must be counted under its own kind");
        assert!(snap.class_reject >= 1);
        // Checkpoints cover core state (index/dirent), not data images, so
        // rollback cannot un-rot the bytes — containment is the contract:
        // the dirty actor is quarantined and the rotten extent never
        // reaches the victim as verified state.
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::Quarantined { .. })),
            "reject-class corruption must quarantine the dirty actor: {events:?}"
        );
        k.delegation().shutdown();
    });
    rt.run();
}
