//! Chaos sweep for delegation failure domains (DESIGN.md §16).
//!
//! Each iteration builds a fresh 2-node world with a small delegation
//! pool, arms a deterministic worker-kill plan (request index × kill
//! point derived from the iteration number), optionally layers stall
//! injection on top, and drives three concurrent LibFS clients through
//! overlapping delegated writes and reads. The gates:
//!
//! - **No hangs**: the simulation's deadlock detector would panic if any
//!   client blocked forever; every op completes within its retry budget
//!   (or falls back to direct access) so `rt.run()` returns.
//! - **No lost or doubly-applied writes**: each client replays its write
//!   sequence against an in-DRAM model and the final file contents must
//!   match byte for byte — a stale re-dispatched request applied after a
//!   newer overlapping write would diverge here.
//! - **Recovery**: every worker death is matched by a restart, and
//!   recovery latencies are recorded for the report.
//!
//! Like `crash_sweep.rs`, every iteration is replayable from
//! `(CHAOS_SEED, iteration)` alone; `TRIO_CHAOS_ITER` sets the sweep
//! width (default 500) and the sweep dumps an aggregate report to
//! `target/chaos-report.json` for the CI gate.
#![cfg(feature = "faults")]

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::fault::{WorkerKillPlan, WorkerKillPoint};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::{work, RaceDetector, SimRuntime, MILLIS};

const CHAOS_SEED: u64 = 0xC4A0_05ED;
const CLIENTS: u64 = 3;
const OPS_PER_CLIENT: u64 = 6;
/// Large enough to clear both delegation thresholds.
const CHUNK: usize = 64 * 1024;
/// Each client's file is 4 chunks; ops overwrite overlapping regions so
/// a stale re-applied request would clobber newer data and fail the
/// model check.
const REGIONS: u64 = 4;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Everything one iteration observed, rendered comparably for the
/// replayability gate.
#[derive(Debug, PartialEq, Eq, Default)]
struct IterReport {
    deaths: u64,
    restarts: u64,
    redispatches: u64,
    dedup_hits: u64,
    fallbacks: u64,
    degraded_enters: u64,
    degraded_exits: u64,
    recovery_ns: Vec<u64>,
    /// FNV-1a digest of every client's final file contents.
    state_digest: u64,
}

fn world() -> (Arc<KernelController>, Vec<Arc<ArckFs>>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(2, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        dev,
        KernelConfig { delegation_threads_per_node: 2, ..KernelConfig::default() },
    );
    let fses = (0..CLIENTS)
        .map(|c| {
            ArckFs::mount(Arc::clone(&kernel), 1000 + c as u32, 1000, ArckFsConfig::default())
        })
        .collect();
    (kernel, fses)
}

/// One replayable chaos iteration: derived kill coordinates, concurrent
/// clients, per-client model check inside the sim, counters collected
/// after it drains.
fn chaos_one(i: u64) -> IterReport {
    let seed = splitmix(CHAOS_SEED ^ i);
    // Kill coordinates: which pop of the global request stream dies, and
    // at which point in the worker's lifecycle. ~36 requests flow per
    // iteration (writes + readbacks), so an index in 0..24 nearly always
    // fires while traffic is still in flight.
    let kill_req = seed % 24;
    let kill_point = WorkerKillPoint::ALL[(i % 3) as usize];
    let stall = i % 2 == 1;

    let (kernel, fses) = world();
    let rt = SimRuntime::new(seed);
    let k = Arc::clone(&kernel);
    // Clients fold their final-state digests in with XOR — commutative,
    // so the combined value is independent of completion order.
    let digest = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let digest_in = Arc::clone(&digest);
    rt.spawn("chaos-boot", move || {
        k.delegation().start();
        k.delegation().arm_worker_kill(WorkerKillPlan::kill_at(kill_req, kill_point));
        if stall {
            // Stalls past the 5ms base deadline force retries alongside
            // the kill — backpressure and death interleave.
            k.delegation().inject_faults(5, 8 * MILLIS, 0);
        }
        let handles: Vec<_> = fses
            .into_iter()
            .enumerate()
            .map(|(c, fs)| {
                let digest = Arc::clone(&digest_in);
                trio_sim::spawn(&format!("chaos-client-{c}"), move || {
                    let path = format!("/chaos-{c}");
                    let fd = fs
                        .open(&path, OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666))
                        .unwrap();
                    // Base pass sizes the file so the final readback
                    // always covers every region.
                    let mut model = vec![c as u8; REGIONS as usize * CHUNK];
                    assert_eq!(fs.pwrite(fd, 0, &model).unwrap(), model.len());
                    // Half the ops go through a live grant window (the
                    // zero-copy registered-buffer lane), updated in place
                    // between ops — so every kill point and stall also
                    // fires while a grant is pinned, and a stale grant
                    // epoch re-applied late would diverge from the model.
                    let reg = fs.register_write_buffer(&model[..CHUNK]).unwrap();
                    for j in 0..OPS_PER_CLIENT {
                        let h = splitmix(seed ^ (c as u64) << 32 ^ j);
                        let off = (h % REGIONS) as usize * CHUNK;
                        let fill = (h >> 8) as u8;
                        let block: Vec<u8> =
                            (0..CHUNK).map(|b| fill.wrapping_add(b as u8)).collect();
                        if j % 2 == 0 {
                            fs.update_write_buffer(reg, &block).unwrap();
                            assert_eq!(
                                fs.pwrite_registered(fd, off as u64, reg, 0, CHUNK).unwrap(),
                                CHUNK
                            );
                        } else {
                            assert_eq!(fs.pwrite(fd, off as u64, &block).unwrap(), CHUNK);
                        }
                        model[off..off + CHUNK].copy_from_slice(&block);
                    }
                    fs.unregister_write_buffer(reg).unwrap();
                    // Full readback through the (still chaotic) delegated
                    // read path: lost or stale-reapplied writes diverge.
                    let mut got = vec![0u8; model.len()];
                    assert_eq!(fs.pread(fd, 0, &mut got).unwrap(), got.len());
                    if got != model {
                        let first = got.iter().zip(&model).position(|(a, b)| a != b).unwrap();
                        let last = got
                            .iter()
                            .zip(&model)
                            .rposition(|(a, b)| a != b)
                            .unwrap();
                        panic!(
                            "client {c}: delegated state diverged from model \
                             (iteration {i}, seed {seed:#x}); first diff @ {first} \
                             (got {:#x} want {:#x}), last diff @ {last} \
                             (got {:#x} want {:#x}), span {} bytes",
                            got[first],
                            model[first],
                            got[last],
                            model[last],
                            last - first + 1
                        );
                    }
                    fs.close(fd).unwrap();
                    let mut fnv = 0xcbf2_9ce4_8422_2325u64 ^ c as u64;
                    for &b in &got {
                        fnv = (fnv ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    digest.fetch_xor(splitmix(fnv), std::sync::atomic::Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        k.delegation().shutdown();
    });
    rt.run();

    let s = kernel.delegation().stats().snapshot();
    assert_eq!(
        s.worker_deaths, s.worker_restarts,
        "iteration {i}: a dead worker was never restarted"
    );
    let recovery_ns: Vec<u64> = kernel.delegation().take_recovery_latencies();
    assert_eq!(
        recovery_ns.len() as u64,
        s.worker_deaths,
        "iteration {i}: every death must record a recovery latency"
    );
    IterReport {
        deaths: s.worker_deaths,
        restarts: s.worker_restarts,
        redispatches: s.deleg_redispatches,
        dedup_hits: s.deleg_dedup_hits,
        fallbacks: s.deleg_fallbacks,
        degraded_enters: s.degraded_enters,
        degraded_exits: s.degraded_exits,
        recovery_ns,
        state_digest: digest.load(std::sync::atomic::Ordering::Relaxed),
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The sweep: `TRIO_CHAOS_ITER` iterations (default 500), each
/// replayable from `(CHAOS_SEED, i)`. Dumps `target/chaos-report.json`.
#[test]
fn chaos_sweep_worker_kills_under_concurrent_traffic() {
    let iters: u64 = std::env::var("TRIO_CHAOS_ITER")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(500);
    let start: u64 =
        std::env::var("TRIO_CHAOS_START").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut agg = IterReport::default();
    let mut all_recovery: Vec<u64> = Vec::new();
    for i in start..start + iters {
        let r = chaos_one(i);
        agg.deaths += r.deaths;
        agg.restarts += r.restarts;
        agg.redispatches += r.redispatches;
        agg.dedup_hits += r.dedup_hits;
        agg.fallbacks += r.fallbacks;
        agg.degraded_enters += r.degraded_enters;
        agg.degraded_exits += r.degraded_exits;
        all_recovery.extend(&r.recovery_ns);
    }
    // The sweep must actually exercise the failure domain: kills fire in
    // nearly every iteration, and the idempotence table has to be doing
    // real work (a re-dispatched + retried request dedups).
    assert!(
        agg.deaths >= iters / 2,
        "sweep exercised too few kills: {} deaths in {iters} iterations",
        agg.deaths
    );
    assert_eq!(agg.deaths, agg.restarts, "unrecovered worker deaths");
    all_recovery.sort_unstable();
    let (p50, p99) = (percentile(&all_recovery, 0.50), percentile(&all_recovery, 0.99));
    let report = format!(
        "{{\n  \"seed\": {CHAOS_SEED},\n  \"iterations\": {iters},\n  \
         \"worker_deaths\": {},\n  \"worker_restarts\": {},\n  \
         \"redispatches\": {},\n  \"dedup_hits\": {},\n  \
         \"fallbacks\": {},\n  \"degraded_enters\": {},\n  \
         \"degraded_exits\": {},\n  \"recovery_p50_ns\": {p50},\n  \
         \"recovery_p99_ns\": {p99}\n}}\n",
        agg.deaths,
        agg.restarts,
        agg.redispatches,
        agg.dedup_hits,
        agg.fallbacks,
        agg.degraded_enters,
        agg.degraded_exits,
    );
    let _ = std::fs::create_dir_all("target");
    std::fs::write("target/chaos-report.json", &report).expect("write chaos report");
    println!("chaos report: {report}");
}

/// Replayability: the same `(seed, iteration)` pair yields an identical
/// report — counters, recovery latencies, and final state digest.
#[test]
fn chaos_iteration_is_deterministic_and_replayable() {
    for i in [0u64, 1, 5] {
        let a = chaos_one(i);
        let b = chaos_one(i);
        assert_eq!(a, b, "replay of chaos iteration {i} diverged");
    }
}

/// Every kill point is survivable on its own: arm each deterministically
/// against single-client traffic and check the exactly-once contract —
/// `mid-payload` and `before-reply` kills leave a copy whose re-dispatch
/// or retry must dedup rather than re-apply.
#[test]
fn each_kill_point_recovers_exactly_once() {
    for (idx, point) in WorkerKillPoint::ALL.into_iter().enumerate() {
        let (kernel, fses) = world();
        let rt = SimRuntime::new(0xD1E + idx as u64);
        let k = Arc::clone(&kernel);
        let fs = Arc::clone(&fses[0]);
        rt.spawn("kill-point", move || {
            k.delegation().start();
            // Kill on the second pop: the first write proves the healthy
            // path, the second rides through death + recovery.
            k.delegation().arm_worker_kill(WorkerKillPlan::kill_at(1, point));
            let fd = fs.open("/kp", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
            for j in 0..4u64 {
                let block = vec![j as u8 + 1; CHUNK];
                assert_eq!(fs.pwrite(fd, j * CHUNK as u64, &block).unwrap(), CHUNK);
            }
            let mut got = vec![0u8; 4 * CHUNK];
            assert_eq!(fs.pread(fd, 0, &mut got).unwrap(), got.len());
            for j in 0..4usize {
                assert!(
                    got[j * CHUNK..(j + 1) * CHUNK].iter().all(|&b| b == j as u8 + 1),
                    "chunk {j} corrupted across a {} kill",
                    point.as_str()
                );
            }
            fs.close(fd).unwrap();
            k.delegation().shutdown();
        });
        rt.run();
        let s = kernel.delegation().stats().snapshot();
        assert_eq!(s.worker_deaths, 1, "{} kill never fired", point.as_str());
        assert_eq!(s.worker_restarts, 1, "{} kill never recovered", point.as_str());
        let events = kernel.take_events();
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::WorkerDied { .. })),
            "{}: no WorkerDied event",
            point.as_str()
        );
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::WorkerRestarted { .. })),
            "{}: no WorkerRestarted event",
            point.as_str()
        );
    }
}

/// A worker killed in the middle of reading payload bytes out of a live
/// grant window must not strand the grant: the pinned pass is unwound,
/// the op completes through re-dispatch/retry on a surviving worker, and
/// a subsequent in-place buffer update (epoch bump) plus write must land
/// the *new* bytes — a zombie pass applying the old epoch after that
/// point would be a stale-grant read.
#[test]
fn worker_death_mid_grant_read_leaves_no_stale_grant_state() {
    let (kernel, fses) = world();
    let rt = SimRuntime::new(0x6AA7);
    let k = Arc::clone(&kernel);
    let fs = Arc::clone(&fses[0]);
    rt.spawn("grant-kill", move || {
        k.delegation().start();
        let fd = fs.open("/grant-kill", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let base = vec![0x11u8; 2 * CHUNK];
        assert_eq!(fs.pwrite(fd, 0, &base).unwrap(), base.len());
        let stats = Arc::clone(k.path_stats());
        let granted_base = stats.snapshot();

        let gen1 = vec![0xA1u8; CHUNK];
        let buf = fs.register_write_buffer(&gen1).unwrap();
        // The very next pop is the first batch of the granted write: the
        // worker dies while its pass is pinned to the grant.
        k.delegation().arm_worker_kill(WorkerKillPlan::kill_at(
            k.delegation().requests_served() + 1,
            WorkerKillPoint::MidPayload,
        ));
        assert_eq!(fs.pwrite_registered(fd, 0, buf, 0, CHUNK).unwrap(), CHUNK);

        // The grant survived the death; mutate it in place (epoch bump —
        // the update spins until every pinned pass drains) and write the
        // second region through the new epoch.
        let gen2 = vec![0xB2u8; CHUNK];
        fs.update_write_buffer(buf, &gen2).unwrap();
        assert_eq!(fs.pwrite_registered(fd, CHUNK as u64, buf, 0, CHUNK).unwrap(), CHUNK);
        fs.unregister_write_buffer(buf).unwrap();

        let mut got = vec![0u8; 2 * CHUNK];
        assert_eq!(fs.pread(fd, 0, &mut got).unwrap(), got.len());
        assert!(
            got[..CHUNK].iter().all(|&b| b == 0xA1),
            "region 0 lost or stale after a mid-grant-read worker death"
        );
        assert!(
            got[CHUNK..].iter().all(|&b| b == 0xB2),
            "region 1 carries a stale grant epoch"
        );
        fs.close(fd).unwrap();
        let granted = stats.snapshot().delta(&granted_base);
        assert_eq!(
            granted.payload_copies, 0,
            "granted ops must stay zero-copy across death and retry: {granted:?}"
        );
        k.delegation().shutdown();
    });
    rt.run();
    let s = kernel.delegation().stats().snapshot();
    assert_eq!(s.worker_deaths, 1, "the kill must fire during the granted pass");
    assert_eq!(s.worker_restarts, 1, "and be recovered");
}

/// Client retry racing watchdog re-dispatch while the grant stays live:
/// stalls past the op deadline put two copies of the same granted
/// request in flight. The idempotence window must apply it exactly once,
/// and once the op returns, the revocation barrier guarantees no
/// straggler still holds the old window — so an immediate epoch-bumped
/// overwrite of the same region must win and stay won.
#[test]
fn client_retry_racing_redispatch_applies_live_grant_exactly_once() {
    let (kernel, fses) = world();
    let rt = SimRuntime::new(0x6AA8);
    let k = Arc::clone(&kernel);
    let fs = Arc::clone(&fses[0]);
    rt.spawn("grant-race", move || {
        k.delegation().start();
        let fd = fs.open("/grant-race", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let base = vec![0x22u8; CHUNK];
        assert_eq!(fs.pwrite(fd, 0, &base).unwrap(), base.len());

        let gen1 = vec![0xC3u8; CHUNK];
        let buf = fs.register_write_buffer(&gen1).unwrap();
        // Stall the next requests past the 5 ms base deadline: the client
        // retries while the watchdog re-dispatches the original — both
        // copies resolve the same live grant.
        k.delegation().inject_faults(5, 8 * MILLIS, 0);
        assert_eq!(fs.pwrite_registered(fd, 0, buf, 0, CHUNK).unwrap(), CHUNK);
        k.delegation().inject_faults(0, 0, 0);

        // Same region, new epoch: if the racing duplicate were applied
        // after this (stale-grant read), the readback would see 0xC3.
        let gen2 = vec![0xD4u8; CHUNK];
        fs.update_write_buffer(buf, &gen2).unwrap();
        assert_eq!(fs.pwrite_registered(fd, 0, buf, 0, CHUNK).unwrap(), CHUNK);
        fs.unregister_write_buffer(buf).unwrap();

        let mut got = vec![0u8; CHUNK];
        assert_eq!(fs.pread(fd, 0, &mut got).unwrap(), got.len());
        assert!(
            got.iter().all(|&b| b == 0xD4),
            "stale grant epoch re-applied after the racing retry resolved"
        );
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
    let s = kernel.delegation().stats().snapshot();
    assert!(
        s.deleg_retries >= 1,
        "the stall must force at least one client retry: {s:?}"
    );
    assert_eq!(s.worker_deaths, 0, "no kill armed: stalls only");
}

/// The quarantine lifecycle is its own failure domain: one LibFS
/// corrupts shared state, is quarantined, repaired, and re-admitted —
/// all *while* two other LibFSes keep issuing delegated writes to
/// adjacent files, with the cross-LibFS race detector armed and a worker
/// kill thrown in. Gates: the run is race-free (the detector would
/// abort), the offender completes the full lifecycle, and the bystander
/// files come through byte-perfect.
///
/// All namespace mutation (creates, file sizing — the dirent stores) is
/// serialized in the boot thread before the concurrent phase starts; the
/// bystanders then issue only in-place delegated overwrites, the
/// sanctioned lock-free sharing pattern, so every surviving cross-actor
/// access must be ordered by the kernel's clocked primitives.
#[test]
fn quarantine_repairs_and_readmits_under_live_delegated_traffic() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    assert!(dev.set_race_detector(Arc::new(RaceDetector::new())));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let evil = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let auditor = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let writers: Vec<Arc<ArckFs>> = (0..2)
        .map(|c| {
            ArckFs::mount(Arc::clone(&kernel), 2000 + c, 2000, ArckFsConfig::static_thresholds())
        })
        .collect();

    let rt = SimRuntime::new(0x0_B5E55ED);
    rt.enable_race_detection();
    let k = Arc::clone(&kernel);
    rt.spawn("quarantine-live", move || {
        k.delegation().start();

        // --- Setup, single-threaded: every dirent-touching operation
        // (creates, extensions) happens before any concurrency exists.
        let evil_actor = evil.actor();
        evil.mkdir("/dir", Mode(0o777)).unwrap();
        write_file(&*evil, "/dir/victim", &vec![7u8; CHUNK]).unwrap();
        evil.release_path("/dir").unwrap();
        let _ = auditor.readdir("/dir").unwrap();
        let _ = read_file(&*auditor, "/dir/victim").unwrap();
        // Re-acquire write grants (checkpointing the clean state)...
        let fd = evil.open("/dir/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &[7u8]).unwrap();
        evil.close(fd).unwrap();
        // ...and size each bystander file to its final extent.
        let staged: Vec<_> = writers
            .into_iter()
            .enumerate()
            .map(|(c, fs)| {
                let path = format!("/bystander-{c}");
                let fd =
                    fs.open(&path, OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
                let base = vec![c as u8; 3 * CHUNK];
                assert_eq!(fs.pwrite(fd, 0, &base).unwrap(), base.len());
                (c, fs, fd)
            })
            .collect();

        // --- Concurrent phase. One worker dies mid-traffic: watchdog
        // recovery and quarantine repair overlap, and both must stay
        // race-free.
        // Arm relative to the live pop counter: the staging writes above
        // fan out into a setup-dependent number of batches, so an absolute
        // index could land before the concurrent phase even starts.
        k.delegation().arm_worker_kill(WorkerKillPlan::kill_at(
            k.delegation().requests_served() + 3,
            WorkerKillPoint::MidPayload,
        ));
        let handles: Vec<_> = staged
            .into_iter()
            .map(|(c, fs, fd)| {
                trio_sim::spawn(&format!("bystander-{c}"), move || {
                    for j in 0..10u64 {
                        let block = vec![(c as u8) << 4 | j as u8; CHUNK];
                        assert_eq!(fs.pwrite(fd, (j % 3) * CHUNK as u64, &block).unwrap(), CHUNK);
                        work(MILLIS);
                    }
                    let mut got = vec![0u8; CHUNK];
                    for r in 0..3u64 {
                        assert_eq!(fs.pread(fd, r * CHUNK as u64, &mut got).unwrap(), CHUNK);
                        let want = got[0];
                        assert!(
                            got.iter().all(|&b| b == want),
                            "bystander {c}: region {r} torn by quarantine traffic"
                        );
                    }
                    fs.close(fd).unwrap();
                })
            })
            .collect();

        // The offender corrupts and releases; the auditor's remap detects
        // it, quarantines, repairs, and re-admits — all mid-traffic.
        work(2 * MILLIS);
        run_attack(&evil, Attack::IndexCycle, "/dir", "victim").unwrap();
        let _ = evil.release_path("/dir/victim");
        let _ = evil.release_path("/dir");
        let _ = auditor.readdir("/dir");
        let _ = read_file(&*auditor, "/dir/victim");

        for h in handles {
            h.join();
        }
        k.delegation().shutdown();

        let events = k.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, KernelEvent::Quarantined { actor, .. } if *actor == evil_actor)),
            "offender must be quarantined"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, KernelEvent::Readmitted { actor } if *actor == evil_actor)),
            "offender must be repaired and re-admitted"
        );
        assert!(k.quarantined_actors().is_empty(), "nothing may stay quarantined");
        // Re-admission is real while the pool is still up.
        evil.create("/dir/after-readmit", Mode(0o666)).unwrap();
        evil.unlink("/dir/after-readmit").unwrap();
    });
    rt.run();
    let s = kernel.delegation().stats().snapshot();
    assert_eq!(s.worker_deaths, 1, "the armed kill must fire during the lifecycle");
    assert_eq!(s.worker_restarts, 1, "and recover");
}

/// Graceful degradation end to end: a fully wedged pool trips the
/// circuit breaker (visible in kernel stats, events, and the obs
/// timeline), direct access keeps ops flowing, and once the pool heals
/// the probe stream re-promotes delegation.
#[test]
fn degraded_mode_enters_and_recovers_visibly() {
    let (kernel, fses) = world();
    let rt = SimRuntime::new(0xDE6);
    let k = Arc::clone(&kernel);
    let fs = Arc::clone(&fses[0]);
    rt.spawn("degrade", move || {
        k.delegation().start();
        k.delegation().inject_faults(0, 0, 1); // Drop everything: wedge.
        let block = vec![0xABu8; CHUNK];
        // One delegated write to a fresh file per turn: each op exhausts
        // its retry budget, falls back to direct access (demoting that
        // *file*), and counts one consecutive pool failure; the
        // pool-level breaker opens after three. Fresh files matter —
        // per-file demotion would otherwise shield the pool from ever
        // seeing the repeat failures.
        let wr = |path: &str| {
            let fd = fs.open(path, OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
            assert_eq!(fs.pwrite(fd, 0, &block).unwrap(), CHUNK);
            fs.close(fd).unwrap();
        };
        let mut ops = 0u64;
        while !k.delegation().degraded() {
            wr(&format!("/deg-{ops}"));
            ops += 1;
            assert!(ops <= 16, "breaker never opened under a total wedge");
        }
        assert!(k.degraded_mode().active, "kernel stats must surface DegradedMode");
        // Degraded ops route direct and stay correct.
        for j in 0..8u64 {
            wr(&format!("/shed-{j}"));
        }
        // Heal the pool; probe traffic (1 in 16 eligible ops) must
        // re-promote after enough successes.
        k.delegation().inject_faults(0, 0, 0);
        let mut probes = 0u64;
        while k.delegation().degraded() {
            wr(&format!("/probe-{probes}"));
            probes += 1;
            assert!(probes <= 4096, "pool never recovered after faults were cleared");
        }
        k.delegation().shutdown();
    });
    rt.run();

    let dm = kernel.degraded_mode();
    assert!(!dm.active, "pool must have re-promoted");
    assert_eq!(dm.enters, 1, "exactly one degraded episode");
    assert_eq!(dm.exits, 1, "exactly one recovery");
    let s = kernel.delegation().stats().snapshot();
    assert_eq!(s.degraded_enters, 1);
    assert_eq!(s.degraded_exits, 1);
    assert!(s.deleg_fallbacks >= 3, "fallbacks fed the breaker");
    let events = kernel.take_events();
    assert!(events.iter().any(|e| matches!(e, KernelEvent::DelegationDegraded)));
    assert!(events.iter().any(|e| matches!(e, KernelEvent::DelegationRecovered)));
    // The transition must be visible in the obs timeline as failover
    // spans (degraded-enter opens, degraded-exit closes).
    #[cfg(feature = "obs")]
    {
        let j = trio_obs::timeline_json("chaos-degraded");
        assert!(
            j.contains("\"stage\": \"failover\""),
            "degraded transitions missing from the obs timeline"
        );
    }
}
