//! Cross-LibFS sharing semantics (paper §3.2): concurrent-read XOR
//! exclusive-write, lease-bounded hand-off, verification on every
//! transfer, and trust groups.

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use parking_lot::Mutex;
use trio_fsapi::{read_file, write_file, FileSystem, FsError, Mode, OpenFlags, SetAttr};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::{SimRuntime, MILLIS};

fn world(lease_ms: u64) -> (Arc<KernelController>, Arc<ArckFs>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        dev,
        KernelConfig { lease_ns: lease_ms * MILLIS, ..KernelConfig::default() },
    );
    let a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (kernel, a, b)
}

#[test]
fn data_written_by_one_process_is_read_by_another() {
    let (_, a, b) = world(100);
    let rt = SimRuntime::new(1);
    rt.spawn("t", move || {
        a.mkdir("/x", Mode(0o777)).unwrap();
        write_file(&*a, "/x/f", b"handoff payload").unwrap();
        a.release_path("/x").unwrap();
        assert_eq!(read_file(&*b, "/x/f").unwrap(), b"handoff payload");
        // And back: B modifies, A re-reads.
        let fd = b.open("/x/f", OpenFlags::RDWR, Mode(0o666)).unwrap();
        b.pwrite(fd, 0, b"HANDOFF").unwrap();
        b.close(fd).unwrap();
        b.release_path("/x/f").unwrap();
        assert_eq!(read_file(&*a, "/x/f").unwrap(), b"HANDOFF payload");
    });
    rt.run();
}

#[test]
fn concurrent_readers_share_without_transfer() {
    let (kernel, a, b) = world(100);
    let rt = SimRuntime::new(2);
    rt.spawn("t", move || {
        write_file(&*a, "/ro", &vec![3u8; 8192]).unwrap();
        a.release_path("/ro").unwrap();
        // Both map read; no revocations, no corruption events.
        assert_eq!(read_file(&*a, "/ro").unwrap().len(), 8192);
        assert_eq!(read_file(&*b, "/ro").unwrap().len(), 8192);
        assert_eq!(read_file(&*a, "/ro").unwrap().len(), 8192);
        let events = kernel.take_events();
        assert!(
            !events.iter().any(|e| matches!(
                e,
                trio_kernel::registry::KernelEvent::CorruptionDetected { .. }
            )),
            "clean sharing must not flag corruption: {events:?}"
        );
    });
    rt.run();
}

#[test]
fn writer_lease_ping_pong_preserves_all_writes() {
    let (_, a, b) = world(1); // 1ms lease: force many transfers.
    let rt = SimRuntime::new(3);
    let procs = [Arc::clone(&a), Arc::clone(&b)];
    let check = Arc::clone(&a);
    rt.spawn("main", move || {
        write_file(&*procs[0], "/pp", &vec![0u8; 64 * 1024]).unwrap();
        procs[0].release_path("/pp").unwrap();
        let mut hs = Vec::new();
        for (i, fs) in procs.iter().enumerate() {
            let fs = Arc::clone(fs);
            hs.push(trio_sim::spawn("writer", move || {
                let fd = fs.open("/pp", OpenFlags::RDWR, Mode(0o666)).unwrap();
                let block = vec![i as u8 + 1; 4096];
                // Each process owns a disjoint half of the file.
                for k in 0..200u64 {
                    let off = (i as u64 * 8 + (k % 8)) * 4096;
                    fs.pwrite(fd, off, &block).unwrap();
                }
                let _ = fs.close(fd);
            }));
        }
        for h in hs {
            h.join();
        }
        let _ = procs[0].release_path("/pp");
        let _ = procs[1].release_path("/pp");
        let data = read_file(&*check, "/pp").unwrap();
        assert!(data[..8 * 4096].iter().all(|&x| x == 1), "A's half intact");
        assert!(data[8 * 4096..16 * 4096].iter().all(|&x| x == 2), "B's half intact");
    });
    rt.run();
}

#[test]
fn trust_group_shares_one_libfs_without_transfers() {
    // Two "processes" in a trust group = two sim threads on one ArckFs.
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(4);
    let fs0 = Arc::clone(&fs);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        write_file(&*fs0, "/tg", &vec![0u8; 32 * 1024]).unwrap();
        let mut hs = Vec::new();
        for i in 0..2u64 {
            let fs = Arc::clone(&fs0);
            hs.push(trio_sim::spawn("member", move || {
                let fd = fs.open("/tg", OpenFlags::RDWR, Mode(0o666)).unwrap();
                let block = vec![i as u8 + 9; 4096];
                for k in 0..100u64 {
                    fs.pwrite(fd, (i * 4 + (k % 4)) * 4096, &block).unwrap();
                }
                fs.close(fd).unwrap();
            }));
        }
        for h in hs {
            h.join();
        }
        // No lease revocations: one LibFS, one write grant.
        let events = k.take_events();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, trio_kernel::registry::KernelEvent::LeaseRevoked { .. })),
            "trust group must not ping-pong: {events:?}"
        );
    });
    rt.run();
}

#[test]
fn permissions_respected_across_processes() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let alice = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let eve = ArckFs::mount(Arc::clone(&kernel), 2000, 2000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(5);
    rt.spawn("t", move || {
        write_file(&*alice, "/secret", b"alice only").unwrap();
        alice.release_path("/secret").unwrap();
        // Mode 0600, uid mismatch: Eve cannot read the contents.
        let fd = eve.open("/secret", OpenFlags::RDONLY, Mode::empty()).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(eve.pread(fd, 0, &mut buf).err(), Some(FsError::PermissionDenied));
        eve.close(fd).unwrap();
        // Alice widens the mode through the mediated chmod (I4 ground truth).
        alice.setattr("/secret", SetAttr { mode: Some(Mode(0o644)), ..Default::default() }).unwrap();
        assert_eq!(read_file(&*eve, "/secret").unwrap(), b"alice only");
    });
    rt.run();
}

#[test]
fn lease_wait_time_matches_configuration() {
    let (_, a, b) = world(50);
    let rt = SimRuntime::new(6);
    let waited = Arc::new(Mutex::new(0u64));
    let w2 = Arc::clone(&waited);
    rt.spawn("t", move || {
        write_file(&*a, "/lease", &vec![0u8; 4096]).unwrap();
        // A holds the write grant; B's write must wait out the lease.
        let t0 = trio_sim::now();
        let fd = b.open("/lease", OpenFlags::RDWR, Mode(0o666)).unwrap();
        b.pwrite(fd, 0, b"mine now").unwrap();
        b.close(fd).unwrap();
        *w2.lock() = trio_sim::now() - t0;
    });
    rt.run();
    let w = *waited.lock();
    assert!(w >= 45 * MILLIS, "B should wait out most of the 50ms lease, waited {w}ns");
    assert!(w < 80 * MILLIS, "but not much longer, waited {w}ns");
}
