//! Cross-LibFS sharing semantics (paper §3.2): concurrent-read XOR
//! exclusive-write, lease-bounded hand-off, verification on every
//! transfer, and trust groups.

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_sim::plock::Mutex;
use trio_fsapi::{read_file, write_file, FileSystem, FsError, Mode, OpenFlags, SetAttr};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::{SimRuntime, MILLIS};

fn world(lease_ms: u64) -> (Arc<KernelController>, Arc<ArckFs>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        dev,
        KernelConfig { lease_ns: lease_ms * MILLIS, ..KernelConfig::default() },
    );
    let a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (kernel, a, b)
}

#[test]
fn data_written_by_one_process_is_read_by_another() {
    let (_, a, b) = world(100);
    let rt = SimRuntime::new(1);
    rt.spawn("t", move || {
        a.mkdir("/x", Mode(0o777)).unwrap();
        write_file(&*a, "/x/f", b"handoff payload").unwrap();
        a.release_path("/x").unwrap();
        assert_eq!(read_file(&*b, "/x/f").unwrap(), b"handoff payload");
        // And back: B modifies, A re-reads.
        let fd = b.open("/x/f", OpenFlags::RDWR, Mode(0o666)).unwrap();
        b.pwrite(fd, 0, b"HANDOFF").unwrap();
        b.close(fd).unwrap();
        b.release_path("/x/f").unwrap();
        assert_eq!(read_file(&*a, "/x/f").unwrap(), b"HANDOFF payload");
    });
    rt.run();
}

#[test]
fn concurrent_readers_share_without_transfer() {
    let (kernel, a, b) = world(100);
    let rt = SimRuntime::new(2);
    rt.spawn("t", move || {
        write_file(&*a, "/ro", &vec![3u8; 8192]).unwrap();
        a.release_path("/ro").unwrap();
        // Both map read; no revocations, no corruption events.
        assert_eq!(read_file(&*a, "/ro").unwrap().len(), 8192);
        assert_eq!(read_file(&*b, "/ro").unwrap().len(), 8192);
        assert_eq!(read_file(&*a, "/ro").unwrap().len(), 8192);
        let events = kernel.take_events();
        assert!(
            !events.iter().any(|e| matches!(
                e,
                trio_kernel::registry::KernelEvent::CorruptionDetected { .. }
            )),
            "clean sharing must not flag corruption: {events:?}"
        );
    });
    rt.run();
}

#[test]
fn writer_lease_ping_pong_preserves_all_writes() {
    let (_, a, b) = world(1); // 1ms lease: force many transfers.
    let rt = SimRuntime::new(3);
    let procs = [Arc::clone(&a), Arc::clone(&b)];
    let check = Arc::clone(&a);
    rt.spawn("main", move || {
        write_file(&*procs[0], "/pp", &vec![0u8; 64 * 1024]).unwrap();
        procs[0].release_path("/pp").unwrap();
        let mut hs = Vec::new();
        for (i, fs) in procs.iter().enumerate() {
            let fs = Arc::clone(fs);
            hs.push(trio_sim::spawn("writer", move || {
                let fd = fs.open("/pp", OpenFlags::RDWR, Mode(0o666)).unwrap();
                let block = vec![i as u8 + 1; 4096];
                // Each process owns a disjoint half of the file.
                for k in 0..200u64 {
                    let off = (i as u64 * 8 + (k % 8)) * 4096;
                    fs.pwrite(fd, off, &block).unwrap();
                }
                let _ = fs.close(fd);
            }));
        }
        for h in hs {
            h.join();
        }
        let _ = procs[0].release_path("/pp");
        let _ = procs[1].release_path("/pp");
        let data = read_file(&*check, "/pp").unwrap();
        assert!(data[..8 * 4096].iter().all(|&x| x == 1), "A's half intact");
        assert!(data[8 * 4096..16 * 4096].iter().all(|&x| x == 2), "B's half intact");
    });
    rt.run();
}

#[test]
fn trust_group_shares_one_libfs_without_transfers() {
    // Two "processes" in a trust group = two sim threads on one ArckFs.
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(4);
    let fs0 = Arc::clone(&fs);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        write_file(&*fs0, "/tg", &vec![0u8; 32 * 1024]).unwrap();
        let mut hs = Vec::new();
        for i in 0..2u64 {
            let fs = Arc::clone(&fs0);
            hs.push(trio_sim::spawn("member", move || {
                let fd = fs.open("/tg", OpenFlags::RDWR, Mode(0o666)).unwrap();
                let block = vec![i as u8 + 9; 4096];
                for k in 0..100u64 {
                    fs.pwrite(fd, (i * 4 + (k % 4)) * 4096, &block).unwrap();
                }
                fs.close(fd).unwrap();
            }));
        }
        for h in hs {
            h.join();
        }
        // No lease revocations: one LibFS, one write grant.
        let events = k.take_events();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, trio_kernel::registry::KernelEvent::LeaseRevoked { .. })),
            "trust group must not ping-pong: {events:?}"
        );
    });
    rt.run();
}

#[test]
fn permissions_respected_across_processes() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let alice = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let eve = ArckFs::mount(Arc::clone(&kernel), 2000, 2000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(5);
    rt.spawn("t", move || {
        write_file(&*alice, "/secret", b"alice only").unwrap();
        alice.release_path("/secret").unwrap();
        // Mode 0600, uid mismatch: Eve cannot read the contents.
        let fd = eve.open("/secret", OpenFlags::RDONLY, Mode::empty()).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(eve.pread(fd, 0, &mut buf).err(), Some(FsError::PermissionDenied));
        eve.close(fd).unwrap();
        // Alice widens the mode through the mediated chmod (I4 ground truth).
        alice.setattr("/secret", SetAttr { mode: Some(Mode(0o644)), ..Default::default() }).unwrap();
        assert_eq!(read_file(&*eve, "/secret").unwrap(), b"alice only");
    });
    rt.run();
}

#[test]
fn lease_wait_time_matches_configuration() {
    let (_, a, b) = world(50);
    let rt = SimRuntime::new(6);
    let waited = Arc::new(Mutex::new(0u64));
    let w2 = Arc::clone(&waited);
    rt.spawn("t", move || {
        write_file(&*a, "/lease", &vec![0u8; 4096]).unwrap();
        // A holds the write grant; B's write must wait out the lease.
        let t0 = trio_sim::now();
        let fd = b.open("/lease", OpenFlags::RDWR, Mode(0o666)).unwrap();
        b.pwrite(fd, 0, b"mine now").unwrap();
        b.close(fd).unwrap();
        *w2.lock() = trio_sim::now() - t0;
    });
    rt.run();
    let w = *waited.lock();
    assert!(w >= 45 * MILLIS, "B should wait out most of the 50ms lease, waited {w}ns");
    assert!(w < 80 * MILLIS, "but not much longer, waited {w}ns");
}

// ---------------------------------------------------------------------
// Fault injection: lease-expiry recovery, LibFS death, privatization.
// ---------------------------------------------------------------------

/// A writer corrupts its file's metadata and then stalls past its lease.
/// The next writer's map revokes the expired lease, verification catches
/// the corruption, and the kernel rolls back to the checkpoint taken when
/// the faulty writer got its grant — the second writer proceeds on the
/// checkpointed state.
#[test]
fn lease_expiry_rolls_back_a_stalled_corrupting_writer() {
    let (kernel, a, b) = world(20);
    let rt = SimRuntime::new(7);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        // Baseline, handed to the kernel's books (release marks it dirty;
        // the re-open below verifies and checkpoints it).
        write_file(&*a, "/le", &vec![0xAAu8; 2 * 4096]).unwrap();
        a.release_path("/le").unwrap();
        let bad = Arc::clone(&a);
        let victim = trio_sim::spawn("victim", move || {
            // Re-acquire the write grant (kernel checkpoints here), then
            // corrupt the file's index: point an entry at a page the books
            // say is free. I2 can never pass on this state.
            let fd = bad.open("/le", OpenFlags::RDWR, Mode(0o666)).unwrap();
            bad.pwrite(fd, 0, &[0xBBu8; 8]).unwrap();
            let (_, index, _) = bad.debug_file_pages("/le").unwrap();
            trio_layout::IndexPageRef::new(bad.handle(), index[0])
                .set_entry(1, 30_000)
                .unwrap();
            // Stall far past the 20ms lease without closing or releasing.
            trio_sim::work(200 * MILLIS);
            let _ = bad.close(fd);
        });
        // B's write open blocks until A's lease expires, then revokes it,
        // verifies, detects the corruption, and rolls back.
        trio_sim::work(MILLIS);
        let fd = b.open("/le", OpenFlags::RDWR, Mode(0o666)).unwrap();
        let mut buf = vec![0u8; 2 * 4096];
        b.pread(fd, 0, &mut buf).unwrap();
        // A's *data* write is direct-access and durable (data pages are not
        // checkpointed); the *metadata* corruption is what rolls back.
        assert!(buf[..8].iter().all(|&x| x == 0xBB), "A's legit data write survives");
        assert!(
            buf[8..].iter().all(|&x| x == 0xAA),
            "B must see the checkpointed metadata, not A's corruption"
        );
        b.pwrite(fd, 0, b"B owns this now").unwrap();
        b.close(fd).unwrap();
        victim.join();
        let events = k.take_events();
        use trio_kernel::registry::KernelEvent as E;
        assert!(
            events.iter().any(|e| matches!(e, E::LeaseRevoked { .. })),
            "expired lease must be revoked: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, E::CorruptionDetected { .. })),
            "verification must flag the bad index entry: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, E::RolledBack { .. })),
            "the kernel must roll back to the checkpoint: {events:?}"
        );
    });
    rt.run();
}

/// A LibFS dies mid-write (injected sim-thread kill). Its lease expires,
/// the kernel revokes the dead writer's grant, and a second LibFS maps
/// and proceeds — no hang, no panic, and the survivor's writes stick.
#[test]
fn killed_libfs_lease_expires_and_survivor_proceeds() {
    let (kernel, a, b) = world(10);
    let rt = SimRuntime::new(8);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        write_file(&*a, "/shared", &vec![0u8; 32 * 4096]).unwrap();
        a.release_path("/shared").unwrap();
        let doomed = Arc::clone(&a);
        let victim = trio_sim::spawn("victim", move || {
            let fd = doomed.open("/shared", OpenFlags::RDWR, Mode(0o666)).unwrap();
            let block = vec![0x11u8; 4096];
            // Write forever; the kill lands mid-loop.
            for i in 0.. {
                doomed.pwrite(fd, (i % 16) * 4096, &block).unwrap();
            }
        });
        trio_sim::work(2 * MILLIS);
        victim.kill(); // LibFS process death, mid-operation.
        // The survivor's open waits out the dead writer's lease, revokes
        // it, verifies the (valid, possibly partial) writes, and proceeds.
        let fd = b.open("/shared", OpenFlags::RDWR, Mode(0o666)).unwrap();
        b.pwrite(fd, 16 * 4096, b"survivor").unwrap();
        let mut buf = [0u8; 8];
        b.pread(fd, 16 * 4096, &mut buf).unwrap();
        assert_eq!(&buf, b"survivor");
        // The whole file is still readable (dead writer's torn progress is
        // valid data, not corruption).
        let all = read_file(&*b, "/shared").unwrap();
        assert_eq!(all.len(), 32 * 4096);
        b.close(fd).unwrap();
        let events = k.take_events();
        use trio_kernel::registry::KernelEvent as E;
        assert!(
            events.iter().any(
                |e| matches!(e, E::LeaseRevoked { ino: _, actor } if *actor == a.actor())
            ),
            "dead writer's lease must be revoked: {events:?}"
        );
    });
    rt.run();
}

/// Graceful degradation for unverifiable creations: a file created raw by
/// a LibFS (never checkpointed) whose core state cannot pass verification
/// is *privatized* — expelled from the shared namespace — rather than
/// rolled back. Other processes see a clean miss and keep working.
#[test]
fn corrupt_unverified_creation_is_privatized_not_fatal() {
    let (kernel, a, b) = world(20);
    let rt = SimRuntime::new(9);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        a.mkdir("/d", Mode(0o777)).unwrap();
        write_file(&*a, "/d/evil", b"never vetted").unwrap();
        // Corrupt the unvetted file: a first_index pointing nowhere
        // walkable. No checkpoint exists — this state has no good version.
        let (loc, _, _) = a.debug_file_pages("/d/evil").unwrap();
        trio_layout::DirentRef::new(a.handle(), loc.unwrap())
            .set_first_index(100_000)
            .unwrap();
        a.release_path("/").unwrap();
        a.release_path("/d").unwrap();
        // B's read maps the file, tripping verification; the kernel expels
        // the unverifiable creation.
        assert_eq!(read_file(&*b, "/d/evil").err(), Some(FsError::NotFound));
        let events = k.take_events();
        use trio_kernel::registry::KernelEvent as E;
        assert!(
            events.iter().any(
                |e| matches!(e, E::Privatized { ino: _, actor: Some(who) } if *who == a.actor())
            ),
            "corrupt creation must be privatized and attributed: {events:?}"
        );
        // The directory (and the rest of the namespace) stays serviceable.
        write_file(&*b, "/d/fresh", b"life goes on").unwrap();
        assert_eq!(read_file(&*b, "/d/fresh").unwrap(), b"life goes on");
        assert!(b.readdir("/d").unwrap().iter().all(|e| e.name != "evil"));
    });
    rt.run();
}

/// Lease expiry racing a concurrent re-acquire, under the cross-LibFS
/// race detector (DESIGN.md §13). A writer stalls past its lease while
/// TWO other LibFSes contend to take over the same file; the kernel must
/// serialize revocation → verification → re-grant so that no two actors
/// ever touch a shared NVM line without a happens-before edge. The
/// detector aborts the run (panic with a replay seed) if the hand-off is
/// ever racy; both contenders must also complete and their writes stick.
#[test]
fn lease_expiry_vs_concurrent_reacquire_is_race_free() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let rd = Arc::new(trio_sim::RaceDetector::new());
    assert!(dev.set_race_detector(rd));
    let kernel = KernelController::format(
        Arc::clone(&dev),
        KernelConfig { lease_ns: 10 * MILLIS, ..KernelConfig::default() },
    );
    let a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let c = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(0xBEEF);
    rt.enable_race_detection();
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        write_file(&*a, "/rl", &vec![0x5Au8; 2 * 4096]).unwrap();
        a.release_path("/rl").unwrap();
        // A re-acquires the grant and stalls far past the 10ms lease.
        let stall = Arc::clone(&a);
        let staller = trio_sim::spawn("staller", move || {
            let fd = stall.open("/rl", OpenFlags::RDWR, Mode(0o666)).unwrap();
            stall.pwrite(fd, 0, &[0x11u8; 8]).unwrap();
            trio_sim::work(120 * MILLIS);
            let _ = stall.close(fd);
        });
        // B and C race each other (and the expiring lease) for the grant.
        let contender = |fs: Arc<ArckFs>, tag: u8| {
            move || {
                trio_sim::work(MILLIS);
                let fd = fs.open("/rl", OpenFlags::RDWR, Mode(0o666)).unwrap();
                fs.pwrite(fd, 4096 + tag as u64 * 64, &[tag; 64]).unwrap();
                fs.close(fd).unwrap();
                fs.release_path("/rl").unwrap();
            }
        };
        let hb = trio_sim::spawn("contender-b", contender(Arc::clone(&b), 1));
        let hc = trio_sim::spawn("contender-c", contender(Arc::clone(&c), 2));
        hb.join();
        hc.join();
        staller.join();
        // Exactly one revocation chain ran and both takeovers landed.
        let events = k.take_events();
        use trio_kernel::registry::KernelEvent as E;
        assert!(
            events.iter().any(|e| matches!(e, E::LeaseRevoked { .. })),
            "the stalled writer's lease must be revoked: {events:?}"
        );
        let got = read_file(&*b, "/rl").unwrap();
        assert!(got[4096 + 64..4096 + 128].iter().all(|&x| x == 1), "B's write survives");
        assert!(got[4096 + 128..4096 + 192].iter().all(|&x| x == 2), "C's write survives");
    });
    // The detector panics the whole run on any unsynchronized hand-off.
    let out = catch_unwind(AssertUnwindSafe(|| rt.run()));
    assert!(out.is_ok(), "lease hand-off raced under the detector");
}
