//! Process-exit flows: `ArckFs::unmount` must return resources and force
//! verification of everything the departing process dirtied, so a
//! malicious process cannot leave corruption behind by exiting.

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

fn world() -> (Arc<KernelController>, Arc<ArckFs>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (kernel, a, b)
}

#[test]
fn unmount_returns_pool_pages_to_the_kernel() {
    let (kernel, a, _) = world();
    let rt = SimRuntime::new(61);
    rt.spawn("t", move || {
        let before = kernel.free_page_count();
        write_file(&*a, "/f", &vec![1u8; 64 * 1024]).unwrap();
        assert!(kernel.free_page_count() < before);
        let file_pages = 64 * 1024 / 4096 + 2; // data + index + dirent page.
        a.unmount();
        // Everything except the live file's pages is back.
        assert!(
            kernel.free_page_count() >= before - 2 * file_pages,
            "pools returned: {} of {}",
            kernel.free_page_count(),
            before
        );
    });
    rt.run();
}

#[test]
fn exiting_process_cannot_leave_unvetted_corruption() {
    let (kernel, evil, victim) = world();
    let rt = SimRuntime::new(62);
    rt.spawn("t", move || {
        // Clean handoff + attacker re-acquires write grants.
        write_file(&*evil, "/dir-less-file", b"seed").unwrap();
        evil.mkdir("/d", Mode(0o777)).unwrap();
        write_file(&*evil, "/d/victim", &vec![5u8; 32 * 1024]).unwrap();
        evil.release_path("/d").unwrap();
        let _ = victim.readdir("/d").unwrap();
        let _ = read_file(&*victim, "/d/victim").unwrap();
        let fd = evil.open("/d/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &[5u8]).unwrap();
        evil.close(fd).unwrap();
        run_attack(&evil, Attack::IndexCycle, "/d", "victim").unwrap();
        // The attacker EXITS without releasing: unmount must trigger the
        // kernel's eager verification sweep.
        evil.unmount();
        let events = kernel.take_events();
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. })),
            "unregister swept the dirty file: {events:?}"
        );
        assert!(events.iter().any(|e| matches!(e, KernelEvent::RolledBack { .. })));
        // The victim sees a consistent (restored) file with zero fuss.
        let data = read_file(&*victim, "/d/victim").unwrap();
        assert_eq!(data.len(), 32 * 1024);
    });
    rt.run();
}

#[test]
fn world_remains_usable_after_unmount() {
    let (kernel, a, b) = world();
    let rt = SimRuntime::new(63);
    rt.spawn("t", move || {
        a.mkdir("/x", Mode(0o777)).unwrap();
        write_file(&*a, "/x/f", b"before exit").unwrap();
        a.unmount();
        // B picks up where A left off.
        assert_eq!(read_file(&*b, "/x/f").unwrap(), b"before exit");
        write_file(&*b, "/x/g", b"after exit").unwrap();
        assert_eq!(b.readdir("/x").unwrap().len(), 2);
        // A's actor is gone: a fresh mount gets a new principal.
        let c = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
        assert_ne!(c.actor(), a.actor());
        assert_eq!(read_file(&*c, "/x/g").unwrap(), b"after exit");
    });
    rt.run();
}
