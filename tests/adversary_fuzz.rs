//! Seeded adversarial fuzz campaign (DESIGN.md §14).
//!
//! Each iteration builds a fresh world (evil + victim + bystander LibFS
//! over one kernel), lets the evil LibFS draw a handful of productions
//! from the corruption grammar in [`arckfs::adversary`], then checks four
//! invariants:
//!
//! 1. **No panic** anywhere in kernel or verifier (panics abort the
//!    iteration and are reported with a replay pointer).
//! 2. **Bounded time**: every wait in the harness and the delegation
//!    protocol is deadline-bounded, so a hang fails fast instead of
//!    wedging CI.
//! 3. **Victim model-equivalence**: after the victim remaps, it sees
//!    either the checkpointed (pre-attack) file content, a clean absence,
//!    or an explicit `Quarantined` refusal — never the attacker's bytes.
//! 4. **Quarantine isolation**: only the evil LibFS is ever quarantined,
//!    and the bystander's private file survives byte-for-byte.
//!
//! Determinism: iteration `i` of campaign seed `S` derives every random
//! choice from `(S, i)` alone. Reproduce a failure with
//! `TRIO_ADV_SEED=S TRIO_ADV_ITER=i cargo test --test adversary_fuzz`.
//! Campaign size: `TRIO_FUZZ_ITERS` (default 400; CI gate runs 2000).
//! The campaign always dumps `target/adversary-report.json`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use arckfs::adversary::{apply_random, AdversaryReport, Mutation};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, FsError, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::rng::SimRng;
use trio_sim::SimRuntime;

const MODEL_LEN: usize = 32 * 1024;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Per-iteration result, filled inside the sim and judged outside it.
#[derive(Default)]
struct IterOutcome {
    applied: Vec<Mutation>,
    skipped: u64,
    detections: u64,
    quarantines: u64,
    readmissions: u64,
    deleg_rejected: u64,
    failure: Option<String>,
}

fn iter_seed(campaign_seed: u64, iteration: u64) -> u64 {
    campaign_seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One fuzz iteration, fully deterministic in `(campaign_seed, iteration)`.
fn run_iteration(campaign_seed: u64, iteration: u64) -> IterOutcome {
    let seed = iter_seed(campaign_seed, iteration);
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 8 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        dev,
        KernelConfig {
            // A small pool keeps per-iteration thread churn cheap while
            // still exercising the ring protocol.
            delegation_threads_per_node: 2,
            ..KernelConfig::default()
        },
    );
    let evil = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::static_thresholds());
    let victim = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let bystander = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(seed);
    let out = Arc::new(PlMutex::new(IterOutcome::default()));
    let out2 = Arc::clone(&out);
    let k = Arc::clone(&kernel);
    let evil_actor = evil.actor();
    rt.spawn("fuzz", move || {
        k.delegation().start();
        let model = vec![0xC3u8; MODEL_LEN];
        let safe = vec![0x11u8; 4096];

        // Bystander state the attacker must never perturb.
        write_file(&*bystander, "/safe", &safe).unwrap();

        // Evil stages the victim tree and hands it over once (clean
        // verify), then re-acquires write grants — checkpointing the
        // clean state, exactly like a real sharing handoff.
        evil.mkdir("/dir", Mode(0o777)).unwrap();
        evil.mkdir("/dir/victim-sub", Mode(0o777)).unwrap();
        write_file(&*evil, "/dir/victim", &model).unwrap();
        evil.release_path("/dir").unwrap();
        let _ = victim.readdir("/dir").unwrap();
        assert_eq!(read_file(&*victim, "/dir/victim").unwrap(), model);
        let fd = evil.open("/dir/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &model[..1]).unwrap();
        evil.close(fd).unwrap();
        // Re-dirty the parent too (a create/unlink pair), so the next
        // cross-LibFS map re-verifies the directory itself — dirent-level
        // corruption is repaired by the *parent's* rollback.
        evil.create("/dir/warmup", Mode(0o666)).unwrap();
        evil.unlink("/dir/warmup").unwrap();

        // Draw 1..=3 productions from the grammar.
        let mut rng = SimRng::seed_from_u64(seed);
        let count = 1 + rng.gen_range(3);
        let mut o = IterOutcome::default();
        for _ in 0..count {
            let (m, res) = apply_random(&evil, &mut rng, "/dir", "victim");
            match res {
                Ok(_) => o.applied.push(m),
                Err(_) => o.skipped += 1,
            }
        }

        // Victim remaps; verification, rollback, quarantine, and repair
        // all happen underneath these calls.
        let _ = evil.release_path("/dir/victim");
        let _ = evil.release_path("/dir");
        let _ = k.take_events();
        let _ = victim.readdir("/dir");
        let _ = read_file(&*victim, "/dir/victim");
        let evts = k.take_events();
        if std::env::var("TRIO_ADV_DEBUG").is_ok() {
            eprintln!("events: {evts:?}");
        }
        let media_applied = o.applied.iter().any(|m| m.is_media());
        let media_only = !o.applied.is_empty() && o.applied.iter().all(|m| m.is_media());
        for e in evts {
            match e {
                KernelEvent::CorruptionDetected { .. } => o.detections += 1,
                KernelEvent::Quarantined { actor, .. } => {
                    o.quarantines += 1;
                    if actor != evil_actor {
                        o.failure =
                            Some(format!("quarantined innocent actor {actor:?} (evil is {evil_actor:?})"));
                    }
                }
                KernelEvent::Readmitted { .. } => o.readmissions += 1,
                _ => {}
            }
        }
        // Media lifecycle: when only the *medium* failed, the grant holder
        // is innocent — quarantining it would punish hardware decay as if
        // it were an attack.
        if media_only && o.quarantines > 0 {
            o.failure = Some("media-only iteration quarantined the innocent writer".into());
        }

        // Invariant 3: model equivalence for the victim. The read that
        // *triggers* detection legitimately fails with `Corrupted` (the
        // rollback happens underneath it), so retry a bounded number of
        // times; with up to three mutations staged, three detections can
        // fire back-to-back. Productions indistinguishable from legal
        // writes by the grant holder relax the byte-exact check — the
        // verifier guarantees metadata integrity, not data content.
        let strict = o.applied.iter().all(|m| !m.legal_as_writer());
        let mut last = read_file(&*victim, "/dir/victim");
        for _ in 0..4 {
            if !matches!(last, Err(FsError::Corrupted)) {
                break;
            }
            last = read_file(&*victim, "/dir/victim");
        }
        if std::env::var("TRIO_ADV_DEBUG").is_ok() {
            eprintln!("applied: {:?}", o.applied);
            eprintln!("victim stat: {:?}", victim.stat("/dir/victim"));
            eprintln!("victim readdir: {:?}", victim.readdir("/dir").map(|v| v.iter().map(|e| (e.name.clone(), e.ino)).collect::<Vec<_>>()));
            eprintln!("evil stat: {:?}", evil.stat("/dir/victim"));
            eprintln!("late events: {:?}", k.take_events());
            let r = read_file(&*victim, "/dir/victim");
            eprintln!("re-read: {:?}", r.as_ref().map(|d| (d.len(), d.first().copied())));
            eprintln!("later events: {:?}", k.take_events());
            let r = read_file(&*victim, "/dir/victim");
            eprintln!("re-re-read: {:?}", r.as_ref().map(|d| (d.len(), d.first().copied())));
            eprintln!("victim pages: {:?}", victim.debug_file_pages("/dir/victim"));
            if let Ok((_, _, dd)) = victim.debug_file_pages("/dir") {
                for pg in dd.iter().flatten() {
                    for slot in 0..16 {
                        let loc = trio_layout::DirentLoc { page: *pg, slot };
                        let r = trio_layout::DirentRef::new(victim.handle(), loc);
                        if let Ok(d) = r.load() {
                            if d.ino != 0 {
                                eprintln!("  dir slot {}@{}: ino={} size={} fi={} name={:?}",
                                    slot, pg.0, d.ino, d.size, d.first_index,
                                    String::from_utf8_lossy(&d.name));
                            }
                        }
                    }
                }
            }
        }
        match last {
            Ok(data) => {
                if strict && data != model {
                    o.failure = Some(format!(
                        "victim read diverged from model: {} bytes, first {:?}",
                        data.len(),
                        &data[..data.len().min(8)]
                    ));
                }
            }
            Err(FsError::NotFound) | Err(FsError::Quarantined) => {}
            // Lost or fenced media reads fail *typed* forever — that is
            // the contract ("loud beats wrong"), not a defense failure.
            Err(FsError::Corrupted) if media_applied => {}
            Err(e) => o.failure = Some(format!("victim read failed oddly: {e}")),
        }
        // Namespace consistency: readdir agrees with stat, no duplicates.
        if let Ok(entries) = victim.readdir("/dir") {
            let mut names: Vec<&String> = entries.iter().map(|e| &e.name).collect();
            names.sort();
            names.dedup();
            if names.len() != entries.len() {
                o.failure = Some("duplicate names survived the remap".into());
            }
            for e in &entries {
                let p = format!("/dir/{}", e.name);
                match victim.stat(&p) {
                    Ok(st) => {
                        if st.ino != e.ino {
                            o.failure = Some(format!("stat({p}) ino mismatch"));
                        }
                    }
                    // Corrupted = this stat itself triggered a detection.
                    Err(FsError::NotFound | FsError::Quarantined | FsError::Corrupted) => {}
                    Err(err) => o.failure = Some(format!("stat({p}) failed oddly: {err}")),
                }
            }
        }

        // Invariant 4: the bystander is untouched, before and after the
        // explicit repair hook runs.
        let _ = k.repair_quarantined();
        if read_file(&*bystander, "/safe").ok().as_deref() != Some(&safe[..]) {
            o.failure = Some("bystander file perturbed".into());
        }
        if !k.quarantined_actors().is_empty() {
            o.failure = Some("actors still quarantined after repair".into());
        }

        o.deleg_rejected = k.path_stats().snapshot().deleg_rejected;
        k.delegation().shutdown();
        *out2.lock() = o;
    });

    // Invariant 1 (no panic) and 2 (bounded time): a panicking sim run is
    // caught here and converted into a replayable failure record.
    let panicked = catch_unwind(AssertUnwindSafe(|| rt.run())).is_err();
    let mut o = std::mem::take(&mut *out.lock());
    if panicked && o.failure.is_none() {
        o.failure = Some("panic inside simulation".into());
    }
    o
}

#[test]
fn seeded_corruption_campaign_holds_all_invariants() {
    let campaign_seed = env_u64("TRIO_ADV_SEED", 0x00F0_CCED);
    let iters = env_u64("TRIO_FUZZ_ITERS", 400);
    // Replay mode: TRIO_ADV_ITER pins the campaign to one iteration.
    let only: Option<u64> = std::env::var("TRIO_ADV_ITER").ok().and_then(|v| v.parse().ok());

    let mut report = AdversaryReport { seed: campaign_seed, ..Default::default() };
    let range: Vec<u64> = match only {
        Some(i) => vec![i],
        None => (0..iters).collect(),
    };
    for i in range {
        let o = run_iteration(campaign_seed, i);
        report.iterations += 1;
        for m in &o.applied {
            report.record_applied(*m);
        }
        report.skipped += o.skipped;
        report.detections += o.detections;
        report.quarantines += o.quarantines;
        report.readmissions += o.readmissions;
        report.deleg_rejected += o.deleg_rejected;
        if let Some(why) = o.failure {
            let names: Vec<&str> = o.applied.iter().map(|m| m.name()).collect();
            report.failures.push(format!(
                "seed={campaign_seed} iter={i}: {why} [applied: {}]",
                names.join(",")
            ));
        } else {
            report.victim_consistent += 1;
        }
    }

    let path = report.dump().ok();
    assert!(
        report.failures.is_empty(),
        "{} invariant failures (report at {:?}); first: {}",
        report.failures.len(),
        path,
        report.failures[0]
    );
    // The campaign must actually exercise the defenses: corruption lands
    // and is detected, and containment round-trips. A single-iteration
    // replay can't promise full grammar coverage, so only the round-trip
    // invariant applies there.
    if only.is_none() {
        assert!(report.total_applied() > report.iterations / 2, "grammar barely fired");
        assert!(report.detections > 0, "no corruption was ever detected");
        assert!(report.deleg_rejected > 0, "hostile ring requests were never rejected");
    }
    assert_eq!(report.quarantines, report.readmissions, "containment must round-trip");
}
