//! Cross-LibFS race detection on the NVM line level (DESIGN.md §13).
//!
//! The detector threads vector clocks through every `trio_sim::sync`
//! primitive (and, via the channels, the delegation rings); two accesses
//! to the same NVM cache line by *different actors* with no
//! happens-before edge abort the run naming both access sites. These
//! tests pin the three behaviours that matter:
//!
//! * genuinely unsynchronized cross-actor writes abort with a replayable
//!   diagnostic,
//! * every legal ordering construct (mutex hand-off, channel send/recv —
//!   the delegation-ring shape) suppresses the report,
//! * the real ArckFS data path, with delegation forced on, runs clean.
//!
//! Detection is opt-in per runtime (`enable_race_detection`) and per
//! device (`set_race_detector`), so the perf-sensitive suites pay nothing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, NvmHandle, PageId, PagePerm, Topology};
use trio_sim::sync::{SimChannel, SimMutex};
use trio_sim::{work, RaceDetector, SimRuntime};

const PAGE: PageId = PageId(5);

/// A raw device with the race detector attached and `PAGE` mapped
/// writable for two separate actors (two "LibFSes" sharing a page).
fn shared_device() -> (Arc<NvmDevice>, NvmHandle, NvmHandle) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let rd = Arc::new(RaceDetector::new());
    assert!(dev.set_race_detector(rd));
    let (a, b) = (ActorId(1), ActorId(2));
    dev.mmu_map(a, PAGE, PagePerm::Write).unwrap();
    dev.mmu_map(b, PAGE, PagePerm::Write).unwrap();
    let ha = NvmHandle::new(Arc::clone(&dev), a);
    let hb = NvmHandle::new(Arc::clone(&dev), b);
    (dev, ha, hb)
}

#[test]
fn unsynchronized_cross_actor_writes_abort() {
    let rt = SimRuntime::new(0xACE5);
    rt.enable_race_detection();
    let (_dev, ha, hb) = shared_device();
    rt.spawn("libfs-a", move || {
        ha.write_untimed(PAGE, 0, b"aaaaaaaa").unwrap();
    });
    rt.spawn("libfs-b", move || {
        work(50);
        hb.write_untimed(PAGE, 0, b"bbbbbbbb").unwrap();
    });
    let err = catch_unwind(AssertUnwindSafe(|| rt.run())).expect_err("race must abort");
    let msg = err.downcast_ref::<String>().expect("string panic");
    assert!(msg.contains("data race on NVM page 5 cache line 0"), "{msg}");
    assert!(msg.contains("seed 0xace5"), "diagnostic carries the replay seed: {msg}");
}

#[test]
fn mutex_handoff_suppresses_the_report() {
    let rt = SimRuntime::new(1);
    rt.enable_race_detection();
    let (_dev, ha, hb) = shared_device();
    let lock = Arc::new(SimMutex::new(()));
    {
        let lock = Arc::clone(&lock);
        rt.spawn("libfs-a", move || {
            let _g = lock.lock();
            ha.write_untimed(PAGE, 0, b"aaaaaaaa").unwrap();
        });
    }
    rt.spawn("libfs-b", move || {
        work(50);
        let _g = lock.lock();
        hb.write_untimed(PAGE, 0, b"bbbbbbbb").unwrap();
    });
    rt.run(); // No panic: the mutex carries the happens-before edge.
}

#[test]
fn channel_handoff_orders_the_ring_shape() {
    // The delegation-ring pattern in miniature: the submitter writes its
    // buffer, sends a request over a channel; the worker receives and
    // touches the same lines. The per-message clock makes it ordered.
    let rt = SimRuntime::new(2);
    rt.enable_race_detection();
    let (_dev, ha, hb) = shared_device();
    let ring: Arc<SimChannel<u64>> = Arc::new(SimChannel::bounded(4));
    {
        let ring = Arc::clone(&ring);
        rt.spawn("submitter", move || {
            ha.write_untimed(PAGE, 0, b"payload!").unwrap();
            ring.send(1).unwrap();
        });
    }
    rt.spawn("worker", move || {
        let _req = ring.recv().unwrap();
        let mut buf = [0u8; 8];
        hb.read_untimed(PAGE, 0, &mut buf).unwrap();
        hb.write_untimed(PAGE, 0, b"response").unwrap();
    });
    rt.run(); // No panic: the message carries the submitter's clock.
}

#[test]
fn read_write_without_edge_also_aborts() {
    let rt = SimRuntime::new(3);
    rt.enable_race_detection();
    let (_dev, ha, hb) = shared_device();
    rt.spawn("writer", move || {
        ha.write_untimed(PAGE, 64, b"w").unwrap();
    });
    rt.spawn("reader", move || {
        work(10);
        let mut b = [0u8; 1];
        hb.read_untimed(PAGE, 64, &mut b).unwrap();
    });
    let err = catch_unwind(AssertUnwindSafe(|| rt.run())).expect_err("read-write race");
    let msg = err.downcast_ref::<String>().expect("string panic");
    assert!(msg.contains("cache line 1"), "{msg}");
}

#[test]
fn arckfs_delegated_data_path_runs_clean() {
    // The real §4.5 shape: client writes go through the delegation rings
    // (Static policy => every write >= delegation_write_min delegates), so
    // client-actor stores and kernel-side completions interleave on the
    // same file. With every edge clocked, the whole path must be
    // race-free — this is the "cross-LibFS race detector" acceptance run.
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let rd = Arc::new(RaceDetector::new());
    assert!(dev.set_race_detector(rd));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::static_thresholds());

    let rt = SimRuntime::new(0xD1CE);
    rt.enable_race_detection();
    let k = Arc::clone(&kernel);
    rt.spawn("client", move || {
        k.delegation().start();
        let fd = fs.open("/data", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let block = vec![0x5Au8; 4096];
        for i in 0..16u64 {
            fs.pwrite(fd, i * 4096, &block).unwrap(); // delegated
            fs.pwrite(fd, i * 4096, &block[..64]).unwrap(); // direct, same lines
        }
        let mut out = vec![0u8; 4096];
        assert_eq!(fs.pread(fd, 0, &mut out).unwrap(), 4096);
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
}

/// Patrol-scrub poison accounting: `poisoned_lines()` (the lock-free
/// counter) must track the exact poison-set length under concurrent
/// `poison_line` / `clear_poison` / `scrub_page` traffic — the counter
/// and the set move under one lock hold, so no interleaving may let them
/// drift. Mid-flight probes are sound because the sim scheduler only
/// preempts at sim operations, never between the two back-to-back reads.
#[cfg(feature = "faults")]
#[test]
fn poison_accounting_is_race_free() {
    use trio_nvm::{CACHE_LINE, PAGE_SIZE};
    use trio_sim::rng::SimRng;
    use trio_sim::work;

    const LINES: u64 = (PAGE_SIZE / CACHE_LINE) as u64;
    for seed in [0x9015_0A11u64, 0x9015_0A12, 0x9015_0A13] {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let pages: Vec<PageId> = (100..104).map(PageId).collect();
        let rt = SimRuntime::new(seed);
        for t in 0..3u64 {
            let dev = Arc::clone(&dev);
            let pages = pages.clone();
            let name = ["poisoner", "clearer", "scrubber"][t as usize];
            rt.spawn(name, move || {
                let mut rng = SimRng::seed_from_u64(seed ^ t);
                for _ in 0..400 {
                    let page = pages[rng.gen_range(pages.len() as u64) as usize];
                    match t {
                        0 => dev.poison_line(page, rng.gen_range(LINES) as u16),
                        1 => {
                            let _ = dev.clear_poison(page, rng.gen_range(LINES) as u16);
                        }
                        _ => {
                            let _ = dev.scrub_page(page);
                        }
                    }
                    // Counter and set agree at every observable point.
                    assert_eq!(dev.poisoned_lines(), dev.poison_set_len());
                    work(1 + rng.gen_range(40));
                }
            });
        }
        rt.run();
        // Quiesced: the counter, the set, and a per-page recount agree.
        assert_eq!(dev.poisoned_lines(), dev.poison_set_len());
        let recount: usize = pages.iter().map(|p| dev.page_poisoned_lines(*p).len()).sum();
        assert_eq!(dev.poisoned_lines(), recount, "seed {seed:#x}");
    }
}
