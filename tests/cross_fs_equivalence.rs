//! Differential testing: every file system in the repository — ArckFS
//! (with and without delegation), FPFS, and all seven baselines — runs the
//! same scripted and randomized operation sequences, and their observable
//! state (op results, directory listings, file contents, sizes) must be
//! identical. This is what makes the benchmark comparisons meaningful:
//! everyone implements the same semantics.

use std::sync::Arc;

use trio_sim::plock::Mutex;
use trio_fsapi::{read_file, FileSystem, Mode, OpenFlags};
use trio_sim::SimRuntime;

const FS_LIST: [&str; 10] = [
    "ArckFS-nd",
    "ArckFS",
    "FPFS",
    "ext4",
    "ext4-RAID0",
    "PMFS",
    "NOVA",
    "WineFS",
    "OdinFS",
    "SplitFS",
];

fn build(name: &str) -> (Arc<dyn FileSystem>, Option<Arc<trio_kernel::KernelController>>) {
    let dev = Arc::new(trio_nvm::NvmDevice::new(trio_nvm::DeviceConfig {
        topology: trio_nvm::Topology::new(2, 16 * 1024),
        ..trio_nvm::DeviceConfig::small()
    }));
    match name {
        "ArckFS-nd" | "ArckFS" | "FPFS" => {
            let kernel =
                trio_kernel::KernelController::format(dev, trio_kernel::KernelConfig::default());
            let cfg = if name == "ArckFS" {
                arckfs::ArckFsConfig::default()
            } else {
                arckfs::ArckFsConfig::no_delegation()
            };
            let fs = arckfs::ArckFs::mount(Arc::clone(&kernel), 100, 100, cfg);
            let fs: Arc<dyn FileSystem> =
                if name == "FPFS" { arckfs::FpFs::new(fs) } else { fs };
            (fs, Some(kernel))
        }
        other => (trio_baselines::build(other, dev, None) as Arc<dyn FileSystem>, None),
    }
}

/// Runs `script` on a fresh world and returns a canonical state fingerprint.
fn fingerprint(
    name: &'static str,
    script: impl Fn(&dyn FileSystem) + Send + 'static,
) -> Vec<String> {
    let (fs, kernel) = build(name);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let rt = SimRuntime::new(77);
    rt.spawn("script", move || {
        if let Some(k) = &kernel {
            let _ = k.delegation().start();
        }
        script(&*fs);
        // Canonical dump: BFS over the tree.
        let mut dump = Vec::new();
        let mut queue = vec!["/".to_string()];
        while let Some(dir) = queue.pop() {
            let mut entries = fs.readdir(&dir).unwrap();
            entries.sort_by(|a, b| a.name.cmp(&b.name));
            for e in entries {
                let p = trio_fsapi::path::join(&dir, &e.name);
                let st = fs.stat(&p).unwrap_or_else(|e| panic!("dump stat {p} on {}: {e}", fs.fs_name()));
                match e.ftype {
                    trio_fsapi::FileType::Directory => {
                        dump.push(format!("dir  {p}"));
                        queue.push(p);
                    }
                    trio_fsapi::FileType::Regular => {
                        let data = read_file(&*fs, &p).unwrap();
                        let sum: u64 =
                            data.iter().enumerate().map(|(i, &b)| (i as u64 + 1) * b as u64).sum();
                        dump.push(format!("file {p} size={} sum={sum}", st.size));
                    }
                }
            }
        }
        dump.sort();
        *out2.lock() = dump;
        if let Some(k) = &kernel {
            k.delegation().shutdown();
        }
    });
    rt.run();
    let v = out.lock().clone();
    v
}

fn scripted(fs: &dyn FileSystem) {
    fs.mkdir("/docs", Mode::RWX).unwrap();
    fs.mkdir("/docs/old", Mode::RWX).unwrap();
    fs.mkdir("/tmp", Mode::RWX).unwrap();
    let fd = fs.open("/docs/report", OpenFlags::CREATE | OpenFlags::RDWR, Mode::RW).unwrap();
    fs.pwrite(fd, 0, &vec![7u8; 10_000]).unwrap();
    fs.pwrite(fd, 5_000, &vec![9u8; 10_000]).unwrap(); // Overlap + extend.
    fs.pwrite(fd, 50_000, b"tail after hole").unwrap();
    fs.close(fd).unwrap();
    fs.truncate("/docs/report", 52_000).unwrap();
    for i in 0..30 {
        fs.create(&format!("/tmp/scratch-{i:02}"), Mode::RW).unwrap();
    }
    for i in (0..30).step_by(3) {
        fs.unlink(&format!("/tmp/scratch-{i:02}")).unwrap();
    }
    fs.rename("/docs/report", "/docs/old/report-v1").unwrap();
    fs.create("/docs/report", Mode::RW).unwrap();
    fs.rename("/tmp/scratch-01", "/docs/kept").unwrap();
    fs.rmdir("/tmp").unwrap_err(); // Not empty: must fail everywhere.
}

#[test]
fn scripted_sequence_matches_across_all_file_systems() {
    let reference = fingerprint(FS_LIST[0], scripted);
    assert!(!reference.is_empty());
    for name in &FS_LIST[1..] {
        let got = fingerprint(name, scripted);
        assert_eq!(got, reference, "state diverged on {name}");
    }
}

fn randomized(seed: u64) -> impl Fn(&dyn FileSystem) + Send + Clone {
    move |fs: &dyn FileSystem| {
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        fs.mkdir("/r", Mode::RWX).unwrap();
        let mut live: Vec<String> = Vec::new();
        for step in 0..120 {
            match rand() % 6 {
                0 | 1 => {
                    let p = format!("/r/f{}", rand() % 24);
                    if fs.create(&p, Mode::RW).is_ok() {
                        live.push(p);
                    }
                }
                2 => {
                    if let Some(p) = live.get((rand() % live.len().max(1) as u64) as usize) {
                        let fd = match fs.open(p, OpenFlags::WRONLY, Mode::RW) {
                            Ok(fd) => fd,
                            Err(_) => continue,
                        };
                        let data = vec![(step % 251) as u8; (rand() % 9000) as usize + 1];
                        fs.pwrite(fd, rand() % 4096, &data).unwrap_or_else(|e| panic!("pwrite {p} step {step}: {e}"));
                        fs.close(fd).unwrap();
                    }
                }
                3 => {
                    let p = format!("/r/f{}", rand() % 24);
                    let _ = fs.unlink(&p);
                    live.retain(|x| *x != p);
                }
                4 => {
                    let src = format!("/r/f{}", rand() % 24);
                    let dst = format!("/r/g{}", rand() % 24);
                    if fs.rename(&src, &dst).is_ok() {
                        live.retain(|x| *x != src);
                        live.push(dst);
                    }
                }
                _ => {
                    let p = format!("/r/f{}", rand() % 24);
                    if fs.stat(&p).is_ok() {
                        let _ = fs.truncate(&p, rand() % 6000);
                    }
                }
            }
        }
    }
}

#[test]
fn randomized_sequences_match_across_all_file_systems() {
    for seed in [3u64, 1337] {
        let script = randomized(seed);
        let reference = fingerprint(FS_LIST[0], script.clone());
        for name in &FS_LIST[1..] {
            let got = fingerprint(name, randomized(seed));
            assert_eq!(got, reference, "seed {seed}: state diverged on {name}");
        }
    }
}
