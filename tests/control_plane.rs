//! Lock-free kernel control plane (DESIGN.md §20): churn, epochs, and
//! the bounded event ring, exercised end to end.
//!
//! PR-10 moved page/ino provenance out of the single `Registry` mutex
//! into sharded maps, put freed frames through epoch-based reclamation,
//! and bounded the kernel event log. These tests pin the properties that
//! refactor must preserve:
//!
//! * concurrent register/alloc/free/unregister churn across many tenants
//!   runs clean under the vector-clock race detector — every frame
//!   hand-off (free → scrub → recycle → re-grant, possibly to a
//!   *different* actor) carries a happens-before edge,
//! * an `EpochPin` really holds freed frames in limbo (never re-granted
//!   while a provenance walk may still read them) and releasing it
//!   really drains them,
//! * limbo is volatile: a crash with frames parked in limbo loses
//!   nothing reachable — recovery recomputes them as free and every
//!   surviving file reads back intact,
//! * the quarantine lifecycle (enter → blocked reads → repair →
//!   readmit) still works through the split registry/tainted-index path,
//! * steady-state alloc/free takes exactly zero registry control-lock
//!   acquisitions (the perf-gate property, asserted at test granularity),
//! * the event ring drops oldest, keeps newest, and counts what it shed.

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack, ALL_ATTACKS};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem};
use trio_kernel::registry::KernelEvent;
use trio_kernel::shard::{EventRing, EVENT_RING_CAPACITY};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, PageId, RegistryLockSite, Topology};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::rng::SimRng;
use trio_sim::{work, RaceDetector, SimRuntime};

fn device() -> Arc<NvmDevice> {
    Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(2, 32 * 1024),
        ..DeviceConfig::small()
    }))
}

// ---------------------------------------------------------------------
// Concurrent control-plane churn under the race detector.
// ---------------------------------------------------------------------

/// Many tenants register, allocate, write through their grants, free,
/// and unregister concurrently while an admin thread pokes the cold
/// control surfaces. With the race detector threading vector clocks
/// through every SimMutex — including the provenance shards, the epoch
/// GC, and the allocator caches — the run must finish without a single
/// report: the lock-free fast paths still order every cross-actor frame
/// hand-off. Afterwards the page ledger must balance exactly.
#[test]
fn concurrent_tenant_churn_is_race_clean_and_conserves_pages() {
    let dev = device();
    let rd = Arc::new(RaceDetector::new());
    assert!(dev.set_race_detector(rd));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let baseline = kernel.free_page_count() + kernel.cached_page_count();

    let rt = SimRuntime::new(0xC0A7_1A7E);
    rt.enable_race_detection();
    for t in 0..6u64 {
        let k = Arc::clone(&kernel);
        rt.spawn(&format!("tenant-{t}"), move || {
            let mut rng = SimRng::seed_from_u64(0x51ED ^ t);
            for _round in 0..3 {
                let regn = k.register_libfs(1000 + t as u32, 1000);
                let actor = regn.actor;
                let mut held: Vec<PageId> = Vec::new();
                for _ in 0..24 {
                    match rng.gen_range(3) {
                        0 => {
                            let n = 1 + rng.gen_range(8) as usize;
                            if let Ok(mut pages) = k.alloc_pages(actor, n, None) {
                                // Dirty a granted frame so a later owner
                                // of the recycled page would race with us
                                // if any hand-off edge were missing.
                                if let Some(p) = pages.first() {
                                    regn.handle.write_untimed(*p, 0, b"churn!!!").unwrap();
                                }
                                held.append(&mut pages);
                            }
                        }
                        1 if !held.is_empty() => {
                            let n = 1 + rng.gen_range(held.len() as u64) as usize;
                            let give: Vec<PageId> = held.drain(..n).collect();
                            k.free_pages(actor, &give).unwrap();
                        }
                        _ => {
                            let _ = k.alloc_inos(actor, 1 + rng.gen_range(4));
                        }
                    }
                    work(1 + rng.gen_range(200));
                }
                if !held.is_empty() {
                    k.free_pages(actor, &held).unwrap();
                }
                k.unregister(actor);
            }
        });
    }
    let k = Arc::clone(&kernel);
    rt.spawn("admin", move || {
        for _ in 0..40 {
            let _ = k.credentials(ActorId(1));
            let _ = k.limbo_page_count();
            let _ = k.repair_quarantined();
            let _ = k.dropped_event_count();
            work(500);
        }
    });
    rt.run(); // A single missing happens-before edge aborts this line.

    // Every tenant freed and unregistered: the ledger must balance and
    // nothing may be left in limbo, quarantined, or dropped.
    assert_eq!(
        kernel.free_page_count() + kernel.cached_page_count(),
        baseline,
        "page ledger must balance after full churn"
    );
    assert_eq!(kernel.limbo_page_count(), 0);
    assert!(kernel.quarantined_actors().is_empty());
    assert_eq!(kernel.path_stats().snapshot().events_dropped, 0);
}

// ---------------------------------------------------------------------
// Epoch-based reclamation semantics.
// ---------------------------------------------------------------------

/// A live pin holds freed frames in limbo — provenance intact, never
/// re-granted — and dropping it releases them to the next reclaim.
#[test]
fn epoch_pin_holds_freed_frames_out_of_circulation() {
    let kernel = KernelController::format(device(), KernelConfig::default());
    let regn = kernel.register_libfs(1000, 1000);
    let freed = kernel.alloc_pages(regn.actor, 16, None).unwrap();
    assert_eq!(kernel.limbo_page_count(), 0);

    let pin = kernel.epoch_pin();
    kernel.free_pages(regn.actor, &freed).unwrap();
    assert_eq!(kernel.limbo_page_count(), 16, "pinned frees park in limbo");

    // While the pin is live the limbo frames must not come back out of
    // the allocator, no matter how many fresh grants we pull.
    let again = kernel.alloc_pages(regn.actor, 16, None).unwrap();
    for p in &again {
        assert!(!freed.contains(p), "page {p:?} re-granted while pinned");
    }
    assert_eq!(kernel.limbo_page_count(), 16, "allocation must not drain a pinned limbo");

    drop(pin);
    // The ledger accessors reclaim on the way in; after the drop the
    // parked frames rejoin circulation and the ledger balances.
    let _ = kernel.free_page_count();
    assert_eq!(kernel.limbo_page_count(), 0, "unpinned limbo drains on next reclaim");
    kernel.free_pages(regn.actor, &again).unwrap();
    assert_eq!(kernel.limbo_page_count(), 0);
}

/// Limbo is volatile state: crashing with frames parked under a live pin
/// loses nothing reachable. Recovery recomputes those frames as free
/// (they belong to no file) and every surviving file reads back intact —
/// epoch reclamation never frees state recovery can reach.
#[test]
fn crash_with_frames_in_limbo_recovers_them_as_free() {
    let dev = device();
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let payload = vec![0xA5u8; 24 * 1024];

    // Durable, kernel-verified file that must survive the crash.
    {
        let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
        let p = payload.clone();
        let rt = SimRuntime::new(0xEC40);
        rt.spawn("setup", move || {
            write_file(&*fs, "/keep", &p).unwrap();
            fs.release_path("/keep").unwrap();
        });
        rt.run();
    }

    // A raw tenant frees a burst under a live pin, then the machine dies
    // with the pin still held (mem::forget = the pinning walk never got
    // to finish).
    let regn = kernel.register_libfs(1000, 1000);
    let burst = kernel.alloc_pages(regn.actor, 32, None).unwrap();
    let pin = kernel.epoch_pin();
    kernel.free_pages(regn.actor, &burst).unwrap();
    assert_eq!(kernel.limbo_page_count(), 32);
    let free_before = kernel.free_page_count();
    let cached_before = kernel.cached_page_count();
    std::mem::forget(pin);
    drop(kernel);

    let kernel2 = KernelController::recover(Arc::clone(&dev), KernelConfig::default())
        .expect("recovery after limbo crash");
    assert!(kernel2.fsck().is_empty(), "fsck clean after recovering a limbo crash");
    assert_eq!(kernel2.limbo_page_count(), 0, "limbo does not survive a crash");
    // The 32 limbo frames are unreachable from any file, so recovery's
    // provenance walk returns them to the free pool — nothing leaks
    // across the crash. (Recovery frees more than just limbo: journal
    // and checkpoint frames from the dead mounts come back too, hence
    // the lower bound.)
    assert!(
        kernel2.free_page_count() + kernel2.cached_page_count() >= free_before + cached_before + 32,
        "recovery reclaims limbo frames into the free pool"
    );

    let fs2 = ArckFs::mount(Arc::clone(&kernel2), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0xEC41);
    let seen = Arc::new(PlMutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    rt.spawn("readback", move || {
        *s2.lock() = read_file(&*fs2, "/keep").unwrap();
    });
    rt.run();
    assert_eq!(*seen.lock(), payload, "reachable file intact: limbo never held its pages");
}

// ---------------------------------------------------------------------
// Quarantine lifecycle through the split control plane.
// ---------------------------------------------------------------------

/// With auto-repair off, a detected attack must quarantine the offender
/// (kernel service refused, tainted subtree unreadable via the O(1)
/// reverse index), and an explicit repair pass must readmit it — the
/// full DESIGN.md §14 lifecycle across the refactored registry.
#[test]
fn quarantine_blocks_tainted_reads_until_explicit_repair() {
    let attack =
        *ALL_ATTACKS.iter().find(|a| **a != Attack::RemoveNonEmptyDir).expect("attack available");
    let dev = device();
    let kernel = KernelController::format(
        dev,
        KernelConfig { auto_repair: false, ..KernelConfig::default() },
    );
    let evil = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let victim = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let evil_actor = evil.actor();

    let rt = SimRuntime::new(0x9A11);
    let k = Arc::clone(&kernel);
    rt.spawn("lifecycle", move || {
        use trio_fsapi::{Mode, OpenFlags};
        // Stage: build the tree, hand it over clean, re-take write grants.
        evil.mkdir("/dir", Mode(0o777)).unwrap();
        write_file(&*evil, "/dir/victim", &vec![7u8; 16 * 1024]).unwrap();
        evil.release_path("/dir").unwrap();
        let _ = victim.readdir("/dir").unwrap();
        let _ = read_file(&*victim, "/dir/victim").unwrap();
        let fd = evil.open("/dir/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &[7u8]).unwrap();
        evil.close(fd).unwrap();

        // Attack, then let the victim's remap trigger verification.
        run_attack(&evil, attack, "/dir", "victim").unwrap();
        let _ = evil.release_path("/dir/victim");
        let _ = evil.release_path("/dir");
        let _ = k.take_events();
        let _ = victim.readdir("/dir");
        let _ = read_file(&*victim, "/dir/victim");
        let events = k.take_events();
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::Quarantined { actor, .. } if *actor == evil_actor)),
            "attack must quarantine the offender: {events:?}"
        );

        // Contained: the offender gets no kernel service, and the tainted
        // subtree stays unreadable (one reverse-index probe per map).
        assert_eq!(k.quarantined_actors(), vec![evil_actor]);
        assert!(k.alloc_pages(evil_actor, 1, None).is_err(), "quarantined actor refused");
        assert!(
            read_file(&*victim, "/dir/victim").is_err(),
            "tainted file must stay unreadable while its corruptor is unrepaired"
        );

        // Explicit repair readmits and unblocks the subtree.
        assert_eq!(k.repair_quarantined(), 1);
        let events = k.take_events();
        assert!(
            events.iter().any(|e| matches!(e, KernelEvent::Readmitted { actor } if *actor == evil_actor)),
            "repair must readmit: {events:?}"
        );
        assert!(k.quarantined_actors().is_empty());
        let entries = victim.readdir("/dir").unwrap();
        for e in &entries {
            let p = format!("/dir/{}", e.name);
            assert!(victim.stat(&p).is_ok(), "post-repair view walkable at {p}");
        }
        assert!(k.alloc_pages(evil_actor, 1, None).is_ok(), "readmitted actor served again");
    });
    rt.run();
}

// ---------------------------------------------------------------------
// The perf-gate property at test granularity.
// ---------------------------------------------------------------------

/// Steady-state alloc/free — including cache refills and spills — takes
/// exactly zero registry control-lock acquisitions. This is the property
/// the perf gate pins on `BENCH_datapath.json` (`registry_locks <= 10`),
/// asserted here directly via the per-call-site counters so a regression
/// names its call site instead of just moving a benchmark number.
#[test]
fn steady_state_alloc_free_takes_zero_registry_locks() {
    let kernel = KernelController::format(device(), KernelConfig::default());
    let regn = kernel.register_libfs(1000, 1000);
    // Warm-up burst: populates the allocator cache (even this refill is
    // lock-free now, but keep the measured window purely steady-state).
    let warm = kernel.alloc_pages(regn.actor, 64, None).unwrap();
    kernel.free_pages(regn.actor, &warm).unwrap();

    let s0 = kernel.path_stats().snapshot();
    for _ in 0..200 {
        let pages = kernel.alloc_pages(regn.actor, 8, None).unwrap();
        kernel.free_pages(regn.actor, &pages).unwrap();
    }
    let d = kernel.path_stats().snapshot().delta(&s0);

    assert_eq!(d.registry_locks, 0, "steady-state alloc/free must not take the control lock");
    for site in RegistryLockSite::ALL {
        if site.is_hot() {
            assert_eq!(
                d.registry_lock_site(site),
                0,
                "hot site {} acquired the registry lock",
                site.as_str()
            );
        }
    }
    assert!(d.alloc_fast_hits >= 190, "cache serves the burst: {} fast hits", d.alloc_fast_hits);
    assert_eq!(d.events_dropped, 0);
    // The attribution surface is part of the contract: the JSON the
    // benches emit must carry the per-site breakdown the gate reads.
    let json = kernel.path_stats().snapshot().to_json(&[]);
    assert!(json.contains("\"registry_lock_sites\""), "per-site counters surfaced in JSON");
    assert!(json.contains("\"events_dropped\""), "ring overflow surfaced in JSON");
}

// ---------------------------------------------------------------------
// Bounded event ring.
// ---------------------------------------------------------------------

/// Overflow evicts oldest-first, keeps the newest window, and counts
/// every eviction — the fix for the unbounded `Registry::events` vec.
#[test]
fn event_ring_overflow_keeps_newest_and_counts_drops() {
    let ring = EventRing::new(8);
    for ino in 0..12u64 {
        ring.push(KernelEvent::RolledBack { ino });
    }
    assert_eq!(ring.dropped(), 4, "four oldest evicted");
    assert_eq!(ring.len(), 8);
    let events = ring.drain();
    assert!(matches!(events.first(), Some(KernelEvent::RolledBack { ino: 4 })));
    assert!(matches!(events.last(), Some(KernelEvent::RolledBack { ino: 11 })));
    assert!(ring.is_empty(), "drain keeps the old drain-on-read semantics");
    assert_eq!(ring.dropped(), 4, "drop counter is lifetime, not per-drain");
    // The production capacity is big enough that no existing drain
    // cadence sheds events (the churn test asserts events_dropped == 0).
    assert!(EVENT_RING_CAPACITY >= 1024);
}
