//! Delegation-thread and media-error fault injection: stalled or wedged
//! delegation threads must never hang a client (deadline + retry with
//! backoff, then graceful degradation to direct access), and poisoned
//! cache lines must surface as `FsError`s — never panics — and be
//! repairable by full-line overwrites.
#![cfg(feature = "faults")]

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, FsError, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::{SimRuntime, MILLIS, SECONDS};

fn world(cfg: ArckFsConfig) -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, cfg);
    (dev, kernel, fs)
}

/// Delegation threads randomly stall past the client deadline and drop
/// requests outright. Every access still completes correctly — retries
/// cover transient faults, and after the attempt budget the client falls
/// back to non-delegated direct access.
#[test]
fn delegated_io_survives_stalls_and_drops() {
    let (_, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(31);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        k.delegation().start();
        // Stall 1-in-3 requests by 20ms (far past the 5ms deadline); drop
        // 1-in-4 without ever replying.
        k.delegation().inject_faults(3, 20 * MILLIS, 4);
        let t0 = trio_sim::now();
        let fd = fs.open("/big", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let chunk = 64 * 1024; // >= both delegation thresholds
        for i in 0..8u64 {
            let block: Vec<u8> = (0..chunk).map(|b| (b as u64 + i) as u8).collect();
            assert_eq!(fs.pwrite(fd, i * chunk as u64, &block).unwrap(), chunk);
        }
        for i in 0..8u64 {
            let mut buf = vec![0u8; chunk];
            assert_eq!(fs.pread(fd, i * chunk as u64, &mut buf).unwrap(), chunk);
            let want: Vec<u8> = (0..chunk).map(|b| (b as u64 + i) as u8).collect();
            assert_eq!(buf, want, "chunk {i} corrupted under delegation faults");
        }
        fs.close(fd).unwrap();
        // Bounded completion: deadlines + fallback, not unbounded waiting.
        assert!(
            trio_sim::now() - t0 < 5 * SECONDS,
            "faulted delegation took unreasonably long"
        );
        k.delegation().shutdown();
    });
    rt.run();
}

/// With every request dropped, all delegated attempts time out and the
/// client degrades to direct access — still correct, never hung.
#[test]
fn fully_wedged_delegation_pool_degrades_to_direct_access() {
    let (_, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(32);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        k.delegation().start();
        k.delegation().inject_faults(0, 0, 1); // Drop 1-in-1: total wedge.
        let fd = fs.open("/w", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let data = vec![0x5Au8; 64 * 1024];
        assert_eq!(fs.pwrite(fd, 0, &data).unwrap(), data.len());
        let mut buf = vec![0u8; 64 * 1024];
        assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), buf.len());
        assert_eq!(buf, data);
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
}

/// A poisoned cache line in a file's data page surfaces as
/// `FsError::Corrupted` on reads and partial overwrites; a store covering
/// the whole line repairs the media and normal service resumes.
#[test]
fn poisoned_line_faults_reads_and_full_overwrite_repairs() {
    let (dev, _, fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(33);
    rt.spawn("main", move || {
        trio_fsapi::write_file(&*fs, "/p", &vec![0xCCu8; 4096]).unwrap();
        let (_, _, data) = fs.debug_file_pages("/p").unwrap();
        let page = data[0].unwrap();
        dev.poison_line(page, 2); // Bytes 128..192.
        assert_eq!(dev.poisoned_lines(), 1);
        let fd = fs.open("/p", OpenFlags::RDWR, Mode(0o666)).unwrap();
        // Reads overlapping the poisoned line fault...
        let mut buf = [0u8; 64];
        assert_eq!(fs.pread(fd, 128, &mut buf).err(), Some(FsError::Corrupted));
        assert_eq!(fs.pread(fd, 100, &mut buf).err(), Some(FsError::Corrupted));
        // ...but lines outside it still read fine.
        assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), 64);
        assert!(buf.iter().all(|&b| b == 0xCC));
        // A partial store cannot repair (it would have to read-modify-write
        // the dead line) and faults too.
        assert_eq!(fs.pwrite(fd, 130, b"xy").err(), Some(FsError::Corrupted));
        // A store covering the whole line rewrites the media and repairs.
        assert_eq!(fs.pwrite(fd, 128, &[0xDDu8; 64]).unwrap(), 64);
        assert_eq!(dev.poisoned_lines(), 0);
        let mut buf = [0u8; 64];
        assert_eq!(fs.pread(fd, 128, &mut buf).unwrap(), 64);
        assert!(buf.iter().all(|&b| b == 0xDD));
        fs.close(fd).unwrap();
    });
    rt.run();
}

/// Media errors propagate through the delegation path as structured
/// faults: the delegation thread's access trips the poison, the client
/// receives `Corrupted` — no retry storm, no panic, no hang.
#[test]
fn poison_surfaces_through_delegated_reads() {
    let (dev, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(34);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        k.delegation().start();
        let len = 64 * 1024;
        trio_fsapi::write_file(&*fs, "/dp", &vec![0xEEu8; len]).unwrap();
        let (_, _, data) = fs.debug_file_pages("/dp").unwrap();
        dev.poison_line(data[3].unwrap(), 5);
        let fd = fs.open("/dp", OpenFlags::RDWR, Mode(0o666)).unwrap();
        let mut buf = vec![0u8; len]; // Delegated (>= read threshold).
        assert_eq!(fs.pread(fd, 0, &mut buf).err(), Some(FsError::Corrupted));
        // Repair by rewriting the whole poisoned page (delegated write).
        assert_eq!(fs.pwrite(fd, 3 * 4096, &vec![0xEEu8; 4096]).unwrap(), 4096);
        assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), len);
        assert!(buf.iter().all(|&b| b == 0xEE));
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
}

/// Error paths release their resources: a delegated read that faults on a
/// poisoned line, and a delegated *write* whose unaligned head partially
/// overlaps a poisoned line (too narrow to repair it), both surface
/// `Corrupted` to the client — and neither leaks a grant window. The
/// revocable-grant table must drain to zero on every failure path, or a
/// retry storm would exhaust it.
#[test]
fn poison_mid_delegation_releases_grants() {
    let (dev, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(35);
    let k = Arc::clone(&kernel);
    rt.spawn("main", move || {
        k.delegation().start();
        let len = 64 * 1024;
        trio_fsapi::write_file(&*fs, "/g", &vec![0xA7u8; len]).unwrap();
        assert_eq!(k.delegation().grants().live(), 0, "setup leaked a grant");
        let (_, _, data) = fs.debug_file_pages("/g").unwrap();
        dev.poison_line(data[2].unwrap(), 7);

        let fd = fs.open("/g", OpenFlags::RDWR, Mode(0o666)).unwrap();
        // Delegated read over the dead line: typed error, no leak.
        let mut buf = vec![0u8; len];
        assert_eq!(fs.pread(fd, 0, &mut buf).err(), Some(FsError::Corrupted));
        assert_eq!(k.delegation().grants().live(), 0, "failed read leaked its grant");

        // Delegated write, unaligned by half a cache line: its head only
        // partially covers line 7 of page 2, so the store trips the
        // poison instead of repairing it.
        let evil_off = 2 * 4096 + 7 * 64 + 32;
        let r = fs.pwrite(fd, evil_off as u64, &vec![0x11u8; len]);
        assert_eq!(r.err(), Some(FsError::Corrupted), "partial-line store must fault");
        assert_eq!(k.delegation().grants().live(), 0, "failed write leaked its grant");

        // A delegated write is not atomic across its page runs: workers on
        // clean pages may finish before the faulting run reports, so the
        // failed write can land partially. Repair is a full rewrite — the
        // aligned full-line stores clear the poison — and service resumes.
        assert_eq!(fs.pwrite(fd, 0, &vec![0xA7u8; len]).unwrap(), len);
        assert_eq!(fs.pread(fd, 0, &mut buf).unwrap(), len);
        assert!(buf.iter().all(|&b| b == 0xA7));
        assert_eq!(k.delegation().grants().live(), 0);
        fs.close(fd).unwrap();
        k.delegation().shutdown();
    });
    rt.run();
}
