//! Media-fault tolerance end to end (DESIGN.md §19): the kernel patrol
//! scrubber's repair routes, bad-page retirement with allocator
//! conservation, and the seeded replayable fault campaign the media gate
//! runs — poison and rot injected under live delegated traffic, plus
//! crash points planted inside the recovery repair path itself.
//!
//! Campaign knobs (all optional):
//!   TRIO_MEDIA_SEED=<u64>  base seed (default 0xC0FFEE)
//!   TRIO_MEDIA_ITER=<n>    iterations (default 40; the gate runs 500)
//!
//! The campaign writes `target/media-report.json` with aggregate
//! counters; `verify.sh` asserts 100% metadata-fault detection and zero
//! silent data loss from it.
#![cfg(feature = "faults")]

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, FsError, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_layout::{superblock::SUPERBLOCK_PAGE, superblock_replica_page, SbHealth, SuperblockRef};
use trio_nvm::{
    DeviceConfig, FaultPlan, NvmDevice, NvmHandle, PageId, Topology, KERNEL_ACTOR, PAGE_SIZE,
};
use trio_sim::rng::SimRng;
use trio_sim::SimRuntime;

const PAGES: u64 = 16 * 1024;

fn world(cfg: ArckFsConfig) -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, PAGES as usize),
        track_persistence: true,
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        Arc::clone(&dev),
        KernelConfig { delegation_threads_per_node: 2, ..KernelConfig::default() },
    );
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, cfg);
    (dev, kernel, fs)
}

/// `free + cached + retired`: the allocator's conservation sum. Constant
/// across any amount of scrubbing, repair, migration, and retirement —
/// only file creation/deletion moves it.
fn accounted(kernel: &KernelController) -> usize {
    kernel.free_page_count() + kernel.cached_page_count() + kernel.retired_page_count()
}

// ---------------------------------------------------------------------
// Patrol routes, one by one.
// ---------------------------------------------------------------------

/// A poisoned free-pool page is durably scrubbed clean by the patrol.
#[test]
fn patrol_scrubs_poisoned_free_page() {
    let (dev, kernel, _fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x51);
    rt.spawn("main", move || {
        let victim = PageId(PAGES - 7); // Deep in the free pool.
        dev.poison_line(victim, 5);
        let before = accounted(&kernel);
        let rep = kernel.scrub_pass(PAGES as usize);
        assert_eq!(rep.scanned, PAGES);
        assert!(rep.poison_lines >= 1, "patrol missed the poisoned line: {rep:?}");
        assert!(rep.pool_scrubs >= 1, "free-page route did not fire: {rep:?}");
        assert!(dev.page_poisoned_lines(victim).is_empty(), "poison survived the scrub");
        assert_eq!(accounted(&kernel), before, "scrub must not move the conservation sum");
        let snap = kernel.media_stats().snapshot();
        assert_eq!(snap.scrub_passes, 1);
        assert!(snap.poison_lines_found >= 1 && snap.pool_scrubs >= 1);
        assert!(snap.repairs() >= 1 && snap.repair_latency_pct(50.0) > 0);
    });
    rt.run();
}

/// Poison on either superblock copy is healed from its twin, under the
/// kernel's superblock lock, without disturbing service.
#[test]
fn patrol_twin_repairs_superblock() {
    let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x52);
    rt.spawn("main", move || {
        write_file(&*fs, "/keep", b"survives sb faults").unwrap();
        for victim in [SUPERBLOCK_PAGE, superblock_replica_page(PAGES)] {
            dev.poison_line(victim, 0);
            let rep = kernel.scrub_pass(PAGES as usize);
            assert!(rep.sb_repairs >= 1, "sb twin repair did not fire for {victim:?}: {rep:?}");
            assert!(dev.page_poisoned_lines(victim).is_empty(), "sb poison survived");
        }
        // Both copies are sealed and identical again.
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        assert_eq!(SuperblockRef::new(&kh).scrub(), Ok(SbHealth::Clean));
        assert_eq!(read_file(&*fs, "/keep").unwrap(), b"survives sb faults");
        assert_eq!(kernel.media_stats().snapshot().sb_repairs, 2);
    });
    rt.run();
}

/// A registered journal mirror pair heals from its healthy twin; the
/// repair takes the shard lock, so it can never interleave with a rename.
#[test]
fn patrol_twin_repairs_registered_journal_shard() {
    let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x53);
    rt.spawn("main", move || {
        fs.create("/a", Mode(0o666)).unwrap();
        fs.rename("/a", "/b").unwrap(); // Populates one journal shard.
        let registered = fs.register_journal_twins();
        assert!(registered >= 1, "no mirrored shard to register");
        let (primary, mirror) = fs
            .journal_page_pairs()
            .into_iter()
            .find_map(|(p, m)| m.map(|m| (p, m)))
            .expect("mirrored shard exists");
        for (victim, healthy) in [(primary, mirror), (mirror, primary)] {
            dev.poison_line(victim, 0); // Line 0 holds the record header.
            let rep = kernel.scrub_pass(PAGES as usize);
            assert!(
                rep.journal_repairs >= 1,
                "journal twin repair did not fire for {victim:?}: {rep:?}"
            );
            assert!(dev.page_poisoned_lines(victim).is_empty(), "journal poison survived");
            assert!(dev.page_poisoned_lines(healthy).is_empty());
        }
        // The repaired record still drives recovery (disarmed, 0 undone).
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        let pairs = fs.journal_page_pairs();
        arckfs::journal::Journal::recover_pairs(&kh, &pairs).unwrap();
        assert!(kernel.media_stats().snapshot().journal_repairs >= 2);
    });
    rt.run();
}

/// A media fault inside a verified file routes the file back through
/// verification: the kernel detects, rolls back, and the client sees a
/// typed error on the dead region — never silent wrong bytes.
#[test]
fn scrub_routes_file_fault_through_verification() {
    let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
    let reader = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x54);
    rt.spawn("main", move || {
        write_file(&*fs, "/f", &vec![0xABu8; 3 * PAGE_SIZE]).unwrap();
        fs.release_path("/f").unwrap();
        // Cross-LibFS read verifies the file: provenance becomes InFile.
        assert_eq!(read_file(&*reader, "/f").unwrap().len(), 3 * PAGE_SIZE);
        let (_, _, data) = reader.debug_file_pages("/f").unwrap();
        let victim = data[1].unwrap();
        dev.poison_line(victim, 9);
        let rep = kernel.scrub_pass(PAGES as usize);
        assert!(rep.files_routed >= 1, "file route did not fire: {rep:?}");
        // Detected-unrepairable: the dead line answers loudly...
        let fd = reader.open("/f", OpenFlags::RDONLY, Mode(0)).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(
            reader.pread(fd, PAGE_SIZE as u64 + 9 * 64, &mut buf).err(),
            Some(FsError::Corrupted)
        );
        // ...while untouched pages still serve correct bytes.
        assert_eq!(reader.pread(fd, 0, &mut buf).unwrap(), 64);
        assert!(buf.iter().all(|&b| b == 0xAB));
        reader.close(fd).unwrap();
    });
    rt.run();
}

/// Silent rot under a delegated write's integrity sidecar is caught by
/// the checksum-verifying scrub and fenced off: reads fail loudly
/// instead of returning wrong bytes.
#[test]
fn scrub_detects_and_fences_silent_rot() {
    let (dev, kernel, fs) = world(ArckFsConfig::default());
    let rt = SimRuntime::new(0x55);
    rt.spawn("main", move || {
        kernel.delegation().start();
        let fd = fs.open("/rot", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let data = vec![0x5Cu8; 64 * 1024]; // Delegated, hashed inline.
        assert_eq!(fs.pwrite(fd, 0, &data).unwrap(), data.len());
        let (_, _, pages) = fs.debug_file_pages("/rot").unwrap();
        let victim = pages[3].unwrap();
        // Flip a byte behind the sidecar's back: undetectable by reads.
        assert!(dev.rot_byte(victim, 1234), "delegated write must leave a sidecar");
        assert_eq!(dev.page_csum_ok(victim), Ok(Some(false)));
        let mut buf = [0u8; 64];
        assert_eq!(fs.pread(fd, 3 * PAGE_SIZE as u64 + 1216, &mut buf).unwrap(), 64); // Silent!
        // The patrol turns silent rot into loud, typed failure.
        let rep = kernel.scrub_pass(PAGES as usize);
        assert!(rep.rot_pages >= 1, "rot not detected: {rep:?}");
        assert!(rep.fenced_off >= 1, "rotted page not fenced off: {rep:?}");
        assert_eq!(
            fs.pread(fd, 3 * PAGE_SIZE as u64 + 1216, &mut buf).err(),
            Some(FsError::Corrupted)
        );
        fs.close(fd).unwrap();
        kernel.delegation().shutdown();
    });
    rt.run();
}

// ---------------------------------------------------------------------
// Retirement.
// ---------------------------------------------------------------------

/// A free page that keeps faulting is retired: pulled from the pool,
/// never allocated again, with `free + cached + retired` conserved.
#[test]
fn repeat_offender_free_page_is_retired() {
    let (dev, kernel, _fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x56);
    rt.spawn("main", move || {
        let victim = PageId(PAGES - 13);
        let before = accounted(&kernel);
        for round in 0..3 {
            dev.poison_line(victim, (round % 4) as u16);
            kernel.scrub_pass(PAGES as usize);
        }
        assert_eq!(kernel.retired_page_count(), 1, "third strike must retire");
        assert_eq!(accounted(&kernel), before, "retirement must conserve pages");
        assert!(dev.page_poisoned_lines(victim).is_empty());
        // Retired pages are skipped by later passes and stay retired.
        let rep = kernel.scrub_pass(PAGES as usize);
        assert_eq!(rep.retired, 0);
        assert_eq!(kernel.retired_page_count(), 1);
    });
    rt.run();
}

/// A regular file's data page that keeps faulting (and is repaired by its
/// owner in between) is migrated whole — contents and sidecar moved, the
/// index slot swung, mappings re-pointed — and the flaky frame retired,
/// all invisible to the client.
#[test]
fn flaky_file_data_page_is_migrated_then_retired() {
    let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
    let reader = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x57);
    rt.spawn("main", move || {
        write_file(&*fs, "/m", &vec![0x3Eu8; 2 * PAGE_SIZE]).unwrap();
        // Share once so the pages are verified `InFile` core state — the
        // only provenance the kernel will migrate on its own authority.
        fs.release_path("/m").unwrap();
        assert_eq!(read_file(&*reader, "/m").unwrap().len(), 2 * PAGE_SIZE);
        let (_, _, pages) = fs.debug_file_pages("/m").unwrap();
        let victim = pages[1].unwrap();
        let fd = fs.open("/m", OpenFlags::RDWR, Mode(0o666)).unwrap();
        let before = accounted(&kernel);
        for _ in 0..3 {
            dev.poison_line(victim, 2);
            kernel.scrub_pass(PAGES as usize); // Observes the fault.
            // The owner's full-line store repairs the poison each time.
            assert_eq!(fs.pwrite(fd, PAGE_SIZE as u64 + 2 * 64, &[0x3E; 64]).unwrap(), 64);
        }
        // While the owner holds a live mapping the page must NOT move —
        // the LibFS caches its location in auxiliary state.
        let rep = kernel.scrub_pass(PAGES as usize);
        assert_eq!(rep.migrated, 0, "migrated under a live mapping: {rep:?}");
        // Quiesce: close the fd and hand the file back to core state.
        fs.close(fd).unwrap();
        fs.release_path("/m").unwrap();
        // Now the page is clean, quiescent, and past the threshold: migrate.
        let rep = kernel.scrub_pass(PAGES as usize);
        assert!(rep.migrated >= 1, "clean flaky page not migrated: {rep:?}");
        assert_eq!(kernel.retired_page_count(), 1);
        // Conserved: the fresh frame left the pool, the flaky one retired.
        assert_eq!(accounted(&kernel), before, "migration must conserve the sum");
        // A fresh mount rebuilds from core state and sees the new frame.
        let late =
            ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
        let (_, _, after) = late.debug_file_pages("/m").unwrap();
        assert_ne!(after[1].unwrap(), victim, "index slot must point at the fresh frame");
        // The client never noticed: same bytes, same size.
        let buf = read_file(&*late, "/m").unwrap();
        assert_eq!(buf.len(), 2 * PAGE_SIZE);
        assert!(buf.iter().all(|&b| b == 0x3E));
    });
    rt.run();
}

// ---------------------------------------------------------------------
// Crash points inside the repair path.
// ---------------------------------------------------------------------

/// Recovery's superblock twin repair is crash-idempotent: a crash planted
/// mid-repair leaves a state the next recovery repairs again, converging
/// to two sealed copies and a clean fsck.
#[test]
fn crash_inside_recovery_repair_is_idempotent() {
    for k in 0..6u64 {
        let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
        let rt = SimRuntime::new(0x58 + k);
        let fs2 = Arc::clone(&fs);
        rt.spawn("setup", move || {
            write_file(&*fs2, "/pin", b"acked and durable").unwrap();
        });
        rt.run();
        drop(fs);
        drop(kernel);
        dev.crash();
        // Fault the primary, then crash at the k-th store of the repair.
        dev.poison_line(SUPERBLOCK_PAGE, 0);
        dev.arm_crash_plan(FaultPlan::crash_at_point(k));
        let _ = KernelController::recover(Arc::clone(&dev), KernelConfig::default());
        dev.crash();
        // Second recovery with no plan must converge.
        let kernel2 = KernelController::recover(Arc::clone(&dev), KernelConfig::default())
            .unwrap_or_else(|e| panic!("re-recovery failed at crash point {k}: {e:?}"));
        assert!(kernel2.fsck().is_empty(), "fsck dirty after crash point {k}");
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        assert_eq!(SuperblockRef::new(&kh).scrub(), Ok(SbHealth::Clean), "crash point {k}");
        let fs2 = ArckFs::mount(kernel2, 1000, 1000, ArckFsConfig::no_delegation());
        assert_eq!(read_file(&*fs2, "/pin").unwrap(), b"acked and durable");
    }
}

// ---------------------------------------------------------------------
// The campaign.
// ---------------------------------------------------------------------

#[derive(Default)]
struct CampaignTally {
    iterations: u64,
    metadata_faults_injected: u64,
    metadata_faults_repaired: u64,
    data_faults_injected: u64,
    data_faults_loud: u64,
    silent_data_loss: u64,
    pages_retired: u64,
    conservation_violations: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One seeded iteration: live delegated traffic, 1–3 injected media
/// faults, full-device patrol, then the verdicts.
fn campaign_iter(seed: u64, tally: &mut CampaignTally) {
    let rng = &mut SimRng::seed_from_u64(seed);
    let (dev, kernel, fs) = world(ArckFsConfig::default());

    // Traffic: a delegated hashed write, rename-journal activity, and a
    // shared (verified, InFile) file — every repair route armed.
    let payload = vec![(seed as u8) | 1; 64 * 1024];
    let (fs2, k2, payload2) = (Arc::clone(&fs), Arc::clone(&kernel), payload.clone());
    let rt = SimRuntime::new(seed);
    rt.spawn("traffic", move || {
        k2.delegation().start();
        let fd = fs2.open("/data", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        assert_eq!(fs2.pwrite(fd, 0, &payload2).unwrap(), payload2.len());
        fs2.close(fd).unwrap();
        fs2.create("/tmp0", Mode(0o666)).unwrap();
        fs2.rename("/tmp0", "/tmp1").unwrap();
        fs2.register_journal_twins();
        write_file(&*fs2, "/shared", &vec![0x77u8; 2 * PAGE_SIZE]).unwrap();
        fs2.release_path("/shared").unwrap();
        k2.delegation().shutdown();
    });
    rt.run();

    let reader = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(seed ^ 0x9E37);
    let (r2, _k3) = (Arc::clone(&reader), Arc::clone(&kernel));
    rt.spawn("verify-share", move || {
        assert_eq!(read_file(&*r2, "/shared").unwrap().len(), 2 * PAGE_SIZE);
    });
    rt.run();

    // Fault injection, seeded and replayable.
    let jpair = fs.journal_page_pairs().into_iter().find_map(|(p, m)| m.map(|m| (p, m)));
    let (_, _, dpages) = fs.debug_file_pages("/data").unwrap();
    let mut meta_faults = 0u64;
    let mut data_faults = 0u64;
    // Single-fault discipline per replicated pair: dual-copy metadata
    // tolerates any one media fault at a time (the architecture's claim);
    // a double fault of both copies is beyond any replication scheme.
    for _ in 0..1 + rng.gen_range(3) {
        match rng.gen_range(6) {
            0 => {
                if dev.page_poisoned_lines(superblock_replica_page(PAGES)).is_empty() {
                    dev.poison_line(SUPERBLOCK_PAGE, 0);
                    meta_faults += 1;
                }
            }
            1 => {
                if dev.page_poisoned_lines(SUPERBLOCK_PAGE).is_empty() {
                    dev.poison_line(superblock_replica_page(PAGES), 0);
                    meta_faults += 1;
                }
            }
            2 => {
                if let Some((p, m)) = jpair {
                    let (victim, twin) = if rng.one_in(2) { (p, m) } else { (m, p) };
                    if dev.page_poisoned_lines(twin).is_empty() {
                        dev.poison_line(victim, 0);
                        meta_faults += 1;
                    }
                }
            }
            3 => {
                let i = rng.gen_range(dpages.len() as u64) as usize;
                if let Some(p) = dpages[i] {
                    dev.poison_line(p, rng.gen_range(64) as u16);
                    data_faults += 1;
                }
            }
            4 => {
                let i = rng.gen_range(dpages.len() as u64) as usize;
                if let Some(p) = dpages[i] {
                    if dev.rot_byte(p, rng.gen_range(PAGE_SIZE as u64) as usize) {
                        data_faults += 1;
                    }
                }
            }
            _ => {
                // A page deep in the free pool.
                dev.poison_line(PageId(PAGES - 2 - rng.gen_range(64)), rng.gen_range(64) as u16);
            }
        }
    }
    tally.metadata_faults_injected += meta_faults;
    tally.data_faults_injected += data_faults;

    // Patrol under the same seed; two passes so fence-offs settle.
    let before = accounted(&kernel);
    let k4 = Arc::clone(&kernel);
    let rt = SimRuntime::new(seed ^ 0x51AB);
    rt.spawn("patrol", move || {
        for _ in 0..2 {
            k4.scrub_pass(PAGES as usize);
        }
    });
    rt.run();
    if accounted(&kernel) != before {
        tally.conservation_violations += 1;
    }

    // Verdicts. Metadata: every injected fault must be repaired — both
    // superblock copies sealed and identical, journal twins poison-free
    // and still valid for recovery.
    let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    let mut meta_ok = true;
    if SuperblockRef::new(&kh).scrub() != Ok(SbHealth::Clean) {
        meta_ok = false;
    }
    if let Some((p, m)) = jpair {
        if !dev.page_poisoned_lines(p).is_empty() || !dev.page_poisoned_lines(m).is_empty() {
            meta_ok = false;
        }
        if arckfs::journal::Journal::recover_pairs(&kh, &[(p, Some(m))]).is_err() {
            meta_ok = false;
        }
    }
    if meta_ok {
        tally.metadata_faults_repaired += meta_faults;
    }
    assert!(meta_ok, "seed {seed:#x}: injected metadata fault survived the patrol");

    // Data: acked bytes either read back exactly or fail loudly. Any
    // successful read returning wrong bytes is silent loss — the one
    // unforgivable outcome.
    let rt = SimRuntime::new(seed ^ 0x77AA);
    let fs5 = Arc::clone(&fs);
    let loud = Arc::new(trio_sim::plock::Mutex::new((0u64, 0u64))); // (loud, silent)
    let loud2 = Arc::clone(&loud);
    rt.spawn("readback", move || {
        let fd = fs5.open("/data", OpenFlags::RDONLY, Mode(0)).unwrap();
        for (i, chunk) in payload.chunks(PAGE_SIZE).enumerate() {
            let mut buf = vec![0u8; chunk.len()];
            match fs5.pread(fd, (i * PAGE_SIZE) as u64, &mut buf) {
                Ok(_) => {
                    if buf != chunk {
                        loud2.lock().1 += 1;
                    }
                }
                Err(_) => loud2.lock().0 += 1,
            }
        }
        fs5.close(fd).unwrap();
    });
    rt.run();
    let (loud_errors, silent) = *loud.lock();
    tally.data_faults_loud += loud_errors;
    tally.silent_data_loss += silent;
    assert_eq!(silent, 0, "seed {seed:#x}: silent data loss (wrong bytes read back)");

    tally.pages_retired += kernel.retired_page_count() as u64;
    tally.iterations += 1;
}

/// The seeded, replayable media-fault campaign (the media gate's 500
/// iterations run through here). Every injected metadata fault must be
/// detected and repaired; acked-durable data must never be silently
/// wrong; `free + cached + retired` must be conserved throughout.
#[test]
fn media_fault_campaign() {
    let base = env_u64("TRIO_MEDIA_SEED", 0xC0FFEE);
    let iters = env_u64("TRIO_MEDIA_ITER", 40);
    let mut tally = CampaignTally::default();
    for i in 0..iters {
        campaign_iter(base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)), &mut tally);
    }
    assert_eq!(tally.conservation_violations, 0);
    assert_eq!(tally.metadata_faults_repaired, tally.metadata_faults_injected);
    assert_eq!(tally.silent_data_loss, 0);

    let json = format!(
        "{{\"iterations\": {}, \"metadata_faults_injected\": {}, \
         \"metadata_faults_repaired\": {}, \"data_faults_injected\": {}, \
         \"data_faults_loud\": {}, \"silent_data_loss\": {}, \
         \"pages_retired\": {}, \"conservation_violations\": {}}}",
        tally.iterations,
        tally.metadata_faults_injected,
        tally.metadata_faults_repaired,
        tally.data_faults_injected,
        tally.data_faults_loud,
        tally.silent_data_loss,
        tally.pages_retired,
        tally.conservation_violations,
    );
    let dir = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(dir);
    std::fs::write(dir.join("media-report.json"), &json).expect("write media report");
    println!("media campaign: {json}");
}

/// The patrol daemon: `start_patrol` spawns a sim-thread that sweeps on
/// its own clock, heals faults injected while it runs, and joins cleanly
/// on `stop()`. Live traffic proceeds underneath it.
#[test]
fn patrol_daemon_heals_in_background() {
    let (dev, kernel, fs) = world(ArckFsConfig::no_delegation());
    let rt = SimRuntime::new(0x59);
    rt.spawn("main", move || {
        // Small budget: a full device sweep needs many passes, proving
        // the cursor persists across them.
        let patrol = kernel.start_patrol(1024, 10_000);
        write_file(&*fs, "/live", &vec![0x44u8; PAGE_SIZE]).unwrap();
        for i in 0..5u64 {
            dev.poison_line(PageId(PAGES - 3 - i), (i % 8) as u16);
            trio_sim::work(200_000); // Let a few passes elapse.
        }
        trio_sim::work(2_000_000);
        patrol.stop();
        let snap = kernel.media_stats().snapshot();
        assert!(snap.scrub_passes >= 16, "daemon barely ran: {snap:?}");
        assert_eq!(dev.poisoned_lines(), 0, "daemon left poison behind");
        assert_eq!(read_file(&*fs, "/live").unwrap(), vec![0x44u8; PAGE_SIZE]);
    });
    rt.run();
}
