//! Exhaustive crash-point sweep (the fault-injection engine's tentpole
//! test): a fixed, seed-deterministic operation trace runs against a
//! tracked device once per persistence point; at each point `k` a
//! [`FaultPlan`] freezes durability, the device crashes, recovery runs
//! (LibFS rename-journal undo, then the kernel's tree walk), and the
//! recovered state must (a) pass the full I1–I4 `fsck` audit and (b) be
//! equivalent to a model file system — every operation that completed
//! before the freeze is fully visible, the one in-flight operation is
//! atomic-or-invisible (data writes: torn only at cache-line
//! granularity), and nothing later survives.
//!
//! Every assertion message carries the replayable `(seed, crash_point)`
//! pair plus the [`CrashReport`], so a failure reproduces with a
//! single targeted run.
#![cfg(feature = "faults")]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, FileType, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::fault::FaultPlan;
use trio_nvm::{DeviceConfig, NvmDevice, NvmHandle, Topology, CACHE_LINE, KERNEL_ACTOR};
use trio_sim::plock::Mutex;
use trio_sim::rng::SimRng;
use trio_sim::SimRuntime;

/// Pinned sweep seed; change only together with EXPERIMENTS.md.
const SWEEP_SEED: u64 = 0xA5C3_5EED;

// ---------------------------------------------------------------------
// Operation trace: fixed op kinds (guaranteed coverage of create /
// overwrite / append / cross- and same-directory rename / unlink of
// empty and non-empty files), randomized payloads and offsets.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Mkdir(String),
    Create(String),
    Write { path: String, off: u64, data: Vec<u8> },
    Rename(String, String),
    Unlink(String),
}

fn blob(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    let len = min + rng.gen_range((max - min) as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Deterministic trace; appends use the model size at generation time so
/// `Write.off` is always concrete.
fn gen_trace(seed: u64) -> Vec<Op> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut sizes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut ops = Vec::new();
    let write =
        |ops: &mut Vec<Op>, sizes: &mut BTreeMap<&'static str, u64>, rng: &mut SimRng,
         path: &'static str, off: u64, min: usize, max: usize| {
            let data = blob(rng, min, max);
            let end = off + data.len() as u64;
            let s = sizes.entry(path).or_insert(0);
            *s = (*s).max(end);
            ops.push(Op::Write { path: path.into(), off, data });
        };
    ops.push(Op::Mkdir("/a".into()));
    ops.push(Op::Mkdir("/b".into()));
    ops.push(Op::Create("/a/f0".into()));
    write(&mut ops, &mut sizes, &mut rng, "/a/f0", 0, 600, 1400);
    ops.push(Op::Create("/b/f1".into()));
    write(&mut ops, &mut sizes, &mut rng, "/b/f1", 0, 400, 900);
    ops.push(Op::Create("/a/f2".into()));
    let off = sizes["/a/f0"];
    write(&mut ops, &mut sizes, &mut rng, "/a/f0", off, 500, 1100); // append
    ops.push(Op::Rename("/a/f0".into(), "/b/g0".into())); // cross-dir
    sizes.insert("/b/g0", sizes["/a/f0"]);
    let off = rng.gen_range(200);
    write(&mut ops, &mut sizes, &mut rng, "/b/f1", off, 200, 400); // overwrite
    ops.push(Op::Unlink("/a/f2".into())); // empty file
    ops.push(Op::Create("/a/f3".into()));
    write(&mut ops, &mut sizes, &mut rng, "/a/f3", 0, 900, 1500);
    ops.push(Op::Rename("/b/f1".into(), "/a/g1".into()));
    sizes.insert("/a/g1", sizes["/b/f1"]);
    let off = rng.gen_range(sizes["/b/g0"] / 2);
    write(&mut ops, &mut sizes, &mut rng, "/b/g0", off, 300, 600);
    ops.push(Op::Create("/b/f4".into()));
    write(&mut ops, &mut sizes, &mut rng, "/b/f4", 0, 500, 900);
    ops.push(Op::Unlink("/a/g1".into())); // non-empty file
    let off = sizes["/a/f3"];
    write(&mut ops, &mut sizes, &mut rng, "/a/f3", off, 600, 1000); // append
    ops.push(Op::Rename("/a/f3".into(), "/a/g3".into())); // same-dir
    sizes.insert("/a/g3", sizes["/a/f3"]);
    ops.push(Op::Create("/a/f5".into()));
    write(&mut ops, &mut sizes, &mut rng, "/a/f5", 0, 700, 1200);
    ops.push(Op::Unlink("/b/f4".into()));
    let off = sizes["/b/g0"];
    write(&mut ops, &mut sizes, &mut rng, "/b/g0", off, 300, 700); // append
    ops
}

// ---------------------------------------------------------------------
// Model file system.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct Model {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeSet<String>,
}

impl Model {
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Mkdir(p) => {
                self.dirs.insert(p.clone());
            }
            Op::Create(p) => {
                self.files.insert(p.clone(), Vec::new());
            }
            Op::Write { path, off, data } => {
                let f = self.files.get_mut(path).expect("write target exists");
                let end = *off as usize + data.len();
                if f.len() < end {
                    f.resize(end, 0);
                }
                f[*off as usize..end].copy_from_slice(data);
            }
            Op::Rename(s, d) => {
                let v = self.files.remove(s).expect("rename source exists");
                self.files.insert(d.clone(), v);
            }
            Op::Unlink(p) => {
                self.files.remove(p).expect("unlink target exists");
            }
        }
    }
}

fn touched(op: &Op) -> Vec<&str> {
    match op {
        Op::Mkdir(p) | Op::Create(p) | Op::Unlink(p) => vec![p],
        Op::Write { path, .. } => vec![path],
        Op::Rename(s, d) => vec![s, d],
    }
}

// ---------------------------------------------------------------------
// World plumbing.
// ---------------------------------------------------------------------

fn world() -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 4096),
        track_persistence: true,
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (dev, kernel, fs)
}

fn exec(fs: &ArckFs, op: &Op) {
    let r = match op {
        Op::Mkdir(p) => fs.mkdir(p, Mode(0o777)),
        Op::Create(p) => fs.create(p, Mode(0o666)),
        Op::Write { path, off, data } => (|| {
            let fd = fs.open(path, OpenFlags::RDWR, Mode::empty())?;
            fs.pwrite(fd, *off, data)?;
            fs.close(fd)
        })(),
        Op::Rename(s, d) => fs.rename(s, d),
        Op::Unlink(p) => fs.unlink(p),
    };
    r.unwrap_or_else(|e| panic!("op {op:?} failed: {e:?}"));
}

/// Runs the trace in a sim thread; returns how many ops fully completed
/// before the armed plan fired (== `ops.len()` if it never fired).
fn run_trace(dev: &Arc<NvmDevice>, fs: &Arc<ArckFs>, ops: &[Op], seed: u64) -> usize {
    let rt = SimRuntime::new(seed);
    let completed = Arc::new(Mutex::new(0usize));
    let (dev2, fs2, ops2, done) =
        (Arc::clone(dev), Arc::clone(fs), ops.to_vec(), Arc::clone(&completed));
    rt.spawn("ops", move || {
        for op in &ops2 {
            exec(&fs2, op);
            if dev2.crash_plan_fired().is_none() {
                *done.lock() += 1;
            }
        }
    });
    rt.run();
    let n = *completed.lock();
    n
}

/// Recursive directory walk through the public API; `None` marks a
/// directory, `Some(bytes)` a regular file's full contents.
fn readback(fs: &Arc<ArckFs>, seed: u64) -> BTreeMap<String, Option<Vec<u8>>> {
    let rt = SimRuntime::new(seed ^ 0x9e37_79b9);
    let out = Arc::new(Mutex::new(BTreeMap::new()));
    let (fs2, out2) = (Arc::clone(fs), Arc::clone(&out));
    rt.spawn("walk", move || {
        let mut map = BTreeMap::new();
        let mut stack = vec![String::new()];
        while let Some(d) = stack.pop() {
            let dpath = if d.is_empty() { "/" } else { d.as_str() };
            for e in fs2.readdir(dpath).expect("readdir") {
                let full = format!("{d}/{}", e.name);
                match e.ftype {
                    FileType::Directory => {
                        map.insert(full.clone(), None);
                        stack.push(full);
                    }
                    FileType::Regular => {
                        let data = trio_fsapi::read_file(&*fs2, &full).expect("read");
                        map.insert(full, Some(data));
                    }
                }
            }
        }
        *out2.lock() = map;
    });
    rt.run();
    let map = out.lock().clone();
    map
}

// ---------------------------------------------------------------------
// Equivalence checking.
// ---------------------------------------------------------------------

/// Asserts `got` matches `old` or `new` on every `gran`-aligned chunk —
/// the torn-write granularity the device guarantees: cache lines
/// normally, 8 bytes when the torn-store fault mode is armed (an aligned
/// prefix of the in-flight store may escape to media).
fn check_chunkwise(ctx: &str, path: &str, got: &[u8], old: &[u8], new: &[u8], gran: usize) {
    let pad = |src: &[u8], i: usize, j: usize| -> Vec<u8> {
        (i..j).map(|x| src.get(x).copied().unwrap_or(0)).collect()
    };
    let mut c = 0;
    while c < got.len() {
        let end = (c + gran).min(got.len());
        let g = &got[c..end];
        let o = pad(old, c, end);
        let n = pad(new, c, end);
        assert!(
            g == o.as_slice() || g == n.as_slice(),
            "{path}: torn write chunk [{c}, {end}) matches neither the old \
             nor the new image\n{ctx}"
        );
        c = end;
    }
}

fn check_equiv(
    ctx: &str,
    durable: &Model,
    amb: Option<&Op>,
    rec: &BTreeMap<String, Option<Vec<u8>>>,
    gran: usize,
) {
    let amb_paths: BTreeSet<&str> = amb.map(touched).unwrap_or_default().into_iter().collect();
    // 1. Every durably created directory / file survives byte-for-byte.
    for d in &durable.dirs {
        if amb_paths.contains(d.as_str()) {
            continue;
        }
        assert_eq!(rec.get(d), Some(&None), "directory {d} lost or corrupted\n{ctx}");
    }
    for (f, want) in &durable.files {
        if amb_paths.contains(f.as_str()) {
            continue;
        }
        match rec.get(f) {
            Some(Some(got)) => assert_eq!(
                got, want,
                "file {f} content diverged (got {} bytes, want {})\n{ctx}",
                got.len(),
                want.len()
            ),
            other => panic!("file {f} lost after recovery (found {other:?})\n{ctx}"),
        }
    }
    // 2. Nothing not in the durable model survives (in-flight op aside):
    //    later ops' effects froze and must have been reverted.
    for p in rec.keys() {
        if amb_paths.contains(p.as_str()) {
            continue;
        }
        assert!(
            durable.dirs.contains(p) || durable.files.contains_key(p),
            "unexpected path {p} resurrected by recovery\n{ctx}"
        );
    }
    // 3. The in-flight operation is atomic-or-invisible.
    let Some(op) = amb else { return };
    match op {
        Op::Mkdir(p) => match rec.get(p) {
            None => {}
            Some(None) => {
                let prefix = format!("{p}/");
                assert!(
                    !rec.keys().any(|k| k.starts_with(&prefix)),
                    "half-made directory {p} has children\n{ctx}"
                );
            }
            Some(Some(_)) => panic!("in-flight mkdir {p} produced a regular file\n{ctx}"),
        },
        Op::Create(p) => match rec.get(p) {
            None => {}
            Some(Some(got)) => {
                assert!(got.is_empty(), "in-flight create {p} has content\n{ctx}")
            }
            Some(None) => panic!("in-flight create {p} produced a directory\n{ctx}"),
        },
        Op::Write { path, off, data } => {
            let old = durable.files.get(path).expect("write target durable");
            let new_len = old.len().max(*off as usize + data.len());
            let mut new = old.clone();
            new.resize(new_len, 0);
            new[*off as usize..*off as usize + data.len()].copy_from_slice(data);
            match rec.get(path) {
                Some(Some(got)) => {
                    assert!(
                        got.len() == old.len() || got.len() == new_len,
                        "in-flight write {path}: size {} is neither old {} nor new {}\n{ctx}",
                        got.len(),
                        old.len(),
                        new_len
                    );
                    check_chunkwise(ctx, path, got, old, &new, gran);
                }
                other => panic!("write target {path} vanished (found {other:?})\n{ctx}"),
            }
        }
        Op::Rename(s, d) => {
            let old = durable.files.get(s).expect("rename source durable");
            let at = |p: &str| match rec.get(p) {
                Some(Some(got)) => Some(got),
                Some(None) => panic!("rename endpoint {p} became a directory\n{ctx}"),
                None => None,
            };
            match (at(s), at(d)) {
                (Some(got), None) | (None, Some(got)) => assert_eq!(
                    got, old,
                    "in-flight rename {s}->{d}: surviving copy corrupted\n{ctx}"
                ),
                (Some(_), Some(_)) =>

                    panic!("in-flight rename {s}->{d}: both endpoints live (journal undo failed)\n{ctx}"),
                (None, None) => panic!("in-flight rename {s}->{d}: file lost entirely\n{ctx}"),
            }
        }
        Op::Unlink(p) => match rec.get(p) {
            None => {}
            Some(Some(got)) => assert_eq!(
                got,
                durable.files.get(p).expect("unlink target durable"),
                "in-flight unlink {p}: surviving copy corrupted\n{ctx}"
            ),
            Some(None) => panic!("in-flight unlink {p} left a directory\n{ctx}"),
        },
    }
}

// ---------------------------------------------------------------------
// One sweep iteration.
// ---------------------------------------------------------------------

/// Runs the trace with a crash armed at point `k`, recovers, audits, and
/// checks model equivalence. Returns `(crash report, recovered state)`
/// rendered to strings for byte-identical determinism comparison.
fn sweep_one(seed: u64, k: u64) -> (String, String) {
    sweep_one_with(seed, k, false)
}

/// [`sweep_one`] with an optional torn-store twist: when `torn` is set,
/// the crash additionally lets an aligned 8-byte prefix of the in-flight
/// data store escape to media, so in-flight-write equivalence is checked
/// at 8-byte rather than cache-line granularity.
fn sweep_one_with(seed: u64, k: u64, torn: bool) -> (String, String) {
    let ops = gen_trace(seed);
    let (dev, _kernel, fs) = world();
    let plan = FaultPlan::crash_at_point(k);
    dev.arm_crash_plan(if torn { plan.with_torn_store() } else { plan });
    let completed = run_trace(&dev, &fs, &ops, seed);
    let jpairs = fs.journal_page_pairs();
    drop(fs);
    // Captured before `crash()` drains the tracker and resets the plan.
    #[cfg(feature = "sanitize")]
    let fired_at = dev.crash_plan_fired();
    let report = dev.crash();
    let report_str = format!("{report}");
    let ctx =
        format!("seed={seed} crash_point={k} torn={torn} completed_ops={completed}\n{report_str}");

    // Recovery: LibFS journal undo first (it rewrites dirents the kernel
    // walk will read), then the kernel's provenance-rebuilding walk. With
    // the sanitizer on, recovery-mode read checks flag any recovery read
    // of a line that is not durable (i.e. one recovery itself dirtied and
    // has not yet fenced — a crash-idempotence bug). Twin-aware recovery
    // (`recover_pairs`) is the production path; the legacy single-copy
    // scan stays covered by crash_consistency.rs.
    #[cfg(feature = "sanitize")]
    dev.set_recovery_mode(true);
    let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    arckfs::journal::Journal::recover_pairs(&kh, &jpairs)
        .unwrap_or_else(|e| panic!("journal recovery failed: {e:?}\n{ctx}"));
    let kernel2 = KernelController::recover(Arc::clone(&dev), KernelConfig::default())
        .unwrap_or_else(|e| panic!("kernel recovery failed: {e:?}\n{ctx}"));
    let bad = kernel2.fsck();
    assert!(bad.is_empty(), "fsck found violations after recovery: {bad:?}\n{ctx}");
    #[cfg(feature = "sanitize")]
    dev.set_recovery_mode(false);

    let fs2 = ArckFs::mount(kernel2, 1000, 1000, ArckFsConfig::no_delegation());
    let rec = readback(&fs2, seed);
    let mut durable = Model::default();
    for op in &ops[..completed.min(ops.len())] {
        durable.apply(op);
    }
    check_equiv(&ctx, &durable, ops.get(completed), &rec, if torn { 8 } else { CACHE_LINE });

    // Sanitizer verdict for this iteration. Hazards recorded after the
    // freeze point are unreliable (a frozen fence retires nothing, so a
    // later re-flush of the same line *looks* redundant), so event-coupled
    // hazards only count up to the freeze; recovery-read hazards are
    // checked unconditionally — they can only come from the recovery
    // phase, where recovery mode was on.
    #[cfg(feature = "sanitize")]
    {
        let report = dev.take_sanitize_report(seed);
        let frozen_at = fired_at.unwrap_or(u64::MAX);
        let real: Vec<_> = report
            .hazards
            .iter()
            .filter(|h| {
                h.point < frozen_at || h.kind == trio_nvm::HazardKind::ReadNotDurable
            })
            .copied()
            .collect();
        if !real.is_empty() {
            let artifact = trio_nvm::sanitize::dump_artifact(&report.to_json()).ok();
            panic!(
                "persistence-order hazards in an unmutated run \
                 (artifact: {artifact:?}):\n{}\n{ctx}",
                real.iter().map(|h| format!("  {h}")).collect::<Vec<_>>().join("\n")
            );
        }
    }
    (report_str, format!("{rec:?}"))
}

/// Total persistence points of the unarmed trace (the sweep domain).
fn total_points(seed: u64) -> u64 {
    let ops = gen_trace(seed);
    let (dev, _kernel, fs) = world();
    let done = run_trace(&dev, &fs, &ops, seed);
    assert_eq!(done, ops.len(), "unarmed trace must complete");
    dev.persistence_points()
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[test]
fn exhaustive_crash_point_sweep() {
    let total = total_points(SWEEP_SEED);
    assert!(
        total >= 200,
        "trace too small for a meaningful sweep: {total} persistence points"
    );
    assert!(total <= 3000, "trace grew unexpectedly: {total} persistence points");
    // TRIO_SWEEP_SAMPLE=n sweeps every n-th point — CI uses it for the
    // sanitize-enabled pass (the sanitizer makes each iteration pricier)
    // while the default build still sweeps exhaustively.
    let stride: usize = std::env::var("TRIO_SWEEP_SAMPLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    println!("sweeping {total} crash points, stride {stride} (seed={SWEEP_SEED:#x})");
    for k in (0..total).step_by(stride) {
        sweep_one(SWEEP_SEED, k);
    }
}

/// Torn-store pass (delegation failure domains, §16): at sampled crash
/// points the in-flight data store additionally tears at an aligned
/// 8-byte boundary before the crash. Recovery must still produce a
/// fsck-clean, model-equivalent state — with in-flight writes now only
/// 8-byte (not cache-line) atomic. `TRIO_TORN_SAMPLE=n` tunes the stride.
#[test]
fn torn_store_sweep_at_sampled_points() {
    let total = total_points(SWEEP_SEED);
    let stride: usize = std::env::var("TRIO_TORN_SAMPLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(7);
    println!("torn-store sweep over {total} crash points, stride {stride}");
    for k in (0..total).step_by(stride) {
        sweep_one_with(SWEEP_SEED, k, true);
    }
}

/// With the sanitizer on, the unmutated trace must run to quiescence with
/// zero hazards — the positive "report-clean" half of the mutation tests.
#[cfg(feature = "sanitize")]
#[test]
fn sanitized_unarmed_trace_is_report_clean() {
    let ops = gen_trace(SWEEP_SEED);
    let (dev, _kernel, fs) = world();
    let done = run_trace(&dev, &fs, &ops, SWEEP_SEED);
    assert_eq!(done, ops.len(), "unarmed trace must complete");
    drop(fs);
    dev.sanitize_quiesce_check();
    let report = dev.take_sanitize_report(SWEEP_SEED);
    if !report.is_clean() {
        let artifact = trio_nvm::sanitize::dump_artifact(&report.to_json()).ok();
        panic!("unmutated trace is not sanitizer-clean (artifact: {artifact:?}): {report}");
    }
}

// ---------------------------------------------------------------------
// Delegated acked ⇒ durable (typestate witness, DESIGN.md §18).
// ---------------------------------------------------------------------

/// One registered-buffer delegated write per region; all the same size so
/// an acked prefix maps to a byte range.
const DELEG_CHUNK: usize = 64 * 1024;
const DELEG_WRITES: usize = 6;

/// Per-region fill byte; the base image is all-zero, so any torn mix of
/// old and new bytes inside an acked region is detectable.
fn deleg_fill(j: usize) -> u8 {
    0xA1 ^ (j as u8).wrapping_mul(0x3B)
}

fn delegated_world() -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(2, 32 * 1024),
        track_persistence: true,
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(
        Arc::clone(&dev),
        KernelConfig { delegation_threads_per_node: 2, ..KernelConfig::default() },
    );
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::default());
    (dev, kernel, fs)
}

/// Sizes `/deleg`, then drives [`DELEG_WRITES`] sequential registered-
/// buffer delegated writes. Returns how many acks the client observed
/// while the armed crash plan had not yet fired — sequential, so the
/// count is a prefix of the regions.
fn run_delegated_trace(
    dev: &Arc<NvmDevice>,
    kernel: &Arc<KernelController>,
    fs: &Arc<ArckFs>,
    seed: u64,
) -> usize {
    let rt = SimRuntime::new(seed);
    let acked = Arc::new(Mutex::new(0usize));
    let (dev2, k2, fs2, acked2) =
        (Arc::clone(dev), Arc::clone(kernel), Arc::clone(fs), Arc::clone(&acked));
    rt.spawn("deleg-ops", move || {
        k2.delegation().start();
        let fd = fs2.open("/deleg", OpenFlags::CREATE | OpenFlags::RDWR, Mode(0o666)).unwrap();
        let base = vec![0u8; DELEG_WRITES * DELEG_CHUNK];
        assert_eq!(fs2.pwrite(fd, 0, &base).unwrap(), base.len());
        let reg = fs2.register_write_buffer(&base[..DELEG_CHUNK]).unwrap();
        for j in 0..DELEG_WRITES {
            let block = vec![deleg_fill(j); DELEG_CHUNK];
            fs2.update_write_buffer(reg, &block).unwrap();
            let off = (j * DELEG_CHUNK) as u64;
            assert_eq!(fs2.pwrite_registered(fd, off, reg, 0, DELEG_CHUNK).unwrap(), DELEG_CHUNK);
            // The reply has been received; if the durability freeze has
            // not fired yet, every byte of region j must survive a crash.
            if dev2.crash_plan_fired().is_none() {
                *acked2.lock() += 1;
            }
        }
        fs2.unregister_write_buffer(reg).unwrap();
        fs2.close(fd).unwrap();
        k2.delegation().shutdown();
    });
    rt.run();
    let n = *acked.lock();
    n
}

/// One torn-store crash iteration against the delegated trace.
fn deleg_torn_one(k: u64) {
    let (dev, kernel, fs) = delegated_world();
    dev.arm_crash_plan(FaultPlan::crash_at_point(k).with_torn_store());
    let acked = run_delegated_trace(&dev, &kernel, &fs, SWEEP_SEED);
    let jpairs = fs.journal_page_pairs();
    drop(fs);
    drop(kernel);
    let report = dev.crash();
    let ctx = format!("seed={SWEEP_SEED:#x} crash_point={k} torn=true acked={acked}\n{report}");

    let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    arckfs::journal::Journal::recover_pairs(&kh, &jpairs)
        .unwrap_or_else(|e| panic!("journal recovery failed: {e:?}\n{ctx}"));
    let kernel2 = KernelController::recover(Arc::clone(&dev), KernelConfig::default())
        .unwrap_or_else(|e| panic!("kernel recovery failed: {e:?}\n{ctx}"));
    let bad = kernel2.fsck();
    assert!(bad.is_empty(), "fsck found violations after recovery: {bad:?}\n{ctx}");

    if acked == 0 {
        return; // crash fired before any delegated ack — nothing to pin
    }
    // acked > 0 means the sizing base write completed pre-freeze, so the
    // file itself is durable and full-length.
    let fs2 = ArckFs::mount(kernel2, 1000, 1000, ArckFsConfig::no_delegation());
    let rec = readback(&fs2, SWEEP_SEED);
    let got = match rec.get("/deleg") {
        Some(Some(data)) => data,
        other => panic!("/deleg lost after recovery (found {other:?})\n{ctx}"),
    };
    assert!(got.len() >= acked * DELEG_CHUNK, "acked regions truncated\n{ctx}");
    for j in 0..acked {
        let region = &got[j * DELEG_CHUNK..(j + 1) * DELEG_CHUNK];
        if let Some(i) = region.iter().position(|&b| b != deleg_fill(j)) {
            panic!(
                "acked delegated write {j} not fully durable after a torn-store \
                 crash: byte {i} is {:#x}, want {:#x} — the worker replied before \
                 its Durable witness\n{ctx}",
                region[i],
                deleg_fill(j)
            );
        }
    }
}

/// Acked ⇒ durable under the typestate API (DESIGN.md §18): the worker's
/// write pass must hold a `Durable<ExtentProof>` from `write_extent_hashed`
/// — stores flushed *and fenced* — before its reply is sent. Swept under
/// the torn-store fault mode, where an unfenced in-flight store may leak
/// an arbitrary aligned 8-byte prefix to media: if an ack ever preceded
/// the fence, some crash point in the sweep would surface a torn or
/// reverted region inside the acked prefix.
#[test]
fn delegated_acked_writes_survive_torn_store_crashes() {
    let total = {
        let (dev, kernel, fs) = delegated_world();
        let n = run_delegated_trace(&dev, &kernel, &fs, SWEEP_SEED);
        assert_eq!(n, DELEG_WRITES, "unarmed delegated trace must complete");
        dev.persistence_points()
    };
    // Each iteration rebuilds a 2-node world and runs full recovery, so
    // sample the domain; TRIO_DELEG_TORN_POINTS widens it when needed.
    let points: u64 = std::env::var("TRIO_DELEG_TORN_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(16);
    let stride = (total / points).max(1) as usize;
    println!("delegated torn-store sweep over {total} crash points, stride {stride}");
    for k in (1..total).step_by(stride) {
        deleg_torn_one(k);
    }
}

/// The engine's replayability contract: the same `(seed, crash_point)`
/// pair yields a byte-identical crash report and recovered state.
#[test]
fn sweep_is_deterministic_and_replayable() {
    let total = total_points(SWEEP_SEED);
    for k in [1, total / 3, total / 2, total - 2] {
        let a = sweep_one(SWEEP_SEED, k);
        let b = sweep_one(SWEEP_SEED, k);
        assert_eq!(a, b, "replay of (seed={SWEEP_SEED}, point={k}) diverged");
    }
    // The torn-store variant must replay identically too: the escaped
    // prefix length is drawn from the same deterministic plan state.
    let a = sweep_one_with(SWEEP_SEED, total / 2, true);
    let b = sweep_one_with(SWEEP_SEED, total / 2, true);
    assert_eq!(a, b, "torn replay of (seed={SWEEP_SEED}, point={}) diverged", total / 2);
}
