//! Tests for the paper's `commit` call (§4.3) — re-checkpointing verified
//! state so rollback preserves it — and for whole-stack recovery flows.

use std::sync::Arc;

use arckfs::attack::{run_attack, Attack};
use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{read_file, write_file, FileSystem, Mode, OpenFlags};
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{DeviceConfig, NvmDevice, Topology};
use trio_sim::SimRuntime;

fn world() -> (Arc<KernelController>, Arc<ArckFs>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(dev, KernelConfig::default());
    let a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    (kernel, a, b)
}

#[test]
fn commit_preserves_later_work_across_rollback() {
    let (kernel, evil, victim) = world();
    let rt = SimRuntime::new(41);
    rt.spawn("t", move || {
        // Build and hand over a clean file.
        write_file(&*evil, "/f", b"checkpointed base").unwrap();
        evil.release_path("/f").unwrap();
        let _ = read_file(&*victim, "/f").unwrap();

        // Evil regains write access (kernel checkpoints "base"), makes a
        // LEGITIMATE change, and commits it (§4.3's commit call replaces
        // the checkpoint).
        let fd = evil.open("/f", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, b"COMMITTED workdone").unwrap();
        evil.close(fd).unwrap();
        evil.commit_path("/f").unwrap();

        // Then it corrupts the file and releases.
        run_attack(&evil, Attack::IndexCycle, "/", "f").unwrap();
        evil.release_path("/f").unwrap();

        // The victim's map detects the corruption; rollback must land on
        // the COMMITTED state, not the original base.
        let data = read_file(&*victim, "/f").unwrap();
        let events = kernel.take_events();
        assert!(events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. })));
        assert!(events.iter().any(|e| matches!(e, KernelEvent::RolledBack { .. })));
        assert_eq!(&data[..9], b"COMMITTED", "commit point survived: {data:?}");
    });
    rt.run();
}

#[test]
fn commit_of_corrupted_state_is_refused() {
    let (_, evil, victim) = world();
    let rt = SimRuntime::new(42);
    rt.spawn("t", move || {
        write_file(&*evil, "/f", &vec![1u8; 8192]).unwrap();
        evil.release_path("/f").unwrap();
        let _ = read_file(&*victim, "/f").unwrap();
        let fd = evil.open("/f", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &[2u8]).unwrap();
        evil.close(fd).unwrap();
        // Corrupt first, then try to launder it through commit.
        run_attack(&evil, Attack::SizeLie, "/", "f").unwrap();
        assert!(
            evil.commit_path("/f").is_err(),
            "commit must not bless corrupted core state"
        );
    });
    rt.run();
}

#[test]
fn lsm_database_survives_fs_level_crash() {
    // End-to-end: LevelDB-style store on ArckFS with persistence tracking;
    // crash after a batch of writes; recover the DB and check the data —
    // the FS's synchronous-persistence guarantee plus the DB's WAL.
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        track_persistence: true,
        ..DeviceConfig::small()
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs: Arc<dyn FileSystem> =
        ArckFs::mount(kernel, 1000, 1000, ArckFsConfig::no_delegation());

    let rt = SimRuntime::new(43);
    let fs2 = Arc::clone(&fs);
    rt.spawn("writer", move || {
        let db = trio_lsmkv::Db::open(
            fs2,
            "/db",
            trio_lsmkv::DbConfig { memtable_bytes: 8 * 1024, ..Default::default() },
        )
        .unwrap();
        for i in 0..120u32 {
            db.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        // Drop without clean shutdown.
    });
    rt.run();
    dev.crash();

    let rt = SimRuntime::new(44);
    rt.spawn("recover", move || {
        let db = trio_lsmkv::Db::recover(
            fs,
            "/db",
            trio_lsmkv::DbConfig { memtable_bytes: 8 * 1024, ..Default::default() },
        )
        .unwrap();
        for i in 0..120u32 {
            let got = db.get(format!("k{i:03}").as_bytes()).unwrap();
            assert_eq!(
                got.as_deref(),
                Some(format!("v{i}").as_bytes()),
                "k{i:03} survived the crash"
            );
        }
    });
    rt.run();
}
