//! Mutation tests for the persistence-order sanitizer (DESIGN.md §13).
//!
//! Each test replays the §4.4 two-step commit protocol (prepare a dirent
//! slot image, then publish the ino) against a sanitize-enabled device,
//! once correctly and once with a single step deleted — the classic NVM
//! bug classes the sanitizer exists to catch. The mutants must each be
//! flagged with the expected diagnostic and a replayable `(seed, point)`
//! pair; the unmutated protocol must produce a report with zero hazards
//! (a positive assertion, not just the absence of a panic).
//!
//! Build with `cargo test --features sanitize --test sanitize_mutations`.
#![cfg(feature = "sanitize")]

use std::sync::Arc;

use trio_nvm::{
    ActorId, DeviceConfig, HazardKind, NvmDevice, NvmHandle, PageId, PagePerm, SanitizeReport,
    Span,
};

/// Fixed seed: diagnostics must replay, so every run uses the same one.
const SEED: u64 = 0x5A17_AB1E;
const PAGE: PageId = PageId(3);
const SLOT_LEN: usize = 256; // dirent-sized: four cache lines

fn world() -> (Arc<NvmDevice>, NvmHandle) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        track_persistence: true, // the sanitizer rides the persist tracker
        ..DeviceConfig::small()
    }));
    let actor = ActorId(7);
    dev.mmu_map(actor, PAGE, PagePerm::Write).unwrap();
    let h = NvmHandle::new(Arc::clone(&dev), actor);
    (dev, h)
}

/// The §4.4 protocol with optional single-step mutations, returning the
/// run's sanitize report. `drop_flush` / `drop_fence` / `early_publish`
/// each delete or reorder exactly one persistence step.
fn run_protocol(drop_flush: bool, drop_fence: bool, early_publish: bool) -> SanitizeReport {
    let (dev, h) = world();
    let image = [0xABu8; SLOT_LEN];
    h.write_untimed(PAGE, 0, &image).unwrap();
    if early_publish {
        // Publish the commit word before the image it commits is durable.
        h.publish_u64_raw(PAGE, 0, 42, &[(PAGE, 0, SLOT_LEN)]).unwrap();
    } else {
        if !drop_flush {
            h.flush(PAGE, 0, SLOT_LEN);
        }
        if !drop_fence {
            h.fence();
        }
        h.publish_u64_raw(PAGE, 0, 42, &[(PAGE, 0, SLOT_LEN)]).unwrap();
    }
    dev.sanitize_quiesce_check();
    dev.take_sanitize_report(SEED)
}

#[test]
fn unmutated_protocol_is_report_clean() {
    let report = run_protocol(false, false, false);
    assert!(report.is_clean(), "expected a clean report, got: {report}");
    assert_eq!(report.seed, SEED);
    assert_eq!(report.to_json(), format!("{{\"seed\":{SEED},\"hazards\":[]}}"));
}

#[test]
fn dropped_flush_mutant_is_caught() {
    let report = run_protocol(true, false, false);
    // The fence retires nothing (the image lines were never flushed), so
    // quiescence finds them still Dirty. Note the publish's own
    // write_u64_persist made its dependency check pass for line 0 — lines
    // 1..3 of the slot carry the diagnostic.
    let hz = report.of_kind(HazardKind::MissingFlush);
    assert!(!hz.is_empty(), "dropped flush must surface missing-flush, got: {report}");
    assert!(hz.iter().all(|h| h.page == PAGE.0), "hazards name the slot page: {report}");
}

#[test]
fn dropped_fence_mutant_is_caught() {
    let (dev, h) = world();
    let image = [0xCDu8; SLOT_LEN];
    h.write_untimed(PAGE, 0, &image).unwrap();
    // lint: allow(flush-fence) deliberate dropped-fence mutant under test
    h.flush(PAGE, 0, SLOT_LEN);
    // Mutation: no fence, and commit via a plain store (the atomic-persist
    // helper would fence as a side effect and mask the bug).
    h.write_untimed(PAGE, 0, &42u64.to_le_bytes()).unwrap();
    dev.sanitize_quiesce_check();
    let report = dev.take_sanitize_report(SEED);
    let hz = report.of_kind(HazardKind::MissingFence);
    assert!(!hz.is_empty(), "dropped fence must surface missing-fence, got: {report}");
    // The commit store also landed in a line staged for write-back.
    assert!(
        !report.of_kind(HazardKind::StoreWhileFlushed).is_empty(),
        "store into a flushed line must surface store-while-flushed, got: {report}"
    );
}

#[test]
fn publish_before_persist_mutant_is_caught() {
    let report = run_protocol(false, false, true);
    let hz = report.of_kind(HazardKind::PublishBeforePersist);
    assert!(!hz.is_empty(), "early publish must surface publish-before-persist, got: {report}");
    assert_eq!(hz[0].page, PAGE.0);
    // JSON round-trip shape for the CI artifact.
    assert!(report.to_json().contains("\"kind\":\"publish-before-persist\""));
}

#[test]
fn diagnostics_replay_deterministically() {
    let a = run_protocol(true, false, false);
    let b = run_protocol(true, false, false);
    assert!(!a.is_clean());
    assert_eq!(a, b, "same seed, same mutant => byte-identical report");
    // Every hazard carries a concrete (seed, point) replay pair.
    for h in &a.hazards {
        assert_eq!(a.seed, SEED);
        assert!(h.point > 0, "hazard should carry a persistence point: {h}");
    }
}

#[test]
fn typed_pipeline_is_report_clean() {
    // The typestate pipeline (DESIGN.md §18) emits the same store/flush/
    // fence sequence as the hand-ordered protocol, so the sanitizer — kept
    // as the runtime oracle for the typed API — must agree it is clean.
    let (dev, h) = world();
    let image = [0xABu8; SLOT_LEN];
    let dirty = h.write_dirty(PAGE, 0, &image).unwrap();
    let durable = h.fence_flushed(h.flush_dirty(dirty));
    h.publish_u64(PAGE, 0, 42, &durable).unwrap();
    dev.sanitize_quiesce_check();
    let report = dev.take_sanitize_report(SEED);
    assert!(report.is_clean(), "typed pipeline must satisfy the oracle, got: {report}");
}

#[test]
fn typed_api_redundant_flush_mutant_is_caught() {
    // The typestate lattice orders publish after persist but does not (and
    // cannot cheaply) prove two witnesses cover disjoint lines — a doubled
    // flush of the same staged span still type-checks and must therefore
    // remain a *runtime* catch. This pins the sanitizer-as-oracle division
    // of labour: the mutant compiles, the oracle flags it.
    let (dev, h) = world();
    let image = [0xEEu8; SLOT_LEN];
    let first = h.write_dirty(PAGE, 0, &image).unwrap();
    let _staged = h.flush_dirty(first);
    // Mutation: re-describe the same bytes as a fresh span set and flush
    // again before any fence retires the first write-back.
    let again = h.dirty_spans(vec![Span::new(PAGE, 0, SLOT_LEN)]);
    let durable = h.fence_flushed(h.flush_dirty(again));
    h.publish_u64(PAGE, 0, 42, &durable).unwrap();
    dev.sanitize_quiesce_check();
    let report = dev.take_sanitize_report(SEED);
    assert!(
        !report.of_kind(HazardKind::RedundantFlush).is_empty(),
        "double flush of staged lines must surface redundant-flush, got: {report}"
    );
}

/// Coverage matrix: every hazard class the sanitizer knows must be pinned
/// either by a compile-fail fixture feature (the typestate API rejects it
/// statically; `cargo xtask typestate-check` proves the rejection) or by a
/// runtime mutant in this file. A new `HazardKind` without a row here
/// fails the exhaustiveness match below.
#[test]
fn every_hazard_class_is_statically_rejected_or_runtime_caught() {
    let fixture = {
        let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("crates/xtask/fixtures/typestate-fixture/src/lib.rs");
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    };
    let statically_rejected = |feature: &str| {
        assert!(
            fixture.contains(&format!("feature = \"{feature}\"")),
            "typestate fixture lost its {feature} compile-fail case"
        );
    };
    for kind in [
        HazardKind::MissingFlush,
        HazardKind::MissingFence,
        HazardKind::RedundantFlush,
        HazardKind::StoreWhileFlushed,
        HazardKind::PublishBeforePersist,
        HazardKind::ReadNotDurable,
    ] {
        match kind {
            // Unrepresentable in the typed API: tokens encode the ordering.
            HazardKind::MissingFlush => statically_rejected("hazard-missing-flush"),
            HazardKind::MissingFence => statically_rejected("hazard-missing-fence"),
            HazardKind::PublishBeforePersist => {
                statically_rejected("hazard-publish-before-persist")
            }
            // Representable in the typed API: the sanitizer stays the oracle.
            HazardKind::RedundantFlush => { /* typed_api_redundant_flush_mutant_is_caught */ }
            HazardKind::StoreWhileFlushed => { /* dropped_fence_mutant_is_caught */ }
            HazardKind::ReadNotDurable => { /* recovery_read_of_volatile_line_is_caught */ }
        }
    }
}

#[test]
fn recovery_read_of_volatile_line_is_caught() {
    let (dev, h) = world();
    h.write_untimed(PAGE, 0, &[1u8; 64]).unwrap();
    // A recovery scan consuming bytes that a crash would revert.
    dev.set_recovery_mode(true);
    let mut buf = [0u8; 8];
    h.read_untimed(PAGE, 0, &mut buf).unwrap();
    dev.set_recovery_mode(false);
    let report = dev.take_sanitize_report(SEED);
    assert!(
        !report.of_kind(HazardKind::ReadNotDurable).is_empty(),
        "recovery read of a volatile line must surface read-not-durable, got: {report}"
    );
}
