//! Opportunistic-delegation thread pool (paper §4.5, following OdinFS).
//!
//! A fixed number of kernel *delegation threads* run per NUMA node. LibFSes
//! (and the OdinFS baseline) hand large accesses to them through
//! shared-memory rings — no kernel trap — and wait for completion. The
//! threads always access their own node's NVM (locality) and their fixed
//! count bounds the per-node concurrency, which is what prevents Optane's
//! bandwidth collapse. Large extents are split per node and served in
//! parallel, aggregating the bandwidth of all nodes.
//!
//! Permission is enforced end-to-end: a delegation thread performs the
//! access *as the requesting actor*, so the MMU check still applies.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use trio_nvm::{ActorId, NvmDevice, NvmHandle, PageId, ProtError, PAGE_SIZE};
use trio_sim::sync::SimChannel;
use trio_sim::{spawn, JoinHandle};

/// One delegated access covering a node-contiguous run of pages.
pub struct DelegReq {
    /// The requesting LibFS (MMU checks run against it).
    pub actor: ActorId,
    /// The run's pages, in extent order.
    pub pages: Vec<PageId>,
    /// Byte offset within the run.
    pub start: usize,
    /// For writes: the bytes. For reads: `None`.
    pub write_data: Option<Vec<u8>>,
    /// For reads: how many bytes to read.
    pub read_len: usize,
    /// Completion channel.
    pub reply: Arc<SimChannel<Result<Option<Vec<u8>>, ProtError>>>,
}

/// The pool; create once per device, start once per simulation.
pub struct DelegationPool {
    dev: Arc<NvmDevice>,
    rings: Vec<Vec<Arc<SimChannel<DelegReq>>>>,
    rr: Vec<AtomicUsize>,
    started: AtomicBool,
}

impl DelegationPool {
    /// Builds rings for `threads_per_node` delegation threads on each node.
    pub fn new(dev: Arc<NvmDevice>, threads_per_node: usize) -> Self {
        let nodes = dev.topology().nodes;
        let rings = (0..nodes)
            .map(|_| (0..threads_per_node).map(|_| Arc::new(SimChannel::bounded(64))).collect())
            .collect();
        DelegationPool {
            dev,
            rings,
            rr: (0..nodes).map(|_| AtomicUsize::new(0)).collect(),
            started: AtomicBool::new(false),
        }
    }

    /// Spawns the delegation sim-threads. Must be called from inside the
    /// simulation (e.g. the harness's main sim-thread). Returns their join
    /// handles; call [`DelegationPool::shutdown`] to let them exit.
    pub fn start(&self) -> Vec<JoinHandle> {
        assert!(!self.started.swap(true, Ordering::SeqCst), "delegation pool already started");
        let mut handles = Vec::new();
        for (node, node_rings) in self.rings.iter().enumerate() {
            for ring in node_rings {
                let ring = Arc::clone(ring);
                let dev = Arc::clone(&self.dev);
                handles.push(spawn("delegation", move || {
                    trio_nvm::handle::set_home_node(node);
                    while let Some(req) = ring.recv() {
                        let h = NvmHandle::new(Arc::clone(&dev), req.actor);
                        let result = match req.write_data {
                            Some(data) => {
                                h.write_extent(&req.pages, req.start, &data).map(|()| None)
                            }
                            None => {
                                let mut buf = vec![0u8; req.read_len];
                                h.read_extent(&req.pages, req.start, &mut buf).map(|()| Some(buf))
                            }
                        };
                        let _ = req.reply.send(result);
                    }
                }));
            }
        }
        handles
    }

    /// Whether [`DelegationPool::start`] ran.
    pub fn is_started(&self) -> bool {
        self.started.load(Ordering::SeqCst)
    }

    /// Closes all rings; delegation threads drain and exit.
    pub fn shutdown(&self) {
        for node_rings in &self.rings {
            for ring in node_rings {
                ring.close();
            }
        }
    }

    fn ring_for(&self, node: usize) -> &Arc<SimChannel<DelegReq>> {
        let i = self.rr[node].fetch_add(1, Ordering::Relaxed);
        let rings = &self.rings[node];
        &rings[i % rings.len()]
    }

    /// Splits `[start, start+len)` over `pages` into node-contiguous runs.
    /// Returns `(node, page_range, byte_range_within_extent)` tuples.
    fn split_runs(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
    ) -> Vec<(usize, std::ops::Range<usize>, std::ops::Range<usize>)> {
        let topo = self.dev.topology();
        let mut runs = Vec::new();
        if len == 0 {
            return runs;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        let mut run_start_page = first;
        let mut run_node = topo.node_of(pages[first]);
        for pi in first..=last {
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                runs.push(self.finish_run(run_node, run_start_page, pi, start, len));
                run_start_page = pi;
                run_node = node;
            }
        }
        runs.push(self.finish_run(run_node, run_start_page, last + 1, start, len));
        runs
    }

    fn finish_run(
        &self,
        node: usize,
        from_page: usize,
        to_page: usize,
        start: usize,
        len: usize,
    ) -> (usize, std::ops::Range<usize>, std::ops::Range<usize>) {
        let byte_from = start.max(from_page * PAGE_SIZE);
        let byte_to = (start + len).min(to_page * PAGE_SIZE);
        (node, from_page..to_page, byte_from..byte_to)
    }

    /// Delegated write of an extent: split per node, dispatch in parallel,
    /// wait for all completions.
    pub fn write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        let runs = self.split_runs(pages, start, data.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let sub_pages = pages[prange.clone()].to_vec();
            let sub_start = brange.start - prange.start * PAGE_SIZE;
            let req = DelegReq {
                actor,
                pages: sub_pages,
                start: sub_start,
                write_data: Some(data[brange.start - start..brange.end - start].to_vec()),
                read_len: 0,
                reply: Arc::clone(&reply),
            };
            self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)?;
            pending.push(reply);
        }
        let mut result = Ok(());
        for reply in pending {
            match reply.recv() {
                Some(Ok(_)) => {}
                Some(Err(e)) => result = Err(e),
                None => result = Err(ProtError::NotMapped),
            }
        }
        result
    }

    /// Delegated read of an extent.
    pub fn read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        let runs = self.split_runs(pages, start, buf.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let sub_pages = pages[prange.clone()].to_vec();
            let sub_start = brange.start - prange.start * PAGE_SIZE;
            let req = DelegReq {
                actor,
                pages: sub_pages,
                start: sub_start,
                write_data: None,
                read_len: brange.len(),
                reply: Arc::clone(&reply),
            };
            self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)?;
            pending.push((reply, brange));
        }
        let mut result = Ok(());
        for (reply, brange) in pending {
            match reply.recv() {
                Some(Ok(Some(data))) => {
                    buf[brange.start - start..brange.end - start].copy_from_slice(&data);
                }
                Some(Ok(None)) => result = Err(ProtError::NotMapped),
                Some(Err(e)) => result = Err(e),
                None => result = Err(ProtError::NotMapped),
            }
        }
        result
    }
}
