//! Opportunistic-delegation thread pool (paper §4.5, following OdinFS).
//!
//! A fixed number of kernel *delegation threads* run per NUMA node. LibFSes
//! (and the OdinFS baseline) hand large accesses to them through
//! shared-memory rings — no kernel trap — and wait for completion. The
//! threads always access their own node's NVM (locality) and their fixed
//! count bounds the per-node concurrency, which is what prevents Optane's
//! bandwidth collapse. Large extents are split per node and served in
//! parallel, aggregating the bandwidth of all nodes.
//!
//! Submission is *batched*: one scatter-gather [`DelegReq`] per node carries
//! every node-contiguous run the extent places there, so an op costs one
//! ring hop per touched node rather than one per run. Write payloads travel
//! as a shared `Arc<[u8]>` sliced per run — the client materializes the
//! buffer exactly once per op, and deadline retries re-enqueue the same
//! `Arc` without copying. Completions come back tagged on a per-op reply
//! ring drawn from a pool, so steady-state ops allocate no channels.
//!
//! Permission is enforced end-to-end: a delegation thread performs the
//! access *as the requesting actor*, so the MMU check still applies.

#[cfg(feature = "faults")]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use trio_nvm::{ActorId, NvmDevice, NvmHandle, PageId, PathStats, ProtError, PAGE_SIZE};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::sync::{RecvDeadline, SimChannel};
use trio_sim::{in_sim, now, spawn, JoinHandle, Nanos};

/// Reply-ring capacity. Must exceed the most completions an op can have in
/// flight (touched nodes × retry attempts), so a late worker reply to an
/// abandoned (timed-out) op never blocks the worker.
const REPLY_RING_CAP: usize = 64;

/// Hard ceiling on runs per request. The rings are shared memory, so a
/// hostile LibFS can enqueue arbitrary [`DelegReq`]s; the worker must
/// bound its own work regardless of what the client-side builder would
/// have produced.
const MAX_RUNS_PER_REQ: usize = 4096;

/// Hard ceiling on bytes per request. Reads allocate the reply buffer on
/// the delegation thread, so an unchecked `read_len` is a kernel-side
/// allocation bomb.
const MAX_BYTES_PER_REQ: usize = 64 << 20;

/// Worker-side admission check for one ring request. Everything here is
/// normally guaranteed by [`DelegationPool::build_batches`], but the ring
/// is writable by the (untrusted) client, so the worker re-validates:
/// run/byte ceilings, payload slice bounds, and extent-capacity bounds.
/// The MMU check still runs per page during the access itself.
fn validate_req(req: &DelegReq) -> Result<(), ProtError> {
    if req.runs.is_empty() || req.runs.len() > MAX_RUNS_PER_REQ {
        return Err(ProtError::OutOfRange);
    }
    let payload_len = req.payload.as_ref().map(|p| p.len());
    let mut total: usize = 0;
    for run in &req.runs {
        if run.pages.is_empty() {
            return Err(ProtError::OutOfRange);
        }
        let cap = run.pages.len() * PAGE_SIZE;
        let span = match payload_len {
            Some(pl) => {
                if run.payload.start > run.payload.end || run.payload.end > pl {
                    return Err(ProtError::OutOfRange);
                }
                run.payload.len()
            }
            None => run.read_len,
        };
        if run.start >= cap || span > cap - run.start {
            return Err(ProtError::OutOfRange);
        }
        total = total.checked_add(span).ok_or(ProtError::OutOfRange)?;
    }
    if total > MAX_BYTES_PER_REQ {
        return Err(ProtError::OutOfRange);
    }
    Ok(())
}

/// Tagged completion: `(request tag, result)`. Reads return the batch's
/// runs concatenated in submission order.
pub type DelegReply = (usize, Result<Option<Vec<u8>>, ProtError>);

/// One node-contiguous run inside a batched request.
#[derive(Clone)]
pub struct DelegRun {
    /// The run's pages, in extent order (all on the target node).
    pub pages: Vec<PageId>,
    /// Byte offset within the run at which the access starts.
    pub start: usize,
    /// For writes: this run's slice of the shared payload.
    pub payload: std::ops::Range<usize>,
    /// For reads: how many bytes to read.
    pub read_len: usize,
}

/// One scatter-gather request: every run an extent access places on a
/// single node, served by one delegation thread in one ring hop.
#[derive(Clone)]
pub struct DelegReq {
    /// The requesting LibFS (MMU checks run against it).
    pub actor: ActorId,
    /// Observability op id of the syscall span this batch serves (0 when
    /// none — raw/hostile submissions, or the `obs` feature off). Workers
    /// echo it into their span events so a timeline can stitch the
    /// client-side submit to the worker-side service.
    pub op_id: u64,
    /// Node-contiguous runs, in extent order.
    pub runs: Vec<DelegRun>,
    /// For writes: the op's whole payload, shared (not copied) across
    /// batches and retries.
    pub payload: Option<Arc<[u8]>>,
    /// Which batch of the op this is; echoed in the reply.
    pub tag: usize,
    /// Completion ring (one per op, pooled).
    pub reply: Arc<SimChannel<DelegReply>>,
}

/// Sizing knobs for the pool; see [`crate::KernelConfig`].
#[derive(Clone, Copy, Debug)]
pub struct DelegationConfig {
    /// Delegation threads (and rings) per NUMA node.
    pub threads_per_node: usize,
    /// Submission-ring capacity; a full ring is counted as backpressure
    /// and the producer blocks.
    pub ring_capacity: usize,
}

impl Default for DelegationConfig {
    fn default() -> Self {
        // 12 threads matches OdinFS's per-node writer pool; 64 slots per
        // ring keeps ~5 ops of headroom per thread before backpressure.
        DelegationConfig { threads_per_node: 12, ring_capacity: 64 }
    }
}

/// Why a deadline-bounded delegated access did not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelegationError {
    /// No reply arrived before the deadline (a delegation thread stalled
    /// or dropped the request). The access may or may not have executed;
    /// callers retry or fall back to direct access — both are safe because
    /// a delegated write is idempotent (same bytes, same location).
    Timeout,
    /// The delegated access executed and faulted.
    Fault(ProtError),
}

impl std::fmt::Display for DelegationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelegationError::Timeout => write!(f, "delegation request timed out"),
            DelegationError::Fault(e) => write!(f, "delegated access faulted: {e}"),
        }
    }
}

/// Injectable delegation-thread faults (tentpole fault-injection engine).
///
/// Draws come from each delegation thread's own deterministic RNG
/// ([`trio_sim::rng`]), so a given `(seed, settings)` pair replays the same
/// stalls and drops. All fields are "one in N" rates; zero disables.
#[cfg(feature = "faults")]
#[derive(Default)]
pub struct DelegationFaults {
    /// Stall one in N served requests by `stall_ns` of virtual time.
    stall_one_in: AtomicU64,
    /// Virtual nanoseconds a stalled request is delayed before serving.
    stall_ns: AtomicU64,
    /// Drop one in N requests without ever replying (a wedged thread).
    drop_one_in: AtomicU64,
}

/// Client-side bookkeeping for one batch of an in-flight op.
struct Batch {
    node: usize,
    req: DelegReq,
    /// Read scatter list: `(offset into the caller's buffer, len)` per run,
    /// in the same order the worker concatenates them.
    scatter: Vec<(usize, usize)>,
    /// Virtual submit time of the latest attempt, for the hop histogram.
    submitted: Nanos,
    done: bool,
}

/// The pool; create once per device, start once per simulation.
pub struct DelegationPool {
    dev: Arc<NvmDevice>,
    rings: Vec<Vec<Arc<SimChannel<DelegReq>>>>,
    rr: Vec<AtomicUsize>,
    started: AtomicBool,
    stats: Arc<PathStats>,
    reply_pool: PlMutex<Vec<Arc<SimChannel<DelegReply>>>>,
    #[cfg(feature = "faults")]
    faults: Arc<DelegationFaults>,
}

impl DelegationPool {
    /// Builds rings for `threads_per_node` delegation threads on each node,
    /// with default ring capacity and private counters.
    pub fn new(dev: Arc<NvmDevice>, threads_per_node: usize) -> Self {
        let config = DelegationConfig { threads_per_node, ..DelegationConfig::default() };
        Self::with_config(dev, config, Arc::new(PathStats::new()))
    }

    /// Builds the pool with explicit sizing and a shared counter sink.
    pub fn with_config(dev: Arc<NvmDevice>, config: DelegationConfig, stats: Arc<PathStats>) -> Self {
        let nodes = dev.topology().nodes;
        let cap = config.ring_capacity.max(1);
        let rings = (0..nodes)
            .map(|_| {
                (0..config.threads_per_node.max(1))
                    .map(|_| Arc::new(SimChannel::bounded(cap)))
                    .collect()
            })
            .collect();
        DelegationPool {
            dev,
            rings,
            rr: (0..nodes).map(|_| AtomicUsize::new(0)).collect(),
            started: AtomicBool::new(false),
            stats,
            reply_pool: PlMutex::new(Vec::new()),
            #[cfg(feature = "faults")]
            faults: Arc::new(DelegationFaults::default()),
        }
    }

    /// The pool's data-path counters.
    pub fn stats(&self) -> &Arc<PathStats> {
        &self.stats
    }

    /// Arms delegation-thread fault injection: stall one in
    /// `stall_one_in` requests by `stall_ns`, drop one in `drop_one_in`
    /// requests without replying. Zero rates disable the respective fault.
    #[cfg(feature = "faults")]
    pub fn inject_faults(&self, stall_one_in: u64, stall_ns: Nanos, drop_one_in: u64) {
        self.faults.stall_one_in.store(stall_one_in, Ordering::Relaxed);
        self.faults.stall_ns.store(stall_ns, Ordering::Relaxed);
        self.faults.drop_one_in.store(drop_one_in, Ordering::Relaxed);
    }

    /// Spawns the delegation sim-threads. Must be called from inside the
    /// simulation (e.g. the harness's main sim-thread). Returns their join
    /// handles; call [`DelegationPool::shutdown`] to let them exit.
    pub fn start(&self) -> Vec<JoinHandle> {
        assert!(!self.started.swap(true, Ordering::SeqCst), "delegation pool already started");
        let mut handles = Vec::new();
        for (node, node_rings) in self.rings.iter().enumerate() {
            for ring in node_rings {
                let ring = Arc::clone(ring);
                let dev = Arc::clone(&self.dev);
                let stats = Arc::clone(&self.stats);
                #[cfg(feature = "faults")]
                let faults = Arc::clone(&self.faults);
                handles.push(spawn("delegation", move || {
                    trio_nvm::handle::set_home_node(node);
                    while let Some(req) = ring.recv() {
                        #[cfg(feature = "faults")]
                        {
                            let n = faults.stall_one_in.load(Ordering::Relaxed);
                            if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                                trio_sim::work(faults.stall_ns.load(Ordering::Relaxed));
                            }
                            let n = faults.drop_one_in.load(Ordering::Relaxed);
                            if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                                // A wedged thread: the request vanishes and
                                // no reply is ever sent. Clients must use
                                // the deadline-bounded entry points to
                                // survive this.
                                continue;
                            }
                        }
                        if let Err(e) = validate_req(&req) {
                            stats.record_deleg_rejected();
                            let _ = req.reply.send((req.tag, Err(e)));
                            continue;
                        }
                        let is_write = req.payload.is_some();
                        let svc_t0 = crate::obs::worker_begin(req.op_id, is_write, node, req.actor.0);
                        let h = NvmHandle::new(Arc::clone(&dev), req.actor);
                        let xfer_t0 = crate::obs::transfer_begin();
                        let result = match &req.payload {
                            Some(payload) => {
                                let mut r = Ok(None);
                                for run in &req.runs {
                                    let Some(data) = payload.get(run.payload.clone()) else {
                                        r = Err(ProtError::OutOfRange);
                                        break;
                                    };
                                    if let Err(e) = h.write_extent(&run.pages, run.start, data) {
                                        r = Err(e);
                                        break;
                                    }
                                }
                                r
                            }
                            None => {
                                let total: usize = req.runs.iter().map(|r| r.read_len).sum();
                                let mut buf = vec![0u8; total];
                                let mut r = Ok(());
                                let mut off = 0;
                                for run in &req.runs {
                                    let dst = &mut buf[off..off + run.read_len];
                                    if let Err(e) = h.read_extent(&run.pages, run.start, dst) {
                                        r = Err(e);
                                        break;
                                    }
                                    off += run.read_len;
                                }
                                r.map(|()| Some(buf))
                            }
                        };
                        crate::obs::transfer_end(
                            req.op_id,
                            is_write,
                            node,
                            req.actor.0,
                            req.runs.len() as u64,
                            xfer_t0,
                        );
                        crate::obs::worker_end(req.op_id, is_write, node, req.actor.0, svc_t0);
                        let _ = req.reply.send((req.tag, result));
                    }
                }));
            }
        }
        handles
    }

    /// Whether [`DelegationPool::start`] ran.
    pub fn is_started(&self) -> bool {
        self.started.load(Ordering::SeqCst)
    }

    /// Closes all rings; delegation threads drain and exit.
    pub fn shutdown(&self) {
        for node_rings in &self.rings {
            for ring in node_rings {
                ring.close();
            }
        }
    }

    /// Adversary/test hook: enqueue a raw, possibly malformed [`DelegReq`]
    /// on one of `node`'s rings, bypassing every client-side invariant —
    /// exactly what a hostile LibFS with ring access can do. The worker's
    /// [`validate_req`] admission check and the per-page MMU check are the
    /// only defenses that apply.
    pub fn submit_raw(&self, node: usize, req: DelegReq) -> Result<(), ProtError> {
        if node >= self.rings.len() {
            return Err(ProtError::OutOfRange);
        }
        self.stats.record_submission(req.runs.len());
        self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)
    }

    fn ring_for(&self, node: usize) -> &Arc<SimChannel<DelegReq>> {
        let i = self.rr[node].fetch_add(1, Ordering::Relaxed);
        let rings = &self.rings[node];
        &rings[i % rings.len()]
    }

    /// Grabs a pooled reply ring, or makes one sized so that even an
    /// abandoned op's stragglers fit without blocking a worker.
    fn take_reply(&self) -> Arc<SimChannel<DelegReply>> {
        if let Some(ch) = self.reply_pool.lock().pop() {
            return ch;
        }
        Arc::new(SimChannel::bounded(REPLY_RING_CAP))
    }

    /// Returns a reply ring to the pool. Callers may only do this when
    /// every submitted batch was received — an abandoned ring with
    /// stragglers in flight must be dropped instead, or a late reply
    /// would bleed into the next op.
    fn put_reply(&self, ch: Arc<SimChannel<DelegReply>>) {
        debug_assert!(ch.is_empty());
        let mut pool = self.reply_pool.lock();
        if pool.len() < 256 {
            pool.push(ch);
        }
    }

    /// Splits `[start, start+len)` over `pages` into node-contiguous runs.
    /// Returns `(node, page_range, byte_range_within_extent)` tuples.
    #[allow(clippy::needless_range_loop)] // `pi` marks run boundaries
    fn split_runs(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
    ) -> Vec<(usize, std::ops::Range<usize>, std::ops::Range<usize>)> {
        let topo = self.dev.topology();
        let mut runs = Vec::new();
        if len == 0 {
            return runs;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        let mut run_start_page = first;
        let mut run_node = topo.node_of(pages[first]);
        for pi in first..=last {
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                runs.push(self.finish_run(run_node, run_start_page, pi, start, len));
                run_start_page = pi;
                run_node = node;
            }
        }
        runs.push(self.finish_run(run_node, run_start_page, last + 1, start, len));
        runs
    }

    fn finish_run(
        &self,
        node: usize,
        from_page: usize,
        to_page: usize,
        start: usize,
        len: usize,
    ) -> (usize, std::ops::Range<usize>, std::ops::Range<usize>) {
        let byte_from = start.max(from_page * PAGE_SIZE);
        let byte_to = (start + len).min(to_page * PAGE_SIZE);
        (node, from_page..to_page, byte_from..byte_to)
    }

    /// Groups the extent's runs into one tagged batch per touched node.
    fn build_batches(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        payload: Option<&Arc<[u8]>>,
        reply: &Arc<SimChannel<DelegReply>>,
    ) -> Vec<Batch> {
        let mut batches: Vec<Batch> = Vec::new();
        for (node, prange, brange) in self.split_runs(pages, start, len) {
            let run = DelegRun {
                pages: pages[prange.clone()].to_vec(),
                start: brange.start - prange.start * PAGE_SIZE,
                payload: brange.start - start..brange.end - start,
                read_len: if payload.is_some() { 0 } else { brange.len() },
            };
            let scatter = (brange.start - start, brange.len());
            match batches.iter_mut().find(|b| b.node == node) {
                Some(b) => {
                    b.req.runs.push(run);
                    b.scatter.push(scatter);
                }
                None => batches.push(Batch {
                    node,
                    req: DelegReq {
                        actor,
                        op_id: crate::obs::current_op(),
                        runs: vec![run],
                        payload: payload.map(Arc::clone),
                        tag: batches.len(),
                        reply: Arc::clone(reply),
                    },
                    scatter: vec![scatter],
                    submitted: 0,
                    done: false,
                }),
            }
        }
        batches
    }

    /// Enqueues one batch, counting (but then riding out) ring
    /// backpressure. Fails only when the pool is shut down.
    fn submit(&self, batch: &mut Batch) -> Result<(), ProtError> {
        self.stats.record_submission(batch.req.runs.len());
        crate::obs::ring_submit(
            batch.req.op_id,
            batch.req.payload.is_some(),
            batch.node,
            batch.req.actor.0,
            batch.req.runs.len() as u64,
        );
        batch.submitted = if in_sim() { now() } else { 0 };
        match self.ring_for(batch.node).try_send(batch.req.clone()) {
            Ok(()) => Ok(()),
            Err(req) => {
                self.stats.record_ring_backpressure();
                self.ring_for(batch.node).send(req).map_err(|_| ProtError::NotMapped)
            }
        }
    }

    /// Core submit-and-collect loop shared by every entry point.
    ///
    /// Dispatches one batch per touched node, then waits for tagged
    /// completions. With `deadline_ns = Some(t)`, waits up to `t` per
    /// attempt and re-enqueues only the still-pending batches (same shared
    /// payload — no copy) with a doubled window, `attempts` times in total;
    /// with `None` it waits forever (the baseline-compatible blocking
    /// mode). `buf` receives scattered read data.
    ///
    /// This wrapper also maintains the in-flight gauge that guards
    /// [`PathStats::reset`] and auto-dumps the obs flight recorder when
    /// the whole op times out.
    #[allow(clippy::too_many_arguments)]
    fn run_batches(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        payload: Option<&Arc<[u8]>>,
        buf: Option<&mut [u8]>,
        deadline_ns: Option<Nanos>,
        attempts: u32,
    ) -> Result<(), DelegationError> {
        self.stats.enter_delegated_op();
        let r = self.run_batches_inner(actor, pages, start, len, payload, buf, deadline_ns, attempts);
        self.stats.exit_delegated_op();
        if matches!(r, Err(DelegationError::Timeout)) {
            crate::obs::timeout_dump();
        }
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batches_inner(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        payload: Option<&Arc<[u8]>>,
        mut buf: Option<&mut [u8]>,
        deadline_ns: Option<Nanos>,
        attempts: u32,
    ) -> Result<(), DelegationError> {
        if len == 0 {
            return Ok(());
        }
        let reply = self.take_reply();
        let mut batches = self.build_batches(actor, pages, start, len, payload, &reply);
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut fault: Option<ProtError> = None;
        let mut pending = batches.len();
        for b in batches.iter_mut() {
            match self.submit(b) {
                Ok(()) => sent += 1,
                Err(e) => {
                    fault = Some(e);
                    b.done = true;
                    pending -= 1;
                }
            }
        }
        let mut window = deadline_ns.unwrap_or(0);
        let mut attempt = 0u32;
        'attempts: while pending > 0 {
            attempt += 1;
            let deadline = deadline_ns.map(|_| now() + window);
            while pending > 0 {
                let got = match deadline {
                    Some(d) => reply.recv_deadline(d),
                    None => match reply.recv() {
                        Some(v) => RecvDeadline::Ok(v),
                        None => RecvDeadline::Closed,
                    },
                };
                match got {
                    RecvDeadline::Ok((tag, result)) => {
                        received += 1;
                        let b = &mut batches[tag];
                        if b.done {
                            // Straggler from a retried attempt; already
                            // accounted for.
                            continue;
                        }
                        if in_sim() {
                            let hop = now().saturating_sub(b.submitted);
                            self.stats.record_ring_hop(hop);
                            crate::obs::ring_reply(
                                b.req.op_id,
                                b.req.payload.is_some(),
                                b.node,
                                b.req.actor.0,
                                hop,
                            );
                        }
                        b.done = true;
                        pending -= 1;
                        match result {
                            Ok(Some(data)) => {
                                if let Some(buf) = buf.as_deref_mut() {
                                    let mut off = 0;
                                    for &(dst, n) in &b.scatter {
                                        buf[dst..dst + n].copy_from_slice(&data[off..off + n]);
                                        off += n;
                                    }
                                }
                            }
                            Ok(None) => {
                                if buf.is_some() {
                                    fault = Some(ProtError::NotMapped);
                                }
                            }
                            Err(e) => fault = Some(e),
                        }
                    }
                    RecvDeadline::Closed => {
                        fault = Some(ProtError::NotMapped);
                        break 'attempts;
                    }
                    RecvDeadline::TimedOut => {
                        self.stats.record_timeout();
                        if attempt >= attempts.max(1) {
                            break 'attempts;
                        }
                        // Re-enqueue only what is still missing; the shared
                        // payload rides along untouched.
                        window = window.saturating_mul(2);
                        for b in batches.iter_mut().filter(|b| !b.done) {
                            self.stats.record_retry();
                            match self.submit(b) {
                                Ok(()) => sent += 1,
                                Err(e) => {
                                    fault = Some(e);
                                    b.done = true;
                                    pending -= 1;
                                }
                            }
                        }
                        continue 'attempts;
                    }
                }
            }
        }
        if received == sent {
            self.put_reply(reply);
        }
        match (fault, pending) {
            (Some(e), _) => Err(DelegationError::Fault(e)),
            (None, 0) => {
                self.stats.record_delegated_bytes(len, payload.is_some());
                Ok(())
            }
            (None, _) => Err(DelegationError::Timeout),
        }
    }

    /// Delegated write of an extent: one batch per touched node, dispatched
    /// in parallel, waiting (unbounded) for all completions.
    pub fn write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        self.stats.record_payload_copy();
        let payload: Arc<[u8]> = data.into();
        match self.run_batches(actor, pages, start, data.len(), Some(&payload), None, None, 1) {
            Ok(()) => Ok(()),
            Err(DelegationError::Fault(e)) => Err(e),
            Err(DelegationError::Timeout) => Err(ProtError::NotMapped),
        }
    }

    /// Delegated read of an extent (unbounded wait).
    pub fn read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        let len = buf.len();
        match self.run_batches(actor, pages, start, len, None, Some(buf), None, 1) {
            Ok(()) => Ok(()),
            Err(DelegationError::Fault(e)) => Err(e),
            Err(DelegationError::Timeout) => Err(ProtError::NotMapped),
        }
    }

    /// Deadline-bounded delegated write: like
    /// [`DelegationPool::write_extent`] but bounds each wait by a virtual
    /// deadline instead of hanging on a stalled or wedged delegation
    /// thread. Up to `attempts` windows are tried, each double the last,
    /// re-enqueueing only the batches that have not completed — the shared
    /// payload is never re-copied. Outside the simulation there is no
    /// virtual clock (and no injected fault can fire), so this degrades to
    /// the blocking variant.
    pub fn try_write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
        timeout_ns: Nanos,
        attempts: u32,
    ) -> Result<(), DelegationError> {
        self.stats.record_payload_copy();
        let payload: Arc<[u8]> = data.into();
        let deadline = if in_sim() { Some(timeout_ns) } else { None };
        self.run_batches(actor, pages, start, data.len(), Some(&payload), None, deadline, attempts)
    }

    /// Deadline-bounded delegated read; see
    /// [`DelegationPool::try_write_extent`]. On [`DelegationError::Timeout`]
    /// the buffer contents are unspecified (some runs may have landed).
    pub fn try_read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
        timeout_ns: Nanos,
        attempts: u32,
    ) -> Result<(), DelegationError> {
        let deadline = if in_sim() { Some(timeout_ns) } else { None };
        let len = buf.len();
        self.run_batches(actor, pages, start, len, None, Some(buf), deadline, attempts)
    }
}
