//! Opportunistic-delegation thread pool (paper §4.5, following OdinFS).
//!
//! (lint: hot-path — the delegated data path must never take the registry
//! lock; its event log and ring bookkeeping are all self-contained.)
//!
//! A fixed number of kernel *delegation threads* run per NUMA node. LibFSes
//! (and the OdinFS baseline) hand large accesses to them through
//! shared-memory rings — no kernel trap — and wait for completion. The
//! threads always access their own node's NVM (locality) and their fixed
//! count bounds the per-node concurrency, which is what prevents Optane's
//! bandwidth collapse. Large extents are split per node and served in
//! parallel, aggregating the bandwidth of all nodes.
//!
//! Submission is *batched*: one scatter-gather [`DelegReq`] per `(node,
//! worker slot)` carries node-contiguous runs of the extent. Write payloads
//! travel **by reference** as a revocable [`GrantRef`] window (DESIGN.md
//! §17): the client registers its buffer with the kernel's
//! [`crate::grant::GrantTable`] and the worker reads the bytes straight out
//! of the granted region during its one write pass into NVM — zero copies
//! on the submit path, and that same pass folds each byte into a streaming
//! checksum recorded in the page sidecars. Large single-node runs addition-
//! ally *fan out* across the node's worker slots in page-aligned chunks of
//! at least [`FANOUT_MIN_BYTES`], so one big op engages enough threads to
//! reach the node's concurrency sweet spot instead of crawling through a
//! single worker at `k = 1` efficiency. Completions come back tagged on a
//! per-op reply ring drawn from a pool, so steady-state ops allocate no
//! channels.
//!
//! Permission is enforced end-to-end: a delegation thread performs the
//! access *as the requesting actor*, so the MMU check still applies.
//!
//! # Failure domains (DESIGN.md §16)
//!
//! The pool is also a failure domain. Each worker carries a heartbeat
//! epoch and an in-flight slot; [`DelegationPool::watchdog_scan`]
//! (invoked from every client deadline miss, and callable directly)
//! detects workers that died mid-request, re-dispatches the orphaned
//! request to a healthy ring, and respawns the worker on its original
//! ring. Writes carry a monotonic `(actor, seq)` idempotence token: a
//! worker records the token only *after* the full request applied, and a
//! re-dispatched or retried write whose token is already recorded is
//! acknowledged without touching media — exactly-once application even
//! when the first worker died between apply and reply. Under sustained
//! failure or ring backpressure the pool enters a [`DegradedMode`] that
//! sheds delegation to direct access, probing periodically so recovery
//! re-promotes traffic.

use std::collections::{HashSet, VecDeque};
#[cfg(feature = "faults")]
use std::sync::atomic::AtomicU8;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[cfg(feature = "faults")]
use trio_nvm::WorkerKillPlan;
use trio_nvm::{
    ActorId, NvmDevice, NvmHandle, PageId, PathStats, ProtError, WorkerKillPoint, PAGE_SIZE,
};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::sync::{RecvDeadline, SimChannel};
use trio_sim::{in_sim, now, spawn, JoinHandle, Nanos};

use crate::grant::{GrantRef, GrantTable};
use crate::registry::KernelEvent;
use crate::retry::RetryPolicy;

/// Reply-ring capacity. Must exceed the most completions an op can have in
/// flight (touched nodes × per-node fan-out × retry attempts), so a late
/// worker reply to an abandoned (timed-out) op never blocks the worker.
const REPLY_RING_CAP: usize = 512;

/// Minimum bytes per fan-out chunk. A single-node run is split across the
/// node's worker slots only in page-aligned chunks at least this large:
/// big ops reach the concurrency the bandwidth model rewards (per-node
/// write efficiency peaks around 8–12 concurrent accessors), while small
/// ops — a lone 4 KiB write — stay whole and keep their one-hop latency.
/// Page alignment means no page ever has two workers writing it, which is
/// also what keeps the per-page checksum sidecars single-writer.
const FANOUT_MIN_BYTES: usize = 8192;

/// Hard ceiling on runs per request. The rings are shared memory, so a
/// hostile LibFS can enqueue arbitrary [`DelegReq`]s; the worker must
/// bound its own work regardless of what the client-side builder would
/// have produced.
const MAX_RUNS_PER_REQ: usize = 4096;

/// Hard ceiling on bytes per request. Reads allocate the reply buffer on
/// the delegation thread, so an unchecked `read_len` is a kernel-side
/// allocation bomb.
const MAX_BYTES_PER_REQ: usize = 64 << 20;

/// Idempotence-token window: the most recently recorded write tokens the
/// pool remembers. Sized far past any plausible in-flight retry horizon
/// (tokens only matter while the op that minted them can still retry).
const IDEM_WINDOW: usize = 8192;

/// Consecutive whole-op delegation failures that trip degraded mode.
const DEGRADE_AFTER_FAILURES: u64 = 3;

/// Consecutive backpressured submissions that trip degraded mode.
const DEGRADE_AFTER_BACKPRESSURE: u64 = 64;

/// Consecutive delegated successes that clear degraded mode.
const RECOVER_AFTER_SUCCESSES: u64 = 8;

/// While degraded, one in this many eligible ops is admitted as a probe
/// (its success is what eventually clears degraded mode).
const PROBE_EVERY: u64 = 16;

/// "No worker-kill plan armed" sentinel.
#[cfg(feature = "faults")]
const KILL_UNSET: u64 = u64::MAX;

/// Worker-side admission check for one ring request. Everything here is
/// normally guaranteed by [`DelegationPool::build_batches`], but the ring
/// is writable by the (untrusted) client, so the worker re-validates:
/// run/byte ceilings, payload slice bounds, and extent-capacity bounds.
/// The MMU check still runs per page during the access itself.
fn validate_req(req: &DelegReq) -> Result<(), ProtError> {
    if req.runs.is_empty() || req.runs.len() > MAX_RUNS_PER_REQ {
        return Err(ProtError::OutOfRange);
    }
    let payload_len = req.grant.as_ref().map(|g| g.len);
    let mut total: usize = 0;
    for run in &req.runs {
        if run.pages.is_empty() {
            return Err(ProtError::OutOfRange);
        }
        let cap = run.pages.len() * PAGE_SIZE;
        let span = match payload_len {
            Some(pl) => {
                if run.payload.start > run.payload.end || run.payload.end > pl {
                    return Err(ProtError::OutOfRange);
                }
                run.payload.len()
            }
            None => run.read_len,
        };
        if run.start >= cap || span > cap - run.start {
            return Err(ProtError::OutOfRange);
        }
        total = total.checked_add(span).ok_or(ProtError::OutOfRange)?;
    }
    if total > MAX_BYTES_PER_REQ {
        return Err(ProtError::OutOfRange);
    }
    Ok(())
}

/// Tagged completion: `(request tag, result)`. Reads return the batch's
/// runs concatenated in submission order.
pub type DelegReply = (usize, Result<Option<Vec<u8>>, ProtError>);

/// One node-contiguous run inside a batched request.
#[derive(Clone)]
pub struct DelegRun {
    /// The run's pages, in extent order (all on the target node).
    pub pages: Vec<PageId>,
    /// Byte offset within the run at which the access starts.
    pub start: usize,
    /// For writes: this run's byte range within the op's grant window.
    pub payload: std::ops::Range<usize>,
    /// For reads: how many bytes to read.
    pub read_len: usize,
}

/// One scatter-gather request: every run an extent access places on a
/// single node, served by one delegation thread in one ring hop.
#[derive(Clone)]
pub struct DelegReq {
    /// The requesting LibFS (MMU checks run against it).
    pub actor: ActorId,
    /// Observability op id of the syscall span this batch serves (0 when
    /// none — raw/hostile submissions, or the `obs` feature off). Workers
    /// echo it into their span events so a timeline can stitch the
    /// client-side submit to the worker-side service.
    pub op_id: u64,
    /// Idempotence token: monotonic per-pool write sequence (0 = none;
    /// reads and raw submissions carry 0). Together with `actor` and
    /// `tag` it names one batch of one write op; a worker records the
    /// token after applying and skips any re-dispatch/retry that carries
    /// an already-recorded token, so a write applies exactly once even
    /// if the worker that applied it died before replying.
    pub seq: u64,
    /// Node-contiguous runs, in extent order.
    pub runs: Vec<DelegRun>,
    /// For writes: the grant window holding the op's payload. Run payload
    /// ranges index *within* this window. The worker re-validates the
    /// grant (owner, epoch, bounds) on every dispatch and reads the bytes
    /// straight from the granted buffer — nothing is copied, and retries
    /// and re-dispatches carry only this reference.
    pub grant: Option<GrantRef>,
    /// Which batch of the op this is; echoed in the reply.
    pub tag: usize,
    /// Completion ring (one per op, pooled).
    pub reply: Arc<SimChannel<DelegReply>>,
}

/// Sizing knobs for the pool; see [`crate::KernelConfig`].
#[derive(Clone, Copy, Debug)]
pub struct DelegationConfig {
    /// Delegation threads (and rings) per NUMA node.
    pub threads_per_node: usize,
    /// Submission-ring capacity; a full ring is counted as backpressure
    /// and the producer blocks.
    pub ring_capacity: usize,
}

impl Default for DelegationConfig {
    fn default() -> Self {
        // 12 threads matches OdinFS's per-node writer pool; 64 slots per
        // ring keeps ~5 ops of headroom per thread before backpressure.
        DelegationConfig { threads_per_node: 12, ring_capacity: 64 }
    }
}

/// Why a deadline-bounded delegated access did not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelegationError {
    /// No reply arrived before the deadline (a delegation thread stalled
    /// or dropped the request). The access may or may not have executed;
    /// callers retry or fall back to direct access — both are safe because
    /// a delegated write is idempotent (same bytes, same location).
    Timeout,
    /// The delegated access executed and faulted.
    Fault(ProtError),
}

impl std::fmt::Display for DelegationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelegationError::Timeout => write!(f, "delegation request timed out"),
            DelegationError::Fault(e) => write!(f, "delegated access faulted: {e}"),
        }
    }
}

/// Injectable delegation-thread faults (tentpole fault-injection engine).
///
/// Draws come from each delegation thread's own deterministic RNG
/// ([`trio_sim::rng`]), so a given `(seed, settings)` pair replays the same
/// stalls, drops, and kills. The rate fields are "one in N"; zero disables.
#[cfg(feature = "faults")]
pub struct DelegationFaults {
    /// Stall one in N served requests by `stall_ns` of virtual time.
    stall_one_in: AtomicU64,
    /// Virtual nanoseconds a stalled request is delayed before serving.
    stall_ns: AtomicU64,
    /// Drop one in N requests without ever replying (a wedged thread).
    drop_one_in: AtomicU64,
    /// Requests popped so far, across all workers — the replay coordinate
    /// of an armed [`WorkerKillPlan`].
    served: AtomicU64,
    /// Pop index at which to kill the serving worker; `KILL_UNSET` off.
    kill_at_request: AtomicU64,
    /// The armed kill point (`WorkerKillPoint as u8`).
    kill_point: AtomicU8,
    /// Randomly kill the serving worker one in N requests, at a kill
    /// point drawn from the worker's RNG.
    kill_one_in: AtomicU64,
}

#[cfg(feature = "faults")]
impl Default for DelegationFaults {
    fn default() -> Self {
        DelegationFaults {
            stall_one_in: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            drop_one_in: AtomicU64::new(0),
            served: AtomicU64::new(0),
            // 0 is a real pop index; "disarmed" must be the sentinel.
            kill_at_request: AtomicU64::new(KILL_UNSET),
            kill_point: AtomicU8::new(0),
            kill_one_in: AtomicU64::new(0),
        }
    }
}

#[cfg(feature = "faults")]
impl DelegationFaults {
    /// Per-request kill decision, made right after the ring pop. The
    /// armed one-shot plan disarms itself when it fires so the respawned
    /// worker serves the re-dispatch instead of dying again.
    fn draw_kill(&self) -> Option<WorkerKillPoint> {
        let n = self.served.fetch_add(1, Ordering::Relaxed);
        if self.kill_at_request.load(Ordering::Relaxed) == n {
            self.kill_at_request.store(KILL_UNSET, Ordering::Relaxed);
            return WorkerKillPoint::from_index(self.kill_point.load(Ordering::Relaxed));
        }
        let one_in = self.kill_one_in.load(Ordering::Relaxed);
        if one_in != 0 && trio_sim::rng::with_rng(|r| r.one_in(one_in)) {
            let idx = trio_sim::rng::with_rng(|r| r.gen_range(3)) as u8;
            return WorkerKillPoint::from_index(idx);
        }
        None
    }
}

/// Client-side bookkeeping for one batch of an in-flight op.
struct Batch {
    node: usize,
    /// Fan-out slot within the node: chunks of one op are spread over
    /// distinct slots so distinct workers serve them concurrently.
    slot: usize,
    req: DelegReq,
    /// Read scatter list: `(offset into the caller's buffer, len)` per run,
    /// in the same order the worker concatenates them.
    scatter: Vec<(usize, usize)>,
    /// Bytes this batch moves — the unit the retry window is recomputed
    /// from (remaining work only, not the original op size).
    bytes: usize,
    /// Virtual submit time of the latest attempt, for the hop histogram.
    submitted: Nanos,
    done: bool,
}

/// One delegation worker's kernel-side health record. The worker bumps
/// `epoch` every servicing loop (the heartbeat) and parks the request it
/// is serving in `inflight`; a killed worker sets `died` and returns,
/// leaving the orphan behind for the watchdog.
struct WorkerState {
    node: usize,
    /// Ring index within the node (stable across respawns).
    index: usize,
    ring: Arc<SimChannel<DelegReq>>,
    /// Heartbeat: bumped on every ring pop.
    epoch: AtomicU64,
    /// Last heartbeat value the watchdog observed.
    seen_epoch: AtomicU64,
    /// Set by a dying worker (the sim analogue of process exit — the
    /// watchdog's `waitpid`-equivalent ground truth).
    died: AtomicBool,
    /// Virtual time of death, for recovery-latency accounting.
    died_at: AtomicU64,
    /// The request being serviced, if any; a dead worker's orphan.
    inflight: PlMutex<Option<DelegReq>>,
}

impl WorkerState {
    fn new(node: usize, index: usize, ring: Arc<SimChannel<DelegReq>>) -> Self {
        WorkerState {
            node,
            index,
            ring,
            epoch: AtomicU64::new(0),
            seen_epoch: AtomicU64::new(0),
            died: AtomicBool::new(false),
            died_at: AtomicU64::new(0),
            inflight: PlMutex::new(None),
        }
    }

    /// Marks this worker dead. Called by the worker itself at a kill
    /// point; the in-flight slot is deliberately left populated — that is
    /// the orphan the watchdog re-dispatches.
    fn die(&self) {
        self.died_at.store(if in_sim() { now() } else { 0 }, Ordering::Relaxed);
        self.died.store(true, Ordering::Release);
    }
}

/// Bounded-window idempotence-token table (see [`DelegReq::seq`]).
#[derive(Default)]
struct IdemTable {
    set: HashSet<(u64, u64, usize)>,
    order: VecDeque<(u64, u64, usize)>,
}

impl IdemTable {
    fn contains(&self, key: &(u64, u64, usize)) -> bool {
        self.set.contains(key)
    }

    fn record(&mut self, key: (u64, u64, usize)) {
        if self.set.insert(key) {
            self.order.push_back(key);
            if self.order.len() > IDEM_WINDOW {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }
}

/// Degradation state machine counters (all relaxed atomics; transitions
/// are serialized through `degraded`'s swap).
#[derive(Default)]
struct Health {
    consec_failures: AtomicU64,
    consec_successes: AtomicU64,
    backpressure_run: AtomicU64,
    degraded: AtomicBool,
    /// Bumped on every degraded-mode exit and every worker restart; the
    /// per-file demotion in the LibFS re-promotes when it advances.
    recovery_epoch: AtomicU64,
    probe_tick: AtomicU64,
    enters: AtomicU64,
    exits: AtomicU64,
}

/// Snapshot of the pool's degradation state, surfaced through
/// [`crate::KernelController::degraded_mode`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradedMode {
    /// Whether the pool is currently shedding delegation to direct access.
    pub active: bool,
    /// Consecutive whole-op delegation failures observed.
    pub consecutive_failures: u64,
    /// Lifetime count of degraded-mode entries.
    pub enters: u64,
    /// Lifetime count of degraded-mode exits.
    pub exits: u64,
}

/// The pool; create once per device, start once per simulation.
pub struct DelegationPool {
    dev: Arc<NvmDevice>,
    rings: Vec<Vec<Arc<SimChannel<DelegReq>>>>,
    rr: Vec<AtomicUsize>,
    started: AtomicBool,
    shutting_down: AtomicBool,
    stats: Arc<PathStats>,
    reply_pool: PlMutex<Vec<Arc<SimChannel<DelegReply>>>>,
    /// One health record per worker, flattened node-major.
    workers: Vec<Arc<WorkerState>>,
    /// Monotonic write-sequence source for idempotence tokens.
    next_seq: AtomicU64,
    idem: Arc<PlMutex<IdemTable>>,
    /// Live grant windows; shared with every worker for per-dispatch
    /// re-validation.
    grants: Arc<GrantTable>,
    health: Health,
    /// Failure-domain events, merged into the registry's stream by
    /// [`crate::KernelController::take_events`].
    events: PlMutex<Vec<KernelEvent>>,
    /// Death-to-restart latencies observed by the watchdog, in virtual ns.
    recovery_ns: PlMutex<Vec<Nanos>>,
    #[cfg(feature = "faults")]
    faults: Arc<DelegationFaults>,
}

impl DelegationPool {
    /// Builds rings for `threads_per_node` delegation threads on each node,
    /// with default ring capacity and private counters.
    pub fn new(dev: Arc<NvmDevice>, threads_per_node: usize) -> Self {
        let config = DelegationConfig { threads_per_node, ..DelegationConfig::default() };
        Self::with_config(dev, config, Arc::new(PathStats::new()))
    }

    /// Builds the pool with explicit sizing and a shared counter sink.
    pub fn with_config(dev: Arc<NvmDevice>, config: DelegationConfig, stats: Arc<PathStats>) -> Self {
        let nodes = dev.topology().nodes;
        let cap = config.ring_capacity.max(1);
        let rings: Vec<Vec<Arc<SimChannel<DelegReq>>>> = (0..nodes)
            .map(|_| {
                (0..config.threads_per_node.max(1))
                    .map(|_| Arc::new(SimChannel::bounded(cap)))
                    .collect()
            })
            .collect();
        let workers = rings
            .iter()
            .enumerate()
            .flat_map(|(node, node_rings)| {
                node_rings
                    .iter()
                    .enumerate()
                    .map(move |(i, ring)| Arc::new(WorkerState::new(node, i, Arc::clone(ring))))
            })
            .collect();
        let health = Health::default();
        health.recovery_epoch.store(1, Ordering::Relaxed);
        let grants = Arc::new(GrantTable::new(Arc::clone(&stats)));
        DelegationPool {
            dev,
            rings,
            rr: (0..nodes).map(|_| AtomicUsize::new(0)).collect(),
            started: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            stats,
            reply_pool: PlMutex::new(Vec::new()),
            workers,
            next_seq: AtomicU64::new(0),
            idem: Arc::new(PlMutex::new(IdemTable::default())),
            grants,
            health,
            events: PlMutex::new(Vec::new()),
            recovery_ns: PlMutex::new(Vec::new()),
            #[cfg(feature = "faults")]
            faults: Arc::new(DelegationFaults::default()),
        }
    }

    /// The pool's data-path counters.
    pub fn stats(&self) -> &Arc<PathStats> {
        &self.stats
    }

    /// The pool's grant-window table (buffer registration lives here).
    pub fn grants(&self) -> &GrantTable {
        &self.grants
    }

    /// Arms delegation-thread fault injection: stall one in
    /// `stall_one_in` requests by `stall_ns`, drop one in `drop_one_in`
    /// requests without replying. Zero rates disable the respective fault.
    #[cfg(feature = "faults")]
    pub fn inject_faults(&self, stall_one_in: u64, stall_ns: Nanos, drop_one_in: u64) {
        self.faults.stall_one_in.store(stall_one_in, Ordering::Relaxed);
        self.faults.stall_ns.store(stall_ns, Ordering::Relaxed);
        self.faults.drop_one_in.store(drop_one_in, Ordering::Relaxed);
    }

    /// Arms a one-shot worker-kill plan: the worker that pops the
    /// `plan.at_request`-th request (0-based, global pop order) dies at
    /// `plan.point`. The plan disarms when it fires, so the re-dispatch
    /// and any client retry are served by healthy workers.
    #[cfg(feature = "faults")]
    pub fn arm_worker_kill(&self, plan: WorkerKillPlan) {
        self.faults.kill_point.store(plan.point as u8, Ordering::Relaxed);
        self.faults.kill_at_request.store(plan.at_request, Ordering::Relaxed);
    }

    /// Random worker-kill mode: one in `one_in` served requests kills the
    /// serving worker at an RNG-drawn kill point. Zero disables.
    #[cfg(feature = "faults")]
    pub fn inject_worker_kills(&self, one_in: u64) {
        self.faults.kill_one_in.store(one_in, Ordering::Relaxed);
    }

    /// Requests popped so far across all workers (the replay coordinate
    /// of [`Self::arm_worker_kill`]).
    #[cfg(feature = "faults")]
    pub fn requests_served(&self) -> u64 {
        self.faults.served.load(Ordering::Relaxed)
    }

    /// Spawns the delegation sim-threads. Must be called from inside the
    /// simulation (e.g. the harness's main sim-thread). Returns their join
    /// handles; call [`DelegationPool::shutdown`] to let them exit.
    /// (Respawned workers' handles are not returned; the runtime joins
    /// them like any other sim thread.)
    pub fn start(&self) -> Vec<JoinHandle> {
        assert!(!self.started.swap(true, Ordering::SeqCst), "delegation pool already started");
        self.workers.iter().map(|ws| self.spawn_worker(Arc::clone(ws))).collect()
    }

    /// Spawns (or respawns) the sim-thread for one worker slot. The
    /// incarnation serves the slot's original ring, so requests queued
    /// behind a death are preserved.
    fn spawn_worker(&self, ws: Arc<WorkerState>) -> JoinHandle {
        let dev = Arc::clone(&self.dev);
        let stats = Arc::clone(&self.stats);
        let idem = Arc::clone(&self.idem);
        let grants = Arc::clone(&self.grants);
        #[cfg(feature = "faults")]
        let faults = Arc::clone(&self.faults);
        spawn("delegation", move || {
            trio_nvm::handle::set_home_node(ws.node);
            while let Some(req) = ws.ring.recv() {
                // Heartbeat + in-flight parking: what the watchdog reads.
                ws.epoch.fetch_add(1, Ordering::Relaxed);
                *ws.inflight.lock() = Some(req.clone());
                #[cfg(feature = "faults")]
                let kill = faults.draw_kill();
                #[cfg(not(feature = "faults"))]
                let kill: Option<WorkerKillPoint> = None;
                if kill == Some(WorkerKillPoint::AfterPop) {
                    // Dies with nothing applied: the orphan re-dispatch
                    // must run the request from scratch.
                    ws.die();
                    return;
                }
                #[cfg(feature = "faults")]
                {
                    let n = faults.stall_one_in.load(Ordering::Relaxed);
                    if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                        trio_sim::work(faults.stall_ns.load(Ordering::Relaxed));
                    }
                    let n = faults.drop_one_in.load(Ordering::Relaxed);
                    if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                        // A wedged thread: the request vanishes and no
                        // reply is ever sent. Clients must use the
                        // deadline-bounded entry points to survive this.
                        // Not an orphan — the thread lives on — so the
                        // in-flight slot is cleared.
                        *ws.inflight.lock() = None;
                        continue;
                    }
                }
                if let Err(e) = validate_req(&req) {
                    stats.record_deleg_rejected();
                    let _ = req.reply.send((req.tag, Err(e)));
                    *ws.inflight.lock() = None;
                    continue;
                }
                let is_write = req.grant.is_some();
                let key = (req.actor.0 as u64, req.seq, req.tag);
                if is_write && req.seq != 0 && idem.lock().contains(&key) {
                    // Already applied by a previous incarnation that died
                    // before replying: acknowledge without touching media.
                    stats.record_dedup_hit();
                    let _ = req.reply.send((req.tag, Ok(None)));
                    *ws.inflight.lock() = None;
                    continue;
                }
                // Grant admission runs on *every* dispatch — first send,
                // client retry, watchdog re-dispatch — so a window whose
                // backing buffer was revoked, unregistered, or mutated
                // (epoch bumped) in the meantime faults here instead of
                // being read stale.
                let granted = match &req.grant {
                    Some(g) => match grants.resolve(req.actor, g) {
                        Ok(data) => Some(data),
                        Err(e) => {
                            stats.record_grant_fault();
                            let _ = req.reply.send((req.tag, Err(e)));
                            *ws.inflight.lock() = None;
                            continue;
                        }
                    },
                    None => None,
                };
                let svc_t0 = crate::obs::worker_begin(req.op_id, is_write, ws.node, req.actor.0);
                let h = NvmHandle::new(Arc::clone(&dev), req.actor);
                let xfer_t0 = crate::obs::transfer_begin();
                let mut killed_mid = false;
                let mut result = match (&req.grant, &granted) {
                    (Some(gref), Some(buffer)) => {
                        // The worker's single pass over the granted bytes:
                        // read straight from the grant window, stream the
                        // checksum, store into NVM. No copy in between.
                        let window = &buffer[gref.start..gref.start + gref.len];
                        let mut r = Ok(None);
                        // Acked ⇒ durable: every run must yield a Durable
                        // witness (write_extent_hashed fences before
                        // returning) before the reply goes out below.
                        let mut durable_runs = 0usize;
                        for (i, run) in req.runs.iter().enumerate() {
                            let Some(data) = window.get(run.payload.clone()) else {
                                r = Err(ProtError::OutOfRange);
                                break;
                            };
                            match h.write_extent_hashed(&run.pages, run.start, data) {
                                Ok(proof) => {
                                    debug_assert_eq!(proof.witness().bytes(), data.len());
                                    durable_runs += 1;
                                }
                                Err(e) => {
                                    r = Err(e);
                                    break;
                                }
                            }
                            stats.record_checksummed_bytes(data.len());
                            if i == 0 && kill == Some(WorkerKillPoint::MidPayload) {
                                // Dies with the first run applied and the
                                // token NOT recorded: the re-dispatch
                                // re-applies the same bytes (idempotent).
                                killed_mid = true;
                                break;
                            }
                        }
                        if r.is_ok() && !killed_mid {
                            // Type-level form of the reply contract: an Ok
                            // reply is only sent once every run produced a
                            // durability witness.
                            debug_assert_eq!(durable_runs, req.runs.len());
                        }
                        r
                    }
                    _ => {
                        let total: usize = req.runs.iter().map(|r| r.read_len).sum();
                        let mut buf = vec![0u8; total];
                        let mut r = Ok(());
                        let mut off = 0;
                        for (i, run) in req.runs.iter().enumerate() {
                            let dst = &mut buf[off..off + run.read_len];
                            if let Err(e) = h.read_extent(&run.pages, run.start, dst) {
                                r = Err(e);
                                break;
                            }
                            off += run.read_len;
                            if i == 0 && kill == Some(WorkerKillPoint::MidPayload) {
                                killed_mid = true;
                                break;
                            }
                        }
                        r.map(|()| Some(buf))
                    }
                };
                if killed_mid {
                    // The controller reaps a dead worker's grant pins so a
                    // pending revocation can still drain; the sim models
                    // that reap as an unpin on the death path.
                    if let Some(g) = &req.grant {
                        grants.unpin(g.grant_id);
                    }
                    ws.die();
                    return;
                }
                crate::obs::transfer_end(
                    req.op_id,
                    is_write,
                    ws.node,
                    req.actor.0,
                    req.runs.len() as u64,
                    xfer_t0,
                );
                crate::obs::worker_end(req.op_id, is_write, ws.node, req.actor.0, svc_t0);
                if let Some(g) = &req.grant {
                    // Post-pass re-check: the pass itself read a
                    // consistent snapshot, but if the submitter revoked
                    // or rewrote the grant while it ran, the contract is
                    // broken and the client must see a clean fault, not
                    // a success for bytes it no longer stands behind.
                    if result.is_ok() && !grants.is_current(g) {
                        stats.record_grant_fault();
                        result = Err(ProtError::GrantRevoked);
                    }
                    // Pin held since resolve: releasing it is what lets a
                    // waiting revocation complete — strictly after this
                    // pass's bytes (stale or not) are on media.
                    grants.unpin(g.grant_id);
                }
                if is_write && req.seq != 0 && result.is_ok() {
                    // Token records only after the full apply: a death
                    // before this line re-applies (byte-idempotent), a
                    // death after it dedups.
                    idem.lock().record(key);
                }
                if kill == Some(WorkerKillPoint::BeforeReply) {
                    // Dies with everything applied and the token recorded
                    // but the client still waiting: the re-dispatch must
                    // reply via the dedup path without re-applying.
                    ws.die();
                    return;
                }
                let _ = req.reply.send((req.tag, result));
                *ws.inflight.lock() = None;
            }
        })
    }

    /// Watchdog pass over every worker: advances the heartbeat bookkeeping
    /// and, for each worker whose death flag is set (the sim analogue of a
    /// `waitpid` reap), re-dispatches its orphaned in-flight request to a
    /// healthy ring and respawns the worker on its original ring. Invoked
    /// from every client deadline miss — a dead worker is detected within
    /// one retry window — and callable directly by harnesses. Returns the
    /// number of deaths handled.
    ///
    /// Workers that are merely wedged (alive but not replying — the drop
    /// fault) are left alone: killing a live thread is not modelled, and
    /// the client-side deadline/fallback path already covers them.
    pub fn watchdog_scan(&self) -> usize {
        let mut deaths = 0;
        for ws in &self.workers {
            let e = ws.epoch.load(Ordering::Relaxed);
            ws.seen_epoch.store(e, Ordering::Relaxed);
            if !ws.died.load(Ordering::Acquire) {
                continue;
            }
            deaths += 1;
            let orphan = ws.inflight.lock().take();
            self.stats.record_worker_death();
            crate::obs::worker_death(ws.node, ws.index as u64);
            self.events
                .lock()
                .push(KernelEvent::WorkerDied { node: ws.node, worker: ws.index });
            self.note_op_failure();
            // Respawn first so the orphan can even land back on this
            // worker's own ring without waiting for a third party.
            let restarted = in_sim() && !self.shutting_down.load(Ordering::Relaxed);
            if restarted {
                ws.died.store(false, Ordering::Release);
                let _ = self.spawn_worker(Arc::clone(ws));
                self.stats.record_worker_restart();
                let rec = now().saturating_sub(ws.died_at.load(Ordering::Relaxed));
                self.recovery_ns.lock().push(rec);
                crate::obs::worker_restart(ws.node, ws.index as u64, rec);
                self.events
                    .lock()
                    .push(KernelEvent::WorkerRestarted { node: ws.node, worker: ws.index });
                self.health.recovery_epoch.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(req) = orphan {
                // Best-effort re-dispatch; a full ring drops the orphan
                // (the client's own retry covers it — double-enqueue is
                // safe either way thanks to the idempotence token).
                match self.ring_for(ws.node).try_send(req) {
                    Ok(()) => {
                        self.stats.record_redispatch();
                        crate::obs::redispatch(ws.node, ws.index as u64);
                    }
                    Err(_) => self.stats.record_ring_backpressure(),
                }
            }
        }
        deaths
    }

    // --- degradation state machine -------------------------------------

    fn note_op_success(&self) {
        self.health.consec_failures.store(0, Ordering::Relaxed);
        self.health.backpressure_run.store(0, Ordering::Relaxed);
        let ok = self.health.consec_successes.fetch_add(1, Ordering::Relaxed) + 1;
        if ok >= RECOVER_AFTER_SUCCESSES && self.health.degraded.swap(false, Ordering::Relaxed) {
            self.health.exits.fetch_add(1, Ordering::Relaxed);
            self.health.recovery_epoch.fetch_add(1, Ordering::Relaxed);
            self.stats.record_degraded(false);
            crate::obs::degraded_exit();
            self.events.lock().push(KernelEvent::DelegationRecovered);
        }
    }

    fn note_op_failure(&self) {
        self.health.consec_successes.store(0, Ordering::Relaxed);
        let bad = self.health.consec_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if bad >= DEGRADE_AFTER_FAILURES {
            self.enter_degraded(bad);
        }
    }

    fn note_backpressure(&self) {
        self.stats.record_ring_backpressure();
        let run = self.health.backpressure_run.fetch_add(1, Ordering::Relaxed) + 1;
        if run >= DEGRADE_AFTER_BACKPRESSURE {
            self.enter_degraded(self.health.consec_failures.load(Ordering::Relaxed));
        }
    }

    fn enter_degraded(&self, failures: u64) {
        if !self.health.degraded.swap(true, Ordering::Relaxed) {
            self.health.enters.fetch_add(1, Ordering::Relaxed);
            self.stats.record_degraded(true);
            crate::obs::degraded_enter(failures);
            self.events.lock().push(KernelEvent::DelegationDegraded);
        }
    }

    /// Routing gate for the LibFS: while healthy every eligible op is
    /// admitted; while degraded only one in [`PROBE_EVERY`] is, as a
    /// probe whose success (a run of them) clears degraded mode.
    pub fn admit_delegated(&self) -> bool {
        if !self.health.degraded.load(Ordering::Relaxed) {
            return true;
        }
        self.health.probe_tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(PROBE_EVERY)
    }

    /// Whether the pool is currently in degraded mode.
    pub fn degraded(&self) -> bool {
        self.health.degraded.load(Ordering::Relaxed)
    }

    /// Bumped on every recovery (degraded-mode exit or worker restart);
    /// per-file demotions re-promote when it advances.
    pub fn recovery_epoch(&self) -> u64 {
        self.health.recovery_epoch.load(Ordering::Relaxed)
    }

    /// Snapshot of the degradation state machine.
    pub fn degraded_mode(&self) -> DegradedMode {
        DegradedMode {
            active: self.health.degraded.load(Ordering::Relaxed),
            consecutive_failures: self.health.consec_failures.load(Ordering::Relaxed),
            enters: self.health.enters.load(Ordering::Relaxed),
            exits: self.health.exits.load(Ordering::Relaxed),
        }
    }

    /// Drains the pool's failure-domain events (worker deaths/restarts,
    /// degraded-mode transitions), oldest first.
    pub fn take_events(&self) -> Vec<KernelEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Drains the death-to-restart latencies the watchdog observed.
    pub fn take_recovery_latencies(&self) -> Vec<Nanos> {
        std::mem::take(&mut *self.recovery_ns.lock())
    }

    /// Total worker slots (nodes × threads per node).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Whether [`DelegationPool::start`] ran.
    pub fn is_started(&self) -> bool {
        self.started.load(Ordering::SeqCst)
    }

    /// Closes all rings; delegation threads drain and exit. Suppresses
    /// watchdog respawns from this point on.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::Relaxed);
        for node_rings in &self.rings {
            for ring in node_rings {
                ring.close();
            }
        }
    }

    /// Adversary/test hook: enqueue a raw, possibly malformed [`DelegReq`]
    /// on one of `node`'s rings, bypassing every client-side invariant —
    /// exactly what a hostile LibFS with ring access can do. The worker's
    /// [`validate_req`] admission check and the per-page MMU check are the
    /// only defenses that apply.
    pub fn submit_raw(&self, node: usize, req: DelegReq) -> Result<(), ProtError> {
        if node >= self.rings.len() {
            return Err(ProtError::OutOfRange);
        }
        self.stats.record_submission(req.runs.len());
        self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)
    }

    fn ring_for(&self, node: usize) -> &Arc<SimChannel<DelegReq>> {
        let i = self.rr[node].fetch_add(1, Ordering::Relaxed);
        let rings = &self.rings[node];
        &rings[i % rings.len()]
    }

    /// Grabs a pooled reply ring, or makes one sized so that even an
    /// abandoned op's stragglers fit without blocking a worker.
    fn take_reply(&self) -> Arc<SimChannel<DelegReply>> {
        if let Some(ch) = self.reply_pool.lock().pop() {
            return ch;
        }
        Arc::new(SimChannel::bounded(REPLY_RING_CAP))
    }

    /// Returns a reply ring to the pool. Callers may only do this when
    /// every submitted batch was received — an abandoned ring with
    /// stragglers in flight must be dropped instead, or a late reply
    /// would bleed into the next op. (The watchdog's re-dispatches keep
    /// this sound: a re-dispatch only exists because the original worker
    /// died without replying, so total replies never exceed the client's
    /// own submissions.)
    fn put_reply(&self, ch: Arc<SimChannel<DelegReply>>) {
        debug_assert!(ch.is_empty());
        let mut pool = self.reply_pool.lock();
        if pool.len() < 256 {
            pool.push(ch);
        }
    }

    /// Splits `[start, start+len)` over `pages` into node-contiguous runs.
    /// Returns `(node, page_range, byte_range_within_extent)` tuples.
    #[allow(clippy::needless_range_loop)] // `pi` marks run boundaries
    fn split_runs(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
    ) -> Vec<(usize, std::ops::Range<usize>, std::ops::Range<usize>)> {
        let topo = self.dev.topology();
        let mut runs = Vec::new();
        if len == 0 {
            return runs;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        let mut run_start_page = first;
        let mut run_node = topo.node_of(pages[first]);
        for pi in first..=last {
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                runs.push(self.finish_run(run_node, run_start_page, pi, start, len));
                run_start_page = pi;
                run_node = node;
            }
        }
        runs.push(self.finish_run(run_node, run_start_page, last + 1, start, len));
        runs
    }

    fn finish_run(
        &self,
        node: usize,
        from_page: usize,
        to_page: usize,
        start: usize,
        len: usize,
    ) -> (usize, std::ops::Range<usize>, std::ops::Range<usize>) {
        let byte_from = start.max(from_page * PAGE_SIZE);
        let byte_to = (start + len).min(to_page * PAGE_SIZE);
        (node, from_page..to_page, byte_from..byte_to)
    }

    /// Groups the extent's runs into tagged batches, one per `(node,
    /// fan-out slot)`. Each node-contiguous run bigger than
    /// [`FANOUT_MIN_BYTES`] is additionally split into page-aligned chunks
    /// spread round-robin over the node's worker slots, so a single large
    /// op is served by several delegation threads concurrently — that is
    /// what lifts the node to the concurrency level its bandwidth model
    /// rewards. Small runs stay whole: one chunk, one hop.
    #[allow(clippy::too_many_arguments)]
    fn build_batches(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        grant: Option<&GrantRef>,
        reply: &Arc<SimChannel<DelegReply>>,
        seq: u64,
    ) -> Vec<Batch> {
        let mut batches: Vec<Batch> = Vec::new();
        let mut next_slot: Vec<usize> = vec![0; self.rings.len()];
        for (node, prange, brange) in self.split_runs(pages, start, len) {
            let threads = self.rings[node].len();
            let chunks = (brange.len() / FANOUT_MIN_BYTES).clamp(1, threads);
            let run_pages = prange.len();
            let mut from_page = prange.start;
            for ci in 0..chunks {
                // Even page split: every page belongs to exactly one
                // chunk, so no two workers ever share a page.
                let to_page = prange.start + (run_pages * (ci + 1)) / chunks;
                if to_page == from_page {
                    continue;
                }
                let byte_from = brange.start.max(from_page * PAGE_SIZE);
                let byte_to = brange.end.min(to_page * PAGE_SIZE);
                let run = DelegRun {
                    // lint: allow(no-payload-copy) page-id list, not payload bytes
                    pages: pages[from_page..to_page].to_vec(),
                    start: byte_from - from_page * PAGE_SIZE,
                    payload: byte_from - start..byte_to - start,
                    read_len: if grant.is_some() { 0 } else { byte_to - byte_from },
                };
                let scatter = (byte_from - start, byte_to - byte_from);
                let slot = next_slot[node];
                next_slot[node] = (slot + 1) % threads.max(1);
                from_page = to_page;
                match batches.iter_mut().find(|b| b.node == node && b.slot == slot) {
                    Some(b) => {
                        b.req.runs.push(run);
                        b.scatter.push(scatter);
                        b.bytes += scatter.1;
                    }
                    None => batches.push(Batch {
                        node,
                        slot,
                        req: DelegReq {
                            actor,
                            op_id: crate::obs::current_op(),
                            seq,
                            runs: vec![run],
                            grant: grant.copied(),
                            tag: batches.len(),
                            reply: Arc::clone(reply),
                        },
                        scatter: vec![scatter],
                        bytes: scatter.1,
                        submitted: 0,
                        done: false,
                    }),
                }
            }
        }
        batches
    }

    /// Enqueues one batch, counting ring backpressure (which feeds the
    /// degradation state machine) and giving the watchdog a chance to
    /// clear a dead worker before blocking on a full ring. Fails only
    /// when the pool is shut down.
    fn submit(&self, batch: &mut Batch) -> Result<(), ProtError> {
        self.stats.record_submission(batch.req.runs.len());
        crate::obs::ring_submit(
            batch.req.op_id,
            batch.req.grant.is_some(),
            batch.node,
            batch.req.actor.0,
            batch.req.runs.len() as u64,
        );
        batch.submitted = if in_sim() { now() } else { 0 };
        match self.ring_for(batch.node).try_send(batch.req.clone()) {
            Ok(()) => Ok(()),
            Err(req) => {
                self.note_backpressure();
                // The ring may be full because its worker died mid-queue:
                // reap and respawn before committing to a blocking send.
                self.watchdog_scan();
                self.ring_for(batch.node).send(req).map_err(|_| ProtError::NotMapped)
            }
        }
    }

    /// Core submit-and-collect loop shared by every entry point.
    ///
    /// Dispatches one batch per touched node, then waits for tagged
    /// completions. With a [`RetryPolicy`], each attempt waits one policy
    /// window — recomputed from the *remaining* (not yet completed)
    /// bytes, so retries of a partially-completed scatter-gather op get
    /// deadlines scaled to what is actually left — then runs a watchdog
    /// scan and re-enqueues only the still-pending batches (same shared
    /// payload — no copy), up to the policy's attempt budget. Without a
    /// policy it waits forever (the baseline-compatible blocking mode).
    /// `buf` receives scattered read data.
    ///
    /// This wrapper also maintains the in-flight gauge that guards
    /// [`PathStats::reset`], feeds the degradation state machine, and
    /// auto-dumps the obs flight recorder when the whole op times out.
    #[allow(clippy::too_many_arguments)]
    fn run_batches(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        grant: Option<&GrantRef>,
        buf: Option<&mut [u8]>,
        policy: Option<&RetryPolicy>,
    ) -> Result<(), DelegationError> {
        self.stats.enter_delegated_op();
        let r = self.run_batches_inner(actor, pages, start, len, grant, buf, policy);
        self.stats.exit_delegated_op();
        match &r {
            Ok(()) => self.note_op_success(),
            Err(DelegationError::Timeout) => {
                self.note_op_failure();
                crate::obs::timeout_dump();
            }
            // Faults are the access's own outcome (permissions, bounds),
            // not delegation-infrastructure health.
            Err(DelegationError::Fault(_)) => {}
        }
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batches_inner(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        len: usize,
        grant: Option<&GrantRef>,
        mut buf: Option<&mut [u8]>,
        policy: Option<&RetryPolicy>,
    ) -> Result<(), DelegationError> {
        if len == 0 {
            return Ok(());
        }
        // Idempotence tokens are minted per write op and shared by all of
        // its batches (the batch tag disambiguates them).
        let seq =
            if grant.is_some() { self.next_seq.fetch_add(1, Ordering::Relaxed) + 1 } else { 0 };
        let reply = self.take_reply();
        let mut batches = self.build_batches(actor, pages, start, len, grant, &reply, seq);
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut fault: Option<ProtError> = None;
        let mut pending = batches.len();
        for b in batches.iter_mut() {
            match self.submit(b) {
                Ok(()) => sent += 1,
                Err(e) => {
                    fault = Some(e);
                    b.done = true;
                    pending -= 1;
                }
            }
        }
        // Deadlines need the virtual clock; outside the sim (where no
        // injected fault can fire either) waits degrade to blocking.
        let mut attempt = 0u32;
        'attempts: while pending > 0 {
            let deadline = match policy {
                Some(p) if in_sim() => {
                    let remaining: usize =
                        batches.iter().filter(|b| !b.done).map(|b| b.bytes).sum();
                    let window = p.window_ns(attempt, remaining);
                    if attempt > 0 {
                        crate::obs::retry_decision(
                            crate::obs::current_op(),
                            grant.is_some(),
                            attempt,
                            window,
                        );
                    }
                    Some(now() + window)
                }
                _ => None,
            };
            attempt += 1;
            while pending > 0 {
                let got = match deadline {
                    Some(d) => reply.recv_deadline(d),
                    None => match reply.recv() {
                        Some(v) => RecvDeadline::Ok(v),
                        None => RecvDeadline::Closed,
                    },
                };
                match got {
                    RecvDeadline::Ok((tag, result)) => {
                        received += 1;
                        let b = &mut batches[tag];
                        if b.done {
                            // Straggler from a retried attempt; already
                            // accounted for.
                            continue;
                        }
                        if in_sim() {
                            let hop = now().saturating_sub(b.submitted);
                            self.stats.record_ring_hop(hop);
                            crate::obs::ring_reply(
                                b.req.op_id,
                                b.req.grant.is_some(),
                                b.node,
                                b.req.actor.0,
                                hop,
                            );
                        }
                        b.done = true;
                        pending -= 1;
                        match result {
                            Ok(Some(data)) => {
                                if let Some(buf) = buf.as_deref_mut() {
                                    let mut off = 0;
                                    for &(dst, n) in &b.scatter {
                                        buf[dst..dst + n].copy_from_slice(&data[off..off + n]);
                                        off += n;
                                    }
                                }
                            }
                            Ok(None) => {
                                if buf.is_some() {
                                    fault = Some(ProtError::NotMapped);
                                }
                            }
                            Err(e) => fault = Some(e),
                        }
                    }
                    RecvDeadline::Closed => {
                        fault = Some(ProtError::NotMapped);
                        break 'attempts;
                    }
                    RecvDeadline::TimedOut => {
                        self.stats.record_timeout();
                        // Timeouts only occur under a policy (deadlines
                        // are only set when one is present).
                        let budget = policy.map_or(1, |p| p.attempts());
                        if attempt >= budget {
                            break 'attempts;
                        }
                        // A dead worker may be holding one of our batches
                        // hostage: reap, re-dispatch its orphan, respawn —
                        // then re-enqueue whatever is still missing (the
                        // shared payload rides along untouched; a double
                        // enqueue is defused by the idempotence token).
                        self.watchdog_scan();
                        for b in batches.iter_mut().filter(|b| !b.done) {
                            self.stats.record_retry();
                            match self.submit(b) {
                                Ok(()) => sent += 1,
                                Err(e) => {
                                    fault = Some(e);
                                    b.done = true;
                                    pending -= 1;
                                }
                            }
                        }
                        continue 'attempts;
                    }
                }
            }
        }
        if received == sent {
            self.put_reply(reply);
        }
        match (fault, pending) {
            (Some(e), _) => Err(DelegationError::Fault(e)),
            (None, 0) => {
                self.stats.record_delegated_bytes(len, grant.is_some());
                Ok(())
            }
            (None, _) => Err(DelegationError::Timeout),
        }
    }

    /// Zero-copy delegated write of an extent: the payload is named by a
    /// [`GrantRef`] window (see [`Self::grants`]) and read by the workers
    /// straight from the granted buffer — no bytes move on the submit
    /// path. Batches are dispatched in parallel (fanned out across each
    /// node's workers for large runs), waiting (unbounded) for all
    /// completions. `gref.len` is the op's payload length.
    pub fn write_extent_granted(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        gref: GrantRef,
    ) -> Result<(), ProtError> {
        let op = self.grants.op_window(actor, &gref)?;
        let r = self.run_batches(actor, pages, start, op.len, Some(&op), None, None);
        self.grants.revoke(actor, op.grant_id);
        match r {
            Ok(()) => Ok(()),
            Err(DelegationError::Fault(e)) => Err(e),
            Err(DelegationError::Timeout) => Err(ProtError::NotMapped),
        }
    }

    /// Delegated read of an extent (unbounded wait).
    pub fn read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        let len = buf.len();
        match self.run_batches(actor, pages, start, len, None, Some(buf), None) {
            Ok(()) => Ok(()),
            Err(DelegationError::Fault(e)) => Err(e),
            Err(DelegationError::Timeout) => Err(ProtError::NotMapped),
        }
    }

    /// Deadline-bounded zero-copy delegated write: like
    /// [`DelegationPool::write_extent_granted`] but every wait is bounded
    /// by the [`RetryPolicy`] instead of hanging on a stalled, wedged, or
    /// dead delegation thread. Each retry window is recomputed from the
    /// bytes still outstanding and runs a watchdog scan first; retries
    /// re-enqueue only the [`GrantRef`], and every re-dispatch re-resolves
    /// it. Outside the simulation there is no virtual clock (and no
    /// injected fault can fire), so this degrades to the blocking variant.
    pub fn try_write_extent_granted(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        gref: GrantRef,
        policy: &RetryPolicy,
    ) -> Result<(), DelegationError> {
        // The op dispatches an op-scoped child of `gref` and revokes it on
        // the way out: the revoke is a drain barrier, so when this returns
        // (success, fault, or timeout-then-fallback) no worker is still
        // reading the window — a straggling duplicate can never re-apply
        // stale bytes over whatever the caller writes next.
        let op = self.grants.op_window(actor, &gref).map_err(DelegationError::Fault)?;
        let r = self.run_batches(actor, pages, start, op.len, Some(&op), None, Some(policy));
        self.grants.revoke(actor, op.grant_id);
        r
    }

    /// Deadline-bounded delegated read; see
    /// [`DelegationPool::try_write_extent`]. On [`DelegationError::Timeout`]
    /// the buffer contents are unspecified (some runs may have landed).
    pub fn try_read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
        policy: &RetryPolicy,
    ) -> Result<(), DelegationError> {
        let len = buf.len();
        self.run_batches(actor, pages, start, len, None, Some(buf), Some(policy))
    }
}
