//! Opportunistic-delegation thread pool (paper §4.5, following OdinFS).
//!
//! A fixed number of kernel *delegation threads* run per NUMA node. LibFSes
//! (and the OdinFS baseline) hand large accesses to them through
//! shared-memory rings — no kernel trap — and wait for completion. The
//! threads always access their own node's NVM (locality) and their fixed
//! count bounds the per-node concurrency, which is what prevents Optane's
//! bandwidth collapse. Large extents are split per node and served in
//! parallel, aggregating the bandwidth of all nodes.
//!
//! Permission is enforced end-to-end: a delegation thread performs the
//! access *as the requesting actor*, so the MMU check still applies.

#[cfg(feature = "faults")]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use trio_nvm::{ActorId, NvmDevice, NvmHandle, PageId, ProtError, PAGE_SIZE};
use trio_sim::sync::{RecvDeadline, SimChannel};
use trio_sim::{in_sim, now, spawn, JoinHandle, Nanos};

/// One delegated access covering a node-contiguous run of pages.
pub struct DelegReq {
    /// The requesting LibFS (MMU checks run against it).
    pub actor: ActorId,
    /// The run's pages, in extent order.
    pub pages: Vec<PageId>,
    /// Byte offset within the run.
    pub start: usize,
    /// For writes: the bytes. For reads: `None`.
    pub write_data: Option<Vec<u8>>,
    /// For reads: how many bytes to read.
    pub read_len: usize,
    /// Completion channel.
    pub reply: Arc<SimChannel<Result<Option<Vec<u8>>, ProtError>>>,
}

/// Why a deadline-bounded delegated access did not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelegationError {
    /// No reply arrived before the deadline (a delegation thread stalled
    /// or dropped the request). The access may or may not have executed;
    /// callers retry or fall back to direct access — both are safe because
    /// a delegated write is idempotent (same bytes, same location).
    Timeout,
    /// The delegated access executed and faulted.
    Fault(ProtError),
}

impl std::fmt::Display for DelegationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelegationError::Timeout => write!(f, "delegation request timed out"),
            DelegationError::Fault(e) => write!(f, "delegated access faulted: {e}"),
        }
    }
}

/// Injectable delegation-thread faults (tentpole fault-injection engine).
///
/// Draws come from each delegation thread's own deterministic RNG
/// ([`trio_sim::rng`]), so a given `(seed, settings)` pair replays the same
/// stalls and drops. All fields are "one in N" rates; zero disables.
#[cfg(feature = "faults")]
#[derive(Default)]
pub struct DelegationFaults {
    /// Stall one in N served requests by `stall_ns` of virtual time.
    stall_one_in: AtomicU64,
    /// Virtual nanoseconds a stalled request is delayed before serving.
    stall_ns: AtomicU64,
    /// Drop one in N requests without ever replying (a wedged thread).
    drop_one_in: AtomicU64,
}

/// The pool; create once per device, start once per simulation.
pub struct DelegationPool {
    dev: Arc<NvmDevice>,
    rings: Vec<Vec<Arc<SimChannel<DelegReq>>>>,
    rr: Vec<AtomicUsize>,
    started: AtomicBool,
    #[cfg(feature = "faults")]
    faults: Arc<DelegationFaults>,
}

impl DelegationPool {
    /// Builds rings for `threads_per_node` delegation threads on each node.
    pub fn new(dev: Arc<NvmDevice>, threads_per_node: usize) -> Self {
        let nodes = dev.topology().nodes;
        let rings = (0..nodes)
            .map(|_| (0..threads_per_node).map(|_| Arc::new(SimChannel::bounded(64))).collect())
            .collect();
        DelegationPool {
            dev,
            rings,
            rr: (0..nodes).map(|_| AtomicUsize::new(0)).collect(),
            started: AtomicBool::new(false),
            #[cfg(feature = "faults")]
            faults: Arc::new(DelegationFaults::default()),
        }
    }

    /// Arms delegation-thread fault injection: stall one in
    /// `stall_one_in` requests by `stall_ns`, drop one in `drop_one_in`
    /// requests without replying. Zero rates disable the respective fault.
    #[cfg(feature = "faults")]
    pub fn inject_faults(&self, stall_one_in: u64, stall_ns: Nanos, drop_one_in: u64) {
        self.faults.stall_one_in.store(stall_one_in, Ordering::Relaxed);
        self.faults.stall_ns.store(stall_ns, Ordering::Relaxed);
        self.faults.drop_one_in.store(drop_one_in, Ordering::Relaxed);
    }

    /// Spawns the delegation sim-threads. Must be called from inside the
    /// simulation (e.g. the harness's main sim-thread). Returns their join
    /// handles; call [`DelegationPool::shutdown`] to let them exit.
    pub fn start(&self) -> Vec<JoinHandle> {
        assert!(!self.started.swap(true, Ordering::SeqCst), "delegation pool already started");
        let mut handles = Vec::new();
        for (node, node_rings) in self.rings.iter().enumerate() {
            for ring in node_rings {
                let ring = Arc::clone(ring);
                let dev = Arc::clone(&self.dev);
                #[cfg(feature = "faults")]
                let faults = Arc::clone(&self.faults);
                handles.push(spawn("delegation", move || {
                    trio_nvm::handle::set_home_node(node);
                    while let Some(req) = ring.recv() {
                        #[cfg(feature = "faults")]
                        {
                            let n = faults.stall_one_in.load(Ordering::Relaxed);
                            if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                                trio_sim::work(faults.stall_ns.load(Ordering::Relaxed));
                            }
                            let n = faults.drop_one_in.load(Ordering::Relaxed);
                            if n != 0 && trio_sim::rng::with_rng(|r| r.one_in(n)) {
                                // A wedged thread: the request vanishes and
                                // no reply is ever sent. Clients must use
                                // the deadline-bounded entry points to
                                // survive this.
                                continue;
                            }
                        }
                        let h = NvmHandle::new(Arc::clone(&dev), req.actor);
                        let result = match req.write_data {
                            Some(data) => {
                                h.write_extent(&req.pages, req.start, &data).map(|()| None)
                            }
                            None => {
                                let mut buf = vec![0u8; req.read_len];
                                h.read_extent(&req.pages, req.start, &mut buf).map(|()| Some(buf))
                            }
                        };
                        let _ = req.reply.send(result);
                    }
                }));
            }
        }
        handles
    }

    /// Whether [`DelegationPool::start`] ran.
    pub fn is_started(&self) -> bool {
        self.started.load(Ordering::SeqCst)
    }

    /// Closes all rings; delegation threads drain and exit.
    pub fn shutdown(&self) {
        for node_rings in &self.rings {
            for ring in node_rings {
                ring.close();
            }
        }
    }

    fn ring_for(&self, node: usize) -> &Arc<SimChannel<DelegReq>> {
        let i = self.rr[node].fetch_add(1, Ordering::Relaxed);
        let rings = &self.rings[node];
        &rings[i % rings.len()]
    }

    /// Splits `[start, start+len)` over `pages` into node-contiguous runs.
    /// Returns `(node, page_range, byte_range_within_extent)` tuples.
    fn split_runs(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
    ) -> Vec<(usize, std::ops::Range<usize>, std::ops::Range<usize>)> {
        let topo = self.dev.topology();
        let mut runs = Vec::new();
        if len == 0 {
            return runs;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        let mut run_start_page = first;
        let mut run_node = topo.node_of(pages[first]);
        for pi in first..=last {
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                runs.push(self.finish_run(run_node, run_start_page, pi, start, len));
                run_start_page = pi;
                run_node = node;
            }
        }
        runs.push(self.finish_run(run_node, run_start_page, last + 1, start, len));
        runs
    }

    fn finish_run(
        &self,
        node: usize,
        from_page: usize,
        to_page: usize,
        start: usize,
        len: usize,
    ) -> (usize, std::ops::Range<usize>, std::ops::Range<usize>) {
        let byte_from = start.max(from_page * PAGE_SIZE);
        let byte_to = (start + len).min(to_page * PAGE_SIZE);
        (node, from_page..to_page, byte_from..byte_to)
    }

    /// Delegated write of an extent: split per node, dispatch in parallel,
    /// wait for all completions.
    pub fn write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        let runs = self.split_runs(pages, start, data.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let sub_pages = pages[prange.clone()].to_vec();
            let sub_start = brange.start - prange.start * PAGE_SIZE;
            let req = DelegReq {
                actor,
                pages: sub_pages,
                start: sub_start,
                write_data: Some(data[brange.start - start..brange.end - start].to_vec()),
                read_len: 0,
                reply: Arc::clone(&reply),
            };
            self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)?;
            pending.push(reply);
        }
        let mut result = Ok(());
        for reply in pending {
            match reply.recv() {
                Some(Ok(_)) => {}
                Some(Err(e)) => result = Err(e),
                None => result = Err(ProtError::NotMapped),
            }
        }
        result
    }

    /// Delegated read of an extent.
    pub fn read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        let runs = self.split_runs(pages, start, buf.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let sub_pages = pages[prange.clone()].to_vec();
            let sub_start = brange.start - prange.start * PAGE_SIZE;
            let req = DelegReq {
                actor,
                pages: sub_pages,
                start: sub_start,
                write_data: None,
                read_len: brange.len(),
                reply: Arc::clone(&reply),
            };
            self.ring_for(node).send(req).map_err(|_| ProtError::NotMapped)?;
            pending.push((reply, brange));
        }
        let mut result = Ok(());
        for (reply, brange) in pending {
            match reply.recv() {
                Some(Ok(Some(data))) => {
                    buf[brange.start - start..brange.end - start].copy_from_slice(&data);
                }
                Some(Ok(None)) => result = Err(ProtError::NotMapped),
                Some(Err(e)) => result = Err(e),
                None => result = Err(ProtError::NotMapped),
            }
        }
        result
    }

    /// Deadline-bounded delegated write: like
    /// [`DelegationPool::write_extent`] but gives up `timeout_ns` of
    /// virtual time after dispatch instead of waiting forever on a stalled
    /// or wedged delegation thread. Outside the simulation there is no
    /// virtual clock (and no injected fault can fire), so this degrades to
    /// the blocking variant.
    pub fn try_write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
        timeout_ns: Nanos,
    ) -> Result<(), DelegationError> {
        if !in_sim() {
            return self.write_extent(actor, pages, start, data).map_err(DelegationError::Fault);
        }
        let runs = self.split_runs(pages, start, data.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let req = DelegReq {
                actor,
                pages: pages[prange.clone()].to_vec(),
                start: brange.start - prange.start * PAGE_SIZE,
                write_data: Some(data[brange.start - start..brange.end - start].to_vec()),
                read_len: 0,
                reply: Arc::clone(&reply),
            };
            self.ring_for(node)
                .send(req)
                .map_err(|_| DelegationError::Fault(ProtError::NotMapped))?;
            pending.push(reply);
        }
        let deadline = now() + timeout_ns;
        let mut fault = None;
        let mut timed_out = false;
        for reply in pending {
            match reply.recv_deadline(deadline) {
                RecvDeadline::Ok(Ok(_)) => {}
                RecvDeadline::Ok(Err(e)) => fault = Some(e),
                RecvDeadline::Closed => fault = Some(ProtError::NotMapped),
                RecvDeadline::TimedOut => timed_out = true,
            }
        }
        match (fault, timed_out) {
            (Some(e), _) => Err(DelegationError::Fault(e)),
            (None, true) => Err(DelegationError::Timeout),
            (None, false) => Ok(()),
        }
    }

    /// Deadline-bounded delegated read; see
    /// [`DelegationPool::try_write_extent`]. On [`DelegationError::Timeout`]
    /// the buffer contents are unspecified (some runs may have landed).
    pub fn try_read_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
        timeout_ns: Nanos,
    ) -> Result<(), DelegationError> {
        if !in_sim() {
            return self.read_extent(actor, pages, start, buf).map_err(DelegationError::Fault);
        }
        let runs = self.split_runs(pages, start, buf.len());
        let mut pending = Vec::with_capacity(runs.len());
        for (node, prange, brange) in runs {
            let reply = Arc::new(SimChannel::bounded(1));
            let req = DelegReq {
                actor,
                pages: pages[prange.clone()].to_vec(),
                start: brange.start - prange.start * PAGE_SIZE,
                write_data: None,
                read_len: brange.len(),
                reply: Arc::clone(&reply),
            };
            self.ring_for(node)
                .send(req)
                .map_err(|_| DelegationError::Fault(ProtError::NotMapped))?;
            pending.push((reply, brange));
        }
        let deadline = now() + timeout_ns;
        let mut fault = None;
        let mut timed_out = false;
        for (reply, brange) in pending {
            match reply.recv_deadline(deadline) {
                RecvDeadline::Ok(Ok(Some(data))) => {
                    buf[brange.start - start..brange.end - start].copy_from_slice(&data);
                }
                RecvDeadline::Ok(Ok(None)) => fault = Some(ProtError::NotMapped),
                RecvDeadline::Ok(Err(e)) => fault = Some(e),
                RecvDeadline::Closed => fault = Some(ProtError::NotMapped),
                RecvDeadline::TimedOut => timed_out = true,
            }
        }
        match (fault, timed_out) {
            (Some(e), _) => Err(DelegationError::Fault(e)),
            (None, true) => Err(DelegationError::Timeout),
            (None, false) => Ok(()),
        }
    }
}
