//! Revocable grant windows: the zero-copy delegation payload contract
//! (DESIGN.md §17).
//!
//! A submitting LibFS *registers* its source buffer with the kernel once,
//! receiving a grant id; each delegated write then carries only a
//! [`GrantRef`] — id, window, epoch — and the delegation worker reads the
//! payload straight out of the granted buffer during its single write pass
//! into NVM. Nothing is copied on the submit path: `payload_copies` is 0
//! by construction, not by amortization.
//!
//! The table is the trust boundary. Requests arrive over shared-memory
//! rings a hostile LibFS can write directly, so a worker re-validates the
//! grant on **every** dispatch — including the watchdog's orphan
//! re-dispatches and client retries — checking existence, ownership,
//! epoch, and window bounds before touching a byte, and re-checks the
//! epoch after its pass. A submitter that mutates ([`GrantTable::update`]
//! bumps the epoch), revokes, or unregisters a granted region mid-flight
//! gets a clean [`ProtError::GrantRevoked`] instead of a torn write; a
//! forged or foreign id gets the same. Revocation is tied to every exit
//! path: op completion (transient grants), fallback-to-direct, LibFS
//! unregister, and quarantine all pull the grant, so a dead worker's
//! re-dispatched orphan can never read a buffer its owner has moved on
//! from.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use trio_nvm::{ActorId, PathStats, ProtError};
use trio_sim::plock::Mutex as PlMutex;

use crate::delegation::{DelegationError, DelegationPool};
use crate::retry::RetryPolicy;

/// A by-reference write payload: one window into a registered grant.
/// `epoch` pins the buffer *version* the submitter intended — a worker
/// serving this ref refuses it once the grant has been updated or revoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrantRef {
    /// Table id from [`GrantTable::register`].
    pub grant_id: u64,
    /// Window start within the granted buffer.
    pub start: usize,
    /// Window length (the op's payload length).
    pub len: usize,
    /// Grant epoch the window was cut from.
    pub epoch: u64,
}

struct GrantEntry {
    owner: ActorId,
    data: Arc<[u8]>,
    epoch: u64,
    /// In-flight worker passes currently reading this grant. A pass pins
    /// the grant at [`GrantTable::resolve`] and unpins after its post-pass
    /// epoch check; revocation drains pins before returning.
    pins: u32,
    /// Set the moment revocation (or an update) begins: new resolves fail
    /// immediately, and the revoker waits for `pins` to reach zero. This
    /// is what makes `revoke` a barrier — once it returns, no worker is
    /// reading the window and no further stale bytes can reach media.
    dying: bool,
}

/// Number of independent grant-table shards. Ids are handed out from one
/// atomic counter, so `id % GRANT_SHARDS` spreads concurrent registrants
/// uniformly; 16 shards keep 100+ tenants from serializing on one mutex
/// (lint: hot-path — this module must never take the registry lock).
const GRANT_SHARDS: usize = 16;

/// The kernel-side registry of live grant windows, sharded by grant id so
/// steady-state register/revoke traffic from many tenants never contends
/// on a single global lock.
pub struct GrantTable {
    next_id: AtomicU64,
    shards: [PlMutex<HashMap<u64, GrantEntry>>; GRANT_SHARDS],
    stats: Arc<PathStats>,
}

impl GrantTable {
    pub(crate) fn new(stats: Arc<PathStats>) -> Self {
        GrantTable {
            next_id: AtomicU64::new(1),
            shards: std::array::from_fn(|_| PlMutex::new(HashMap::new())),
            stats,
        }
    }

    fn shard_of(&self, id: u64) -> &PlMutex<HashMap<u64, GrantEntry>> {
        &self.shards[(id % GRANT_SHARDS as u64) as usize]
    }

    /// Registers `data` as a grant owned by `owner`; returns its id.
    /// The buffer itself is shared, not copied — whether materializing it
    /// cost a copy is the *caller's* story to account (a LibFS registering
    /// its long-lived I/O buffer pays nothing per op).
    pub fn register(&self, owner: ActorId, data: Arc<[u8]>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shard_of(id)
            .lock()
            .insert(id, GrantEntry { owner, data, epoch: 1, pins: 0, dying: false });
        self.stats.record_grant_register();
        id
    }

    /// One drain step while waiting for pinned passes: yields virtual time
    /// inside the simulation (workers make progress against the same
    /// clock), a scheduler hint outside it.
    fn drain_tick() {
        if trio_sim::in_sim() {
            trio_sim::work(200);
        } else {
            // lint: allow(no-std-sync) bare scheduler hint on the non-sim
            // drain path; nothing blocks, so there is no edge to track
            std::thread::yield_now();
        }
    }

    /// Replaces the granted buffer (the submitter rewrote it). Bumps the
    /// epoch: refs cut from the old contents die with it, which is what
    /// turns a mutate-while-in-flight race into a clean fault. Like
    /// [`Self::revoke`], this is a barrier: in-flight passes pinned on the
    /// old contents are drained (new resolves failing meanwhile) before
    /// the swap lands, so once `update` returns no worker is still
    /// streaming the old bytes onto media.
    pub fn update(&self, owner: ActorId, id: u64, data: Arc<[u8]>) -> Result<(), ProtError> {
        let mut data = Some(data);
        loop {
            {
                let mut entries = self.shard_of(id).lock();
                let e = entries.get_mut(&id).ok_or(ProtError::GrantRevoked)?;
                if e.owner != owner {
                    return Err(ProtError::GrantRevoked);
                }
                e.dying = true;
                if e.pins == 0 {
                    // `data` is only consumed here, on the iteration that
                    // lands the swap; every retry leaves it in place.
                    if let Some(d) = data.take() {
                        e.data = d;
                    }
                    e.epoch += 1;
                    e.dying = false;
                    return Ok(());
                }
            }
            Self::drain_tick();
        }
    }

    /// Cuts a [`GrantRef`] window at the grant's current epoch. This is
    /// the client-side pre-flight check; the worker re-validates.
    pub fn window(
        &self,
        owner: ActorId,
        id: u64,
        start: usize,
        len: usize,
    ) -> Result<GrantRef, ProtError> {
        let entries = self.shard_of(id).lock();
        let e = entries.get(&id).ok_or(ProtError::GrantRevoked)?;
        if e.owner != owner {
            return Err(ProtError::GrantRevoked);
        }
        if start.checked_add(len).is_none_or(|end| end > e.data.len()) {
            return Err(ProtError::OutOfRange);
        }
        Ok(GrantRef { grant_id: id, start, len, epoch: e.epoch })
    }

    /// The granted bytes themselves (owner only) — the direct-access
    /// fallback path reads these when delegation is bypassed.
    pub fn data_of(&self, owner: ActorId, id: u64) -> Result<Arc<[u8]>, ProtError> {
        let entries = self.shard_of(id).lock();
        let e = entries.get(&id).ok_or(ProtError::GrantRevoked)?;
        if e.owner != owner {
            return Err(ProtError::GrantRevoked);
        }
        Ok(Arc::clone(&e.data))
    }

    /// Revokes one grant; returns whether it was live. Owner-checked: one
    /// LibFS cannot pull another's grants out from under its workers.
    ///
    /// Revocation is a **barrier**, not just a table delete. The grant is
    /// first marked dying — every subsequent [`Self::resolve`] (a client
    /// retry, a watchdog re-dispatch of an orphan) faults with
    /// [`ProtError::GrantRevoked`] — and then the call waits for already-
    /// admitted passes to unpin. Once `revoke` returns, no worker holds a
    /// snapshot of the window: whatever a straggling duplicate wrote has
    /// already landed, strictly before anything the caller does next
    /// (direct fallback, the submitter's next overwrite), so a stale pass
    /// can never clobber newer bytes.
    pub fn revoke(&self, owner: ActorId, id: u64) -> bool {
        loop {
            {
                let mut entries = self.shard_of(id).lock();
                match entries.get_mut(&id) {
                    Some(e) if e.owner == owner => {
                        e.dying = true;
                        if e.pins == 0 {
                            entries.remove(&id);
                            self.stats.record_grant_revoke();
                            return true;
                        }
                    }
                    _ => return false,
                }
            }
            Self::drain_tick();
        }
    }

    /// Revokes every grant `actor` owns (unregister, quarantine), with the
    /// same drain-the-pins barrier as [`Self::revoke`]. Returns how many
    /// were pulled.
    pub fn revoke_actor(&self, actor: ActorId) -> usize {
        let mut pulled = 0;
        loop {
            let mut pinned = false;
            // Shard-at-a-time: each shard's lock is taken and released
            // independently, so a mass revocation never freezes the whole
            // table against unrelated tenants.
            for shard in &self.shards {
                let mut entries = shard.lock();
                entries.retain(|_, e| {
                    if e.owner != actor {
                        return true;
                    }
                    e.dying = true;
                    if e.pins == 0 {
                        pulled += 1;
                        self.stats.record_grant_revoke();
                        false
                    } else {
                        pinned = true;
                        true
                    }
                });
            }
            if !pinned {
                return pulled;
            }
            Self::drain_tick();
        }
    }

    /// Worker-side admission: full re-validation of `gref` as presented by
    /// the (untrusted) ring, returning a consistent snapshot of the
    /// granted buffer. Checks existence, ownership, epoch, and that the
    /// window fits the buffer. Runs on every dispatch — first send,
    /// client retry, or watchdog re-dispatch alike.
    /// Cuts an **op-scoped child grant** from `gref`: a fresh grant
    /// sharing the parent's buffer (an `Arc` clone — no bytes move) whose
    /// lifetime is exactly one delegated op. The submit path dispatches
    /// the child, and revokes it the moment the op returns; since
    /// revocation drains pinned passes, that revoke is the op's
    /// completion fence — no straggling duplicate (client retry, watchdog
    /// re-dispatch) can still be reading the window after the op has
    /// returned, even when the parent grant lives on for the next write.
    pub(crate) fn op_window(&self, actor: ActorId, gref: &GrantRef) -> Result<GrantRef, ProtError> {
        let data = {
            let entries = self.shard_of(gref.grant_id).lock();
            let e = entries.get(&gref.grant_id).ok_or(ProtError::GrantRevoked)?;
            if e.owner != actor || e.epoch != gref.epoch || e.dying {
                return Err(ProtError::GrantRevoked);
            }
            if gref.start.checked_add(gref.len).is_none_or(|end| end > e.data.len()) {
                return Err(ProtError::OutOfRange);
            }
            Arc::clone(&e.data)
        };
        let id = self.register(actor, data);
        Ok(GrantRef { grant_id: id, start: gref.start, len: gref.len, epoch: 1 })
    }

    /// A successful resolve **pins** the grant: the worker holds the pin
    /// across its media pass and must release it with [`Self::unpin`]
    /// after the post-pass epoch check. Revocation waits on that pin —
    /// the resolve→pass→unpin span is exactly the window a revoker is
    /// barred from completing in.
    pub fn resolve(&self, actor: ActorId, gref: &GrantRef) -> Result<Arc<[u8]>, ProtError> {
        let mut entries = self.shard_of(gref.grant_id).lock();
        let e = entries.get_mut(&gref.grant_id).ok_or(ProtError::GrantRevoked)?;
        if e.owner != actor || e.epoch != gref.epoch || e.dying {
            return Err(ProtError::GrantRevoked);
        }
        if gref.start.checked_add(gref.len).is_none_or(|end| end > e.data.len()) {
            return Err(ProtError::OutOfRange);
        }
        e.pins += 1;
        Ok(Arc::clone(&e.data))
    }

    /// Releases a pin taken by [`Self::resolve`]. Workers call this after
    /// the post-pass epoch check on every exit path — including simulated
    /// mid-pass deaths, where it models the controller reaping a dead
    /// worker's pins so a pending revocation can complete.
    pub(crate) fn unpin(&self, id: u64) {
        if let Some(e) = self.shard_of(id).lock().get_mut(&id) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Post-pass re-check: is `gref` still the live epoch of a live grant?
    /// A worker that finds it is not reports [`ProtError::GrantRevoked`]
    /// even though its own (snapshot) pass completed — the submitter broke
    /// the contract mid-flight and must not believe the write succeeded.
    pub fn is_current(&self, gref: &GrantRef) -> bool {
        self.shard_of(gref.grant_id)
            .lock()
            .get(&gref.grant_id)
            .is_some_and(|e| e.epoch == gref.epoch && !e.dying)
    }

    /// Live grant count (tests / leak checks).
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Compatibility entry points that take a plain byte slice. These sit
/// *outside* the zero-copy submit path (and outside its lint scope): they
/// materialize the payload into a **transient grant** — exactly one
/// accounted copy per op, shared untouched across every batch, retry, and
/// re-dispatch — and revoke it on the way out, success or not. Legacy
/// callers (the OdinFS baseline, hostile-endpoint tests, the LibFS's
/// unregistered-buffer fallback) keep their slice-based API; the fio hot
/// path uses registered buffers and never comes through here.
impl DelegationPool {
    /// Registers `data` as a one-op transient grant, counting the
    /// materialization against `payload_copies`.
    fn grant_transient(&self, actor: ActorId, data: &[u8]) -> GrantRef {
        self.stats().record_payload_copy();
        let shared: Arc<[u8]> = data.into();
        let len = shared.len();
        let id = self.grants().register(actor, shared);
        GrantRef { grant_id: id, start: 0, len, epoch: 1 }
    }

    /// Delegated write of an extent from a plain slice (unbounded wait).
    pub fn write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        let gref = self.grant_transient(actor, data);
        let r = self.write_extent_granted(actor, pages, start, gref);
        self.grants().revoke(actor, gref.grant_id);
        r
    }

    /// Deadline-bounded delegated write from a plain slice; the transient
    /// grant lives exactly as long as the op (retries included) and is
    /// revoked before any fallback-to-direct can run, so a late orphan
    /// re-dispatch faults cleanly instead of re-reading a buffer the
    /// client has moved on from.
    pub fn try_write_extent(
        &self,
        actor: ActorId,
        pages: &[PageId],
        start: usize,
        data: &[u8],
        policy: &RetryPolicy,
    ) -> Result<(), DelegationError> {
        let gref = self.grant_transient(actor, data);
        let r = self.try_write_extent_granted(actor, pages, start, gref, policy);
        self.grants().revoke(actor, gref.grant_id);
        r
    }
}

use trio_nvm::PageId;

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> GrantTable {
        GrantTable::new(Arc::new(PathStats::new()))
    }

    #[test]
    fn register_window_resolve_roundtrip() {
        let t = table();
        let a = ActorId(1);
        let id = t.register(a, vec![7u8; 100].into());
        let gref = t.window(a, id, 10, 50).unwrap();
        assert_eq!(gref.epoch, 1);
        let data = t.resolve(a, &gref).unwrap();
        assert_eq!(&data[gref.start..gref.start + gref.len], &[7u8; 50][..]);
        assert!(t.is_current(&gref));
    }

    #[test]
    fn foreign_and_forged_grants_fault_cleanly() {
        let t = table();
        let id = t.register(ActorId(1), vec![0u8; 64].into());
        let gref = t.window(ActorId(1), id, 0, 64).unwrap();
        // Another actor presenting a stolen ref.
        assert_eq!(t.resolve(ActorId(2), &gref), Err(ProtError::GrantRevoked));
        // A forged id.
        let forged = GrantRef { grant_id: 999, start: 0, len: 8, epoch: 1 };
        assert_eq!(t.resolve(ActorId(2), &forged), Err(ProtError::GrantRevoked));
        // A window past the buffer end (overflow-safe).
        let oob = GrantRef { grant_id: id, start: usize::MAX, len: 2, epoch: 1 };
        assert_eq!(t.resolve(ActorId(1), &oob), Err(ProtError::OutOfRange));
    }

    #[test]
    fn update_bumps_epoch_and_kills_old_refs() {
        let t = table();
        let a = ActorId(3);
        let id = t.register(a, vec![1u8; 32].into());
        let old = t.window(a, id, 0, 32).unwrap();
        t.update(a, id, vec![2u8; 32].into()).unwrap();
        assert!(!t.is_current(&old));
        assert_eq!(t.resolve(a, &old), Err(ProtError::GrantRevoked));
        let fresh = t.window(a, id, 0, 32).unwrap();
        assert_eq!(fresh.epoch, 2);
        assert_eq!(t.resolve(a, &fresh).unwrap()[0], 2);
        // A foreign update is refused.
        assert_eq!(t.update(ActorId(4), id, vec![3u8; 8].into()), Err(ProtError::GrantRevoked));
    }

    #[test]
    fn revoke_is_a_barrier_against_pinned_passes() {
        let t = Arc::new(table());
        let a = ActorId(7);
        let id = t.register(a, vec![9u8; 16].into());
        let gref = t.window(a, id, 0, 16).unwrap();
        let _snap = t.resolve(a, &gref).unwrap(); // pins the grant
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (t2, done2) = (Arc::clone(&t), Arc::clone(&done));
        let h = std::thread::spawn(move || {
            assert!(t2.revoke(a, id), "the owner's revoke must land once drained");
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!done.load(Ordering::SeqCst), "revoke returned while a pass held a pin");
        // The dying grant is already dead to new arrivals.
        assert!(!t.is_current(&gref));
        assert_eq!(t.resolve(a, &gref), Err(ProtError::GrantRevoked));
        t.unpin(id);
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn revoke_is_owner_checked_and_actor_wide() {
        let t = table();
        let a = ActorId(5);
        let id1 = t.register(a, vec![0u8; 8].into());
        let id2 = t.register(a, vec![0u8; 8].into());
        let other = t.register(ActorId(6), vec![0u8; 8].into());
        assert!(!t.revoke(ActorId(6), id1), "foreign revoke must not land");
        assert!(t.revoke(a, id1));
        assert!(!t.revoke(a, id1), "double revoke is a no-op");
        assert_eq!(t.revoke_actor(a), 1); // id2
        assert_eq!(t.live(), 1); // other actor's grant survives
        let _ = (id2, other);
    }
}
