//! The Trio **kernel controller** (paper §3.2, §4).
//!
//! The only privileged, always-trusted component on the control path. It
//! owns: shared-resource allocation (NVM pages, inode numbers), the MMU
//! (mapping files into LibFSes with read or exclusive-write permission,
//! enforced by leases), the shadow inode table (ground-truth permissions,
//! I4), per-file metadata checkpoints, and corruption handling (rollback
//! after a failed verification). It also hosts the per-NUMA-node
//! *delegation thread pool* that OdinFS-style opportunistic delegation
//! uses (§4.5) — delegation threads are kernel threads shared by all
//! LibFSes.
//!
//! Everything a LibFS does in the common case — reads, writes, creates,
//! deletes, renames — happens by direct NVM access *without* entering this
//! crate; the kernel is involved only to change protection state (map,
//! unmap, allocate, free) and to mediate the few operations that touch
//! kernel-owned state (root-inode updates, chmod/chown, reclamation).
//! Every public entry point charges the syscall trap cost.

pub mod delegation;
pub mod grant;
pub(crate) mod obs;
pub mod mapping;
pub mod quarantine;
pub mod registry;
pub mod retry;
pub mod scrub;
pub mod shard;

pub use delegation::DegradedMode;
pub use grant::{GrantRef, GrantTable};
pub use retry::RetryPolicy;
pub use scrub::{MediaStats, MediaStatsSnapshot, PatrolHandle, ScrubReport};
pub use shard::EpochPin;

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use trio_fsapi::{FsError, FsResult, Mode, SetAttr};
use trio_layout::{
    walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, FilePages, Ino, SuperblockRef,
    DIRENTS_PER_PAGE, DIRENT_SIZE, ROOT_INO,
};
use trio_nvm::{
    ActorId, NodeId, NvmDevice, NvmHandle, PageId, PagePerm, PathStats, RegistryLockSite,
    KERNEL_ACTOR, PAGE_SIZE,
};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::sync::SimMutexGuard;
use trio_sim::{cost, in_sim, sync::SimMutex, work, Nanos, MILLIS};
use trio_verifier::{
    InoProvenance, PageProvenance, ResourceView, ShadowAttr, Verifier, VerifyRequest, Violation,
};

use delegation::{DelegationConfig, DelegationPool};
use quarantine::ResilienceStats;
use registry::{Credentials, KernelEvent, Registry};
use scrub::{JournalTwin, RetireState};
use shard::{EpochGc, EventRing, LimboPage, ShardedMap, EVENT_RING_CAPACITY};
use trio_layout::superblock_replica_page;

/// Controller tunables.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Write-lease duration (paper: 100 ms).
    pub lease_ns: Nanos,
    /// Delegation threads per NUMA node (paper/OdinFS default: 12).
    pub delegation_threads_per_node: usize,
    /// Capacity of each delegation submission ring; a full ring counts as
    /// backpressure in [`PathStats`] before the producer blocks.
    pub delegation_ring_capacity: usize,
    /// Extra pages a per-actor allocator-cache refill stocks beyond the
    /// immediate request, so subsequent `alloc_pages` calls skip the
    /// global pools and registry entirely.
    pub alloc_cache_refill: usize,
    /// Per-actor cache size past which freed pages spill back to the
    /// global pools.
    pub alloc_cache_high_water: usize,
    /// Upper bound on a file's index-page chain (defensive walks).
    pub max_index_pages: usize,
    /// Explicit budget on directory entries one verification may examine
    /// (hostile entry bombs are cut off and rejected past this).
    pub max_dir_entries: u64,
    /// Run the quarantine repair pass inline as soon as an offender is
    /// contained (models the background repair thread having completed).
    /// With `false`, tainted subtrees answer `FsError::Quarantined` until
    /// [`KernelController::repair_quarantined`] is called — the mode the
    /// isolation tests and the fuzzer use to observe the contained window.
    pub auto_repair: bool,
    /// Backoff policy for waiting out another actor's write lease in
    /// [`KernelController::map`]. The default (base = lease duration,
    /// jitter off) waits exactly the remaining lease on the first
    /// attempt, matching the pre-policy behaviour bit for bit; every
    /// wait is additionally clamped to the remaining lease.
    pub lease_retry: RetryPolicy,
    /// Media-fault observations a page may accumulate before the patrol
    /// scrubber retires it (DESIGN.md §19).
    pub retire_fault_threshold: u32,
    /// Pages one patrol pass probes (the scrub budget bounds background
    /// interference with the data path).
    pub scrub_budget_pages: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            lease_ns: 100 * MILLIS,
            delegation_threads_per_node: 12,
            delegation_ring_capacity: 64,
            alloc_cache_refill: 192,
            alloc_cache_high_water: 512,
            max_index_pages: 1 << 16,
            max_dir_entries: 1 << 20,
            auto_repair: true,
            lease_retry: RetryPolicy::new(100 * MILLIS, 0, 8, 400 * MILLIS).no_jitter(),
            retire_fault_threshold: 3,
            scrub_budget_pages: 256,
        }
    }
}

/// A LibFS registration: its principal and its (initially superblock-only)
/// window onto the device.
pub struct LibFsRegistration {
    /// The LibFS's access-control principal.
    pub actor: ActorId,
    /// NVM handle authenticated as `actor`.
    pub handle: NvmHandle,
}

/// The kernel controller. One per mounted file system.
pub struct KernelController {
    dev: Arc<NvmDevice>,
    kh: NvmHandle,
    verifier: Verifier,
    pub(crate) registry: SimMutex<Registry>,
    /// Page provenance for every non-free page, sharded so the allocator
    /// and scrub paths read/write it without the registry control lock
    /// (DESIGN.md §20). Shard locks are leaves under the registry.
    pub(crate) prov: ShardedMap<PageProvenance>,
    /// Ino provenance for every allocated ino (same sharding discipline).
    pub(crate) inos: ShardedMap<InoProvenance>,
    /// Epoch-based reclamation for freed pages: provenance readers that
    /// walk outside the control lock hold an [`EpochPin`]; frees ripen
    /// through limbo and only re-enter circulation past every pin.
    pub(crate) gc: Arc<EpochGc>,
    /// Bounded kernel event ring (drop-oldest; replaces the old unbounded
    /// `Registry::events` vec).
    pub(crate) events: EventRing,
    /// Per-node free-page pools (per-CPU in the paper; per-node here, which
    /// is the contention boundary that matters for the experiments).
    pools: Vec<SimMutex<Vec<PageId>>>,
    /// Inode number allocator (next unused).
    next_ino: SimMutex<u64>,
    /// Pages pinned by live checkpoints: page -> pin count, plus the
    /// deferred free list processed on unpin.
    pub(crate) pins: SimMutex<PinState>,
    pub(crate) phases: SimMutex<PhaseStats>,
    delegation: DelegationPool,
    /// Per-actor allocator caches: scrubbed, unmapped pages whose
    /// provenance (`AllocatedTo`) is already recorded, served by
    /// `alloc_pages` without touching the global pools or registry.
    caches: PlMutex<HashMap<ActorId, Arc<SimMutex<ActorCache>>>>,
    stats: Arc<PathStats>,
    /// Detection/containment/repair counters (DESIGN.md §14), surfaced
    /// alongside [`PathStats`].
    resilience: Arc<ResilienceStats>,
    /// Mirror of the registry's quarantined-actor set, readable without
    /// the (virtual-time) registry lock so the allocator fast path can
    /// refuse a contained LibFS without giving up its lock-free design.
    pub(crate) quarantined_mirror: PlMutex<HashSet<ActorId>>,
    /// Serializes every kernel write to the superblock record so the
    /// twin-repair scrub (DESIGN.md §19) cannot interleave with a field
    /// update. **Leaf lock**: holders must not take the registry.
    pub(crate) sb_lock: SimMutex<()>,
    /// Media-fault counters (scrub/repair/retire; DESIGN.md §19).
    pub(crate) media: Arc<MediaStats>,
    /// Bad-page retirement books.
    pub(crate) retire: SimMutex<RetireState>,
    /// Registered journal mirror pairs, keyed by *both* page ids.
    pub(crate) journal_twins: PlMutex<HashMap<u64, JournalTwin>>,
    /// Patrol position; wraps over the device.
    pub(crate) scrub_cursor: AtomicU64,
    config: KernelConfig,
}

/// One actor's sharded allocation cache. Pages here are invisible to every
/// MMU (freed pages stay inaccessible), read as zeros (scrubbed on entry),
/// and carry `AllocatedTo` provenance — so granting one needs only an MMU
/// map, and a crash reclaims them through the normal complement walk.
struct ActorCache {
    per_node: Vec<Vec<PageId>>,
    total: usize,
}

/// Checkpoint pinning state (see `mapping.rs` for the rollback protocol).
#[derive(Default)]
pub struct PinState {
    pub(crate) pinned: std::collections::HashMap<u64, u32>,
    pub(crate) deferred: Vec<PageId>,
}

/// Cumulative virtual time spent in each sharing-protocol phase
/// (paper Figure 8's breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Programming the MMU on the map path.
    pub map_ns: Nanos,
    /// Unmapping on release/revocation.
    pub unmap_ns: Nanos,
    /// Integrity verification.
    pub verify_ns: Nanos,
    /// Checkpointing before write grants.
    pub checkpoint_ns: Nanos,
}

impl KernelController {
    /// Creates a controller over a fresh device and formats the file
    /// system (superblock + empty root).
    pub fn format(dev: Arc<NvmDevice>, config: KernelConfig) -> Arc<Self> {
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        let sb = SuperblockRef::new(&kh);
        let topo = dev.topology();
        // lint: allow(no-panic) format runs on a fresh device the kernel
        // just built; page 0 always exists and no LibFS is registered yet.
        sb.format(topo.total_pages(), ROOT_INO + 1).expect("kernel formats the superblock");

        // Page 0 is the superblock, the last page its replica; everything
        // else is free, per node.
        let replica = superblock_replica_page(topo.total_pages());
        let mut pools = Vec::with_capacity(topo.nodes);
        for node in 0..topo.nodes {
            let first = topo.first_page_of(node).0;
            let start = if node == 0 { 1 } else { first };
            // LIFO pools: keep low page numbers on top for compactness.
            let mut v: Vec<PageId> = (start..first + topo.pages_per_node as u64)
                .map(PageId)
                .filter(|p| *p != replica)
                .rev()
                .collect();
            v.shrink_to_fit();
            pools.push(SimMutex::new(v));
        }

        let stats = Arc::new(PathStats::new());
        let delegation = DelegationPool::with_config(
            Arc::clone(&dev),
            DelegationConfig {
                threads_per_node: config.delegation_threads_per_node,
                ring_capacity: config.delegation_ring_capacity,
            },
            Arc::clone(&stats),
        );

        // Root is "in use" at a synthetic location never compared against.
        let inos = ShardedMap::new();
        inos.insert(ROOT_INO, InoProvenance::InUse(DirentLoc { page: PageId(0), slot: 0 }));

        Arc::new(KernelController {
            verifier: Verifier::new(NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR)),
            kh,
            dev,
            registry: SimMutex::new(Registry::new()),
            prov: ShardedMap::new(),
            inos,
            gc: Arc::new(EpochGc::new()),
            events: EventRing::new(EVENT_RING_CAPACITY),
            pools,
            next_ino: SimMutex::new(ROOT_INO + 1),
            pins: SimMutex::new(PinState::default()),
            phases: SimMutex::new(PhaseStats::default()),
            delegation,
            caches: PlMutex::new(HashMap::new()),
            stats,
            resilience: Arc::new(ResilienceStats::new()),
            quarantined_mirror: PlMutex::new(HashSet::new()),
            sb_lock: SimMutex::new(()),
            media: Arc::new(MediaStats::new()),
            retire: SimMutex::new(RetireState::default()),
            journal_twins: PlMutex::new(HashMap::new()),
            scrub_cursor: AtomicU64::new(0),
            config,
        })
    }

    /// Remounts an already-formatted device after a crash or kernel
    /// restart (the recovery half of the fault-injection engine).
    ///
    /// A restart loses every volatile structure: MMU mappings, provenance
    /// books, shadow attributes, checkpoints, free-page pools. Only the
    /// *core state* on NVM survives. Recovery therefore:
    ///
    /// 1. clears the MMU (no LibFS keeps access across a reboot),
    /// 2. reads the superblock (refusing an unformatted device) and takes
    ///    the persisted inode high-water mark, so inos are never reused,
    /// 3. walks the committed tree from the root, rebuilding page and ino
    ///    provenance; unwalkable or page-aliasing chains are trimmed to
    ///    empty files and duplicate/fabricated dirents are cleared —
    ///    paper §4.3's trim policy applied at mount time,
    /// 4. rebuilds the free pools as the complement of the walked pages.
    ///
    /// Shadow attributes are re-adopted lazily from dirents on first map
    /// (a restart forgets chmod/chown that raced the crash; the dirent
    /// cache is the persisted source). Rename-journal undo is the LibFS's
    /// job and must run *before* this walk (see `arckfs::journal`).
    pub fn recover(dev: Arc<NvmDevice>, config: KernelConfig) -> FsResult<Arc<Self>> {
        dev.clear_mappings();
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        let sb = SuperblockRef::new(&kh);
        if !sb.is_formatted().map_err(|_| FsError::Corrupted)? {
            return Err(FsError::Corrupted);
        }
        // Heal the superblock twins before anything depends on them: a
        // mount after a media fault re-establishes two good copies.
        let _health = sb.scrub().map_err(|_| FsError::Corrupted)?;
        let next_ino = sb.next_ino().map_err(|_| FsError::Corrupted)?.max(ROOT_INO + 1);
        let registry = Registry::new();
        let prov = ShardedMap::new();
        let inos = ShardedMap::new();
        // Root is "in use" at a synthetic location never compared against.
        inos.insert(ROOT_INO, InoProvenance::InUse(DirentLoc { page: PageId(0), slot: 0 }));
        let mut used: HashSet<u64> = HashSet::new();
        used.insert(trio_layout::superblock::SUPERBLOCK_PAGE.0);
        used.insert(superblock_replica_page(dev.topology().total_pages()).0);

        // Breadth-first walk of the committed tree. Queue entries carry the
        // dirent location so broken files can be trimmed in place.
        let root_fi = sb.root_first_index().map_err(|_| FsError::Corrupted)?;
        let mut queue: VecDeque<(Ino, u64, CoreFileType, Option<DirentLoc>)> = VecDeque::new();
        queue.push_back((ROOT_INO, root_fi, CoreFileType::Directory, None));
        let mut seen: HashSet<Ino> = HashSet::new();
        seen.insert(ROOT_INO);
        while let Some((ino, fi, ftype, dirent)) = queue.pop_front() {
            let trim = |reason_ok: bool| -> FsResult<()> {
                if reason_ok {
                    return Ok(());
                }
                match dirent {
                    Some(loc) => {
                        let r = DirentRef::new(&kh, loc);
                        r.set_first_index(0).map_err(|_| FsError::Corrupted)?;
                        r.set_size(0).map_err(|_| FsError::Corrupted)?;
                    }
                    None => {
                        sb.set_root_first_index(0).map_err(|_| FsError::Corrupted)?;
                        sb.set_root_size(0).map_err(|_| FsError::Corrupted)?;
                    }
                }
                Ok(())
            };
            let pages = match walk_file(&kh, fi, config.max_index_pages) {
                Ok(p) => p,
                Err(_) => {
                    trim(false)?;
                    continue;
                }
            };
            // A chain referencing pages an earlier-walked file owns is
            // corrupt (I2 would reject it); trim the later claimant.
            if pages.all_pages().any(|p| used.contains(&p.0)) {
                trim(false)?;
                continue;
            }
            for p in pages.all_pages() {
                used.insert(p.0);
            }
            prov.insert_batch(pages.all_pages().map(|p| (p.0, PageProvenance::InFile(ino))));
            if ftype != CoreFileType::Directory {
                continue;
            }
            let mut live = 0u64;
            for dp in pages.data_pages.iter().flatten() {
                let mut raw = vec![0u8; PAGE_SIZE];
                if kh.read_untimed(*dp, 0, &mut raw).is_err() {
                    continue;
                }
                for (slot, b) in raw.chunks_exact(DIRENT_SIZE).take(DIRENTS_PER_PAGE).enumerate() {
                    let Ok(b) = <&[u8; DIRENT_SIZE]>::try_from(b) else {
                        continue; // chunks_exact guarantees the size; defensive.
                    };
                    let d = DirentData::decode_bytes(b);
                    if d.ino == 0 {
                        continue;
                    }
                    let loc = DirentLoc { page: *dp, slot };
                    let Some(cft) = d.ftype() else {
                        // Garbage type: the entry cannot be trusted — clear it.
                        let _ = DirentRef::new(&kh, loc).clear();
                        continue;
                    };
                    if d.ino >= next_ino || !seen.insert(d.ino) {
                        // Fabricated ino or double reference — clear it too.
                        let _ = DirentRef::new(&kh, loc).clear();
                        continue;
                    }
                    live += 1;
                    inos.insert(d.ino, InoProvenance::InUse(loc));
                    queue.push_back((d.ino, d.first_index, cft, Some(loc)));
                }
            }
            // A directory's entry count is derived metadata: a crash between
            // a child's dirent publish and the parent's count update (or an
            // entry cleared just above) leaves it stale — repair to the live
            // count so the I1–I4 audit passes on the recovered tree.
            let recorded = match dirent {
                Some(loc) => DirentRef::new(&kh, loc).size().map_err(|_| FsError::Corrupted)?,
                None => sb.root_size().map_err(|_| FsError::Corrupted)?,
            };
            if recorded != live {
                match dirent {
                    Some(loc) => {
                        DirentRef::new(&kh, loc).set_size(live).map_err(|_| FsError::Corrupted)?
                    }
                    None => sb.set_root_size(live).map_err(|_| FsError::Corrupted)?,
                }
            }
        }

        // Free pools are the complement of the walked set (same LIFO
        // ordering as `format`). Reclaimed pages — allocated to a LibFS at
        // crash time but never linked into the committed tree — still hold
        // whatever was stored in them; scrub before reuse so stale bytes
        // (old file data, journal records) can never surface in a fresh
        // allocation's unwritten regions.
        let topo = dev.topology();
        let mut pools = Vec::with_capacity(topo.nodes);
        for node in 0..topo.nodes {
            let first = topo.first_page_of(node).0;
            let start = if node == 0 { 1 } else { first };
            let mut v: Vec<PageId> = (start..first + topo.pages_per_node as u64)
                .rev()
                .filter(|p| !used.contains(p))
                .map(PageId)
                .collect();
            for p in &v {
                dev.reset_page(*p).map_err(|_| FsError::Corrupted)?;
            }
            v.shrink_to_fit();
            pools.push(SimMutex::new(v));
        }

        let stats = Arc::new(PathStats::new());
        let delegation = DelegationPool::with_config(
            Arc::clone(&dev),
            DelegationConfig {
                threads_per_node: config.delegation_threads_per_node,
                ring_capacity: config.delegation_ring_capacity,
            },
            Arc::clone(&stats),
        );
        Ok(Arc::new(KernelController {
            verifier: Verifier::new(NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR)),
            kh,
            dev,
            registry: SimMutex::new(registry),
            prov,
            inos,
            gc: Arc::new(EpochGc::new()),
            events: EventRing::new(EVENT_RING_CAPACITY),
            pools,
            next_ino: SimMutex::new(next_ino),
            pins: SimMutex::new(PinState::default()),
            phases: SimMutex::new(PhaseStats::default()),
            delegation,
            caches: PlMutex::new(HashMap::new()),
            stats,
            resilience: Arc::new(ResilienceStats::new()),
            quarantined_mirror: PlMutex::new(HashSet::new()),
            sb_lock: SimMutex::new(()),
            media: Arc::new(MediaStats::new()),
            retire: SimMutex::new(RetireState::default()),
            journal_twins: PlMutex::new(HashMap::new()),
            scrub_cursor: AtomicU64::new(0),
            config,
        }))
    }

    /// Full-tree integrity audit: runs the I1–I4 verifier over every file
    /// the kernel's books consider live and returns the violations found,
    /// per ino (empty means a clean file system). Used by the
    /// crash-sweep harness after [`KernelController::recover`]; on a
    /// freshly recovered system every page is `InFile`, so a clean audit
    /// certifies the recovered tree end-to-end.
    pub fn fsck(&self) -> Vec<(Ino, Vec<Violation>)> {
        self.trap();
        // Pin the reclamation epoch for the whole audit: pages freed while
        // the verifier walks stay in limbo, contents intact, until the pin
        // drops — the audit can never read a recycled frame.
        let _pin = self.gc.pin();
        let reg = self.reg_lock(RegistryLockSite::Fsck);
        let mut bad = Vec::new();
        // `collect_filter` returns ino-sorted entries, preserving the old
        // deterministic audit order.
        let mut targets: Vec<(Ino, Option<DirentLoc>)> = self
            .inos
            .collect_filter(|i, _| i != ROOT_INO)
            .into_iter()
            .filter_map(|(i, p)| match p {
                InoProvenance::InUse(loc) => Some((i, Some(loc))),
                _ => None,
            })
            .collect();
        targets.insert(0, (ROOT_INO, None));
        for (ino, dirent) in targets {
            let (ftype, first_index) = match dirent {
                None => {
                    let sb = SuperblockRef::new(&self.kh);
                    match sb.root_first_index() {
                        Ok(fi) => (CoreFileType::Directory, fi),
                        Err(cause) => {
                            bad.push((ino, vec![Violation::UnreadableAttr { ino, cause }]));
                            continue;
                        }
                    }
                }
                Some(loc) => match DirentRef::new(&self.kh, loc).load() {
                    Ok(d) if d.ino == ino => match d.ftype() {
                        Some(ft) => (ft, d.first_index),
                        None => {
                            bad.push((ino, vec![Violation::BadFileType { raw: d.ftype_raw }]));
                            continue;
                        }
                    },
                    Ok(d) => {
                        bad.push((ino, vec![Violation::InoMismatch { expected: ino, found: d.ino }]));
                        continue;
                    }
                    Err(cause) => {
                        bad.push((ino, vec![Violation::UnreadableAttr { ino, cause }]));
                        continue;
                    }
                },
            };
            let req = VerifyRequest {
                ino,
                ftype,
                dirent,
                first_index,
                dirty_actor: KERNEL_ACTOR,
                checkpoint_children: None,
                max_index_pages: self.config.max_index_pages,
                max_dir_entries: self.config.max_dir_entries,
            };
            let report = self.verifier.verify(&req, &self.view(&reg));
            if report.budget_hit {
                self.resilience.record_budget_hit();
            }
            if !report.ok() {
                bad.push((ino, report.violations));
            }
        }
        bad
    }

    /// The device this controller manages.
    pub fn device(&self) -> &Arc<NvmDevice> {
        &self.dev
    }

    /// The kernel's privileged handle (crate-internal and tests).
    pub fn kernel_handle(&self) -> &NvmHandle {
        &self.kh
    }

    /// Controller configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    pub(crate) fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Takes the registry control lock, attributing the acquisition to
    /// `site` (satellite of DESIGN.md §20: every regression in the
    /// headline `registry_locks` counter names the path that caused it).
    /// The only sanctioned way to lock the registry.
    pub(crate) fn reg_lock(&self, site: RegistryLockSite) -> SimMutexGuard<'_, Registry> {
        self.stats.record_registry_lock_site(site);
        self.registry.lock()
    }

    /// The verifier's read view: control-lock state (shadow attrs,
    /// mappings) from the held registry guard, provenance from the
    /// sharded maps.
    pub(crate) fn view<'a>(&'a self, reg: &'a Registry) -> KernelView<'a> {
        KernelView { reg, prov: &self.prov, inos: &self.inos }
    }

    /// Records `pages` as belonging to file `ino` (post-verification).
    pub(crate) fn claim_pages_for_file(&self, ino: Ino, pages: &FilePages) {
        self.prov.insert_batch(pages.all_pages().map(|p| (p.0, PageProvenance::InFile(ino))));
    }

    /// Appends to the bounded kernel event ring, surfacing overflow drops
    /// in the shared stats.
    pub(crate) fn push_event(&self, ev: KernelEvent) {
        if self.events.push(ev) {
            self.stats.record_event_dropped();
        }
    }

    /// Pins the reclamation epoch: pages freed while the pin is live stay
    /// in limbo — provenance intact, contents untouched — until it drops.
    /// Public for tests that audit the epoch machinery.
    pub fn epoch_pin(&self) -> EpochPin {
        self.gc.pin()
    }

    /// Freed pages currently waiting in reclamation limbo.
    pub fn limbo_page_count(&self) -> usize {
        self.gc.limbo_len()
    }

    /// The delegation pool (threads must be started with
    /// [`DelegationPool::start`] from inside the simulation).
    pub fn delegation(&self) -> &DelegationPool {
        &self.delegation
    }

    /// Shared data-path counters: delegation traffic, adaptive-policy
    /// decisions, and allocator fast-path behaviour all land here.
    pub fn path_stats(&self) -> &Arc<PathStats> {
        &self.stats
    }

    /// Detection/containment/repair counters (DESIGN.md §14), the
    /// resilience companion to [`KernelController::path_stats`].
    pub fn resilience_stats(&self) -> &Arc<ResilienceStats> {
        &self.resilience
    }

    /// Refuses kernel service to a quarantined LibFS (cheap mirror check,
    /// no registry lock — the allocator fast path stays lock-free).
    pub(crate) fn check_not_quarantined(&self, actor: ActorId) -> FsResult<()> {
        if self.quarantined_mirror.lock().contains(&actor) {
            return Err(FsError::Quarantined);
        }
        Ok(())
    }

    /// Charges the syscall trap cost; called at every public entry point.
    pub(crate) fn trap(&self) {
        if in_sim() {
            work(cost::KERNEL_TRAP_NS);
        }
    }

    // -----------------------------------------------------------------
    // Registration.
    // -----------------------------------------------------------------

    /// Registers a LibFS (one per process, or one per trust group — the
    /// trust-group abstraction of §3.2 is realized by processes sharing the
    /// returned registration). Grants read access to the superblock.
    pub fn register_libfs(&self, uid: u32, gid: u32) -> LibFsRegistration {
        self.trap();
        let actor = {
            let mut reg = self.reg_lock(RegistryLockSite::Register);
            let id = ActorId(reg.next_actor);
            reg.next_actor += 1;
            reg.actors.insert(id, Credentials { uid, gid });
            id
        };
        // Page 0 always exists, so this cannot fail; if it ever did the
        // new LibFS would merely lack superblock visibility — nothing the
        // kernel must panic over. The replica gets the same read-only
        // window so the LibFS's fault-tolerant superblock reads work.
        let _ = self.dev.mmu_map(actor, trio_layout::superblock::SUPERBLOCK_PAGE, PagePerm::Read);
        let _ = self.dev.mmu_map(
            actor,
            superblock_replica_page(self.dev.topology().total_pages()),
            PagePerm::Read,
        );
        if in_sim() {
            work(cost::MMU_PROGRAM_PAGE_NS);
        }
        LibFsRegistration { actor, handle: NvmHandle::new(Arc::clone(&self.dev), actor) }
    }

    /// Credentials of a registered actor.
    pub fn credentials(&self, actor: ActorId) -> Option<Credentials> {
        self.reg_lock(RegistryLockSite::Admin).actors.get(&actor).copied()
    }

    /// Unregisters a LibFS (process exit): releases every mapping it
    /// holds, verifies every file left dirty by it (so its unvetted writes
    /// never reach anyone unchecked), and revokes its credentials. Pool
    /// pages the LibFS returned beforehand are already free; anything it
    /// still held mapped is simply unmapped — provenance keeps those pages
    /// attributable until their files are next verified.
    pub fn unregister(&self, actor: ActorId) {
        self.trap();
        // Pull every grant window the actor registered: a delegation
        // worker (or watchdog re-dispatch) that touches one of its
        // requests after this point faults cleanly instead of reading a
        // buffer whose owner is gone.
        self.delegation.grants().revoke_actor(actor);
        // Drain whatever reclamation limbo holds for this actor while its
        // cache still exists; later ripenings fall back to the pool spill.
        self.gc_reclaim();
        // Flush the actor's allocator cache back to the global pools —
        // the pages are already scrubbed and unmapped.
        let cached: Vec<PageId> = self
            .caches
            .lock()
            .remove(&actor)
            .map(|c| {
                let mut c = c.lock();
                c.total = 0;
                c.per_node.iter_mut().flat_map(std::mem::take).collect()
            })
            .unwrap_or_default();
        if !cached.is_empty() {
            self.spill_cached(&cached);
        }
        let mut reg = self.reg_lock(RegistryLockSite::Unregister);
        let held: Vec<Ino> = reg
            .files
            .iter()
            .filter(|(_, m)| m.writer == Some(actor) || m.readers.contains(&actor))
            .map(|(i, _)| *i)
            .collect();
        for ino in &held {
            if let Some(meta) = reg.files.get_mut(ino) {
                let pages = meta.mapped_pages.remove(&actor).unwrap_or_default();
                meta.readers.remove(&actor);
                if meta.writer == Some(actor) {
                    meta.writer = None;
                    meta.dirty_by = Some(actor);
                }
                for p in &pages {
                    let _ = self.dev.mmu_unmap(actor, *p);
                }
                if in_sim() {
                    work(pages.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
                }
            }
        }
        // Drop the credentials *before* vetting: a departing LibFS has no
        // further access to contain, so failed verifications below roll
        // back / privatize without entering the quarantine machine.
        reg.actors.remove(&actor);
        // Eagerly vet everything the departing LibFS dirtied — there will
        // be no later "next map by the same actor" to skip it.
        let dirty: Vec<Ino> = reg
            .files
            .iter()
            .filter(|(_, m)| m.dirty_by == Some(actor))
            .map(|(i, _)| *i)
            .collect();
        for ino in dirty {
            self.verify_file_locked(&mut reg, ino);
        }
        // A quarantined actor that exits leaves its taint to the repair
        // pass; the record itself dies with the registration.
        if reg.quarantine.contains_key(&actor) {
            self.repair_actor_locked(&mut reg, actor);
        }
        drop(reg);
        // The actor's journal pages are gone with it; stop patrol-repairing
        // them (their frames return through the normal free paths).
        self.journal_twins.lock().retain(|_, t| t.actor != actor);
        let _ = self.dev.mmu_unmap(actor, trio_layout::superblock::SUPERBLOCK_PAGE);
        let _ = self
            .dev
            .mmu_unmap(actor, superblock_replica_page(self.dev.topology().total_pages()));
    }

    // -----------------------------------------------------------------
    // Allocation (batched; LibFSes keep local pools).
    // -----------------------------------------------------------------

    /// The actor's allocator cache, created on first use.
    fn cache_of(&self, actor: ActorId) -> Arc<SimMutex<ActorCache>> {
        let nodes = self.pools.len();
        let mut map = self.caches.lock();
        Arc::clone(map.entry(actor).or_insert_with(|| {
            Arc::new(SimMutex::new(ActorCache { per_node: vec![Vec::new(); nodes], total: 0 }))
        }))
    }

    /// Allocates `n` pages, preferring `node`, mapping them read-write to
    /// `actor` (a LibFS's private pool, ready for direct use).
    ///
    /// Fast path: the pages come out of the actor's cache — provenance is
    /// already recorded, so no global pool or registry lock is touched and
    /// the only privileged work is programming the MMU. Otherwise one
    /// batch refill pulls the request plus [`KernelConfig::alloc_cache_refill`]
    /// extra pages from the pools under a single registry acquisition.
    pub fn alloc_pages(
        &self,
        actor: ActorId,
        n: usize,
        node: Option<NodeId>,
    ) -> FsResult<Vec<PageId>> {
        self.trap();
        if in_sim() {
            work(cost::ALLOCATOR_OP_NS);
        }
        self.check_not_quarantined(actor)?;
        if n == 0 {
            return Ok(Vec::new());
        }
        let topo = self.dev.topology();
        let nodes = self.pools.len();
        let start = node.unwrap_or(0).min(nodes - 1);
        let cache = self.cache_of(actor);
        // Ripe limbo pages belong in the pools/caches before any refill
        // judges them empty. The probe is a relaxed atomic — free on the
        // steady-state path, where limbo drained at defer time — and must
        // run before the cache lock below (reclaim parks into it).
        if self.gc.has_limbo() {
            self.gc_reclaim();
        }
        let mut c = cache.lock();
        let mut out: Vec<PageId>;
        let have = c.per_node[start].len();
        if have >= n {
            let keep = have - n;
            out = c.per_node[start].split_off(keep);
            c.total -= n;
            self.stats.record_alloc_fast_hit();
        } else {
            // Batch refill: the mandatory remainder plus extra stock, all
            // provenance-tagged under one registry lock.
            out = c.per_node[start].split_off(0);
            c.total -= have;
            let need = n - have;
            let refill = self.config.alloc_cache_refill;
            let mut fresh: Vec<PageId> = Vec::new();
            {
                let mut pool = self.pools[start].lock();
                // Stock extras only while the pool stays comfortably
                // deep, so small devices keep exact-allocation behaviour.
                let extra = if pool.len() > need + 4 * refill { refill } else { 0 };
                let take = (need + extra).min(pool.len());
                let at = pool.len() - take;
                fresh.extend(pool.drain(at..).rev());
            }
            if fresh.len() < need {
                // Preferred node dry: steal the mandatory remainder
                // round-robin (never extras — stolen pages would pollute
                // the per-node cache).
                for i in 1..nodes {
                    let ni = (start + i) % nodes;
                    let mut pool = self.pools[ni].lock();
                    while fresh.len() < need {
                        match pool.pop() {
                            Some(p) => fresh.push(p),
                            None => break,
                        }
                    }
                    if fresh.len() >= need {
                        break;
                    }
                }
            }
            // Last resort: this actor's own cache on other nodes — those
            // pages are already granted, so using them beats failing.
            while fresh.len() + out.len() < n {
                let mut got = false;
                for ni in 0..nodes {
                    if ni != start {
                        if let Some(p) = c.per_node[ni].pop() {
                            c.total -= 1;
                            out.push(p);
                            got = true;
                            if fresh.len() + out.len() == n {
                                break;
                            }
                        }
                    }
                }
                if !got {
                    break;
                }
            }
            if fresh.len() + out.len() < n {
                // Roll back the partial grab: fresh pages to their pools,
                // harvested cache pages back to the cache.
                for p in &fresh {
                    self.pools[topo.node_of(*p)].lock().push(*p);
                }
                for p in out {
                    c.per_node[topo.node_of(p)].push(p);
                    c.total += 1;
                }
                return Err(FsError::NoSpace);
            }
            // Provenance-tag the refill through the sharded map: the
            // drained pages are consecutive, so this touches one or two
            // shard locks and the registry control lock not at all
            // (RegistryLockSite::AllocRefill exists only to attribute a
            // future regression here).
            self.prov
                .insert_batch(fresh.iter().map(|p| (p.0, PageProvenance::AllocatedTo(actor))));
            self.stats.record_alloc_refill(fresh.len());
            let mandatory = n - out.len();
            let extras = fresh.split_off(mandatory.min(fresh.len()));
            out.extend(fresh);
            c.total += extras.len();
            c.per_node[start].extend(extras);
        }
        drop(c);
        for p in &out {
            self.dev.mmu_map(actor, *p, PagePerm::Write).map_err(|_| FsError::NoSpace)?;
        }
        if in_sim() {
            work(out.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
        }
        Ok(out)
    }

    /// Returns pages to the free pool. A page must be in the caller's pool
    /// (`AllocatedTo`) or belong to a file the caller is reclaiming through
    /// [`KernelController::reclaim_file`]; anything else is refused.
    ///
    /// Unpinned pages are scrubbed and parked in the actor's allocator
    /// cache (still provenance-tagged, no longer mapped anywhere) rather
    /// than returned to the global pools; past the high-water mark the
    /// cold end spills back.
    pub fn free_pages(&self, actor: ActorId, pages: &[PageId]) -> FsResult<()> {
        self.trap();
        // Shard-local validation; no registry control lock
        // (RegistryLockSite::Free attributes any future regression here).
        let authorized = self.prov.all_match(pages.iter().map(|p| p.0), |_, v| {
            matches!(v, Some(PageProvenance::AllocatedTo(a)) if a == actor)
        });
        if !authorized {
            return Err(FsError::PermissionDenied);
        }
        self.park_freed_pages(actor, pages);
        Ok(())
    }

    /// The caching half of the free path (authorization already done, all
    /// pages provenance-tagged to `actor`): scrub and park in the actor's
    /// allocator cache, spilling the cold end past the high-water mark.
    /// Shared by [`KernelController::free_pages`] and the truncate path's
    /// [`KernelController::return_file_pages`], so freed file pages feed
    /// the next allocation burst instead of round-tripping through the
    /// global pools and their registry lock.
    pub(crate) fn park_freed_pages(&self, actor: ActorId, pages: &[PageId]) {
        // Pinned pages (checkpoint rollback images) must take the
        // deferred-free path.
        let (pinned, cacheable): (Vec<PageId>, Vec<PageId>) = {
            let pins = self.pins.lock();
            pages.iter().partition(|p| pins.pinned.contains_key(&p.0))
        };
        if !pinned.is_empty() {
            self.release_pages_internal(&pinned);
        }
        if cacheable.is_empty() {
            return;
        }
        // Freed frames ripen through epoch limbo: a verifier walk, fsck,
        // or patrol pass holding an [`EpochPin`] may still be reading
        // them, so scrubbing and recycling wait until every earlier pin
        // drops. With no pins live — the steady state — `gc_reclaim`
        // drains this very batch before returning, so the unpinned path
        // parks the pages synchronously like the pre-epoch code did.
        self.gc
            .defer(cacheable.into_iter().map(|page| LimboPage { page, owner: actor }).collect());
        self.gc_reclaim();
    }

    /// Drains every ripe limbo batch into its owner's allocator cache
    /// (scrubbing on the way; retirement-diverted and unscrubbable pages
    /// leave circulation instead). Called after every defer, before
    /// refills, at unregister, and by the ledger accessors, so limbo is
    /// only ever non-empty while a pin is actually held.
    pub(crate) fn gc_reclaim(&self) {
        let ripe = self.gc.take_ripe();
        if ripe.is_empty() {
            return;
        }
        // Group by owner preserving first-seen order: HashMap iteration
        // order must never decide pool contents (determinism).
        let mut order: Vec<ActorId> = Vec::new();
        let mut by_owner: HashMap<ActorId, Vec<PageId>> = HashMap::new();
        for lp in ripe {
            by_owner
                .entry(lp.owner)
                .or_insert_with(|| {
                    order.push(lp.owner);
                    Vec::new()
                })
                .push(lp.page);
        }
        for owner in order {
            if let Some(pages) = by_owner.remove(&owner) {
                self.park_reclaimed(owner, &pages);
            }
        }
    }

    /// Parks one owner's ripe pages in its allocator cache, spilling the
    /// cold end past the high-water mark (the caching half of the free
    /// path; authorization happened before the pages entered limbo).
    fn park_reclaimed(&self, actor: ActorId, pages: &[PageId]) {
        // Pages past the retirement threshold leave circulation here
        // instead of re-entering the cache.
        let (diverted, cacheable): (Vec<PageId>, Vec<PageId>) =
            pages.iter().partition(|p| self.divert_retired(**p));
        if !diverted.is_empty() {
            self.prov.remove_batch(diverted.iter().map(|p| p.0));
        }
        if cacheable.is_empty() {
            return;
        }
        // An owner that unregistered while its frees sat in limbo has no
        // cache left to feed; its pages spill straight to the pools.
        let cache = self.caches.lock().get(&actor).map(Arc::clone);
        let Some(cache) = cache else {
            let mut scrubbed: Vec<PageId> = Vec::new();
            for p in &cacheable {
                if self.dev.reset_page(*p).is_ok() {
                    scrubbed.push(*p);
                }
            }
            if in_sim() {
                work(cacheable.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
            }
            self.stats.record_free(0, scrubbed.len());
            self.spill_cached(&scrubbed);
            return;
        };
        let topo = self.dev.topology();
        let mut c = cache.lock();
        let mut kept = 0usize;
        for p in &cacheable {
            // Scrub now (dropping every mapping with it): the page reads
            // as zeros and is inaccessible for as long as it sits here. A
            // page the device refuses to scrub (out of range) must never
            // be recycled, so it simply is not cached.
            if self.dev.reset_page(*p).is_err() {
                continue;
            }
            c.per_node[topo.node_of(*p)].push(*p);
            kept += 1;
        }
        c.total += kept;
        if in_sim() {
            work(cacheable.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
        }
        let mut spill: Vec<PageId> = Vec::new();
        if c.total > self.config.alloc_cache_high_water {
            let mut excess = c.total - self.config.alloc_cache_high_water;
            for per_node in c.per_node.iter_mut() {
                let k = excess.min(per_node.len());
                // Drain the cold end (the bottom of the LIFO).
                spill.extend(per_node.drain(..k));
                excess -= k;
                if excess == 0 {
                    break;
                }
            }
            c.total -= spill.len();
        }
        drop(c);
        self.stats.record_free(cacheable.len(), spill.len());
        if !spill.is_empty() {
            self.spill_cached(&spill);
        }
    }

    /// Returns already-scrubbed, unmapped cache pages to the global pools.
    /// Shard-local provenance drop; no registry control lock
    /// (RegistryLockSite::Spill attributes any future regression here).
    fn spill_cached(&self, pages: &[PageId]) {
        self.prov.remove_batch(pages.iter().map(|p| p.0));
        let topo = self.dev.topology();
        for p in pages {
            if self.divert_retired(*p) {
                continue;
            }
            self.pools[topo.node_of(*p)].lock().push(*p);
        }
    }

    /// Internal free path (already authorized): unmaps everyone, scrubs,
    /// and returns to pools unless pinned by a checkpoint.
    pub(crate) fn release_pages_internal(&self, pages: &[PageId]) {
        self.prov.remove_batch(pages.iter().map(|p| p.0));
        let mut pins = self.pins.lock();
        let topo = self.dev.topology();
        for p in pages {
            if pins.pinned.contains_key(&p.0) {
                pins.deferred.push(*p);
            } else if self.divert_retired(*p) {
                // Retired: scrubbed and parked out of circulation.
            } else if self.dev.reset_page(*p).is_ok() {
                self.pools[topo.node_of(*p)].lock().push(*p);
            }
            // An unscrubbable page is dropped, never pooled: leaking it is
            // safe, recycling its contents would not be.
        }
        if in_sim() {
            work(pages.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
        }
    }

    /// Pins checkpointed pages so rollback images stay restorable.
    pub(crate) fn pin_pages(&self, pages: impl Iterator<Item = PageId>) {
        let mut pins = self.pins.lock();
        for p in pages {
            *pins.pinned.entry(p.0).or_insert(0) += 1;
        }
    }

    /// Unpins pages; any that were deferred-freed now really free.
    pub(crate) fn unpin_pages(&self, pages: impl Iterator<Item = PageId>) {
        let mut pins = self.pins.lock();
        for p in pages {
            if let Some(c) = pins.pinned.get_mut(&p.0) {
                *c -= 1;
                if *c == 0 {
                    pins.pinned.remove(&p.0);
                }
            }
        }
        let deferred = std::mem::take(&mut pins.deferred);
        let (ready, still): (Vec<PageId>, Vec<PageId>) =
            deferred.into_iter().partition(|p| !pins.pinned.contains_key(&p.0));
        pins.deferred = still;
        drop(pins);
        let topo = self.dev.topology();
        for p in ready {
            if self.divert_retired(p) {
                continue;
            }
            if self.dev.reset_page(p).is_ok() {
                self.pools[topo.node_of(p)].lock().push(p);
            }
        }
    }

    /// Allocates `n` fresh inode numbers to `actor` for future creates.
    pub fn alloc_inos(&self, actor: ActorId, n: u64) -> FsResult<Vec<Ino>> {
        self.trap();
        if in_sim() {
            work(cost::ALLOCATOR_OP_NS);
        }
        self.check_not_quarantined(actor)?;
        let range = {
            let mut next = self.next_ino.lock();
            let start = *next;
            *next += n;
            start..start + n
        };
        // Persist the high-water mark so crash recovery never reuses inos.
        // A failed write refuses the grant (the advanced counter just
        // leaves a harmless ino gap). `sb_lock` is a leaf: scoped to the
        // write and released before the registry below.
        {
            let _sb = self.sb_lock.lock();
            SuperblockRef::new(&self.kh).set_next_ino(range.end).map_err(|_| FsError::Corrupted)?;
        }
        // Consecutive ino grants land on one or two shard locks; the
        // registry control lock is not involved at all.
        let out: Vec<Ino> = range.collect();
        self.inos.insert_batch(out.iter().map(|i| (*i, InoProvenance::AllocatedTo(actor))));
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Mediated metadata (kernel-owned state).
    // -----------------------------------------------------------------

    /// Updates the root directory's inode fields (they live in the
    /// kernel-owned superblock). Requires the caller to hold root's write
    /// mapping.
    pub fn update_root(
        &self,
        actor: ActorId,
        first_index: Option<u64>,
        size: Option<u64>,
        mtime: Option<u64>,
    ) -> FsResult<()> {
        self.trap();
        self.check_not_quarantined(actor)?;
        {
            let reg = self.reg_lock(RegistryLockSite::Admin);
            let root = reg.files.get(&ROOT_INO).ok_or(FsError::NotFound)?;
            if root.writer != Some(actor) {
                return Err(FsError::PermissionDenied);
            }
        }
        let _sb_guard = self.sb_lock.lock();
        let sb = SuperblockRef::new(&self.kh);
        if let Some(fi) = first_index {
            sb.set_root_first_index(fi).map_err(|_| FsError::NoSpace)?;
        }
        if let Some(s) = size {
            sb.set_root_size(s).map_err(|_| FsError::NoSpace)?;
        }
        if let Some(t) = mtime {
            sb.set_root_mtime(t).map_err(|_| FsError::NoSpace)?;
        }
        Ok(())
    }

    /// chmod/chown (paper §4.3/I4): updates the shadow inode table and
    /// refreshes the cached copy in the dirent.
    pub fn setattr(&self, actor: ActorId, ino: Ino, attr: SetAttr) -> FsResult<()> {
        self.trap();
        self.check_not_quarantined(actor)?;
        let (dirent, new_mode, name_len, ftype_raw) = {
            let mut reg = self.reg_lock(RegistryLockSite::Admin);
            let cred = *reg.actors.get(&actor).ok_or(FsError::PermissionDenied)?;
            let meta = reg.files.get_mut(&ino).ok_or(FsError::NotFound)?;
            // Only the owner (or uid 0) may change attributes.
            if cred.uid != 0 && cred.uid != meta.shadow.uid {
                return Err(FsError::PermissionDenied);
            }
            if let Some(m) = attr.mode {
                if !m.is_valid() {
                    return Err(FsError::InvalidArgument);
                }
                meta.shadow.mode = m;
            }
            if let Some(u) = attr.uid {
                if cred.uid != 0 {
                    return Err(FsError::PermissionDenied);
                }
                meta.shadow.uid = u;
            }
            if let Some(g) = attr.gid {
                meta.shadow.gid = g;
            }
            (meta.dirent, meta.shadow.mode, 0u8, 0u8)
        };
        let _ = (name_len, ftype_raw);
        // Refresh the cached attr word in the dirent (kernel write).
        if let Some(loc) = dirent {
            let dref = DirentRef::new(&self.kh, loc);
            if let Ok(d) = dref.load() {
                dref.set_attr(new_mode, d.ftype_raw, d.name.len() as u8)
                    .map_err(|_| FsError::NoSpace)?;
            }
        }
        Ok(())
    }

    /// Ground-truth mode for permission checks (LibFS-visible stat uses the
    /// cached dirent copy; enforcement uses this).
    pub fn shadow_mode(&self, ino: Ino) -> Option<(Mode, u32, u32)> {
        let reg = self.reg_lock(RegistryLockSite::Admin);
        reg.files.get(&ino).map(|f| (f.shadow.mode, f.shadow.uid, f.shadow.gid))
    }

    // -----------------------------------------------------------------
    // Test/diagnostic hooks.
    // -----------------------------------------------------------------

    /// Drains the kernel event log (corruption detections, rollbacks,
    /// lease revocations, and the delegation pool's failure-domain
    /// events — worker deaths/restarts and degraded-mode transitions).
    pub fn take_events(&self) -> Vec<KernelEvent> {
        let mut events = self.events.drain();
        events.extend(self.delegation.take_events());
        events
    }

    /// Kernel events evicted by ring overflow since mount (the bounded
    /// ring's drop-oldest policy; also surfaced via `PathStats`).
    pub fn dropped_event_count(&self) -> u64 {
        self.events.dropped()
    }

    /// Snapshot of the delegation pool's degradation state (DESIGN.md
    /// §16): whether new ops are currently shed to direct access, and the
    /// lifetime enter/exit counts.
    pub fn degraded_mode(&self) -> DegradedMode {
        self.delegation.degraded_mode()
    }

    /// Drains the cumulative phase timings (Figure 8 instrumentation).
    pub fn take_phase_stats(&self) -> PhaseStats {
        std::mem::take(&mut *self.phases.lock())
    }

    /// Accumulates virtual time into a phase counter (crate-internal).
    pub(crate) fn charge_phase(&self, f: impl FnOnce(&mut PhaseStats, Nanos), ns: Nanos) {
        if ns > 0 {
            f(&mut self.phases.lock(), ns);
        }
    }

    /// Free pages remaining (all pools). Drains ripe limbo first so the
    /// ledger never under-counts pages a dropped pin was holding back.
    pub fn free_page_count(&self) -> usize {
        self.gc_reclaim();
        self.pools.iter().map(|p| p.lock().len()).sum()
    }

    /// Pages parked in per-actor allocator caches: granted (provenance
    /// recorded) but not handed out, scrubbed and unmapped. Together with
    /// [`KernelController::free_page_count`] and the pages reachable from
    /// files this accounts for every page — the ledger tests rely on it.
    pub fn cached_page_count(&self) -> usize {
        self.gc_reclaim();
        let caches: Vec<_> = self.caches.lock().values().map(Arc::clone).collect();
        caches.iter().map(|c| c.lock().total).sum()
    }

    /// Whether `ino` currently has a write mapping.
    pub fn writer_of(&self, ino: Ino) -> Option<ActorId> {
        self.reg_lock(RegistryLockSite::Admin).files.get(&ino).and_then(|f| f.writer)
    }

    /// Pages the kernel believes belong to file `ino` (post-verification).
    pub fn pages_of(&self, ino: Ino) -> HashSet<u64> {
        self.prov
            .collect_filter(|_, st| matches!(st, PageProvenance::InFile(f) if f == ino))
            .into_iter()
            .map(|(p, _)| p)
            .collect()
    }

    /// Dirent location helper for tests.
    pub fn dirent_of(&self, ino: Ino) -> Option<DirentLoc> {
        self.reg_lock(RegistryLockSite::Admin).files.get(&ino).and_then(|f| f.dirent)
    }
}

/// The verifier's window onto kernel state (`trio_verifier::ResourceView`):
/// shadow attributes and mapping state come from the registry guard the
/// caller holds; page/ino provenance from the sharded maps. Page 0 is the
/// kernel-owned superblock; absent entries read as free/unknown.
pub(crate) struct KernelView<'a> {
    pub(crate) reg: &'a Registry,
    pub(crate) prov: &'a ShardedMap<PageProvenance>,
    pub(crate) inos: &'a ShardedMap<InoProvenance>,
}

impl ResourceView for KernelView<'_> {
    fn page_provenance(&self, page: PageId) -> PageProvenance {
        if page.0 == 0 {
            return PageProvenance::Kernel;
        }
        self.prov.get(page.0).unwrap_or(PageProvenance::Free)
    }

    fn ino_provenance(&self, ino: Ino) -> InoProvenance {
        self.inos.get(ino).unwrap_or(InoProvenance::Unknown)
    }

    fn shadow_attr(&self, ino: Ino) -> Option<ShadowAttr> {
        self.reg.files.get(&ino).map(|f| f.shadow)
    }

    fn is_mapped(&self, ino: Ino) -> bool {
        self.reg.files.get(&ino).map(|f| f.is_mapped()).unwrap_or(false)
    }
}
