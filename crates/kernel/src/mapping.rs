//! Mapping, leases, verification-on-sharing, checkpoints, and rollback —
//! the heart of the Trio protocol (paper §3.2 Figure 2, §4.3).
//!
//! Protocol summary as implemented:
//!
//! * `map` grants an actor access to one file's core state: its index and
//!   data pages, plus (for writers) the parent-directory page holding its
//!   co-located dirent. Write grants are exclusive and lease-bounded;
//!   concurrent read grants share.
//! * When a write grant ends (voluntary `release` or lease revocation) the
//!   file — and its parent directory, whose dirent page was writable — is
//!   marked *dirty by* that actor.
//! * The next `map` by a *different* actor triggers the integrity verifier
//!   on the dirty file. On a pass, the kernel claims the file's pages in
//!   its provenance books; on a failure it rolls the file's metadata back
//!   to the checkpoint taken when the dirty actor got its write grant,
//!   reconciling size mismatches by trimming (clearing slots whose pages
//!   are gone) — paper §4.3's trim/pad policy.
//! * Checkpointed pages are pinned: freeing them is deferred until the
//!   checkpoint is replaced, so rollback images always restore safely.

use std::collections::HashSet;

use trio_fsapi::{FsError, FsResult};
use trio_layout::{
    walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, FilePages, IndexPageRef, Ino,
    SuperblockRef, DIRENTS_PER_PAGE, DIRENT_SIZE, ROOT_INO,
};
use trio_nvm::{ActorId, PageId, PagePerm, RegistryLockSite, PAGE_SIZE};
use trio_sim::{cost, in_sim, now, work, Nanos};
use trio_verifier::{InoProvenance, PageProvenance, ShadowAttr, VerifyRequest};

use crate::registry::{Checkpoint, FileMeta, KernelEvent, Registry};
use crate::KernelController;

/// What a successful `map` returns to the LibFS.
#[derive(Clone, Debug)]
pub struct MapGrant {
    /// The file's inode number.
    pub ino: Ino,
    /// Its type.
    pub ftype: CoreFileType,
    /// Whether this is a write grant.
    pub write: bool,
    /// The file's pages (the LibFS rebuilds auxiliary state from these).
    pub pages: FilePages,
    /// Virtual-time lease deadline (write grants).
    pub lease_until: Nanos,
    /// The file's dirent location (`None` for root).
    pub dirent: Option<DirentLoc>,
    /// Cached size at grant time.
    pub size: u64,
}

/// What to map.
#[derive(Clone, Copy, Debug)]
pub enum MapTarget {
    /// The root directory.
    Root,
    /// A file via its dirent slot inside `parent`.
    Dirent {
        /// Parent directory ino.
        parent: Ino,
        /// The slot.
        loc: DirentLoc,
    },
}

impl KernelController {
    /// Maps a file into `actor`'s address space (Figure 2 steps 1–2 and
    /// 6–9). Blocks (in virtual time) while another actor holds an
    /// unexpired write lease.
    pub fn map(&self, actor: ActorId, target: MapTarget, write: bool) -> FsResult<MapGrant> {
        self.trap();
        if in_sim() {
            work(cost::MAP_CALL_BASE_NS);
        }
        self.check_not_quarantined(actor)?;
        let mut lease_attempt = 0u32;
        loop {
            let mut reg = self.reg_lock(RegistryLockSite::Map);
            // ---- Identify the file from its committed core state. ----
            let (ino, ftype, _first_index0, dirent, parent, size) = match target {
                MapTarget::Root => {
                    let sb = SuperblockRef::new(self.kernel_handle());
                    let fi = sb.root_first_index().map_err(|_| FsError::NotFound)?;
                    let sz = sb.root_size().unwrap_or(0);
                    (ROOT_INO, CoreFileType::Directory, fi, None, ROOT_INO, sz)
                }
                MapTarget::Dirent { parent, loc } => {
                    let d =
                        DirentRef::new(self.kernel_handle(), loc).load().map_err(|_| FsError::NotFound)?;
                    if d.ino == 0 {
                        return Err(FsError::NotFound);
                    }
                    let ft = d.ftype().ok_or(FsError::Corrupted)?;
                    (d.ino, ft, d.first_index, Some(loc), parent, d.size)
                }
            };

            self.adopt_file(&mut reg, ino, ftype, dirent, parent)?;

            // Reads into a quarantined subtree are refused until the
            // repair pass re-admits it (DESIGN.md §14).
            if reg.ino_quarantined(ino) || reg.ino_quarantined(parent) {
                return Err(FsError::Quarantined);
            }

            // ---- Permission check against the shadow inode table. ----
            let cred = *reg.actors.get(&actor).ok_or(FsError::PermissionDenied)?;
            {
                let Some(meta) = reg.files.get(&ino) else {
                    return Err(FsError::Corrupted);
                };
                let m = meta.shadow.mode.0;
                let (r_ok, w_ok) = if cred.uid == 0 {
                    (true, true)
                } else if cred.uid == meta.shadow.uid {
                    (m & 0o400 != 0, m & 0o200 != 0)
                } else if cred.gid == meta.shadow.gid {
                    (m & 0o040 != 0, m & 0o020 != 0)
                } else {
                    (m & 0o004 != 0, m & 0o002 != 0)
                };
                if (write && !w_ok) || (!write && !r_ok) {
                    return Err(FsError::PermissionDenied);
                }
            }

            // ---- Sharing policy: concurrent reads XOR exclusive write. ----
            let Some(meta) = reg.files.get_mut(&ino) else {
                return Err(FsError::Corrupted);
            };
            if let Some(w) = meta.writer {
                if w != actor {
                    let lease = meta.lease_until;
                    let t = now();
                    if t < lease {
                        drop(reg);
                        // Wait out the lease via the unified retry policy,
                        // clamped to the remaining lease (the default
                        // policy makes attempt 0 exactly the remainder).
                        let w = self.config().lease_retry.window_ns(lease_attempt, 0);
                        crate::obs::lease_retry(lease_attempt, w);
                        self.stats.record_lease_retry();
                        lease_attempt = lease_attempt.saturating_add(1);
                        work(w.min(lease - t).max(1));
                        continue;
                    }
                    self.revoke_writer_locked(&mut reg, ino);
                }
            }
            if write {
                let Some(meta) = reg.files.get_mut(&ino) else {
                    return Err(FsError::Corrupted);
                };
                let others: Vec<ActorId> =
                    meta.readers.iter().copied().filter(|r| *r != actor).collect();
                for r in others {
                    let pages = meta.mapped_pages.remove(&r).unwrap_or_default();
                    meta.readers.remove(&r);
                    for p in &pages {
                        let _ = self.device().mmu_unmap(r, *p);
                    }
                    if in_sim() {
                        work(pages.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
                    }
                }
            }

            // ---- Verify-on-sharing (Figure 2 steps 6–8). ----
            let dirty = reg.files.get(&ino).and_then(|m| m.dirty_by);
            if let Some(da) = dirty {
                if da != actor {
                    self.verify_file_locked(&mut reg, ino);
                }
            }
            // The parent's dirent page was writable under the last writer of
            // this file; if the parent is dirty by someone else, vet it too.
            if parent != ino {
                let pd = reg.files.get(&parent).and_then(|m| m.dirty_by);
                if let Some(da) = pd {
                    if da != actor {
                        self.verify_file_locked(&mut reg, parent);
                    }
                }
            }

            // Verification may have *privatized* the file — expelled a
            // never-checkpointed corrupt creation from the namespace. It no
            // longer exists for anyone else; the mapper sees a clean miss.
            if !reg.files.contains_key(&ino) {
                return Err(FsError::NotFound);
            }
            // Verification may also have quarantined the offender; without
            // auto-repair the subtree stays off-limits until the repair
            // pass runs, and this very map is the first refused read.
            if reg.ino_quarantined(ino) || reg.ino_quarantined(parent) {
                return Err(FsError::Quarantined);
            }

            // ---- Fresh defensive walk (post-rollback state if any). ----
            let first_index = match target {
                MapTarget::Root => SuperblockRef::new(self.kernel_handle())
                    .root_first_index()
                    .map_err(|_| FsError::NotFound)?,
                MapTarget::Dirent { loc, .. } => {
                    DirentRef::new(self.kernel_handle(), loc).first_index().map_err(|_| FsError::NotFound)?
                }
            };
            let _ = first_index;
            let pages = match walk_file(self.kernel_handle(), first_index, self.config().max_index_pages)
            {
                Ok(p) => p,
                Err(_) => return Err(FsError::Corrupted),
            };

            // ---- Checkpoint before granting write (§4.3). ----
            if write {
                self.take_checkpoint_locked(&mut reg, ino, &pages, dirent);
            }

            // ---- Program the MMU. ----
            let mut grant_pages: Vec<PageId> = pages.all_pages().collect();
            if write {
                if let Some(loc) = dirent {
                    grant_pages.push(loc.page);
                }
            }
            let perm = if write { PagePerm::Write } else { PagePerm::Read };
            for p in &grant_pages {
                self.device().mmu_map(actor, *p, perm).map_err(|_| FsError::Corrupted)?;
            }
            if in_sim() {
                let ns = grant_pages.len() as u64 * cost::MMU_PROGRAM_PAGE_NS;
                work(ns);
                self.charge_phase(|p, n| p.map_ns += n, ns);
            }

            // Re-read the size: verification/rollback may have corrected a
            // lied field since the identification step.
            let size = match target {
                MapTarget::Root => SuperblockRef::new(self.kernel_handle()).root_size().unwrap_or(0),
                MapTarget::Dirent { loc, .. } => {
                    DirentRef::new(self.kernel_handle(), loc).size().unwrap_or(size)
                }
            };
            let lease_until = if write { now_or_zero() + self.config().lease_ns } else { 0 };
            let Some(meta) = reg.files.get_mut(&ino) else {
                return Err(FsError::Corrupted);
            };
            meta.mapped_pages.insert(actor, grant_pages);
            if write {
                meta.writer = Some(actor);
                meta.lease_until = lease_until;
            } else {
                meta.readers.insert(actor);
            }
            meta.verified_pages = pages.clone();

            return Ok(MapGrant { ino, ftype, write, pages, lease_until, dirent, size });
        }
    }

    /// Releases `actor`'s mapping of `ino` (Figure 2 step 5). A writer's
    /// release marks the file (and its parent) dirty pending verification.
    pub fn release(&self, actor: ActorId, ino: Ino) -> FsResult<()> {
        self.trap();
        let mut reg = self.reg_lock(RegistryLockSite::Release);
        let Some(meta) = reg.files.get_mut(&ino) else {
            return Err(FsError::NotFound);
        };
        let was_writer = meta.writer == Some(actor);
        let granted = meta.mapped_pages.remove(&actor).unwrap_or_default();
        meta.readers.remove(&actor);
        let mut to_unmap: HashSet<PageId> = granted.into_iter().collect();
        let parent = meta.parent;
        let dirent = meta.dirent;
        if was_writer {
            meta.writer = None;
            meta.dirty_by = Some(actor);
            // Pages the writer linked in from its pool are mapped via the
            // pool grant; revoke those too by walking the current chain.
            let first_index = self.current_first_index(ino, dirent);
            if let Ok(fi) = first_index {
                if let Ok(pages) = walk_file(self.kernel_handle(), fi, self.config().max_index_pages) {
                    to_unmap.extend(pages.all_pages());
                }
            }
            if parent != ino {
                if let Some(pmeta) = reg.files.get_mut(&parent) {
                    pmeta.dirty_by = Some(actor);
                }
            }
        }
        for p in &to_unmap {
            let _ = self.device().mmu_unmap(actor, *p);
        }
        if in_sim() {
            let ns = to_unmap.len() as u64 * cost::MMU_PROGRAM_PAGE_NS;
            work(ns);
            self.charge_phase(|p, n| p.unmap_ns += n, ns);
        }
        Ok(())
    }

    /// `commit` (paper §4.3): verifies the caller's current state and, on a
    /// pass, replaces the checkpoint so a later rollback keeps these
    /// changes. The caller must hold the write grant.
    pub fn commit(&self, actor: ActorId, ino: Ino) -> FsResult<()> {
        self.trap();
        self.check_not_quarantined(actor)?;
        let mut reg = self.reg_lock(RegistryLockSite::Commit);
        let Some(meta) = reg.files.get_mut(&ino) else {
            return Err(FsError::NotFound);
        };
        if meta.writer != Some(actor) {
            return Err(FsError::PermissionDenied);
        }
        let dirent = meta.dirent;
        meta.dirty_by = Some(actor);
        let passed = self.verify_file_locked(&mut reg, ino);
        if !passed {
            return Err(FsError::Corrupted);
        }
        // Re-checkpoint at the newly verified state and restore the
        // writer's mappings (verification cleared them).
        let fi = self.current_first_index(ino, dirent).map_err(|_| FsError::Corrupted)?;
        let pages = walk_file(self.kernel_handle(), fi, self.config().max_index_pages)
            .map_err(|_| FsError::Corrupted)?;
        self.take_checkpoint_locked(&mut reg, ino, &pages, dirent);
        let mut grant_pages: Vec<PageId> = pages.all_pages().collect();
        if let Some(loc) = dirent {
            grant_pages.push(loc.page);
        }
        for p in &grant_pages {
            let _ = self.device().mmu_map(actor, *p, PagePerm::Write);
        }
        if in_sim() {
            work(grant_pages.len() as u64 * cost::MMU_PROGRAM_PAGE_NS);
        }
        let Some(meta) = reg.files.get_mut(&ino) else {
            return Err(FsError::Corrupted);
        };
        meta.mapped_pages.insert(actor, grant_pages);
        meta.verified_pages = pages;
        meta.dirty_by = None;
        Ok(())
    }

    /// Returns pages a writer removed from its file (truncate, overwrite
    /// shrink) to the free pool. Unlike [`KernelController::free_pages`]
    /// this accepts pages whose provenance is `InFile(ino)`, provided the
    /// caller holds `ino`'s write grant.
    pub fn return_file_pages(
        &self,
        actor: ActorId,
        ino: Ino,
        pages: &[PageId],
    ) -> FsResult<()> {
        self.trap();
        // Fast path (the common truncate/shrink case): every page still
        // carries the caller's pool provenance, so no write-grant check —
        // and no control lock — is needed; the shard probe suffices.
        let all_pool = self.prov.all_match(pages.iter().map(|p| p.0), |_, v| {
            matches!(v, Some(PageProvenance::AllocatedTo(a)) if a == actor)
        });
        if !all_pool {
            // Slow path: some pages are kernel-claimed for the file. That
            // needs the caller to hold `ino`'s write grant, checked under
            // the control lock; the provenance flip happens while the
            // grant check still holds so a concurrent revocation cannot
            // interleave.
            let reg = self.reg_lock(RegistryLockSite::ReturnFile);
            let writer_ok = reg.files.get(&ino).and_then(|m| m.writer) == Some(actor);
            for p in pages {
                match self.prov.get(p.0) {
                    Some(PageProvenance::AllocatedTo(a)) if a == actor => {}
                    Some(PageProvenance::InFile(f)) if f == ino && writer_ok => {}
                    _ => return Err(FsError::PermissionDenied),
                }
            }
            self.prov
                .insert_batch(pages.iter().map(|p| (p.0, PageProvenance::AllocatedTo(actor))));
            drop(reg);
        }
        self.park_freed_pages(actor, pages);
        Ok(())
    }

    /// Batched unlink reclamation: one trap amortized over many deleted
    /// files (the LibFS queues unlinks and flushes periodically). Items are
    /// `(parent, ino, first_index)`. Reclaimed pages are *recycled into the
    /// caller's pool* (provenance `AllocatedTo`, mapping preserved) rather
    /// than freed, so delete/create churn costs no page-table traffic —
    /// the LibFS owned write access to every one of them already.
    pub fn reclaim_batch(&self, actor: ActorId, items: &[(Ino, Ino, u64)]) -> FsResult<Vec<PageId>> {
        self.trap();
        self.check_not_quarantined(actor)?;
        let mut recycled = Vec::new();
        for (parent, ino, first_index) in items {
            recycled.extend(self.reclaim_file_inner(actor, *parent, *ino, *first_index)?);
        }
        Ok(recycled)
    }

    /// Reclaims a deleted file's resources after the LibFS cleared its
    /// dirent (unlink/rmdir path). Requires the caller to hold the parent
    /// directory's write grant. `first_index` is the chain head the LibFS
    /// read before clearing the dirent.
    pub fn reclaim_file(
        &self,
        actor: ActorId,
        parent: Ino,
        ino: Ino,
        first_index: u64,
    ) -> FsResult<Vec<PageId>> {
        self.trap();
        self.check_not_quarantined(actor)?;
        self.reclaim_file_inner(actor, parent, ino, first_index)
    }

    fn reclaim_file_inner(
        &self,
        actor: ActorId,
        parent: Ino,
        ino: Ino,
        first_index: u64,
    ) -> FsResult<Vec<PageId>> {
        let mut reg = self.reg_lock(RegistryLockSite::Reclaim);
        // Authorization tiers: a kernel-tracked writer of the parent may
        // reclaim anything under it. A LibFS working in a by-construction
        // subtree (parent unknown to the kernel, or known but unmapped) may
        // reclaim only its own unvetted resources — which is all such a
        // subtree can contain — plus files whose dirent is verifiably dead
        // on media.
        let pwriter = reg.files.get(&parent).and_then(|m| m.writer);
        if let Some(w) = pwriter {
            if w != actor {
                return Err(FsError::PermissionDenied);
            }
        }
        let full_auth = pwriter == Some(actor);
        let ino_ok = match self.inos.get(ino) {
            None => true,
            Some(InoProvenance::Unknown) => true,
            Some(InoProvenance::AllocatedTo(a)) => a == actor || full_auth,
            Some(InoProvenance::InUse(loc)) => {
                // The LibFS claims it deleted this file: the dirent must
                // really be dead.
                full_auth
                    || DirentRef::new(self.kernel_handle(), loc)
                        .ino()
                        .map(|i| i != ino)
                        .unwrap_or(true)
            }
        };
        if !ino_ok {
            return Err(FsError::PermissionDenied);
        }
        // Force-unmap anyone still holding the dead file.
        if let Some(meta) = reg.files.remove(&ino) {
            for (a, pages) in &meta.mapped_pages {
                for p in pages {
                    let _ = self.device().mmu_unmap(*a, *p);
                }
            }
            if let Some(ck) = &meta.checkpoint {
                let pages: Vec<PageId> = ck.images.iter().map(|(p, _)| *p).collect();
                drop(reg);
                self.unpin_pages(pages.into_iter());
                reg = self.reg_lock(RegistryLockSite::Reclaim);
            }
        }
        self.inos.remove(ino);
        // Free the chain's pages, but never pages the books say belong to a
        // *different* file (a malicious LibFS could pass a foreign chain),
        // and — without full authorization — only the caller's own pool
        // pages or pages of the verified-dead file.
        let mut freeable: Vec<PageId> = Vec::new();
        if let Ok(pages) = walk_file(self.kernel_handle(), first_index, self.config().max_index_pages) {
            for p in pages.all_pages() {
                match self.prov.get(p.0) {
                    Some(PageProvenance::InFile(f)) if f == ino => freeable.push(p),
                    Some(PageProvenance::AllocatedTo(a)) if a == actor || full_auth => {
                        freeable.push(p)
                    }
                    None | Some(_) => {}
                }
            }
        }
        // Recycle into the caller's pool: flip provenance, keep (or grant)
        // the caller's write mapping, scrub contents so stale dirents or
        // data cannot leak through the reuse.
        let pins = self.pins.lock();
        let (recyclable, pinned): (Vec<PageId>, Vec<PageId>) =
            freeable.into_iter().partition(|p| !pins.pinned.contains_key(&p.0));
        drop(pins);
        self.prov
            .insert_batch(recyclable.iter().map(|p| (p.0, PageProvenance::AllocatedTo(actor))));
        drop(reg);
        let mut mmu_work = 0u64;
        for p in &recyclable {
            let _ = self.device().reset_page(*p);
            let _ = self.device().mmu_map(actor, *p, PagePerm::Write);
            mmu_work += cost::MMU_PROGRAM_PAGE_NS;
        }
        if in_sim() {
            // Page scrubbing is cheap relative to the PTE updates the
            // reset+remap imply; charge the mapping cost once per page.
            work(mmu_work / 4);
        }
        if !pinned.is_empty() {
            // Checkpoint-pinned pages cannot be recycled; defer-free them.
            self.release_pages_internal(&pinned);
        }
        Ok(recyclable)
    }

    // =================================================================
    // Internals.
    // =================================================================

    pub(crate) fn current_first_index(
        &self,
        ino: Ino,
        dirent: Option<DirentLoc>,
    ) -> Result<u64, FsError> {
        match dirent {
            Some(loc) => {
                DirentRef::new(self.kernel_handle(), loc).first_index().map_err(|_| FsError::NotFound)
            }
            None => {
                debug_assert_eq!(ino, ROOT_INO);
                SuperblockRef::new(self.kernel_handle())
                    .root_first_index()
                    .map_err(|_| FsError::NotFound)
            }
        }
    }

    /// Creates the kernel's `FileMeta` for `ino` on first contact,
    /// adopting shadow attributes (I4) and validating inode provenance
    /// (I2: fabricated or double-referenced inos are rejected here).
    fn adopt_file(
        &self,
        reg: &mut Registry,
        ino: Ino,
        ftype: CoreFileType,
        dirent: Option<DirentLoc>,
        parent: Ino,
    ) -> FsResult<()> {
        if let Some(meta) = reg.files.get_mut(&ino) {
            // Known file; handle a moved dirent (rename relocates slots).
            if meta.dirent != dirent {
                if let (Some(old), Some(new)) = (meta.dirent, dirent) {
                    let stale =
                        DirentRef::new(self.kernel_handle(), old).ino().map(|i| i != ino).unwrap_or(true);
                    if !stale {
                        return Err(FsError::Corrupted); // Live at two slots.
                    }
                    meta.dirent = Some(new);
                    self.inos.insert(ino, InoProvenance::InUse(new));
                }
            }
            return Ok(());
        }
        let dirty_by;
        let shadow = match self.inos.get(ino) {
            None | Some(InoProvenance::Unknown) => return Err(FsError::Corrupted),
            Some(InoProvenance::AllocatedTo(creator)) => {
                // The creator's direct-access writes are unvetted until the
                // first cross-actor verification.
                dirty_by = Some(creator);
                // First contact after a direct-access create: adopt the
                // creator's credentials as ground truth and the mode the
                // creator wrote into the dirent.
                let cred = reg.actors.get(&creator).copied().unwrap_or(crate::registry::Credentials {
                    uid: u32::MAX,
                    gid: u32::MAX,
                });
                let mode = match dirent {
                    Some(loc) => DirentRef::new(self.kernel_handle(), loc)
                        .load()
                        .map(|d| d.mode)
                        .unwrap_or(trio_fsapi::Mode::RW),
                    None => trio_fsapi::Mode(0o777),
                };
                ShadowAttr { mode, uid: cred.uid, gid: cred.gid }
            }
            Some(InoProvenance::InUse(known)) => {
                // Observed during a parent's verification (or a kernel
                // restart); if its creator's writes are still unvetted,
                // carry the dirtiness over so the first cross-actor map
                // verifies the child itself.
                dirty_by = reg.pending_dirty.remove(&ino);
                let loc = dirent.unwrap_or(known);
                let d = DirentRef::new(self.kernel_handle(), loc).load().map_err(|_| FsError::NotFound)?;
                match (dirty_by, reg.actors.get(&dirty_by.unwrap_or(trio_nvm::KERNEL_ACTOR)).copied()) {
                    (Some(_), Some(cred)) => ShadowAttr { mode: d.mode, uid: cred.uid, gid: cred.gid },
                    _ => ShadowAttr { mode: d.mode, uid: d.uid, gid: d.gid },
                }
            }
        };
        if let Some(loc) = dirent {
            self.inos.insert(ino, InoProvenance::InUse(loc));
        }
        let mut meta = FileMeta::new(ino, ftype, dirent, parent, shadow);
        meta.dirty_by = dirty_by;
        reg.files.insert(ino, meta);
        Ok(())
    }

    fn revoke_writer_locked(&self, reg: &mut Registry, ino: Ino) {
        let Some(meta) = reg.files.get_mut(&ino) else {
            return;
        };
        let Some(w) = meta.writer else {
            return;
        };
        let granted = meta.mapped_pages.remove(&w).unwrap_or_default();
        meta.writer = None;
        meta.dirty_by = Some(w);
        let dirent = meta.dirent;
        let parent = meta.parent;
        let mut to_unmap: HashSet<PageId> = granted.into_iter().collect();
        if let Ok(fi) = self.current_first_index(ino, dirent) {
            if let Ok(pages) = walk_file(self.kernel_handle(), fi, self.config().max_index_pages) {
                to_unmap.extend(pages.all_pages());
            }
        }
        for p in &to_unmap {
            let _ = self.device().mmu_unmap(w, *p);
        }
        if in_sim() {
            let ns = to_unmap.len() as u64 * cost::MMU_PROGRAM_PAGE_NS;
            work(ns);
            self.charge_phase(|p, n| p.unmap_ns += n, ns);
        }
        if parent != ino {
            if let Some(pmeta) = reg.files.get_mut(&parent) {
                pmeta.dirty_by = Some(w);
            }
        }
        self.push_event(KernelEvent::LeaseRevoked { ino, actor: w });
    }

    /// Runs the integrity verifier on `ino` (which must be dirty). On a
    /// pass: claims pages, registers children, clears dirtiness. On a
    /// failure: logs, rolls back to the checkpoint, clears dirtiness.
    /// Returns whether the original state passed.
    pub(crate) fn verify_file_locked(&self, reg: &mut Registry, ino: Ino) -> bool {
        let t0 = now_or_zero();
        let r = self.verify_file_locked_inner(reg, ino);
        let dt = now_or_zero().saturating_sub(t0);
        self.charge_phase(|p, ns| p.verify_ns += ns, dt);
        r
    }

    fn verify_file_locked_inner(&self, reg: &mut Registry, ino: Ino) -> bool {
        // Pin the reclamation epoch for the whole verification: pages the
        // walk observes may sit in the GC limbo list (freed but not yet
        // recycled), and the pin guarantees their contents and provenance
        // stay put until the verdict is in.
        let _pin = self.gc.pin();
        let Some(meta) = reg.files.get(&ino) else {
            return true;
        };
        let Some(dirty_actor) = meta.dirty_by else {
            return true;
        };
        let ftype = meta.ftype;
        let dirent = meta.dirent;
        let first_index = self.current_first_index(ino, dirent).unwrap_or_default();
        let ck_children = meta.checkpoint.as_ref().map(|c| c.children.clone());
        let req = VerifyRequest {
            ino,
            ftype,
            dirent,
            first_index,
            dirty_actor,
            checkpoint_children: ck_children.as_ref(),
            max_index_pages: self.config().max_index_pages,
            max_dir_entries: self.config().max_dir_entries,
        };
        let report = self.verifier().verify(&req, &self.view(reg));
        if report.budget_hit {
            self.resilience_stats().record_budget_hit();
        }
        if report.ok() {
            self.claim_pages_for_file(ino, &report.pages);
            for child in &report.children {
                let prov = self.inos.get(child.ino);
                match prov {
                    Some(InoProvenance::AllocatedTo(creator)) => {
                        self.inos.insert(child.ino, InoProvenance::InUse(child.loc));
                        // The child's own core state is still unvetted.
                        reg.pending_dirty.insert(child.ino, creator);
                    }
                    None => {
                        self.inos.insert(child.ino, InoProvenance::InUse(child.loc));
                    }
                    Some(InoProvenance::InUse(old)) if old != child.loc => {
                        self.inos.insert(child.ino, InoProvenance::InUse(child.loc));
                        if let Some(cm) = reg.files.get_mut(&child.ino) {
                            cm.dirent = Some(child.loc);
                        }
                    }
                    _ => {}
                }
            }
            // The dirty actor loses any residual mappings of pages that are
            // now part of the verified file.
            for p in report.pages.all_pages() {
                let _ = self.device().mmu_unmap(dirty_actor, p);
            }
            // Rollback must restore the *last verified* state. The image
            // taken at write-grant time is superseded the moment this
            // verification passes; keeping it would let a later rollback
            // resurrect pre-verification contents.
            let dirent = reg.files.get(&ino).and_then(|m| m.dirent);
            self.take_checkpoint_locked(reg, ino, &report.pages, dirent);
            if let Some(meta) = reg.files.get_mut(&ino) {
                meta.dirty_by = None;
                meta.verified_pages = report.pages;
            }
            true
        } else {
            self.resilience_stats().record_violations(&report.violations);
            self.push_event(KernelEvent::CorruptionDetected {
                ino,
                violations: report.violations.len(),
            });
            crate::obs::violation_dump(ino);
            self.rollback_locked(reg, ino);
            self.push_event(KernelEvent::RolledBack { ino });
            // Containment: a confirmed violation by a live, registered
            // LibFS quarantines it (rollback above already stopped the
            // bleeding on this file; the quarantine covers the rest of its
            // unvetted subtree). Pure media faults are the exception: a
            // poisoned line is the device's doing, not the writer's, so
            // rollback repairs what it can without branding the LibFS.
            let media_only = report
                .violations
                .iter()
                .all(|v| matches!(v, trio_verifier::Violation::UnreadableData { .. }));
            if !media_only {
                self.maybe_quarantine_locked(reg, dirty_actor);
            }
            false
        }
    }

    /// Restores `ino` to its checkpoint (paper §4.3 "Fixing metadata
    /// corruption"), reconciling vanished pages by trimming.
    fn rollback_locked(&self, reg: &mut Registry, ino: Ino) {
        let Some(meta) = reg.files.get_mut(&ino) else {
            return;
        };
        let dirty_actor = meta.dirty_by.take();
        let dirent = meta.dirent;
        let ftype = meta.ftype;
        let Some(ck) = meta.checkpoint.clone() else {
            // Never checkpointed: the file was created raw by the dirty
            // actor and is corrupt — delete it outright (its pages stay
            // with the creator's pool).
            if let Some(loc) = dirent {
                let _ = DirentRef::new(self.kernel_handle(), loc).clear();
            }
            let parent = meta.parent;
            reg.files.remove(&ino);
            self.inos.remove(ino);
            self.push_event(KernelEvent::Privatized { ino, actor: dirty_actor });
            let _ = parent;
            return;
        };
        // 1. Restore page images.
        for (p, img) in &ck.images {
            let _ = self.device().restore_page(*p, img);
        }
        if in_sim() {
            work(ck.images.len() as u64 * cost::CHECKPOINT_PAGE_NS);
        }
        // 2. Restore the dirent slot / root fields.
        if let (Some(loc), Some(img)) = (dirent, ck.dirent_image) {
            let h = self.kernel_handle();
            if let Ok(dirty) = h.write_dirty(loc.page, loc.byte_off(), &img) {
                let _restored = h.persist_dirty(dirty);
            }
        }
        if let Some((fi, size)) = ck.root_fields {
            // registry → sb_lock is the sanctioned order (sb_lock is a
            // leaf; its holders never take the registry).
            let _sb_guard = self.sb_lock.lock();
            let sb = SuperblockRef::new(self.kernel_handle());
            let _ = sb.set_root_first_index(fi);
            let _ = sb.set_root_size(size);
        }
        // 3. Reconcile: clear slots whose pages no longer belong here.
        let fi = self.current_first_index(ino, dirent).unwrap_or(0);
        self.trim_foreign_slots(ino, fi, dirty_actor);
        // 4. For directories, reconcile each surviving child's chain too.
        if ftype == CoreFileType::Directory {
            if let Ok(pages) = walk_file(self.kernel_handle(), fi, self.config().max_index_pages) {
                let mut children = Vec::new();
                for dp in pages.data_pages.iter().flatten() {
                    for slot in 0..DIRENTS_PER_PAGE {
                        let loc = DirentLoc { page: *dp, slot };
                        let r = DirentRef::new(self.kernel_handle(), loc);
                        if let Ok(d) = r.load() {
                            if d.ino != 0 {
                                children.push((d.ino, d.first_index, loc));
                            }
                        }
                    }
                }
                for (cino, cfi, cloc) in children {
                    let child_has_ck = cino != ino
                        && reg.files.get(&cino).is_some_and(|m| m.checkpoint.is_some());
                    let broken = self.chain_is_broken(cfi);
                    let foreign = !broken && self.has_foreign_slots(cino, cfi, dirty_actor);
                    if (broken || foreign) && child_has_ck {
                        // The child's own checkpoint can restore its chain;
                        // trimming here would erase data its rollback is
                        // about to recover.
                        if let Some(cm) = reg.files.get_mut(&cino) {
                            if cm.dirty_by.is_none() {
                                cm.dirty_by = dirty_actor;
                            }
                        }
                        self.rollback_locked(reg, cino);
                        self.push_event(KernelEvent::RolledBack { ino: cino });
                    } else if broken {
                        // Trim the child to empty rather than leave a
                        // dangling chain.
                        let _ = DirentRef::new(self.kernel_handle(), cloc).set_first_index(0);
                        let _ = DirentRef::new(self.kernel_handle(), cloc).set_size(0);
                    } else if foreign {
                        self.trim_foreign_slots(cino, cfi, dirty_actor);
                    }
                }
            }
        }
        // 5. Re-claim the restored pages and strip the dirty actor's
        //    residual access.
        if let Ok(pages) = walk_file(self.kernel_handle(), fi, self.config().max_index_pages) {
            self.claim_pages_for_file(ino, &pages);
            if let Some(da) = dirty_actor {
                for p in pages.all_pages() {
                    let _ = self.device().mmu_unmap(da, p);
                }
            }
            if let Some(meta) = reg.files.get_mut(&ino) {
                meta.verified_pages = pages;
            }
        }
    }

    fn chain_is_broken(&self, first_index: u64) -> bool {
        walk_file(self.kernel_handle(), first_index, self.config().max_index_pages).is_err()
    }

    /// Clears index slots pointing at pages that neither belong to `ino`
    /// nor are allocated to `dirty_actor` (trim/pad, §4.3).
    fn trim_foreign_slots(
        &self,
        ino: Ino,
        first_index: u64,
        dirty_actor: Option<ActorId>,
    ) {
        let Ok(pages) = walk_file(self.kernel_handle(), first_index, self.config().max_index_pages)
        else {
            return;
        };
        for ipage in &pages.index_pages {
            let ipr = IndexPageRef::new(self.kernel_handle(), *ipage);
            let Ok((entries, _)) = ipr.load_all() else {
                continue;
            };
            for (i, &e) in entries.iter().enumerate() {
                if e == 0 {
                    continue;
                }
                let ok = match self.prov.get(e) {
                    Some(PageProvenance::InFile(f)) if f == ino => true,
                    Some(PageProvenance::AllocatedTo(a)) => Some(a) == dirty_actor,
                    _ => false,
                };
                if !ok {
                    let _ = ipr.set_entry(i, 0);
                }
            }
        }
    }

    /// True when `trim_foreign_slots` would clear at least one entry —
    /// i.e. the chain references a page that neither belongs to `ino` nor
    /// is legal growth from `dirty_actor`'s pool.
    fn has_foreign_slots(
        &self,
        ino: Ino,
        first_index: u64,
        dirty_actor: Option<ActorId>,
    ) -> bool {
        let Ok(pages) = walk_file(self.kernel_handle(), first_index, self.config().max_index_pages)
        else {
            return false;
        };
        for ipage in &pages.index_pages {
            let ipr = IndexPageRef::new(self.kernel_handle(), *ipage);
            let Ok((entries, _)) = ipr.load_all() else {
                continue;
            };
            for &e in &entries {
                if e == 0 {
                    continue;
                }
                let ok = match self.prov.get(e) {
                    Some(PageProvenance::InFile(f)) if f == ino => true,
                    Some(PageProvenance::AllocatedTo(a)) => Some(a) == dirty_actor,
                    _ => false,
                };
                if !ok {
                    return true;
                }
            }
        }
        false
    }

    /// Snapshots the file's metadata pages (index pages; for directories
    /// also data pages), its dirent image, and — for directories — the set
    /// of live children (I3 baseline). Pins the snapshotted pages.
    fn take_checkpoint_locked(
        &self,
        reg: &mut Registry,
        ino: Ino,
        pages: &FilePages,
        dirent: Option<DirentLoc>,
    ) {
        let t0 = now_or_zero();
        self.take_checkpoint_locked_inner(reg, ino, pages, dirent);
        let dt = now_or_zero().saturating_sub(t0);
        self.charge_phase(|p, ns| p.checkpoint_ns += ns, dt);
    }

    fn take_checkpoint_locked_inner(
        &self,
        reg: &mut Registry,
        ino: Ino,
        pages: &FilePages,
        dirent: Option<DirentLoc>,
    ) {
        let ftype = reg.files.get(&ino).map(|m| m.ftype).unwrap_or(CoreFileType::Regular);
        let meta_pages: Vec<PageId> = match ftype {
            CoreFileType::Regular => pages.index_pages.clone(),
            CoreFileType::Directory => pages.all_pages().collect(),
        };
        let mut images = Vec::with_capacity(meta_pages.len());
        for p in &meta_pages {
            if let Ok(img) = self.device().snapshot_page(*p) {
                images.push((*p, img));
            }
        }
        if in_sim() {
            work(images.len() as u64 * cost::CHECKPOINT_PAGE_NS);
        }
        let dirent_image = dirent.and_then(|loc| {
            let mut b = [0u8; DIRENT_SIZE];
            self.kernel_handle().read_untimed(loc.page, loc.byte_off(), &mut b).ok().map(|_| b)
        });
        let root_fields = if dirent.is_none() {
            let sb = SuperblockRef::new(self.kernel_handle());
            Some((sb.root_first_index().unwrap_or(0), sb.root_size().unwrap_or(0)))
        } else {
            None
        };
        let mut children = HashSet::new();
        if ftype == CoreFileType::Directory {
            for dp in pages.data_pages.iter().flatten() {
                let mut raw = vec![0u8; PAGE_SIZE];
                if self.kernel_handle().read_untimed(*dp, 0, &mut raw).is_err() {
                    continue;
                }
                for b in raw.chunks_exact(DIRENT_SIZE).take(DIRENTS_PER_PAGE) {
                    let Ok(b) = <&[u8; DIRENT_SIZE]>::try_from(b) else {
                        continue; // chunks_exact guarantees the size; defensive.
                    };
                    let d = DirentData::decode_bytes(b);
                    if d.ino != 0 {
                        children.insert(d.ino);
                    }
                }
            }
        }
        let size = match dirent {
            Some(loc) => DirentRef::new(self.kernel_handle(), loc).size().unwrap_or(0),
            None => SuperblockRef::new(self.kernel_handle()).root_size().unwrap_or(0),
        };
        let new_ck = Checkpoint { images, dirent_image, root_fields, children, size };
        // Pin new, unpin old.
        let new_pages: Vec<PageId> = new_ck.images.iter().map(|(p, _)| *p).collect();
        let old_pages: Vec<PageId> = reg
            .files
            .get(&ino)
            .and_then(|m| m.checkpoint.as_ref())
            .map(|c| c.images.iter().map(|(p, _)| *p).collect())
            .unwrap_or_default();
        self.pin_pages(new_pages.into_iter());
        if let Some(meta) = reg.files.get_mut(&ino) {
            meta.checkpoint = Some(new_ck);
        }
        self.unpin_pages(old_pages.into_iter());
    }
}

fn now_or_zero() -> Nanos {
    if in_sim() {
        now()
    } else {
        0
    }
}
