//! Resilience counters for the adversarial containment path (DESIGN.md
//! §14): violations by kind, quarantine entries/exits, repair outcomes,
//! and verification walk budgets hit. One [`ResilienceStats`] instance
//! lives in the kernel controller next to [`trio_nvm::PathStats`] so a
//! fuzz campaign (or an operator) can snapshot detection *and* repair
//! behaviour the same way benches snapshot the data path. Counters are
//! relaxed atomics and never charge virtual time.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use trio_layout::{superblock::SUPERBLOCK_PAGE, Ino};
use trio_nvm::{ActorId, PageId, PagePerm, RegistryLockSite, KERNEL_ACTOR};
use trio_verifier::{PageProvenance, RepairClass, Violation, VIOLATION_KINDS};

use crate::registry::{KernelEvent, QuarantineInfo, Registry};
use crate::KernelController;

/// Shared relaxed-atomic counters for detection, quarantine, and repair.
#[derive(Default)]
pub struct ResilienceStats {
    /// Violations seen, indexed like [`VIOLATION_KINDS`].
    by_kind: [AtomicU64; VIOLATION_KINDS.len()],
    /// Violations classified repairable / reject (repair-or-reject
    /// contract; sums to the total violation count).
    class_repairable: AtomicU64,
    class_reject: AtomicU64,
    /// Verification walks that hit an explicit budget (hostile graphs).
    walk_budget_hits: AtomicU64,
    /// LibFSes entering / leaving quarantine.
    quarantine_entries: AtomicU64,
    quarantine_exits: AtomicU64,
    /// Repair-pass outcomes per tainted file.
    repairs_clean: AtomicU64,
    repairs_rolled_back: AtomicU64,
    repairs_privatized: AtomicU64,
}

impl ResilienceStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Records every violation in a failed report, by kind and class.
    pub fn record_violations(&self, violations: &[Violation]) {
        for v in violations {
            let kind = v.kind();
            if let Some(i) = VIOLATION_KINDS.iter().position(|k| *k == kind) {
                Self::bump(&self.by_kind[i]);
            }
            match v.repair_class() {
                RepairClass::Repairable => Self::bump(&self.class_repairable),
                RepairClass::Reject => Self::bump(&self.class_reject),
            }
        }
    }

    /// A verification walk hit its explicit budget.
    pub fn record_budget_hit(&self) {
        Self::bump(&self.walk_budget_hits);
    }

    /// A LibFS entered quarantine.
    pub fn record_quarantine_entry(&self) {
        Self::bump(&self.quarantine_entries);
    }

    /// A LibFS was re-admitted.
    pub fn record_quarantine_exit(&self) {
        Self::bump(&self.quarantine_exits);
    }

    /// One tainted file came out of the repair pass.
    pub fn record_repair(&self, outcome: RepairOutcome) {
        let c = match outcome {
            RepairOutcome::Clean => &self.repairs_clean,
            RepairOutcome::RolledBack => &self.repairs_rolled_back,
            RepairOutcome::Privatized => &self.repairs_privatized,
        };
        Self::bump(c);
    }

    /// Coherent-enough copy of every counter.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        let mut by_kind = [0u64; VIOLATION_KINDS.len()];
        for (i, c) in self.by_kind.iter().enumerate() {
            by_kind[i] = c.load(Ordering::Relaxed);
        }
        ResilienceSnapshot {
            by_kind,
            class_repairable: self.class_repairable.load(Ordering::Relaxed),
            class_reject: self.class_reject.load(Ordering::Relaxed),
            walk_budget_hits: self.walk_budget_hits.load(Ordering::Relaxed),
            quarantine_entries: self.quarantine_entries.load(Ordering::Relaxed),
            quarantine_exits: self.quarantine_exits.load(Ordering::Relaxed),
            repairs_clean: self.repairs_clean.load(Ordering::Relaxed),
            repairs_rolled_back: self.repairs_rolled_back.load(Ordering::Relaxed),
            repairs_privatized: self.repairs_privatized.load(Ordering::Relaxed),
        }
    }
}

/// What the repair pass did with one tainted file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Re-verification passed: the taint was stale, nothing to fix.
    Clean,
    /// Rolled back to the last verified checkpoint.
    RolledBack,
    /// No checkpoint existed; the file was expelled (privatized).
    Privatized,
}

/// Plain-value snapshot of [`ResilienceStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// Violation counts, indexed like [`VIOLATION_KINDS`].
    pub by_kind: [u64; VIOLATION_KINDS.len()],
    /// Violations classified repairable under the repair-or-reject contract.
    pub class_repairable: u64,
    /// Violations classified reject.
    pub class_reject: u64,
    /// Verification walks cut off by an explicit budget.
    pub walk_budget_hits: u64,
    /// Quarantine entries (one per offending LibFS containment).
    pub quarantine_entries: u64,
    /// Quarantine exits (re-admissions).
    pub quarantine_exits: u64,
    /// Repair outcomes.
    pub repairs_clean: u64,
    /// Files restored from checkpoint during repair.
    pub repairs_rolled_back: u64,
    /// Files privatized during repair.
    pub repairs_privatized: u64,
}

impl ResilienceSnapshot {
    /// Total violations recorded.
    pub fn total_violations(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    /// Hand-rolled JSON object (the workspace is dependency-free), in the
    /// style of `PathStatsSnapshot::to_json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"violations_by_kind\": {");
        let mut first = true;
        for (i, kind) in VIOLATION_KINDS.iter().enumerate() {
            if self.by_kind[i] == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{kind}\": {}", self.by_kind[i]));
        }
        out.push_str("},\n");
        let mut push = |k: &str, v: u64| {
            out.push_str(&format!("  \"{k}\": {v},\n"));
        };
        push("total_violations", self.total_violations());
        push("class_repairable", self.class_repairable);
        push("class_reject", self.class_reject);
        push("walk_budget_hits", self.walk_budget_hits);
        push("quarantine_entries", self.quarantine_entries);
        push("quarantine_exits", self.quarantine_exits);
        push("repairs_clean", self.repairs_clean);
        push("repairs_rolled_back", self.repairs_rolled_back);
        out.push_str(&format!("  \"repairs_privatized\": {}\n", self.repairs_privatized));
        out.push('}');
        out
    }
}

impl KernelController {
    /// Quarantines `offender` after a confirmed violation: strips its share
    /// of every file's mapping books, revokes all of its MMU grants
    /// wholesale, then restores only what it legitimately owns outright —
    /// its private pool pages and read access to the superblock — so its
    /// own journal and allocator keep working while it is contained. The
    /// files its unvetted writes may have touched become the tainted set;
    /// reads into them return `FsError::Quarantined` until the repair pass
    /// re-admits the actor (DESIGN.md §14).
    ///
    /// No-op when the offender is the kernel, unregistered (a departing
    /// actor is vetted by `unregister` itself), already quarantined, or
    /// when the kernel's own repair pass is what detected the violation.
    pub(crate) fn maybe_quarantine_locked(&self, reg: &mut Registry, offender: ActorId) {
        if reg.repairing
            || offender == KERNEL_ACTOR
            || !reg.actors.contains_key(&offender)
            || reg.quarantine.contains_key(&offender)
        {
            return;
        }
        let mut tainted: HashSet<Ino> = HashSet::new();
        for (ino, meta) in reg.files.iter_mut() {
            if meta.writer == Some(offender) {
                meta.writer = None;
                meta.lease_until = 0;
                meta.dirty_by = Some(offender);
            }
            meta.readers.remove(&offender);
            meta.mapped_pages.remove(&offender);
            if meta.dirty_by == Some(offender) {
                tainted.insert(*ino);
            }
        }
        for (ino, actor) in reg.pending_dirty.iter() {
            if *actor == offender {
                tainted.insert(*ino);
            }
        }
        self.device().revoke_actor(offender);
        // Its grant windows go with the MMU grants: a contained LibFS's
        // in-flight delegated writes must not keep reading its buffers.
        self.delegation().grants().revoke_actor(offender);
        let pool: Vec<PageId> = self
            .prov
            .collect_filter(|_, prov| prov == PageProvenance::AllocatedTo(offender))
            .into_iter()
            .map(|(p, _)| PageId(p))
            .collect();
        for p in pool {
            let _ = self.device().mmu_map(offender, p, PagePerm::Write);
        }
        let _ = self.device().mmu_map(offender, SUPERBLOCK_PAGE, PagePerm::Read);
        let _ = self.device().mmu_map(
            offender,
            trio_layout::superblock_replica_page(self.device().topology().total_pages()),
            PagePerm::Read,
        );
        let n = tainted.len();
        reg.quarantine_enter(offender, QuarantineInfo { tainted });
        self.quarantined_mirror.lock().insert(offender);
        self.push_event(KernelEvent::Quarantined { actor: offender, tainted: n });
        self.resilience_stats().record_quarantine_entry();
        crate::obs::quarantine_dump(offender.0);
        if self.config().auto_repair {
            self.repair_actor_locked(reg, offender);
        }
    }

    /// The repair pass for one quarantined LibFS: re-verifies every tainted
    /// file (rolling back or privatizing on failure, exactly like the
    /// verify-on-sharing path), then re-admits the actor. `reg.repairing`
    /// is set for the duration so failures inside the pass never re-enter
    /// quarantine.
    pub(crate) fn repair_actor_locked(&self, reg: &mut Registry, offender: ActorId) {
        let Some(info) = reg.quarantine_remove(offender) else {
            self.quarantined_mirror.lock().remove(&offender);
            return;
        };
        let mut tainted: Vec<Ino> = info.tainted.into_iter().collect();
        tainted.sort_unstable();
        reg.repairing = true;
        for ino in tainted {
            let dirty = reg.files.get(&ino).map(|m| m.dirty_by.is_some());
            let outcome = match dirty {
                // Expelled before the pass got here — damage stayed private.
                None => RepairOutcome::Privatized,
                // Rolled back (or never dirtied) since tainting: taint stale.
                Some(false) => RepairOutcome::Clean,
                Some(true) => {
                    if self.verify_file_locked(reg, ino) {
                        RepairOutcome::Clean
                    } else if reg.files.contains_key(&ino) {
                        RepairOutcome::RolledBack
                    } else {
                        RepairOutcome::Privatized
                    }
                }
            };
            self.resilience_stats().record_repair(outcome);
        }
        reg.repairing = false;
        self.quarantined_mirror.lock().remove(&offender);
        self.push_event(KernelEvent::Readmitted { actor: offender });
        self.resilience_stats().record_quarantine_exit();
    }

    /// Runs the repair pass for every quarantined LibFS and re-admits them,
    /// returning how many actors were repaired. With `auto_repair` on (the
    /// default) repair happens inline at detection and this returns 0; it
    /// is the manual-mode "background repair" hook.
    pub fn repair_quarantined(&self) -> usize {
        self.trap();
        let mut reg = self.reg_lock(RegistryLockSite::Quarantine);
        let mut actors: Vec<ActorId> = reg.quarantine.keys().copied().collect();
        actors.sort_unstable();
        for a in &actors {
            self.repair_actor_locked(&mut reg, *a);
        }
        actors.len()
    }

    /// Whether `actor` is currently quarantined.
    pub fn is_quarantined(&self, actor: ActorId) -> bool {
        self.quarantined_mirror.lock().contains(&actor)
    }

    /// Actors currently quarantined, sorted for deterministic tests.
    pub fn quarantined_actors(&self) -> Vec<ActorId> {
        let mut v: Vec<ActorId> = self.quarantined_mirror.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trio_layout::WalkError;

    #[test]
    fn violations_count_by_kind_and_class() {
        let s = ResilienceStats::new();
        s.record_violations(&[
            Violation::BadMode { raw: 0xFFFF },
            Violation::Structure(WalkError::IndexCycle(PageId(7))),
            Violation::Structure(WalkError::IndexCycle(PageId(7))),
        ]);
        let snap = s.snapshot();
        assert_eq!(snap.total_violations(), 3);
        assert_eq!(snap.class_repairable, 1);
        assert_eq!(snap.class_reject, 2);
        let structure_idx =
            VIOLATION_KINDS.iter().position(|k| *k == "structure").unwrap_or(usize::MAX);
        assert_eq!(snap.by_kind[structure_idx], 2);
    }

    #[test]
    fn json_shape() {
        let s = ResilienceStats::new();
        s.record_violations(&[Violation::BadName]);
        s.record_quarantine_entry();
        s.record_quarantine_exit();
        s.record_repair(RepairOutcome::RolledBack);
        s.record_budget_hit();
        let j = s.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"bad_name\": 1"));
        assert!(j.contains("\"quarantine_entries\": 1"));
        assert!(j.contains("\"repairs_rolled_back\": 1"));
        assert!(j.contains("\"walk_budget_hits\": 1"));
    }
}
