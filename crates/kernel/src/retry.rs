//! Unified retry policy for every bounded-wait path (DESIGN.md §16).
//!
//! PR 1 grew three ad-hoc copies of the same idea — delegation deadlines
//! that double per attempt, lease waits that sleep the remaining lease,
//! allocation refills that failed on first exhaustion. [`RetryPolicy`]
//! replaces all of them with one declarative state machine:
//!
//! ```text
//!   attempt 0: window = base + remaining_bytes·per_byte      (+ jitter)
//!   attempt k: window = min(first · 2^k, cap)                (+ jitter)
//!   after `attempts` windows: give up (callers fall back / fail)
//! ```
//!
//! The window is recomputed from the *remaining* work each attempt, so a
//! partially-completed scatter-gather batch retries with a deadline
//! scaled to what is actually left, not the original request size. The
//! optional jitter is additive (never shrinks a window below the
//! deterministic baseline) and is drawn from the calling sim-thread's
//! own RNG, so a given seed replays the exact same schedule.

use trio_sim::rng::with_rng;
use trio_sim::{in_sim, Nanos};

/// Declarative deadline/backoff/budget policy shared by the delegation
/// submit path, the allocation refill path, and the lease-wait path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base window for a zero-byte request, in virtual ns.
    pub base_ns: Nanos,
    /// Additional window per byte of remaining work.
    pub per_byte_ns: Nanos,
    /// Total window budget: after this many windows the caller gives up.
    pub attempts: u32,
    /// Ceiling on the exponential growth. The cap bounds only the
    /// backoff, never the size-scaled first window — a huge request
    /// always gets at least its transfer-time deadline.
    pub cap_ns: Nanos,
    /// Add deterministic jitter (up to +12.5% of the window, drawn from
    /// the sim RNG) to de-synchronize retry herds. Ignored outside the
    /// simulation, where there is no virtual clock to jitter against.
    pub jitter: bool,
}

impl RetryPolicy {
    /// A policy with jitter on — the default for data-path deadlines.
    pub const fn new(base_ns: Nanos, per_byte_ns: Nanos, attempts: u32, cap_ns: Nanos) -> Self {
        RetryPolicy { base_ns, per_byte_ns, attempts, cap_ns, jitter: true }
    }

    /// Disables jitter (paths that must stay bit-identical to the
    /// pre-policy behaviour, e.g. the lease wait).
    pub const fn no_jitter(mut self) -> Self {
        self.jitter = false;
        self
    }

    /// The attempt budget, never less than one.
    pub fn attempts(&self) -> u32 {
        self.attempts.max(1)
    }

    /// The deterministic (jitter-free) window for `attempt` (0-based)
    /// with `remaining_bytes` of work left.
    pub fn base_window_ns(&self, attempt: u32, remaining_bytes: usize) -> Nanos {
        let first =
            self.base_ns.saturating_add(self.per_byte_ns.saturating_mul(remaining_bytes as u64));
        let scaled = first.saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX));
        scaled.min(self.cap_ns.max(first))
    }

    /// The window to wait for `attempt` (0-based), including jitter when
    /// enabled and inside the simulation.
    pub fn window_ns(&self, attempt: u32, remaining_bytes: usize) -> Nanos {
        let w = self.base_window_ns(attempt, remaining_bytes);
        if self.jitter && in_sim() && w > 0 {
            w.saturating_add(with_rng(|r| r.gen_range(w / 8 + 1)))
        } else {
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_scales_with_remaining_bytes_then_doubles() {
        let p = RetryPolicy::new(1_000, 2, 4, 1_000_000).no_jitter();
        assert_eq!(p.window_ns(0, 0), 1_000);
        assert_eq!(p.window_ns(0, 500), 2_000);
        assert_eq!(p.window_ns(1, 500), 4_000);
        assert_eq!(p.window_ns(2, 500), 8_000);
        // Less remaining work => smaller retry window (the satellite-2
        // fix: retries of a partially-completed batch scale down).
        assert!(p.window_ns(1, 100) < p.window_ns(1, 500));
    }

    #[test]
    fn cap_bounds_backoff_but_not_the_first_window() {
        let p = RetryPolicy::new(1_000, 0, 10, 4_000).no_jitter();
        assert_eq!(p.window_ns(0, 0), 1_000);
        assert_eq!(p.window_ns(1, 0), 2_000);
        assert_eq!(p.window_ns(2, 0), 4_000);
        assert_eq!(p.window_ns(3, 0), 4_000); // capped
        // A request whose transfer time exceeds the cap still gets its
        // full size-scaled window.
        let big = RetryPolicy::new(1_000, 8, 3, 4_000).no_jitter();
        assert_eq!(big.window_ns(0, 1 << 20), 1_000 + 8 * (1 << 20));
    }

    #[test]
    fn attempts_budget_never_zero() {
        assert_eq!(RetryPolicy::new(1, 0, 0, 1).attempts(), 1);
        assert_eq!(RetryPolicy::new(1, 0, 3, 1).attempts(), 3);
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let p = RetryPolicy::new(1 << 40, 0, u32::MAX, u64::MAX).no_jitter();
        assert_eq!(p.window_ns(u32::MAX, usize::MAX), u64::MAX);
    }

    #[test]
    fn jitter_is_additive_and_off_outside_sim() {
        // Outside the sim there is no RNG context: the window must be
        // exactly the deterministic base.
        let p = RetryPolicy::new(1_000, 0, 2, 10_000);
        assert!(p.jitter);
        assert_eq!(p.window_ns(0, 0), 1_000);
    }

    #[test]
    fn jitter_in_sim_stays_within_an_eighth() {
        let rt = trio_sim::SimRuntime::new(7);
        rt.spawn("t", || {
            let p = RetryPolicy::new(8_000, 0, 2, 64_000);
            for a in 0..3 {
                let base = p.base_window_ns(a, 0);
                let w = p.window_ns(a, 0);
                assert!(w >= base, "jitter never shrinks the window");
                assert!(w <= base + base / 8, "jitter bounded by +12.5%");
            }
        });
        rt.run();
    }
}
