//! Kernel bookkeeping: file metadata, shadow inodes, provenance, leases.
//!
//! This module is the "global file system information" of paper §4.3/I2:
//! which inodes and pages are allocated to which LibFS, which belong to
//! existing files, who maps what, and the per-file checkpoints used for
//! rollback. The integrity verifier reads it through the
//! [`trio_verifier::ResourceView`] implementation.

use std::collections::{HashMap, HashSet};

use trio_layout::{CoreFileType, DirentLoc, FilePages, Ino, ROOT_INO};
use trio_nvm::{ActorId, PageId};
use trio_sim::Nanos;
use trio_verifier::{InoProvenance, PageProvenance, ResourceView, ShadowAttr};

/// Credentials of a registered LibFS (one per process or trust group).
#[derive(Clone, Copy, Debug)]
pub struct Credentials {
    /// User id.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
}

/// A checkpoint of a file's metadata taken before granting write access
/// (paper §4.3 "Fixing metadata corruption").
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Page images: index pages for regular files; index *and* data pages
    /// for directories.
    pub images: Vec<(PageId, Box<[u8]>)>,
    /// Image of the file's 256-byte dirent slot (None for root).
    pub dirent_image: Option<[u8; trio_layout::DIRENT_SIZE]>,
    /// Root only: superblock fields at checkpoint time.
    pub root_fields: Option<(u64, u64)>, // (first_index, size)
    /// Directories: live child inos at checkpoint time (for I3).
    pub children: HashSet<Ino>,
    /// File size at checkpoint (for trim/pad reconciliation).
    pub size: u64,
}

/// Per-file kernel metadata.
#[derive(Debug)]
pub struct FileMeta {
    /// Inode number.
    pub ino: Ino,
    /// File type at adoption.
    pub ftype: CoreFileType,
    /// Dirent location (`None` for root).
    pub dirent: Option<DirentLoc>,
    /// Parent directory ino (root's parent is itself).
    pub parent: Ino,
    /// Ground-truth permissions (I4).
    pub shadow: ShadowAttr,
    /// Actors holding read mappings.
    pub readers: HashSet<ActorId>,
    /// Actor holding the write mapping, if any.
    pub writer: Option<ActorId>,
    /// Virtual deadline of the current write lease.
    pub lease_until: Nanos,
    /// Set when a writer released (or was revoked) and no verification has
    /// happened since; holds the actor whose writes are unvetted.
    pub dirty_by: Option<ActorId>,
    /// Rollback target.
    pub checkpoint: Option<Checkpoint>,
    /// Pages the MMU currently exposes to each actor for this file
    /// (includes the dirent page for writers).
    pub mapped_pages: HashMap<ActorId, Vec<PageId>>,
    /// Pages in the file as of the last verification/adoption.
    pub verified_pages: FilePages,
}

impl FileMeta {
    /// Creates metadata for a newly adopted file.
    pub fn new(
        ino: Ino,
        ftype: CoreFileType,
        dirent: Option<DirentLoc>,
        parent: Ino,
        shadow: ShadowAttr,
    ) -> Self {
        FileMeta {
            ino,
            ftype,
            dirent,
            parent,
            shadow,
            readers: HashSet::new(),
            writer: None,
            lease_until: 0,
            dirty_by: None,
            checkpoint: None,
            mapped_pages: HashMap::new(),
            verified_pages: FilePages::default(),
        }
    }

    /// Whether anyone maps the file.
    pub fn is_mapped(&self) -> bool {
        self.writer.is_some() || !self.readers.is_empty()
    }
}

/// Events the kernel records for tests and the attack-suite harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// The verifier rejected a file; `violations` summarises why.
    CorruptionDetected {
        /// The corrupted file.
        ino: Ino,
        /// Number of violations found.
        violations: usize,
    },
    /// The file was rolled back to its checkpoint.
    RolledBack {
        /// The restored file.
        ino: Ino,
    },
    /// A write lease was forcibly revoked.
    LeaseRevoked {
        /// The file whose lease expired.
        ino: Ino,
        /// The actor that lost access.
        actor: ActorId,
    },
    /// A corrupted file had no checkpoint to roll back to (it was created
    /// raw by the faulty actor), so it was expelled from the namespace and
    /// its pages left with that actor's pool — the damage is *privatized*
    /// to the LibFS that caused it (graceful degradation: everyone else's
    /// files are untouched).
    Privatized {
        /// The expelled file.
        ino: Ino,
        /// The actor whose unvetted writes produced it, when known.
        actor: Option<ActorId>,
    },
    /// A confirmed violation quarantined the offending LibFS: its device
    /// mappings were revoked wholesale and the subtree it dirtied marked
    /// off-limits pending repair (DESIGN.md §14).
    Quarantined {
        /// The offending LibFS.
        actor: ActorId,
        /// How many files its unvetted writes tainted.
        tainted: usize,
    },
    /// The repair pass finished for a quarantined LibFS: every tainted
    /// file was re-verified, rolled back, or privatized, and the actor may
    /// use the kernel interface again.
    Readmitted {
        /// The re-admitted LibFS.
        actor: ActorId,
    },
    /// The watchdog reaped a delegation worker that died mid-request
    /// (DESIGN.md §16).
    WorkerDied {
        /// NUMA node the worker served.
        node: usize,
        /// Worker slot index within the node.
        worker: usize,
    },
    /// The watchdog respawned a dead delegation worker on its original
    /// ring; queued requests behind the death are preserved.
    WorkerRestarted {
        /// NUMA node the worker serves.
        node: usize,
        /// Worker slot index within the node.
        worker: usize,
    },
    /// Sustained delegation failure or ring backpressure tripped degraded
    /// mode: new ops shed to direct access except periodic probes.
    DelegationDegraded,
    /// A run of successful probes cleared degraded mode; delegation
    /// resumes for all eligible ops.
    DelegationRecovered,
}

/// Quarantine record for one offending LibFS (DESIGN.md §14 lifecycle:
/// `active → quarantined → (repair) → re-admitted`).
#[derive(Clone, Debug, Default)]
pub struct QuarantineInfo {
    /// Files whose unvetted state the offender may have corrupted; reads
    /// into these return `FsError::Quarantined` until repaired.
    pub tainted: HashSet<Ino>,
}

/// The kernel's mutable state (held under one virtual-time mutex; kernel
/// calls are rare in steady state because allocation is batched).
pub struct Registry {
    /// Registered LibFS credentials.
    pub actors: HashMap<ActorId, Credentials>,
    /// Per-file metadata, keyed by ino.
    pub files: HashMap<Ino, FileMeta>,
    /// Page provenance for every non-free page.
    pub page_prov: HashMap<u64, PageProvenance>,
    /// Ino provenance for every allocated ino.
    pub ino_prov: HashMap<Ino, InoProvenance>,
    /// Children observed during a parent's verification whose own core
    /// state is still unvetted: ino -> the actor whose writes created it.
    /// Consumed at adoption so the child is verified on its first
    /// cross-actor map.
    pub pending_dirty: HashMap<Ino, trio_nvm::ActorId>,
    /// Event log (bounded by tests' appetite; cleared on read).
    pub events: Vec<KernelEvent>,
    /// Next actor id to hand out.
    pub next_actor: u32,
    /// LibFSes currently quarantined after a confirmed violation, with the
    /// subtree each one tainted.
    pub quarantine: HashMap<ActorId, QuarantineInfo>,
    /// Set while the kernel's own repair pass re-verifies tainted files —
    /// failures inside the pass must roll back or privatize, never
    /// re-enter quarantine (the offender is already contained).
    pub repairing: bool,
}

impl Registry {
    /// Fresh registry with the root directory pre-adopted.
    pub fn new() -> Self {
        let mut files = HashMap::new();
        files.insert(
            ROOT_INO,
            FileMeta::new(
                ROOT_INO,
                CoreFileType::Directory,
                None,
                ROOT_INO,
                ShadowAttr { mode: trio_fsapi::Mode(0o777), uid: 0, gid: 0 },
            ),
        );
        let mut ino_prov = HashMap::new();
        // Root is "in use" at a synthetic location never compared against.
        ino_prov.insert(ROOT_INO, InoProvenance::InUse(DirentLoc { page: PageId(0), slot: 0 }));
        Registry {
            actors: HashMap::new(),
            files,
            page_prov: HashMap::new(),
            ino_prov,
            pending_dirty: HashMap::new(),
            events: Vec::new(),
            next_actor: 1,
            quarantine: HashMap::new(),
            repairing: false,
        }
    }

    /// Whether `ino` sits in any quarantined LibFS's tainted subtree.
    pub fn ino_quarantined(&self, ino: Ino) -> bool {
        self.quarantine.values().any(|q| q.tainted.contains(&ino))
    }

    /// Records that `pages` belong to file `ino` (post-verification).
    pub fn claim_pages_for_file(&mut self, ino: Ino, pages: &FilePages) {
        for p in pages.all_pages() {
            self.page_prov.insert(p.0, PageProvenance::InFile(ino));
        }
    }

    /// Drops provenance for pages leaving a file (freed or rolled back).
    pub fn release_pages(&mut self, pages: impl Iterator<Item = PageId>) {
        for p in pages {
            self.page_prov.remove(&p.0);
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceView for Registry {
    fn page_provenance(&self, page: PageId) -> PageProvenance {
        if page.0 == 0 {
            return PageProvenance::Kernel;
        }
        self.page_prov.get(&page.0).copied().unwrap_or(PageProvenance::Free)
    }

    fn ino_provenance(&self, ino: Ino) -> InoProvenance {
        self.ino_prov.get(&ino).copied().unwrap_or(InoProvenance::Unknown)
    }

    fn shadow_attr(&self, ino: Ino) -> Option<ShadowAttr> {
        self.files.get(&ino).map(|f| f.shadow)
    }

    fn is_mapped(&self, ino: Ino) -> bool {
        self.files.get(&ino).map(|f| f.is_mapped()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_preadopted() {
        let r = Registry::new();
        assert!(r.files.contains_key(&ROOT_INO));
        assert_eq!(r.ino_provenance(ROOT_INO), InoProvenance::InUse(DirentLoc { page: PageId(0), slot: 0 }));
        assert!(!r.is_mapped(ROOT_INO));
    }

    #[test]
    fn page_zero_is_kernel_owned() {
        let r = Registry::new();
        assert_eq!(r.page_provenance(PageId(0)), PageProvenance::Kernel);
        assert_eq!(r.page_provenance(PageId(5)), PageProvenance::Free);
    }

    #[test]
    fn claim_and_release_pages() {
        let mut r = Registry::new();
        let fp = FilePages {
            index_pages: vec![PageId(3)],
            data_pages: vec![Some(PageId(4)), None, Some(PageId(5))],
        };
        r.claim_pages_for_file(9, &fp);
        assert_eq!(r.page_provenance(PageId(4)), PageProvenance::InFile(9));
        assert_eq!(r.page_provenance(PageId(3)), PageProvenance::InFile(9));
        r.release_pages(fp.all_pages());
        assert_eq!(r.page_provenance(PageId(4)), PageProvenance::Free);
    }
}
