//! Kernel bookkeeping: file metadata, shadow inodes, leases, quarantine.
//!
//! This module is the "global file system information" of paper §4.3/I2:
//! which inodes belong to which files, who maps what, and the per-file
//! checkpoints used for rollback. Page and ino *provenance* moved out of
//! this struct into the sharded maps of [`crate::shard`] (DESIGN.md §20)
//! so the allocator fast path no longer takes the control lock; the
//! verifier reads both halves through `KernelController`'s
//! [`trio_verifier::ResourceView`] adapter.

use std::collections::{HashMap, HashSet};

use trio_layout::{CoreFileType, DirentLoc, FilePages, Ino, ROOT_INO};
use trio_nvm::{ActorId, PageId};
use trio_sim::Nanos;
use trio_verifier::ShadowAttr;

/// Credentials of a registered LibFS (one per process or trust group).
#[derive(Clone, Copy, Debug)]
pub struct Credentials {
    /// User id.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
}

/// A checkpoint of a file's metadata taken before granting write access
/// (paper §4.3 "Fixing metadata corruption").
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Page images: index pages for regular files; index *and* data pages
    /// for directories.
    pub images: Vec<(PageId, Box<[u8]>)>,
    /// Image of the file's 256-byte dirent slot (None for root).
    pub dirent_image: Option<[u8; trio_layout::DIRENT_SIZE]>,
    /// Root only: superblock fields at checkpoint time.
    pub root_fields: Option<(u64, u64)>, // (first_index, size)
    /// Directories: live child inos at checkpoint time (for I3).
    pub children: HashSet<Ino>,
    /// File size at checkpoint (for trim/pad reconciliation).
    pub size: u64,
}

/// Per-file kernel metadata.
#[derive(Debug)]
pub struct FileMeta {
    /// Inode number.
    pub ino: Ino,
    /// File type at adoption.
    pub ftype: CoreFileType,
    /// Dirent location (`None` for root).
    pub dirent: Option<DirentLoc>,
    /// Parent directory ino (root's parent is itself).
    pub parent: Ino,
    /// Ground-truth permissions (I4).
    pub shadow: ShadowAttr,
    /// Actors holding read mappings.
    pub readers: HashSet<ActorId>,
    /// Actor holding the write mapping, if any.
    pub writer: Option<ActorId>,
    /// Virtual deadline of the current write lease.
    pub lease_until: Nanos,
    /// Set when a writer released (or was revoked) and no verification has
    /// happened since; holds the actor whose writes are unvetted.
    pub dirty_by: Option<ActorId>,
    /// Rollback target.
    pub checkpoint: Option<Checkpoint>,
    /// Pages the MMU currently exposes to each actor for this file
    /// (includes the dirent page for writers).
    pub mapped_pages: HashMap<ActorId, Vec<PageId>>,
    /// Pages in the file as of the last verification/adoption.
    pub verified_pages: FilePages,
}

impl FileMeta {
    /// Creates metadata for a newly adopted file.
    pub fn new(
        ino: Ino,
        ftype: CoreFileType,
        dirent: Option<DirentLoc>,
        parent: Ino,
        shadow: ShadowAttr,
    ) -> Self {
        FileMeta {
            ino,
            ftype,
            dirent,
            parent,
            shadow,
            readers: HashSet::new(),
            writer: None,
            lease_until: 0,
            dirty_by: None,
            checkpoint: None,
            mapped_pages: HashMap::new(),
            verified_pages: FilePages::default(),
        }
    }

    /// Whether anyone maps the file.
    pub fn is_mapped(&self) -> bool {
        self.writer.is_some() || !self.readers.is_empty()
    }
}

/// Events the kernel records for tests and the attack-suite harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// The verifier rejected a file; `violations` summarises why.
    CorruptionDetected {
        /// The corrupted file.
        ino: Ino,
        /// Number of violations found.
        violations: usize,
    },
    /// The file was rolled back to its checkpoint.
    RolledBack {
        /// The restored file.
        ino: Ino,
    },
    /// A write lease was forcibly revoked.
    LeaseRevoked {
        /// The file whose lease expired.
        ino: Ino,
        /// The actor that lost access.
        actor: ActorId,
    },
    /// A corrupted file had no checkpoint to roll back to (it was created
    /// raw by the faulty actor), so it was expelled from the namespace and
    /// its pages left with that actor's pool — the damage is *privatized*
    /// to the LibFS that caused it (graceful degradation: everyone else's
    /// files are untouched).
    Privatized {
        /// The expelled file.
        ino: Ino,
        /// The actor whose unvetted writes produced it, when known.
        actor: Option<ActorId>,
    },
    /// A confirmed violation quarantined the offending LibFS: its device
    /// mappings were revoked wholesale and the subtree it dirtied marked
    /// off-limits pending repair (DESIGN.md §14).
    Quarantined {
        /// The offending LibFS.
        actor: ActorId,
        /// How many files its unvetted writes tainted.
        tainted: usize,
    },
    /// The repair pass finished for a quarantined LibFS: every tainted
    /// file was re-verified, rolled back, or privatized, and the actor may
    /// use the kernel interface again.
    Readmitted {
        /// The re-admitted LibFS.
        actor: ActorId,
    },
    /// The watchdog reaped a delegation worker that died mid-request
    /// (DESIGN.md §16).
    WorkerDied {
        /// NUMA node the worker served.
        node: usize,
        /// Worker slot index within the node.
        worker: usize,
    },
    /// The watchdog respawned a dead delegation worker on its original
    /// ring; queued requests behind the death are preserved.
    WorkerRestarted {
        /// NUMA node the worker serves.
        node: usize,
        /// Worker slot index within the node.
        worker: usize,
    },
    /// Sustained delegation failure or ring backpressure tripped degraded
    /// mode: new ops shed to direct access except periodic probes.
    DelegationDegraded,
    /// A run of successful probes cleared degraded mode; delegation
    /// resumes for all eligible ops.
    DelegationRecovered,
}

/// Quarantine record for one offending LibFS (DESIGN.md §14 lifecycle:
/// `active → quarantined → (repair) → re-admitted`).
#[derive(Clone, Debug, Default)]
pub struct QuarantineInfo {
    /// Files whose unvetted state the offender may have corrupted; reads
    /// into these return `FsError::Quarantined` until repaired.
    pub tainted: HashSet<Ino>,
}

/// The kernel's mutable control-plane state. Since DESIGN.md §20 this
/// holds only the genuinely shared, cross-file invariants — file
/// metadata, actor table, quarantine — while page/ino provenance lives
/// in the sharded maps and the event log in the bounded ring, both on
/// `KernelController`. Steady-state alloc/free never locks this.
pub struct Registry {
    /// Registered LibFS credentials.
    pub actors: HashMap<ActorId, Credentials>,
    /// Per-file metadata, keyed by ino.
    pub files: HashMap<Ino, FileMeta>,
    /// Children observed during a parent's verification whose own core
    /// state is still unvetted: ino -> the actor whose writes created it.
    /// Consumed at adoption so the child is verified on its first
    /// cross-actor map.
    pub pending_dirty: HashMap<Ino, trio_nvm::ActorId>,
    /// Next actor id to hand out.
    pub next_actor: u32,
    /// LibFSes currently quarantined after a confirmed violation, with the
    /// subtree each one tainted.
    pub quarantine: HashMap<ActorId, QuarantineInfo>,
    /// Reverse index of every quarantined actor's tainted set:
    /// ino -> how many quarantined actors taint it. Makes the per-read
    /// `ino_quarantined` probe O(1) instead of a scan over every
    /// offender's whole subtree; maintained by [`Registry::quarantine_enter`]
    /// / [`Registry::quarantine_remove`].
    pub tainted_index: HashMap<Ino, u32>,
    /// Set while the kernel's own repair pass re-verifies tainted files —
    /// failures inside the pass must roll back or privatize, never
    /// re-enter quarantine (the offender is already contained).
    pub repairing: bool,
}

impl Registry {
    /// Fresh registry with the root directory pre-adopted.
    pub fn new() -> Self {
        let mut files = HashMap::new();
        files.insert(
            ROOT_INO,
            FileMeta::new(
                ROOT_INO,
                CoreFileType::Directory,
                None,
                ROOT_INO,
                ShadowAttr { mode: trio_fsapi::Mode(0o777), uid: 0, gid: 0 },
            ),
        );
        Registry {
            actors: HashMap::new(),
            files,
            pending_dirty: HashMap::new(),
            next_actor: 1,
            quarantine: HashMap::new(),
            tainted_index: HashMap::new(),
            repairing: false,
        }
    }

    /// Whether `ino` sits in any quarantined LibFS's tainted subtree.
    /// O(1): one probe of the reverse index.
    pub fn ino_quarantined(&self, ino: Ino) -> bool {
        self.tainted_index.contains_key(&ino)
    }

    /// Records `actor` as quarantined with `info`, indexing its tainted
    /// set. The only sanctioned insert path — a bare
    /// `quarantine.insert` would desynchronize the reverse index.
    pub fn quarantine_enter(&mut self, actor: ActorId, info: QuarantineInfo) {
        for ino in &info.tainted {
            *self.tainted_index.entry(*ino).or_insert(0) += 1;
        }
        if let Some(old) = self.quarantine.insert(actor, info) {
            // Re-quarantine of an already-contained actor: drop the old
            // subtree's index contribution (it was just re-counted above
            // only for the new set).
            self.unindex_tainted(&old);
        }
    }

    /// Removes `actor` from quarantine (repair finished or containment
    /// superseded), unwinding its contribution to the reverse index.
    pub fn quarantine_remove(&mut self, actor: ActorId) -> Option<QuarantineInfo> {
        let info = self.quarantine.remove(&actor)?;
        self.unindex_tainted(&info);
        Some(info)
    }

    fn unindex_tainted(&mut self, info: &QuarantineInfo) {
        for ino in &info.tainted {
            if let Some(n) = self.tainted_index.get_mut(ino) {
                *n -= 1;
                if *n == 0 {
                    self.tainted_index.remove(ino);
                }
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_preadopted() {
        let r = Registry::new();
        assert!(r.files.contains_key(&ROOT_INO));
        assert!(!r.files[&ROOT_INO].is_mapped());
    }

    #[test]
    fn tainted_index_tracks_quarantine_lifecycle() {
        let mut r = Registry::new();
        let a = ActorId(1);
        let b = ActorId(2);
        r.quarantine_enter(a, QuarantineInfo { tainted: [10, 11].into_iter().collect() });
        r.quarantine_enter(b, QuarantineInfo { tainted: [11, 12].into_iter().collect() });
        assert!(r.ino_quarantined(10));
        assert!(r.ino_quarantined(11));
        assert!(r.ino_quarantined(12));
        assert!(!r.ino_quarantined(13));
        // Removing one offender keeps the shared ino tainted by the other.
        r.quarantine_remove(a);
        assert!(!r.ino_quarantined(10));
        assert!(r.ino_quarantined(11));
        r.quarantine_remove(b);
        assert!(r.tainted_index.is_empty());
    }

    #[test]
    fn requarantine_replaces_old_taint_contribution() {
        let mut r = Registry::new();
        let a = ActorId(7);
        r.quarantine_enter(a, QuarantineInfo { tainted: [20].into_iter().collect() });
        r.quarantine_enter(a, QuarantineInfo { tainted: [21].into_iter().collect() });
        assert!(!r.ino_quarantined(20), "old tainted set unindexed on re-entry");
        assert!(r.ino_quarantined(21));
        r.quarantine_remove(a);
        assert!(r.tainted_index.is_empty());
    }
}
