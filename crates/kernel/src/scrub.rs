//! Patrol scrub, checksum-driven self-healing, and bad-page retirement
//! (DESIGN.md §19).
//!
//! The kernel is the only component allowed to rewrite media behind the
//! MMU's back, so it owns the background **patrol scrubber**: a budgeted
//! walk over the device that probes every page for the two media failure
//! modes — *poison* (a line the device refuses to read) and *rot* (bytes
//! that no longer hash to their recorded integrity sidecar) — and routes
//! each hit to the strongest repair the page's role allows:
//!
//! | page class                | route                                     |
//! |---------------------------|-------------------------------------------|
//! | superblock / replica      | twin repair under the kernel's `sb_lock`  |
//! | registered journal twin   | rewrite the bad copy from the good one,   |
//! |                           | under the shard lock (`try_lock`: an      |
//! |                           | armed in-flight rename is recovery's job) |
//! | `InFile` page             | re-verify the file: the I1–I4 walk now    |
//! |                           | rejects unreadable checksummed data, so   |
//! |                           | rollback restores the last checkpoint     |
//! | `AllocatedTo` (LibFS pool)| count only — the bytes may be live        |
//! |                           | unvetted file data the kernel must not    |
//! |                           | touch; retirement diverts the page when   |
//! |                           | it next flows through a free path         |
//! | free pool                 | durable scrub (`reset_page`)              |
//!
//! Rot with no replica and no checkpoint image (regular-file data) cannot
//! be healed; the scrubber **fences the page off** — marks every line
//! unreadable — so later reads fail loudly instead of returning wrong
//! bytes. Pages that keep faulting accumulate a per-page count; at
//! [`crate::KernelConfig::retire_fault_threshold`] the page is *retired*:
//! pulled from the free pool, or migrated (content + sidecar moved to a
//! fresh page, index slot swung, mappings re-pointed) and then taken out
//! of circulation. The allocator's conservation ledger becomes
//! `free + cached + retired`. Retirement is volatile bookkeeping — a real
//! system persists a bad-block table; here a reboot re-learns faults from
//! fresh observations.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use trio_layout::{
    superblock::SUPERBLOCK_PAGE, superblock_replica_page, walk_file, CoreFileType, IndexPageRef,
    SbHealth, SuperblockRef,
};
use trio_nvm::{ActorId, PageId, RegistryLockSite, CACHE_LINE, KERNEL_ACTOR};
use trio_sim::sync::SimMutex;
use trio_sim::{in_sim, now, Nanos};
use trio_verifier::PageProvenance;

use crate::KernelController;

/// Log-2 latency histogram size (same bucketing as `trio_nvm::PathStats`).
const HIST_BUCKETS: usize = 24;

fn now_or_zero() -> Nanos {
    if in_sim() {
        now()
    } else {
        0
    }
}

fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

fn bucket_midpoint_ns(i: usize) -> u64 {
    // Geometric midpoint of [2^i, 2^(i+1)).
    let lo = 1u64 << i;
    lo + lo / 2
}

/// One shard's registered journal mirror pair: the pages, their owner,
/// the shard lock shared with the LibFS (mutual exclusion against
/// arm/disarm), and the format knowledge the kernel borrows — a raw-image
/// body validator plus the number of leading lines the record occupies
/// (poison beyond them is dead bytes, not data loss).
#[derive(Clone)]
pub(crate) struct JournalTwin {
    pub(crate) actor: ActorId,
    pub(crate) primary: PageId,
    pub(crate) mirror: PageId,
    pub(crate) valid: fn(&[u8]) -> bool,
    pub(crate) used_lines: u16,
    pub(crate) slot: Arc<SimMutex<Option<(PageId, PageId)>>>,
}

/// Retirement bookkeeping (volatile; see module docs).
#[derive(Default)]
pub(crate) struct RetireState {
    /// Pages taken out of circulation for good.
    pub(crate) retired: HashSet<u64>,
    /// Pages past the fault threshold whose retirement waits for them to
    /// leave their current owner (diverted on the next free).
    pub(crate) pending: HashSet<u64>,
    /// Cumulative media-fault observations per page.
    pub(crate) fault_counts: HashMap<u64, u32>,
}

/// What one [`KernelController::scrub_pass`] found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages probed this pass.
    pub scanned: u64,
    /// Poisoned lines observed (before repair).
    pub poison_lines: u64,
    /// Pages whose sidecar checksum no longer matched.
    pub rot_pages: u64,
    /// Superblock twin repairs (either copy rewritten or resynced).
    pub sb_repairs: u64,
    /// Journal twin copies rewritten from their healthy sibling.
    pub journal_repairs: u64,
    /// Files routed through verification (rollback on rejection).
    pub files_routed: u64,
    /// Free-pool pages durably scrubbed clean.
    pub pool_scrubs: u64,
    /// Provably-wrong pages fenced off (every line marked unreadable).
    pub fenced_off: u64,
    /// Pages migrated to a fresh frame before retirement.
    pub migrated: u64,
    /// Pages retired this pass.
    pub retired: u64,
    /// Faults with no healthy source left (both twins dead).
    pub unrecoverable: u64,
}

impl ScrubReport {
    /// Total media faults observed (poisoned lines + rotted pages).
    pub fn faults(&self) -> u64 {
        self.poison_lines + self.rot_pages
    }
}

/// Media-fault counters (DESIGN.md §19), the media companion to
/// [`trio_nvm::PathStats`]: lifetime scrub/repair totals plus a log-2
/// histogram of repair latencies. All relaxed atomics — the scrubber must
/// never impose ordering on the data path.
#[derive(Default)]
pub struct MediaStats {
    scrub_passes: AtomicU64,
    pages_scanned: AtomicU64,
    poison_lines_found: AtomicU64,
    rot_pages_found: AtomicU64,
    sb_repairs: AtomicU64,
    journal_repairs: AtomicU64,
    files_routed: AtomicU64,
    pool_scrubs: AtomicU64,
    pages_fenced_off: AtomicU64,
    pages_migrated: AtomicU64,
    pages_retired: AtomicU64,
    unrecoverable: AtomicU64,
    repair_hist: [AtomicU64; HIST_BUCKETS],
}

impl MediaStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_pass(&self, scanned: u64) {
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        self.pages_scanned.fetch_add(scanned, Ordering::Relaxed);
    }

    pub(crate) fn record_faults(&self, poison_lines: u64, rot_pages: u64) {
        self.poison_lines_found.fetch_add(poison_lines, Ordering::Relaxed);
        self.rot_pages_found.fetch_add(rot_pages, Ordering::Relaxed);
    }

    pub(crate) fn record_repair(&self, counter: &AtomicU64, latency_ns: u64) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.repair_hist[bucket_of(latency_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MediaStatsSnapshot {
        let mut repair_hist = [0u64; HIST_BUCKETS];
        for (o, i) in repair_hist.iter_mut().zip(self.repair_hist.iter()) {
            *o = i.load(Ordering::Relaxed);
        }
        MediaStatsSnapshot {
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            pages_scanned: self.pages_scanned.load(Ordering::Relaxed),
            poison_lines_found: self.poison_lines_found.load(Ordering::Relaxed),
            rot_pages_found: self.rot_pages_found.load(Ordering::Relaxed),
            sb_repairs: self.sb_repairs.load(Ordering::Relaxed),
            journal_repairs: self.journal_repairs.load(Ordering::Relaxed),
            files_routed: self.files_routed.load(Ordering::Relaxed),
            pool_scrubs: self.pool_scrubs.load(Ordering::Relaxed),
            pages_fenced_off: self.pages_fenced_off.load(Ordering::Relaxed),
            pages_migrated: self.pages_migrated.load(Ordering::Relaxed),
            pages_retired: self.pages_retired.load(Ordering::Relaxed),
            unrecoverable: self.unrecoverable.load(Ordering::Relaxed),
            repair_hist,
        }
    }
}

/// Point-in-time [`MediaStats`] values.
#[derive(Clone, Copy, Debug, Default)]
pub struct MediaStatsSnapshot {
    pub scrub_passes: u64,
    pub pages_scanned: u64,
    pub poison_lines_found: u64,
    pub rot_pages_found: u64,
    pub sb_repairs: u64,
    pub journal_repairs: u64,
    pub files_routed: u64,
    pub pool_scrubs: u64,
    pub pages_fenced_off: u64,
    pub pages_migrated: u64,
    pub pages_retired: u64,
    pub unrecoverable: u64,
    pub repair_hist: [u64; HIST_BUCKETS],
}

impl MediaStatsSnapshot {
    /// Total repairs recorded in the latency histogram.
    pub fn repairs(&self) -> u64 {
        self.repair_hist.iter().sum()
    }

    /// Approximate repair-latency percentile (geometric bucket midpoints;
    /// 0 when no repair has been recorded).
    pub fn repair_latency_pct(&self, pct: f64) -> u64 {
        let total = self.repairs();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * pct / 100.0).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.repair_hist.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_midpoint_ns(i);
            }
        }
        bucket_midpoint_ns(HIST_BUCKETS - 1)
    }

    /// Machine-readable form for gate scripts (media-report.json).
    pub fn to_json(&self, extra: &[(&str, String)]) -> String {
        let mut fields: Vec<String> = vec![
            format!("\"scrub_passes\": {}", self.scrub_passes),
            format!("\"pages_scanned\": {}", self.pages_scanned),
            format!("\"poison_lines_found\": {}", self.poison_lines_found),
            format!("\"rot_pages_found\": {}", self.rot_pages_found),
            format!("\"sb_repairs\": {}", self.sb_repairs),
            format!("\"journal_repairs\": {}", self.journal_repairs),
            format!("\"files_routed\": {}", self.files_routed),
            format!("\"pool_scrubs\": {}", self.pool_scrubs),
            format!("\"pages_fenced_off\": {}", self.pages_fenced_off),
            format!("\"pages_migrated\": {}", self.pages_migrated),
            format!("\"pages_retired\": {}", self.pages_retired),
            format!("\"unrecoverable\": {}", self.unrecoverable),
            format!("\"repairs\": {}", self.repairs()),
            format!("\"repair_p50_ns\": {}", self.repair_latency_pct(50.0)),
            format!("\"repair_p99_ns\": {}", self.repair_latency_pct(99.0)),
        ];
        for (k, v) in extra {
            fields.push(format!("\"{k}\": {v}"));
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// Handle to a running patrol daemon; stop it before the simulation runs
/// out of work (a patrol loop never finishes on its own).
pub struct PatrolHandle {
    stop: Arc<AtomicBool>,
    join: Option<trio_sim::JoinHandle>,
}

impl PatrolHandle {
    /// Signals the daemon and joins it (call from inside the simulation).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            j.join();
        }
    }
}

impl KernelController {
    /// One budgeted patrol pass: probes `budget` pages starting at the
    /// persistent cursor (wrapping), repairs what it can, and reports.
    /// Safe to run concurrently with live traffic — every route takes the
    /// same locks the foreground paths do.
    pub fn scrub_pass(&self, budget: usize) -> ScrubReport {
        self.trap();
        let t0 = crate::obs::scrub_pass_begin();
        // Pin the reclamation epoch for the pass: the scrubber's provenance
        // probes race the allocator's epoch GC, and the pin keeps any page
        // the pass observes from being recycled out from under it.
        let _pin = self.gc.pin();
        let total = self.dev.topology().total_pages();
        let budget = (budget.max(1) as u64).min(total);
        let start = self.scrub_cursor.fetch_add(budget, Ordering::Relaxed) % total;
        let mut rep = ScrubReport::default();
        for i in 0..budget {
            self.scrub_one(PageId((start + i) % total), &mut rep);
        }
        rep.scanned = budget;
        self.media.record_pass(budget);
        self.media.record_faults(rep.poison_lines, rep.rot_pages);
        crate::obs::scrub_pass_end(budget, rep.faults(), t0);
        rep
    }

    /// Spawns the patrol daemon: a low-priority sim-thread running
    /// [`KernelController::scrub_pass`] every `interval_ns` of virtual
    /// time (`budget` pages per pass; 0 means the configured
    /// `scrub_budget_pages`). Opt-in — nothing starts it implicitly, so
    /// workloads that never call this carry zero scrub overhead.
    pub fn start_patrol(self: &Arc<Self>, budget: usize, interval_ns: Nanos) -> PatrolHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let me = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let budget = if budget == 0 { self.config.scrub_budget_pages } else { budget };
        let join = trio_sim::spawn("patrol-scrub", move || {
            while !flag.load(Ordering::SeqCst) {
                me.scrub_pass(budget);
                trio_sim::work(interval_ns.max(1));
            }
        });
        PatrolHandle { stop, join: Some(join) }
    }

    /// Lifetime media counters.
    pub fn media_stats(&self) -> &Arc<MediaStats> {
        &self.media
    }

    /// Pages taken out of circulation by retirement. Conservation under
    /// media faults: `free + cached + retired` plus the pages reachable
    /// from files accounts for every page.
    pub fn retired_page_count(&self) -> usize {
        self.retire.lock().retired.len()
    }

    /// Registers a journal mirror pair for patrol twin repair. Both pages
    /// must be pool pages of `actor` (`AllocatedTo`), and stay validated
    /// at repair time too — a hostile re-registration after freeing the
    /// pages cannot aim the repairer at someone else's data. `valid`
    /// judges a raw page image's record body; `used_lines` bounds the
    /// lines the record occupies (poison past them is dead bytes). `slot`
    /// is the shard's own lock, shared so repair excludes arm/disarm.
    pub fn register_journal_twin(
        &self,
        actor: ActorId,
        primary: PageId,
        mirror: PageId,
        valid: fn(&[u8]) -> bool,
        used_lines: u16,
        slot: Arc<SimMutex<Option<(PageId, PageId)>>>,
    ) -> trio_fsapi::FsResult<()> {
        self.trap();
        if primary == mirror {
            return Err(trio_fsapi::FsError::InvalidArgument);
        }
        // Provenance lives in the sharded maps now; no control lock needed.
        for p in [primary, mirror] {
            match self.prov.get(p.0) {
                Some(PageProvenance::AllocatedTo(a)) if a == actor => {}
                _ => return Err(trio_fsapi::FsError::PermissionDenied),
            }
        }
        let twin = JournalTwin { actor, primary, mirror, valid, used_lines, slot };
        let mut twins = self.journal_twins.lock();
        twins.insert(primary.0, twin.clone());
        twins.insert(mirror.0, twin);
        Ok(())
    }

    /// Diverts a page that crossed the retirement threshold out of the
    /// free path: instead of re-entering a pool or cache it is scrubbed
    /// and parked in the retired set. Returns whether it was diverted.
    pub(crate) fn divert_retired(&self, p: PageId) -> bool {
        let mut r = self.retire.lock();
        if !r.pending.remove(&p.0) {
            return false;
        }
        let fresh = r.retired.insert(p.0);
        drop(r);
        let _ = self.dev.reset_page(p);
        if fresh {
            self.media.record_repair(&self.media.pages_retired, 1);
        }
        true
    }

    // -----------------------------------------------------------------
    // One page.
    // -----------------------------------------------------------------

    fn scrub_one(&self, page: PageId, rep: &mut ScrubReport) {
        let total = self.dev.topology().total_pages();
        if page == SUPERBLOCK_PAGE || page == superblock_replica_page(total) {
            self.scrub_superblock(page, rep);
            return;
        }
        if self.retire.lock().retired.contains(&page.0) {
            return;
        }
        let poison = self.dev.page_poisoned_lines(page);
        let rot = matches!(self.dev.page_csum_ok(page), Ok(Some(false)));
        if poison.is_empty() && !rot {
            // A historically flaky page that is clean right now is the
            // ideal retirement candidate — its contents can be moved
            // whole. (While faulty it can only be counted or fenced.)
            let due = {
                let r = self.retire.lock();
                !r.retired.contains(&page.0)
                    && r.fault_counts.get(&page.0).copied().unwrap_or(0)
                        >= self.config.retire_fault_threshold
            };
            if due {
                self.try_retire(page, rep);
            }
            return;
        }
        rep.poison_lines += poison.len() as u64;
        if rot {
            rep.rot_pages += 1;
        }
        let twin = self.journal_twins.lock().get(&page.0).cloned();
        if let Some(t) = twin {
            self.repair_journal_twin(&t, rep);
            self.note_page_fault(page, rep);
            return;
        }
        let prov = self.prov.get(page.0);
        match prov {
            Some(PageProvenance::InFile(ino)) => self.repair_file_page(page, ino, rep),
            Some(PageProvenance::AllocatedTo(_)) | Some(PageProvenance::Kernel) => {
                // A LibFS pool page may hold live, not-yet-verified file
                // data; the kernel must neither read nor rewrite it. The
                // owner sees poison as a typed error already; retirement
                // picks the page up when it next flows through a free
                // path. Rot is the exception: a valid sidecar proving the
                // bytes wrong would otherwise keep serving silently, so
                // fence the page off — loud beats wrong.
                if rot && self.dev.fence_off_page(page) > 0 {
                    rep.fenced_off += 1;
                    self.media.pages_fenced_off.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(PageProvenance::Free) | None => {
                let t0 = crate::obs::repair_begin(page.0);
                let t = now_or_zero();
                if self.dev.reset_page(page).is_ok() {
                    rep.pool_scrubs += 1;
                    self.media
                        .record_repair(&self.media.pool_scrubs, now_or_zero().saturating_sub(t));
                }
                crate::obs::repair_end(page.0, 3, t0);
            }
        }
        self.note_page_fault(page, rep);
    }

    /// Superblock health: twin repair under the kernel's superblock write
    /// lock, plus durable zero-rewrites of poisoned lines outside the
    /// sealed record (line 0) — those bytes are dead, only the poison
    /// bookkeeping matters.
    fn scrub_superblock(&self, page: PageId, rep: &mut ScrubReport) {
        let poison = self.dev.page_poisoned_lines(page);
        let t = now_or_zero();
        let health = {
            let _g = self.sb_lock.lock();
            SuperblockRef::new(&self.kh).scrub()
        };
        let repaired = !matches!(health, Ok(SbHealth::Clean));
        if poison.is_empty() && !repaired {
            return;
        }
        let t0 = crate::obs::repair_begin(page.0);
        rep.poison_lines += poison.len() as u64;
        match health {
            Ok(SbHealth::Clean) => {}
            Ok(SbHealth::Degraded) | Err(_) => {
                // Neither copy validates (double fault): nothing to heal
                // from.
                rep.unrecoverable += 1;
                self.media.unrecoverable.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {
                rep.sb_repairs += 1;
                self.media.record_repair(&self.media.sb_repairs, now_or_zero().saturating_sub(t));
            }
        }
        for line in poison {
            if line == 0 {
                continue; // The record line: `scrub()` above owns it.
            }
            let z = [0u8; CACHE_LINE];
            if let Ok(d) = self.kh.write_dirty(page, line as usize * CACHE_LINE, &z) {
                let _durable = self.kh.persist_dirty(d);
            }
        }
        crate::obs::repair_end(page.0, 0, t0);
    }

    /// Twin repair of a registered journal pair. The shard lock is
    /// `try_lock`ed: if a rename holds it the record is armed in-flight
    /// and crash recovery's `recover_pairs` owns that case; the scrubber
    /// simply comes back next pass.
    fn repair_journal_twin(&self, t: &JournalTwin, rep: &mut ScrubReport) {
        let Some(slot) = t.slot.try_lock() else {
            return;
        };
        if *slot != Some((t.primary, t.mirror)) {
            return;
        }
        // Re-validate provenance at repair time (see registration).
        for p in [t.primary, t.mirror] {
            match self.prov.get(p.0) {
                Some(PageProvenance::AllocatedTo(a)) if a == t.actor => {}
                _ => return,
            }
        }
        let (Ok(praw), Ok(mraw)) =
            (self.dev.snapshot_page(t.primary), self.dev.snapshot_page(t.mirror))
        else {
            return;
        };
        let p_pois = self.dev.page_poisoned_lines(t.primary);
        let m_pois = self.dev.page_poisoned_lines(t.mirror);
        let p_lost = p_pois.iter().any(|l| *l < t.used_lines);
        let m_lost = m_pois.iter().any(|l| *l < t.used_lines);
        let pok = !p_lost && (t.valid)(&praw);
        let mok = !m_lost && (t.valid)(&mraw);
        let t0 = crate::obs::repair_begin(t.primary.0);
        let tns = now_or_zero();
        let mut fixed = 0u64;
        match (pok, mok) {
            (true, _) => {
                // Primary is the healthy source (primary wins on a valid
                // divergence, matching the superblock's rule).
                if (!mok || !m_pois.is_empty() || praw != mraw)
                    && self.dev.restore_page(t.mirror, &praw).is_ok()
                {
                    fixed += 1;
                }
                if !p_pois.is_empty() && self.dev.restore_page(t.primary, &praw).is_ok() {
                    // Poison past the record: a self-rewrite of dead bytes.
                    fixed += 1;
                }
            }
            (false, true) => {
                if self.dev.restore_page(t.primary, &mraw).is_ok() {
                    fixed += 1;
                }
                if !m_pois.is_empty() && self.dev.restore_page(t.mirror, &mraw).is_ok() {
                    fixed += 1;
                }
            }
            (false, false) => {
                rep.unrecoverable += 1;
                self.media.unrecoverable.fetch_add(1, Ordering::Relaxed);
            }
        }
        if fixed > 0 {
            rep.journal_repairs += fixed;
            for _ in 0..fixed {
                self.media
                    .record_repair(&self.media.journal_repairs, now_or_zero().saturating_sub(tns));
            }
        }
        crate::obs::repair_end(t.primary.0, 1, t0);
    }

    /// A faulty page inside a verified file: force the file back through
    /// verification attributed to the kernel (so no innocent LibFS is
    /// quarantined). Rejection rolls the file back to its checkpoint,
    /// whose `restore_page` rewrites repair the media. Rot that survives
    /// (regular-file data has no checkpoint image) is fenced off so reads
    /// fail loudly instead of returning wrong bytes.
    fn repair_file_page(&self, page: PageId, ino: trio_layout::Ino, rep: &mut ScrubReport) {
        let t0 = crate::obs::repair_begin(page.0);
        let tns = now_or_zero();
        {
            let mut reg = self.reg_lock(RegistryLockSite::Scrub);
            if self.prov.get(page.0) == Some(PageProvenance::InFile(ino)) {
                if let Some(meta) = reg.files.get_mut(&ino) {
                    if meta.dirty_by.is_none() {
                        meta.dirty_by = Some(KERNEL_ACTOR);
                    }
                }
                let _clean = self.verify_file_locked(&mut reg, ino);
                rep.files_routed += 1;
                self.media
                    .record_repair(&self.media.files_routed, now_or_zero().saturating_sub(tns));
            }
        }
        if matches!(self.dev.page_csum_ok(page), Ok(Some(false)))
            && self.prov.get(page.0) == Some(PageProvenance::InFile(ino))
            && self.dev.fence_off_page(page) > 0
        {
            rep.fenced_off += 1;
            self.media.pages_fenced_off.fetch_add(1, Ordering::Relaxed);
        }
        crate::obs::repair_end(page.0, 2, t0);
    }

    // -----------------------------------------------------------------
    // Retirement.
    // -----------------------------------------------------------------

    /// Charges one fault observation against `page`; at the threshold the
    /// page is retired — straight out of the free pool, by migration for
    /// a clean regular-file data page, or pending (diverted on free) for
    /// everything the kernel cannot move.
    fn note_page_fault(&self, page: PageId, rep: &mut ScrubReport) {
        let count = {
            let mut r = self.retire.lock();
            let c = r.fault_counts.entry(page.0).or_insert(0);
            *c = c.saturating_add(1);
            *c
        };
        if count < self.config.retire_fault_threshold {
            return;
        }
        self.try_retire(page, rep);
    }

    /// Attempts to take a page past the fault threshold out of
    /// circulation: straight from the free pool, by migration for a clean
    /// regular-file data page, or pending (diverted on free) otherwise.
    fn try_retire(&self, page: PageId, rep: &mut ScrubReport) {
        // Never retire the superblock twins or a registered journal page:
        // their replication already tolerates the faults, and their
        // locations are architectural.
        if self.journal_twins.lock().contains_key(&page.0) {
            return;
        }
        {
            let r = self.retire.lock();
            if r.retired.contains(&page.0) {
                return;
            }
            drop(r);
            // Free-pool page: pull it straight out.
            let topo = self.dev.topology();
            let mut pool = self.pools[topo.node_of(page)].lock();
            if let Some(pos) = pool.iter().position(|p| *p == page) {
                pool.remove(pos);
                drop(pool);
                let _ = self.dev.reset_page(page);
                self.retire.lock().retired.insert(page.0);
                rep.retired += 1;
                self.media.record_repair(&self.media.pages_retired, 1);
                return;
            }
        }
        if self.try_migrate_file_page(page, rep) {
            return;
        }
        self.retire.lock().pending.insert(page.0);
    }

    /// Migrates a clean regular-file data page to a fresh frame: contents
    /// and integrity sidecar move, the owning index slot swings to the new
    /// page, the checkpoint image of the touched index page is refreshed,
    /// and the old frame is retired. Only *quiescent* pages move — a LibFS
    /// caches page locations in its auxiliary state, so migrating under a
    /// live mapping would strand the client on the dead frame; mapped
    /// pages stay pending and are diverted on their next free/release.
    fn try_migrate_file_page(&self, old: PageId, rep: &mut ScrubReport) -> bool {
        if self.dev.page_has_poison(old) {
            return false; // Lines are lost; there is nothing good to move.
        }
        let topo = self.dev.topology();
        let mut reg = self.reg_lock(RegistryLockSite::Scrub);
        let Some(PageProvenance::InFile(ino)) = self.prov.get(old.0) else {
            return false;
        };
        let Some(meta) = reg.files.get(&ino) else {
            return false;
        };
        if meta.ftype != CoreFileType::Regular {
            return false; // Directory pages are checkpoint-covered; divert on free.
        }
        if meta.mapped_pages.values().any(|held| held.contains(&old)) {
            return false; // Live mapping: the owner's cached location must stay valid.
        }
        let dirent = meta.dirent;
        let Ok(first_index) = self.current_first_index(ino, dirent) else {
            return false;
        };
        let Ok(pages) = walk_file(&self.kh, first_index, self.config.max_index_pages) else {
            return false;
        };
        if !pages.data_pages.iter().flatten().any(|p| *p == old) {
            return false;
        }
        // A fresh frame, same node preferred.
        let mut fresh = None;
        for i in 0..self.pools.len() {
            let ni = (topo.node_of(old) + i) % self.pools.len();
            if let Some(p) = self.pools[ni].lock().pop() {
                fresh = Some(p);
                break;
            }
        }
        let Some(fresh) = fresh else {
            return false; // Device full: keep serving from the flaky frame.
        };
        if self.dev.migrate_page(old, fresh).is_err() {
            self.pools[topo.node_of(fresh)].lock().push(fresh);
            return false;
        }
        // Swing the owning index slot.
        let mut swung = false;
        'chain: for ipage in &pages.index_pages {
            let ipr = IndexPageRef::new(&self.kh, *ipage);
            let Ok((entries, _)) = ipr.load_all() else {
                continue;
            };
            for (i, e) in entries.iter().enumerate() {
                if *e == old.0 {
                    if ipr.set_entry(i, fresh.0).is_ok() {
                        swung = true;
                        // The checkpoint's image of this index page still
                        // points at the retired frame; refresh it so a
                        // later rollback restores the migrated chain.
                        if let Some(m) = reg.files.get_mut(&ino) {
                            if let Some(ck) = m.checkpoint.as_mut() {
                                if let Some(slot) =
                                    ck.images.iter_mut().find(|(p, _)| *p == *ipage)
                                {
                                    if let Ok(img) = self.dev.snapshot_page(*ipage) {
                                        slot.1 = img;
                                    }
                                }
                            }
                        }
                    }
                    break 'chain;
                }
            }
        }
        if !swung {
            let _ = self.dev.reset_page(fresh);
            self.pools[topo.node_of(fresh)].lock().push(fresh);
            return false;
        }
        // Provenance and verified pages follow the move; no live mapping
        // holds the old frame (checked above), so no MMU surgery is needed.
        self.prov.remove(old.0);
        self.prov.insert(fresh.0, PageProvenance::InFile(ino));
        if let Some(meta) = reg.files.get_mut(&ino) {
            for slot in meta.verified_pages.data_pages.iter_mut() {
                if *slot == Some(old) {
                    *slot = Some(fresh);
                }
            }
        }
        drop(reg);
        let _ = self.dev.reset_page(old);
        {
            let mut r = self.retire.lock();
            r.pending.remove(&old.0);
            r.retired.insert(old.0);
        }
        rep.migrated += 1;
        rep.retired += 1;
        self.media.record_repair(&self.media.pages_migrated, 1);
        self.media.record_repair(&self.media.pages_retired, 1);
        crate::obs::repair_end(old.0, 4, crate::obs::repair_begin(old.0));
        true
    }
}
