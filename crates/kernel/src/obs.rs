//! Feature shim over `trio-obs` (DESIGN.md §15).
//!
//! The kernel's delegation path calls these hooks unconditionally; with
//! the `obs` feature off they compile to empty inline bodies, so the hot
//! path carries no `trio_obs` symbols at all (the `obs-gate` xtask lint
//! keeps `trio_obs` references confined to this file).

#[cfg(feature = "obs")]
mod real {
    use trio_obs::{event, record_latency, trigger_dump, OpKind, Phase, Stage, Trigger};

    #[inline]
    fn kind(write: bool) -> OpKind {
        if write {
            OpKind::Write
        } else {
            OpKind::Read
        }
    }

    /// Op id of the span currently open on this (sim) thread, stamped
    /// into `DelegReq`s so workers attribute their events to the op.
    #[inline]
    pub(crate) fn current_op() -> u64 {
        trio_obs::current_op()
    }

    /// A node-batch entered its delegation ring (`aux` = run count).
    #[inline]
    pub(crate) fn ring_submit(op: u64, write: bool, node: usize, actor: u32, runs: u64) {
        event(op, kind(write), Stage::RingHop, Phase::Open, actor as u64, node as u32, runs);
    }

    /// The client received the reply for a node-batch.
    #[inline]
    pub(crate) fn ring_reply(op: u64, write: bool, node: usize, actor: u32, hop_ns: u64) {
        event(op, kind(write), Stage::RingHop, Phase::Close, actor as u64, node as u32, hop_ns);
        record_latency(kind(write), Stage::RingHop, hop_ns);
    }

    /// A delegation worker dequeued a request; returns the service start
    /// time for the matching [`worker_end`].
    #[inline]
    pub(crate) fn worker_begin(op: u64, write: bool, node: usize, actor: u32) -> u64 {
        event(op, kind(write), Stage::WorkerService, Phase::Open, actor as u64, node as u32, 0);
        trio_obs::now_ns()
    }

    /// The worker sent its reply.
    #[inline]
    pub(crate) fn worker_end(op: u64, write: bool, node: usize, actor: u32, t0: u64) {
        let ns = trio_obs::now_ns().saturating_sub(t0);
        event(op, kind(write), Stage::WorkerService, Phase::Close, actor as u64, node as u32, ns);
        record_latency(kind(write), Stage::WorkerService, ns);
    }

    /// The worker is about to touch NVM extents; returns the transfer
    /// start time for the matching [`transfer_end`].
    #[inline]
    pub(crate) fn transfer_begin() -> u64 {
        trio_obs::now_ns()
    }

    /// The worker finished its NVM extent accesses (`runs` = run count).
    #[inline]
    pub(crate) fn transfer_end(op: u64, write: bool, node: usize, actor: u32, runs: u64, t0: u64) {
        let ns = trio_obs::now_ns().saturating_sub(t0);
        event(op, kind(write), Stage::NumaTransfer, Phase::Open, actor as u64, node as u32, runs);
        event(op, kind(write), Stage::NumaTransfer, Phase::Close, actor as u64, node as u32, ns);
        record_latency(kind(write), Stage::NumaTransfer, ns);
    }

    /// A whole delegated op missed its deadline budget.
    #[inline]
    pub(crate) fn timeout_dump() {
        trigger_dump(Trigger::DelegationTimeout);
    }

    /// The mapping path detected an integrity violation on `ino`.
    #[inline]
    pub(crate) fn violation_dump(ino: u64) {
        event(
            trio_obs::current_op(),
            OpKind::Verify,
            Stage::VerifierWalk,
            Phase::Close,
            0,
            u32::MAX,
            ino,
        );
        trigger_dump(Trigger::Violation);
    }

    /// A LibFS instance entered quarantine.
    #[inline]
    pub(crate) fn quarantine_dump(actor: u32) {
        event(
            trio_obs::current_op(),
            OpKind::Verify,
            Stage::VerifierWalk,
            Phase::Close,
            actor as u64,
            u32::MAX,
            0,
        );
        trigger_dump(Trigger::QuarantineEntry);
    }

    /// A bounded op is entering retry `attempt` (1-based) with a backoff
    /// window of `window_ns`.
    #[inline]
    pub(crate) fn retry_decision(op: u64, write: bool, attempt: u32, window_ns: u64) {
        event(op, kind(write), Stage::Retry, Phase::Open, attempt as u64, u32::MAX, window_ns);
    }

    /// The lease-wait path is backing off for `window_ns` before
    /// re-checking the lease (`attempt` 0-based).
    #[inline]
    pub(crate) fn lease_retry(attempt: u32, window_ns: u64) {
        event(
            trio_obs::current_op(),
            OpKind::Harness,
            Stage::Retry,
            Phase::Open,
            attempt as u64,
            u32::MAX,
            window_ns,
        );
    }

    /// The watchdog reaped a dead delegation worker.
    #[inline]
    pub(crate) fn worker_death(node: usize, worker: u64) {
        event(0, OpKind::Harness, Stage::Failover, Phase::Open, worker, node as u32, 0);
    }

    /// The watchdog respawned a dead worker `recovery_ns` after its death.
    #[inline]
    pub(crate) fn worker_restart(node: usize, worker: u64, recovery_ns: u64) {
        event(0, OpKind::Harness, Stage::Failover, Phase::Close, worker, node as u32, recovery_ns);
        record_latency(OpKind::Harness, Stage::Failover, recovery_ns);
    }

    /// A dead worker's orphaned request was re-dispatched to a live ring.
    #[inline]
    pub(crate) fn redispatch(node: usize, worker: u64) {
        event(0, OpKind::Harness, Stage::Retry, Phase::Close, worker, node as u32, 0);
    }

    /// The pool entered degraded mode after `failures` consecutive
    /// failures. Distinguished from worker deaths by `actor == u64::MAX`.
    #[inline]
    pub(crate) fn degraded_enter(failures: u64) {
        event(0, OpKind::Harness, Stage::Failover, Phase::Open, u64::MAX, u32::MAX, failures);
    }

    /// The pool left degraded mode.
    #[inline]
    pub(crate) fn degraded_exit() {
        event(0, OpKind::Harness, Stage::Failover, Phase::Close, u64::MAX, u32::MAX, 0);
    }

    /// A patrol-scrub pass started; returns its start time for the
    /// matching [`scrub_pass_end`].
    #[inline]
    pub(crate) fn scrub_pass_begin() -> u64 {
        event(0, OpKind::Verify, Stage::Scrub, Phase::Open, 0, u32::MAX, 0);
        trio_obs::now_ns()
    }

    /// The pass finished after scanning `pages`, finding `faults` media
    /// faults (poisoned lines + rotted pages).
    #[inline]
    pub(crate) fn scrub_pass_end(pages: u64, faults: u64, t0: u64) {
        let ns = trio_obs::now_ns().saturating_sub(t0);
        event(0, OpKind::Verify, Stage::Scrub, Phase::Close, faults, u32::MAX, pages);
        record_latency(OpKind::Verify, Stage::Scrub, ns);
    }

    /// A media repair started on `page`; returns the start time for the
    /// matching [`repair_end`].
    #[inline]
    pub(crate) fn repair_begin(page: u64) -> u64 {
        event(0, OpKind::Verify, Stage::Repair, Phase::Open, page, u32::MAX, 0);
        trio_obs::now_ns()
    }

    /// The repair on `page` completed (`route` encodes the repair route:
    /// 0 superblock twin, 1 journal twin, 2 file rollback, 3 scrub/reset,
    /// 4 migration).
    #[inline]
    pub(crate) fn repair_end(page: u64, route: u64, t0: u64) {
        let ns = trio_obs::now_ns().saturating_sub(t0);
        event(0, OpKind::Verify, Stage::Repair, Phase::Close, page, u32::MAX, route);
        record_latency(OpKind::Verify, Stage::Repair, ns);
    }
}

#[cfg(feature = "obs")]
pub(crate) use real::*;

#[cfg(not(feature = "obs"))]
mod noop {
    #[inline(always)]
    pub(crate) fn current_op() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn ring_submit(_op: u64, _write: bool, _node: usize, _actor: u32, _runs: u64) {}

    #[inline(always)]
    pub(crate) fn ring_reply(_op: u64, _write: bool, _node: usize, _actor: u32, _hop_ns: u64) {}

    #[inline(always)]
    pub(crate) fn worker_begin(_op: u64, _write: bool, _node: usize, _actor: u32) -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn worker_end(_op: u64, _write: bool, _node: usize, _actor: u32, _t0: u64) {}

    #[inline(always)]
    pub(crate) fn transfer_begin() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn transfer_end(
        _op: u64,
        _write: bool,
        _node: usize,
        _actor: u32,
        _runs: u64,
        _t0: u64,
    ) {
    }

    #[inline(always)]
    pub(crate) fn timeout_dump() {}

    #[inline(always)]
    pub(crate) fn violation_dump(_ino: u64) {}

    #[inline(always)]
    pub(crate) fn quarantine_dump(_actor: u32) {}

    #[inline(always)]
    pub(crate) fn retry_decision(_op: u64, _write: bool, _attempt: u32, _window_ns: u64) {}

    #[inline(always)]
    pub(crate) fn lease_retry(_attempt: u32, _window_ns: u64) {}

    #[inline(always)]
    pub(crate) fn worker_death(_node: usize, _worker: u64) {}

    #[inline(always)]
    pub(crate) fn worker_restart(_node: usize, _worker: u64, _recovery_ns: u64) {}

    #[inline(always)]
    pub(crate) fn redispatch(_node: usize, _worker: u64) {}

    #[inline(always)]
    pub(crate) fn degraded_enter(_failures: u64) {}

    #[inline(always)]
    pub(crate) fn degraded_exit() {}

    #[inline(always)]
    pub(crate) fn scrub_pass_begin() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn scrub_pass_end(_pages: u64, _faults: u64, _t0: u64) {}

    #[inline(always)]
    pub(crate) fn repair_begin(_page: u64) -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn repair_end(_page: u64, _route: u64, _t0: u64) {}
}

#[cfg(not(feature = "obs"))]
pub(crate) use noop::*;
