//! Sharded, epoch-reclaimed control-plane structures (DESIGN.md §20).
//!
//! The kernel's provenance books used to live inside the single
//! `SimMutex<Registry>`, so every allocator refill batch, free, truncate
//! and patrol-scrub probe serialized on one global lock — 642 hot-path
//! acquisitions in `BENCH_datapath.json` before this module existed.
//! Three structures replace that:
//!
//! * [`ShardedMap`] — a fixed-fanout sharded hash map for page and ino
//!   provenance. Shards are [`SimMutex`]es, so every access is visible to
//!   the deterministic scheduler *and* the vector-clock race detector
//!   (the lock hand-off is the happens-before edge between the thread
//!   that frees a page and the thread that later reuses it). Keys are
//!   grouped in runs of consecutive ids per shard, so a batched refill
//!   (consecutive page ids) or a mount's ino grant touches one or two
//!   shard locks, not one per key.
//! * [`EpochGc`] — epoch-based reclamation for freed pages. Readers that
//!   walk provenance outside the registry control lock (verifier walks,
//!   fsck, the patrol scrubber) hold an [`EpochPin`]; pages freed while
//!   any earlier-epoch pin is live sit in *limbo* — provenance intact,
//!   contents untouched — and only re-enter the allocator once every
//!   such pin has dropped. With no pins live (the steady state) limbo
//!   drains synchronously inside the free call, so the fast path is
//!   byte-for-byte the old behaviour. Limbo is volatile by design:
//!   recovery recomputes the free set from the committed tree, so a
//!   crash with pages in limbo simply recovers them as free.
//! * [`EventRing`] — the bounded drop-oldest replacement for the old
//!   unbounded `Registry::events` vec ("bounded by tests' appetite").
//!   Overflow increments a dropped counter surfaced through
//!   [`trio_nvm::PathStats`]; drain-on-read semantics are preserved.
//!
//! Lock ordering: shard locks and the GC lock are **leaves** under the
//! registry control lock — every method here takes and releases its own
//! locks and never calls back into the controller.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use trio_nvm::{ActorId, PageId};
use trio_sim::plock::Mutex as PlMutex;
use trio_sim::sync::SimMutex;

use crate::registry::KernelEvent;

/// Shard fanout. Power of two; 64 shards keep per-shard occupancy low for
/// hundreds of tenants while the array itself stays cache-resident.
const SHARD_COUNT: usize = 64;

/// Consecutive ids per shard run (`1 << SHARD_RUN_BITS`). Allocator
/// refills hand out consecutive page ids and mounts grant consecutive
/// ino ranges, so a 192-page batch lands on at most two shards.
const SHARD_RUN_BITS: u64 = 8;

/// A sharded `u64 -> V` map with batch operations that take each touched
/// shard lock exactly once.
///
/// Batch operations are **not** atomic across shards: shards are visited
/// in ascending index order and each is locked independently. Call sites
/// that need multi-key atomicity with respect to a writer (verify,
/// rollback, reclaim) hold the registry control lock around their batch,
/// which serializes them against every other control-lock holder — the
/// same discipline the old single-map code had after it dropped the
/// registry between validation and parking.
pub struct ShardedMap<V: Copy> {
    shards: Box<[SimMutex<HashMap<u64, V>>]>,
}

impl<V: Copy> ShardedMap<V> {
    /// An empty map with the default fanout.
    pub fn new() -> Self {
        let shards: Vec<SimMutex<HashMap<u64, V>>> =
            (0..SHARD_COUNT).map(|_| SimMutex::new(HashMap::new())).collect();
        ShardedMap { shards: shards.into_boxed_slice() }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        ((key >> SHARD_RUN_BITS) as usize) & (SHARD_COUNT - 1)
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shards[self.shard_of(key)].lock().get(&key).copied()
    }

    /// Point insert; returns the previous value.
    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        self.shards[self.shard_of(key)].lock().insert(key, value)
    }

    /// Point remove; returns the removed value.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.shards[self.shard_of(key)].lock().remove(&key)
    }

    /// Groups `keys` by shard, preserving input order within each group.
    fn grouped(&self, keys: impl Iterator<Item = u64>) -> Vec<(usize, Vec<u64>)> {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); SHARD_COUNT];
        for k in keys {
            buckets[self.shard_of(k)].push(k);
        }
        buckets.into_iter().enumerate().filter(|(_, b)| !b.is_empty()).collect()
    }

    /// Inserts every `(key, value)` pair, one lock per touched shard.
    pub fn insert_batch(&self, items: impl Iterator<Item = (u64, V)>) {
        let mut buckets: Vec<Vec<(u64, V)>> = vec![Vec::new(); SHARD_COUNT];
        for (k, v) in items {
            buckets[self.shard_of(k)].push((k, v));
        }
        for (i, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut shard = self.shards[i].lock();
            for (k, v) in bucket {
                shard.insert(k, v);
            }
        }
    }

    /// Removes every key, one lock per touched shard.
    pub fn remove_batch(&self, keys: impl Iterator<Item = u64>) {
        for (i, bucket) in self.grouped(keys) {
            let mut shard = self.shards[i].lock();
            for k in bucket {
                shard.remove(&k);
            }
        }
    }

    /// Whether `pred` holds for the current value of every key, touching
    /// each shard once. The check is a read-only probe: like the old
    /// validate-then-park free path, the caller's later mutation is a
    /// separate step.
    pub fn all_match(
        &self,
        keys: impl Iterator<Item = u64>,
        pred: impl Fn(u64, Option<V>) -> bool,
    ) -> bool {
        for (i, bucket) in self.grouped(keys) {
            let shard = self.shards[i].lock();
            for k in bucket {
                if !pred(k, shard.get(&k).copied()) {
                    return false;
                }
            }
        }
        true
    }

    /// Every entry matching `pred`, in ascending key order (deterministic
    /// for iteration-order-sensitive callers like fsck).
    pub fn collect_filter(&self, mut pred: impl FnMut(u64, V) -> bool) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let s = shard.lock();
            out.extend(s.iter().filter(|(k, v)| pred(**k, **v)).map(|(k, v)| (*k, *v)));
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Total entry count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Copy> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A freed page waiting in limbo for the epochs ahead of it to drain.
#[derive(Clone, Copy, Debug)]
pub struct LimboPage {
    /// The frame itself.
    pub page: PageId,
    /// The actor whose allocator cache should receive it on reclaim.
    pub owner: ActorId,
}

struct GcState {
    /// Advances on every deferred batch.
    epoch: u64,
    /// Live pins: pin id -> the epoch observed when the pin was taken.
    pins: HashMap<u64, u64>,
    /// Deferred batches in epoch order.
    limbo: VecDeque<(u64, Vec<LimboPage>)>,
}

/// Epoch-based reclamation for freed pages (DESIGN.md §20).
///
/// The single [`SimMutex`] makes pin/defer/reclaim deterministic and
/// hands the freeing thread's vector clock to whichever thread later
/// resets and reuses the frames.
pub struct EpochGc {
    state: SimMutex<GcState>,
    next_pin: AtomicU64,
    /// Lock-free mirror of the limbo page count, so hot paths can skip
    /// the reclaim call without taking the GC lock. A hint only: the
    /// authoritative state is under `state`.
    limbo_pages: AtomicU64,
}

impl EpochGc {
    /// A fresh GC domain at epoch zero.
    pub fn new() -> Self {
        EpochGc {
            state: SimMutex::new(GcState {
                epoch: 0,
                pins: HashMap::new(),
                limbo: VecDeque::new(),
            }),
            next_pin: AtomicU64::new(1),
            limbo_pages: AtomicU64::new(0),
        }
    }

    /// Whether any pages sit in limbo (relaxed hint; no lock).
    pub fn has_limbo(&self) -> bool {
        self.limbo_pages.load(Ordering::Relaxed) != 0
    }

    /// Pins the current epoch: pages deferred from now on stay in limbo
    /// until the returned guard drops. Readers that walk provenance
    /// outside the registry control lock take one of these so a frame
    /// they may still read cannot be scrubbed and re-granted mid-walk.
    pub fn pin(self: &Arc<Self>) -> EpochPin {
        let id = self.next_pin.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        let epoch = st.epoch;
        st.pins.insert(id, epoch);
        EpochPin { gc: Arc::clone(self), id }
    }

    /// Defers `pages` to limbo at the current epoch and advances it.
    pub fn defer(&self, pages: Vec<LimboPage>) {
        if pages.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        let e = st.epoch;
        self.limbo_pages.fetch_add(pages.len() as u64, Ordering::Relaxed);
        st.limbo.push_back((e, pages));
        st.epoch += 1;
    }

    /// Drains every limbo batch older than the oldest live pin (all of
    /// them when nothing is pinned). The caller owns the returned pages.
    pub fn take_ripe(&self) -> Vec<LimboPage> {
        let mut st = self.state.lock();
        let horizon = st.pins.values().copied().min().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        while st.limbo.front().is_some_and(|(e, _)| *e < horizon) {
            if let Some((_, pages)) = st.limbo.pop_front() {
                out.extend(pages);
            }
        }
        self.limbo_pages.fetch_sub(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Pages currently parked in limbo (tests and the ledger audit).
    pub fn limbo_len(&self) -> usize {
        self.state.lock().limbo.iter().map(|(_, p)| p.len()).sum()
    }

    /// Live pin count.
    pub fn pinned(&self) -> usize {
        self.state.lock().pins.len()
    }

    fn unpin(&self, id: u64) {
        self.state.lock().pins.remove(&id);
    }
}

impl Default for EpochGc {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII epoch pin; dropping it releases the reclamation horizon. The next
/// free/alloc/gc call after the drop sweeps whatever the pin held back.
pub struct EpochPin {
    gc: Arc<EpochGc>,
    id: u64,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.gc.unpin(self.id);
    }
}

/// Bounded drop-oldest event buffer (the fix for the unbounded
/// `Registry::events` vec). Pushes past capacity evict the oldest entry
/// and count it; [`EventRing::drain`] keeps the old drain-on-read
/// semantics for tests.
pub struct EventRing {
    buf: PlMutex<VecDeque<KernelEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

/// Default event capacity: generous for every test drain cadence, small
/// enough that a never-drained production run stays bounded.
pub const EVENT_RING_CAPACITY: usize = 1024;

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing { buf: PlMutex::new(VecDeque::new()), dropped: AtomicU64::new(0), capacity }
    }

    /// Appends an event, evicting the oldest past capacity. Returns true
    /// when an event was dropped (the caller surfaces that in stats).
    pub fn push(&self, ev: KernelEvent) -> bool {
        let mut buf = self.buf.lock();
        let mut dropped = false;
        while buf.len() >= self.capacity {
            buf.pop_front();
            dropped = true;
        }
        buf.push_back(ev);
        if dropped {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// Removes and returns everything buffered, oldest first.
    pub fn drain(&self) -> Vec<KernelEvent> {
        self.buf.lock().drain(..).collect()
    }

    /// Lifetime count of events evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_point_and_batch_ops() {
        let m: ShardedMap<u32> = ShardedMap::new();
        assert!(m.is_empty());
        m.insert(7, 70);
        assert_eq!(m.get(7), Some(70));
        m.insert_batch((0..600).map(|k| (k, k as u32)));
        assert_eq!(m.len(), 600); // key 7 overwritten, not duplicated
        assert!(m.all_match(0..600, |k, v| v == Some(k as u32)));
        assert!(!m.all_match(0..601, |_, v| v.is_some()));
        m.remove_batch(0..300);
        assert_eq!(m.len(), 300);
        let odd = m.collect_filter(|k, _| k % 2 == 1);
        assert_eq!(odd.len(), 150);
        assert!(odd.windows(2).all(|w| w[0].0 < w[1].0), "sorted for determinism");
        assert_eq!(m.remove(301), Some(301));
        assert_eq!(m.get(301), None);
    }

    #[test]
    fn consecutive_keys_share_shards() {
        let m: ShardedMap<u8> = ShardedMap::new();
        // A refill-sized run of consecutive keys touches at most two
        // shard runs — the property that keeps batch ops O(1) locks.
        let shards: std::collections::HashSet<usize> =
            (1000..1192).map(|k| m.shard_of(k)).collect();
        assert!(shards.len() <= 2, "192-key run hit {} shards", shards.len());
    }

    #[test]
    fn epoch_gc_drains_immediately_without_pins() {
        let gc = Arc::new(EpochGc::new());
        gc.defer(vec![LimboPage { page: PageId(9), owner: ActorId(1) }]);
        assert_eq!(gc.limbo_len(), 1);
        let ripe = gc.take_ripe();
        assert_eq!(ripe.len(), 1);
        assert_eq!(ripe[0].page, PageId(9));
        assert_eq!(gc.limbo_len(), 0);
    }

    #[test]
    fn pin_holds_back_reclamation_until_dropped() {
        let gc = Arc::new(EpochGc::new());
        let pin = gc.pin();
        gc.defer(vec![LimboPage { page: PageId(4), owner: ActorId(2) }]);
        assert!(gc.take_ripe().is_empty(), "deferred at >= pinned epoch");
        // Batches deferred before the pin epoch stay conservative too.
        assert_eq!(gc.limbo_len(), 1);
        drop(pin);
        assert_eq!(gc.take_ripe().len(), 1);
    }

    #[test]
    fn older_pin_gates_younger_batches_only() {
        let gc = Arc::new(EpochGc::new());
        gc.defer(vec![LimboPage { page: PageId(1), owner: ActorId(1) }]); // epoch 0
        let pin = gc.pin(); // epoch 1
        gc.defer(vec![LimboPage { page: PageId(2), owner: ActorId(1) }]); // epoch 1
        let ripe = gc.take_ripe();
        assert_eq!(ripe.len(), 1, "pre-pin batch is ripe");
        assert_eq!(ripe[0].page, PageId(1));
        drop(pin);
        assert_eq!(gc.take_ripe().len(), 1);
    }

    #[test]
    fn event_ring_drops_oldest_and_counts() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(KernelEvent::RolledBack { ino: i });
        }
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        assert_eq!(
            drained,
            vec![
                KernelEvent::RolledBack { ino: 2 },
                KernelEvent::RolledBack { ino: 3 },
                KernelEvent::RolledBack { ino: 4 },
            ]
        );
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain does not reset the counter");
    }
}
