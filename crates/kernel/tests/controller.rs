//! End-to-end kernel-controller tests: allocation, the map/release
//! protocol, verification-on-sharing, rollback, leases, and pinning. The
//! "LibFS" here is hand-rolled direct-access code, exactly what a
//! (possibly malicious) LibFS could do with its mapped pages.

use std::sync::Arc;

use trio_fsapi::{FsError, Mode};
use trio_kernel::mapping::MapTarget;
use trio_kernel::registry::KernelEvent;
use trio_kernel::{KernelConfig, KernelController, LibFsRegistration};
use trio_layout::{
    CoreFileType, DirentData, DirentLoc, DirentRef, IndexPageRef, ROOT_INO,
};
use trio_nvm::{DeviceConfig, NvmDevice, NvmHandle, PageId};
use trio_sim::{SimRuntime, MILLIS};

fn new_kernel() -> Arc<KernelController> {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    KernelController::format(dev, KernelConfig::default())
}

/// Direct-access creation of one child in a write-mapped empty root:
/// allocate an index page and a data page from the pool, build the dirent,
/// publish, and tell the kernel about the new root chain head.
fn create_in_empty_root(
    k: &KernelController,
    reg: &LibFsRegistration,
    name: &[u8],
    ino: u64,
    ftype: CoreFileType,
) -> (PageId, PageId, DirentLoc) {
    let pages = k.alloc_pages(reg.actor, 2, None).unwrap();
    let (ipage, dpage) = (pages[0], pages[1]);
    let loc = DirentLoc { page: dpage, slot: 0 };
    let d = DirentData::new(name, ftype, Mode::RW, 100, 100);
    let dref = DirentRef::new(&reg.handle, loc);
    let w = dref.prepare(&d).unwrap();
    dref.publish(ino, &w).unwrap();
    IndexPageRef::new(&reg.handle, ipage).set_entry(0, dpage.0).unwrap();
    k.update_root(reg.actor, Some(ipage.0), Some(1), Some(1)).unwrap();
    (ipage, dpage, loc)
}

#[test]
fn alloc_and_free_pages_roundtrip() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let reg = k2.register_libfs(100, 100);
        let before = k2.free_page_count();
        let pages = k2.alloc_pages(reg.actor, 8, None).unwrap();
        assert_eq!(pages.len(), 8);
        // Conservation: pages not handed out are either in the global pool
        // or parked in the actor's allocator cache (refills may stock it).
        assert_eq!(k2.free_page_count() + k2.cached_page_count(), before - 8);
        // Pool pages are immediately writable.
        reg.handle.write_untimed(pages[0], 0, b"mine").unwrap();
        k2.free_pages(reg.actor, &pages).unwrap();
        assert_eq!(k2.free_page_count() + k2.cached_page_count(), before);
        // Freed pages are no longer accessible.
        assert!(reg.handle.write_untimed(pages[0], 0, b"nope").is_err());
    });
    rt.run();
}

#[test]
fn cannot_free_foreign_pages() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        let b = k2.register_libfs(200, 200);
        let pages = k2.alloc_pages(a.actor, 2, None).unwrap();
        assert_eq!(k2.free_pages(b.actor, &pages), Err(FsError::PermissionDenied));
    });
    rt.run();
}

#[test]
fn ino_allocation_is_disjoint() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        let b = k2.register_libfs(200, 200);
        let ia = k2.alloc_inos(a.actor, 10).unwrap();
        let ib = k2.alloc_inos(b.actor, 10).unwrap();
        assert!(ia.iter().all(|i| !ib.contains(i)));
        assert!(ia.iter().all(|i| *i > ROOT_INO));
    });
    rt.run();
}

#[test]
fn map_root_write_then_share_read_verifies_clean_state() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        let g = k2.map(a.actor, MapTarget::Root, true).unwrap();
        assert!(g.pages.index_pages.is_empty());
        let inos = k2.alloc_inos(a.actor, 4).unwrap();
        let (ipage, dpage, _) =
            create_in_empty_root(&k2, &a, b"hello.txt", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();

        // Another LibFS maps root: triggers verification of A's writes.
        let b = k2.register_libfs(100, 100);
        let g = k2.map(b.actor, MapTarget::Root, false).unwrap();
        assert_eq!(g.pages.index_pages, vec![ipage]);
        assert_eq!(g.pages.data_pages, vec![Some(dpage)]);
        // Verification passed: pages now belong to root in the books.
        assert!(k2.pages_of(ROOT_INO).contains(&ipage.0));
        assert!(k2.take_events().is_empty(), "no corruption events for clean state");
        // B can read the dirent A created.
        let d = DirentRef::new(&b.handle, DirentLoc { page: dpage, slot: 0 }).load().unwrap();
        assert_eq!(d.name_str(), Some("hello.txt"));
        assert_eq!(d.ino, inos[0]);
    });
    rt.run();
}

#[test]
fn fabricated_ino_detected_and_rolled_back() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        // Legitimate create first, committed via a clean share.
        let g = k2.map(a.actor, MapTarget::Root, true).unwrap();
        let _ = g;
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (_, dpage, _) =
            create_in_empty_root(&k2, &a, b"good", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();
        let b = k2.register_libfs(100, 100);
        k2.map(b.actor, MapTarget::Root, false).unwrap();
        k2.release(b.actor, ROOT_INO).unwrap();

        // Now A maps root again (checkpoint taken at this grant) and
        // fabricates an entry with an ino the kernel never allocated.
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let loc = DirentLoc { page: dpage, slot: 1 };
        let evil = DirentData::new(b"ghost", CoreFileType::Regular, Mode::RW, 100, 100);
        let r = DirentRef::new(&a.handle, loc);
        let w = r.prepare(&evil).unwrap();
        r.publish(999_999, &w).unwrap();
        k2.update_root(a.actor, None, Some(2), None).unwrap();
        k2.release(a.actor, ROOT_INO).unwrap();

        // B maps: verification fails, kernel rolls back.
        let g = k2.map(b.actor, MapTarget::Root, false).unwrap();
        let events = k2.take_events();
        assert!(events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { ino, .. } if *ino == ROOT_INO)));
        assert!(events.iter().any(|e| matches!(e, KernelEvent::RolledBack { ino } if *ino == ROOT_INO)));
        // The ghost entry is gone; the good entry survives.
        let ghost = DirentRef::new(&b.handle, loc).ino().unwrap();
        assert_eq!(ghost, 0, "rollback erased the fabricated entry");
        let good = DirentRef::new(&b.handle, DirentLoc { page: dpage, slot: 0 }).load().unwrap();
        assert_eq!(good.name_str(), Some("good"));
        let _ = g;
    });
    rt.run();
}

#[test]
fn index_cycle_attack_detected() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (ipage, _, _) = create_in_empty_root(&k2, &a, b"x", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();
        let b = k2.register_libfs(100, 100);
        k2.map(b.actor, MapTarget::Root, false).unwrap();
        k2.release(b.actor, ROOT_INO).unwrap();

        // A creates a cycle in root's index chain.
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        IndexPageRef::new(&a.handle, ipage).set_next(ipage.0).unwrap();
        k2.release(a.actor, ROOT_INO).unwrap();

        k2.map(b.actor, MapTarget::Root, false).unwrap();
        let events = k2.take_events();
        assert!(events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. })));
        // After rollback the chain is walkable again.
        assert_eq!(IndexPageRef::new(&b.handle, ipage).next().unwrap(), 0);
    });
    rt.run();
}

#[test]
fn write_lease_blocks_then_revokes() {
    let rt = SimRuntime::new(1);
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let k = KernelController::format(
        dev,
        KernelConfig { lease_ns: 5 * MILLIS, ..KernelConfig::default() },
    );
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        let b = k2.register_libfs(100, 100);
        let t0 = trio_sim::now();
        k2.map(a.actor, MapTarget::Root, true).unwrap();

        // B must wait out A's 5ms lease.
        let g = k2.map(b.actor, MapTarget::Root, true).unwrap();
        assert!(g.write);
        let waited = trio_sim::now() - t0;
        assert!(waited >= 5 * MILLIS, "waited only {waited}ns");
        let events = k2.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, KernelEvent::LeaseRevoked { ino, actor } if *ino == ROOT_INO && *actor == a.actor)));
        assert_eq!(k2.writer_of(ROOT_INO), Some(b.actor));
    });
    rt.run();
}

#[test]
fn reader_cannot_write_mapped_pages() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (_, dpage, _) = create_in_empty_root(&k2, &a, b"f", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();

        let b = k2.register_libfs(100, 100);
        k2.map(b.actor, MapTarget::Root, false).unwrap();
        // Read mapping: loads fine, stores fault.
        let mut buf = [0u8; 8];
        b.handle.read_untimed(dpage, 0, &mut buf).unwrap();
        assert!(b.handle.write_untimed(dpage, 0, b"overwrt!").is_err());
    });
    rt.run();
}

#[test]
fn permission_denied_for_other_users() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (_, _, loc) = create_in_empty_root(&k2, &a, b"priv", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();

        // Adopt the file's shadow entry via a first map by its owner.
        let g = k2.map(a.actor, MapTarget::Dirent { parent: ROOT_INO, loc }, true).unwrap();
        assert_eq!(g.ino, inos[0]);
        k2.release(a.actor, g.ino).unwrap();

        // Mode 0600 and uid 100: uid-999 actor is refused.
        let c = k2.register_libfs(999, 999);
        k2.map(c.actor, MapTarget::Root, false).unwrap();
        let res = k2.map(c.actor, MapTarget::Dirent { parent: ROOT_INO, loc }, false);
        assert_eq!(res.err(), Some(FsError::PermissionDenied));
    });
    rt.run();
}

#[test]
fn setattr_updates_shadow_and_enforces_ownership() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (_, _, loc) = create_in_empty_root(&k2, &a, b"f", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();
        let g = k2.map(a.actor, MapTarget::Dirent { parent: ROOT_INO, loc }, true).unwrap();
        k2.release(a.actor, g.ino).unwrap();

        // Non-owner chmod fails.
        let b = k2.register_libfs(200, 200);
        let attr = trio_fsapi::SetAttr { mode: Some(Mode(0o666)), ..Default::default() };
        assert_eq!(k2.setattr(b.actor, g.ino, attr), Err(FsError::PermissionDenied));
        // Owner chmod succeeds and lands in the shadow table.
        k2.setattr(a.actor, g.ino, attr).unwrap();
        assert_eq!(k2.shadow_mode(g.ino).unwrap().0, Mode(0o666));
        // Now uid-200 B may map it read (0o666 allows other-read).
        k2.map(b.actor, MapTarget::Root, false).unwrap();
        k2.map(b.actor, MapTarget::Dirent { parent: ROOT_INO, loc }, false).unwrap();
    });
    rt.run();
}

#[test]
fn checkpoint_pins_pages_until_replaced() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let inos = k2.alloc_inos(a.actor, 1).unwrap();
        let (ipage, dpage, _) = create_in_empty_root(&k2, &a, b"f", inos[0], CoreFileType::Regular);
        k2.release(a.actor, ROOT_INO).unwrap();
        let b = k2.register_libfs(100, 100);
        k2.map(b.actor, MapTarget::Root, false).unwrap();
        k2.release(b.actor, ROOT_INO).unwrap();

        // A write-maps root again: checkpoint now covers ipage+dpage.
        k2.map(a.actor, MapTarget::Root, true).unwrap();
        let free_before = k2.free_page_count();
        // A empties the root and frees the pages while holding the grant.
        DirentRef::new(&a.handle, DirentLoc { page: dpage, slot: 0 }).clear().unwrap();
        k2.update_root(a.actor, Some(0), Some(0), None).unwrap();
        k2.reclaim_file(a.actor, ROOT_INO, inos[0], 0).unwrap();
        // Freeing checkpointed pages is deferred (pinned).
        let pages = [ipage, dpage];
        // They are part of root (InFile) so the pool-free path refuses; the
        // root chain shrink frees them through the kernel walk path instead.
        assert_eq!(k2.free_pages(a.actor, &pages), Err(FsError::PermissionDenied));
        let _ = free_before;
        k2.release(a.actor, ROOT_INO).unwrap();
        // B maps: verification passes for the emptied root.
        let g = k2.map(b.actor, MapTarget::Root, false).unwrap();
        assert!(g.pages.index_pages.is_empty());
    });
    rt.run();
}

#[test]
fn root_update_requires_write_grant() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        assert_eq!(k2.update_root(a.actor, Some(3), None, None), Err(FsError::PermissionDenied));
        k2.map(a.actor, MapTarget::Root, false).unwrap();
        assert_eq!(k2.update_root(a.actor, Some(3), None, None), Err(FsError::PermissionDenied));
    });
    rt.run();
}

#[test]
fn delegation_pool_moves_data() {
    let rt = SimRuntime::new(1);
    let dev = Arc::new(NvmDevice::new(DeviceConfig::eight_node(512)));
    let k = KernelController::format(
        dev,
        KernelConfig { delegation_threads_per_node: 2, ..KernelConfig::default() },
    );
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let _workers = k2.delegation().start();
        let a = k2.register_libfs(100, 100);
        // Allocate pages across several nodes.
        let mut pages = Vec::new();
        for node in 0..4 {
            pages.extend(k2.alloc_pages(a.actor, 2, Some(node)).unwrap());
        }
        let data: Vec<u8> = (0..8 * 4096).map(|i| (i % 233) as u8).collect();
        k2.delegation().write_extent(a.actor, &pages, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        k2.delegation().read_extent(a.actor, &pages, 0, &mut back).unwrap();
        assert_eq!(back, data);
        // Permission still enforced through delegation.
        let b = k2.register_libfs(200, 200);
        assert!(k2.delegation().write_extent(b.actor, &pages, 0, &data[..16]).is_err());
        k2.delegation().shutdown();
    });
    rt.run();
}

#[test]
fn unknown_file_map_fails_cleanly() {
    let rt = SimRuntime::new(1);
    let k = new_kernel();
    let k2 = Arc::clone(&k);
    rt.spawn("main", move || {
        let a = k2.register_libfs(100, 100);
        let loc = DirentLoc { page: PageId(50), slot: 0 };
        let res = k2.map(a.actor, MapTarget::Dirent { parent: ROOT_INO, loc }, false);
        assert_eq!(res.err(), Some(FsError::NotFound));
        // A handle without any grant cannot even probe the page.
        let h = NvmHandle::new(Arc::clone(k2.device()), a.actor);
        let mut b = [0u8; 8];
        assert!(h.read_untimed(PageId(50), 0, &mut b).is_err());
    });
    rt.run();
}
