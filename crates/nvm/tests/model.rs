//! Property and scenario tests for the NVM device model: protection is
//! airtight under arbitrary mapping sequences, crash injection never
//! resurrects flushed data, and the bandwidth model behaves sanely over
//! its whole domain.

use std::sync::Arc;

use proptest::prelude::*;
use trio_nvm::{
    ActorId, BandwidthModel, DeviceConfig, NvmDevice, NvmHandle, PageId, PagePerm, Topology,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bandwidth model is monotone in bytes and never returns zero
    /// time; remote access never beats local.
    #[test]
    fn transfer_model_sane(
        bytes in 1usize..(8 << 20),
        k in 1u32..512,
        is_write in any::<bool>(),
    ) {
        let m = BandwidthModel::default();
        let local = m.transfer_ns(bytes, k, is_write, false);
        let remote = m.transfer_ns(bytes, k, is_write, true);
        let bigger = m.transfer_ns(bytes * 2, k, is_write, false);
        prop_assert!(local > 0);
        prop_assert!(remote >= local);
        prop_assert!(bigger >= local);
    }

    /// Arbitrary interleavings of map/unmap/access by two actors never
    /// let an actor read or write a page it does not currently map.
    #[test]
    fn protection_is_airtight(ops in proptest::collection::vec((0u8..6, 0u64..8), 1..60)) {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let actors = [ActorId(1), ActorId(2)];
        let handles: Vec<NvmHandle> =
            actors.iter().map(|a| NvmHandle::new(Arc::clone(&dev), *a)).collect();
        // Model of the MMU state: perms[actor][page].
        let mut perms = [[None::<PagePerm>; 8]; 2];
        for (op, page) in ops {
            let page_id = PageId(page + 1);
            let (who, what) = ((op % 2) as usize, op / 2);
            match what {
                0 => {
                    dev.mmu_map(actors[who], page_id, PagePerm::Read).unwrap();
                    perms[who][page as usize] = Some(PagePerm::Read);
                }
                1 => {
                    dev.mmu_map(actors[who], page_id, PagePerm::Write).unwrap();
                    perms[who][page as usize] = Some(PagePerm::Write);
                }
                _ => {
                    dev.mmu_unmap(actors[who], page_id).unwrap();
                    perms[who][page as usize] = None;
                }
            }
            // After every change, probe both actors on this page.
            for probe in 0..2 {
                let mut buf = [0u8; 8];
                let r_ok = handles[probe].read_untimed(page_id, 0, &mut buf).is_ok();
                let w_ok = handles[probe].write_untimed(page_id, 0, &buf).is_ok();
                let expect = perms[probe][page as usize];
                prop_assert_eq!(r_ok, expect.is_some(), "read perm mismatch");
                prop_assert_eq!(w_ok, expect == Some(PagePerm::Write), "write perm mismatch");
            }
        }
    }

    /// Crash injection: flushed prefixes survive, unflushed suffixes
    /// revert, regardless of the store pattern.
    #[test]
    fn crash_respects_flush_boundary(
        stores in proptest::collection::vec((0usize..60, 1usize..200, any::<u8>()), 1..30),
        flush_upto in 0usize..30,
    ) {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            track_persistence: true,
            ..DeviceConfig::small()
        }));
        let a = ActorId(1);
        dev.mmu_map(a, PageId(1), PagePerm::Write).unwrap();
        let h = NvmHandle::new(Arc::clone(&dev), a);
        // Shadow model of durable contents.
        let mut durable = vec![0u8; 4096];
        let mut volatile = vec![0u8; 4096];
        for (i, (off, len, val)) in stores.iter().enumerate() {
            let off = (*off * 64).min(4096 - *len);
            let data = vec![*val; *len];
            h.write_untimed(PageId(1), off, &data).unwrap();
            volatile[off..off + len].copy_from_slice(&data);
            if i < flush_upto {
                h.flush(PageId(1), off, *len);
                h.fence();
                durable[off..off + len].copy_from_slice(&data);
            } else {
                // An unflushed store may still land on a line that a later
                // flushed store covers; model at line granularity below.
            }
        }
        // Re-derive the durable image: flushing is line-granular, so replay
        // with line effects.
        let mut model = vec![0u8; 4096];
        let mut dirty = [false; 64];
        for (i, (off, len, val)) in stores.iter().enumerate() {
            let off = (*off * 64).min(4096 - *len);
            for b in off..off + *len {
                model[b] = *val;
            }
            let first = off / 64;
            let last = (off + len - 1) / 64;
            if i < flush_upto {
                for l in first..=last {
                    dirty[l] = false;
                }
                // Lines become durable with their *current* contents.
            } else {
                for l in first..=last {
                    dirty[l] = true;
                }
            }
        }
        let _ = (&durable, &volatile);
        dev.crash();
        let mut got = vec![0u8; 4096];
        dev.mmu_map(a, PageId(1), PagePerm::Read).unwrap();
        h.read_untimed(PageId(1), 0, &mut got).unwrap();
        // Every line that was clean at crash time must hold its last
        // written contents; dirty lines must NOT hold any byte newer than
        // their last flush. We assert the stronger, easily-modelled half:
        // clean lines match the full store history.
        for l in 0..64 {
            if !dirty[l] {
                prop_assert_eq!(
                    &got[l * 64..(l + 1) * 64],
                    &model[l * 64..(l + 1) * 64],
                    "clean line {} must survive", l
                );
            }
        }
    }
}

#[test]
fn topology_and_charging_work_on_eight_nodes() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::eight_node(128)));
    assert_eq!(dev.topology().nodes, 8);
    assert_eq!(dev.topology().total_pages(), 8 * 128);
    // Node boundaries are where they should be.
    for n in 0..8 {
        let p = dev.topology().first_page_of(n);
        assert_eq!(dev.topology().node_of(p), n);
    }
}
