//! Property-style tests for the NVM device model, driven by the in-tree
//! deterministic RNG: protection is airtight under arbitrary mapping
//! sequences, crash injection never resurrects flushed data, and the
//! bandwidth model behaves sanely over its whole domain.

use std::sync::Arc;

use trio_nvm::{
    ActorId, BandwidthModel, DeviceConfig, NvmDevice, NvmHandle, PageId, PagePerm,
};
use trio_sim::rng::SimRng;

/// The bandwidth model is monotone in bytes and never returns zero time;
/// remote access never beats local.
#[test]
fn transfer_model_sane() {
    let mut rng = SimRng::seed_from_u64(0xB00C);
    let m = BandwidthModel::default();
    for _ in 0..200 {
        let bytes = 1 + rng.gen_range(8 << 20) as usize;
        let k = 1 + rng.gen_range(511) as u32;
        let is_write = rng.one_in(2);
        let local = m.transfer_ns(bytes, k, is_write, false);
        let remote = m.transfer_ns(bytes, k, is_write, true);
        let bigger = m.transfer_ns(bytes * 2, k, is_write, false);
        assert!(local > 0, "bytes={bytes} k={k} w={is_write}");
        assert!(remote >= local, "bytes={bytes} k={k} w={is_write}");
        assert!(bigger >= local, "bytes={bytes} k={k} w={is_write}");
    }
}

/// Arbitrary interleavings of map/unmap/access by two actors never let an
/// actor read or write a page it does not currently map.
#[test]
fn protection_is_airtight() {
    let mut rng = SimRng::seed_from_u64(0xA1B);
    for case in 0..48 {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let actors = [ActorId(1), ActorId(2)];
        let handles: Vec<NvmHandle> =
            actors.iter().map(|a| NvmHandle::new(Arc::clone(&dev), *a)).collect();
        // Model of the MMU state: perms[actor][page].
        let mut perms = [[None::<PagePerm>; 8]; 2];
        let n_ops = 1 + rng.gen_range(59) as usize;
        for _ in 0..n_ops {
            let (op, page) = (rng.gen_range(6) as u8, rng.gen_range(8));
            let page_id = PageId(page + 1);
            let (who, what) = ((op % 2) as usize, op / 2);
            match what {
                0 => {
                    dev.mmu_map(actors[who], page_id, PagePerm::Read).unwrap();
                    perms[who][page as usize] = Some(PagePerm::Read);
                }
                1 => {
                    dev.mmu_map(actors[who], page_id, PagePerm::Write).unwrap();
                    perms[who][page as usize] = Some(PagePerm::Write);
                }
                _ => {
                    dev.mmu_unmap(actors[who], page_id).unwrap();
                    perms[who][page as usize] = None;
                }
            }
            // After every change, probe both actors on this page.
            for probe in 0..2 {
                let mut buf = [0u8; 8];
                let r_ok = handles[probe].read_untimed(page_id, 0, &mut buf).is_ok();
                let w_ok = handles[probe].write_untimed(page_id, 0, &buf).is_ok();
                let expect = perms[probe][page as usize];
                assert_eq!(r_ok, expect.is_some(), "case {case}: read perm mismatch");
                assert_eq!(
                    w_ok,
                    expect == Some(PagePerm::Write),
                    "case {case}: write perm mismatch"
                );
            }
        }
    }
}

/// Crash injection: flushed prefixes survive, unflushed suffixes revert,
/// regardless of the store pattern.
#[test]
fn crash_respects_flush_boundary() {
    let mut rng = SimRng::seed_from_u64(0xC4A5);
    for case in 0..48 {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            track_persistence: true,
            ..DeviceConfig::small()
        }));
        let a = ActorId(1);
        dev.mmu_map(a, PageId(1), PagePerm::Write).unwrap();
        let h = NvmHandle::new(Arc::clone(&dev), a);
        let n_stores = 1 + rng.gen_range(29) as usize;
        let flush_upto = rng.gen_range(30) as usize;
        let stores: Vec<(usize, usize, u8)> = (0..n_stores)
            .map(|_| {
                (rng.gen_range(60) as usize, 1 + rng.gen_range(199) as usize, rng.next_u64() as u8)
            })
            .collect();
        for (i, (off, len, val)) in stores.iter().enumerate() {
            let off = (*off * 64).min(4096 - *len);
            let data = vec![*val; *len];
            h.write_untimed(PageId(1), off, &data).unwrap();
            if i < flush_upto {
                h.flush(PageId(1), off, *len);
                h.fence();
            }
        }
        // Re-derive the durable image: flushing is line-granular, so replay
        // with line effects.
        let mut model = vec![0u8; 4096];
        let mut dirty = [false; 64];
        for (i, (off, len, val)) in stores.iter().enumerate() {
            let off = (*off * 64).min(4096 - *len);
            for b in model.iter_mut().skip(off).take(*len) {
                *b = *val;
            }
            let first = off / 64;
            let last = (off + len - 1) / 64;
            // Flushed lines become durable with their current contents.
            for d in dirty[first..=last].iter_mut() {
                *d = i >= flush_upto;
            }
        }
        dev.crash();
        let mut got = vec![0u8; 4096];
        dev.mmu_map(a, PageId(1), PagePerm::Read).unwrap();
        h.read_untimed(PageId(1), 0, &mut got).unwrap();
        // Every line that was clean at crash time must hold its last
        // written contents; dirty lines must NOT hold any byte newer than
        // their last flush. We assert the stronger, easily-modelled half:
        // clean lines match the full store history.
        for l in 0..64 {
            if !dirty[l] {
                assert_eq!(
                    &got[l * 64..(l + 1) * 64],
                    &model[l * 64..(l + 1) * 64],
                    "case {case}: clean line {l} must survive"
                );
            }
        }
    }
}

#[test]
fn topology_and_charging_work_on_eight_nodes() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::eight_node(128)));
    assert_eq!(dev.topology().nodes, 8);
    assert_eq!(dev.topology().total_pages(), 8 * 128);
    // Node boundaries are where they should be.
    for n in 0..8 {
        let p = dev.topology().first_page_of(n);
        assert_eq!(dev.topology().node_of(p), n);
    }
}
