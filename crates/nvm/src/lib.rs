//! Emulated byte-addressable non-volatile memory.
//!
//! This crate stands in for the paper's Intel Optane PM testbed (8 NUMA
//! nodes, 6 TiB). It provides exactly the four properties the paper's
//! hardware assumptions require (§2.1):
//!
//! 1. **Unprivileged direct access** — any actor can load/store pages it has
//!    mapped, through [`NvmHandle`]; no trusted code is on the data path.
//! 2. **Enforced protection** — a per-page permission table (the "MMU") is
//!    consulted on every access and can only be programmed through the
//!    privileged interface ([`NvmDevice::mmu_map`]); this is what keeps
//!    malicious LibFSes inside their mapped pages.
//! 3. **Low latency** — modelled: ~300 ns reads, ~100 ns posted writes.
//! 4. **Byte addressability** — accesses are arbitrary `(page, offset, len)`
//!    ranges, plus 8-byte atomic persists for the 16-byte-atomic-update
//!    crash-consistency style of §4.4.
//!
//! On top of those, the crate models the two Optane behaviours the paper's
//! evaluation turns on (§4.5): per-node bandwidth that *collapses under
//! excessive concurrency* (especially for writes) and a penalty for
//! remote-NUMA access — the reasons opportunistic delegation wins — plus
//! optional cache-line-granularity persistence tracking with crash
//! injection for crash-consistency tests.

pub mod checksum;
pub mod device;
pub mod fault;
pub mod handle;
pub mod perf;
pub mod persist;
pub mod prot;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod stats;
pub mod topology;
pub mod typestate;

pub use checksum::SeaHasher;
pub use device::{DeviceConfig, NvmDevice};
pub use fault::{faults_compiled, CrashReport, FaultPlan, WorkerKillPlan, WorkerKillPoint};
#[cfg(feature = "sanitize")]
pub use sanitize::{Hazard, HazardKind, SanitizeReport};
pub use handle::NvmHandle;
pub use perf::BandwidthModel;
pub use stats::{PathStats, PathStatsSnapshot, RegistryLockSite, HIST_BUCKETS};
pub use prot::{ActorId, PagePerm, ProtError, KERNEL_ACTOR};
pub use topology::{NodeId, PageId, Topology, CACHE_LINE, PAGE_SIZE};
pub use typestate::{Dirty, Durable, ExtentProof, Flushed, Span, Spans};
