//! Deterministic fault injection: crash-point plans and crash reports.
//!
//! The crash-consistency story of the paper (§4.4) is only as credible as
//! the crash model behind it. This module defines the *fault plan* — a
//! declarative description of where the device should stop persisting — and
//! the *crash report* returned by [`crate::NvmDevice::crash`], which carries
//! enough information to replay the exact failure deterministically.
//!
//! # Persistence points
//!
//! A **persistence point** is any event that changes what would survive a
//! power loss: every store recorded by the persistence tracker, every
//! explicit cache-line flush, and every fence. Points are numbered from 0
//! in execution order; because the sim runtime is deterministic, point *k*
//! of a run names the same event on every run with the same seed.
//!
//! # Freeze semantics
//!
//! A plan armed with `crash_at = k` does not abort the workload at point
//! *k*. Instead the tracker *freezes*: fences after point *k* no longer
//! retire flushed lines into the durable set, while stores keep recording
//! pre-images. The workload then runs to completion, and a later
//! [`crate::NvmDevice::crash`] reverts every line that was not durable *as
//! of point k*. This yields exactly the media image a power cut at point
//! *k* would have left, without needing to unwind in-flight Rust call
//! stacks. (Durability advances at the **fence**, not the flush — a `clwb`
//! only queues the write-back — so a crash between flush and fence loses
//! the line, exactly as on real hardware.)
//!
//! The hooks are compiled in only under the `faults` cargo feature; release
//! benchmarks build without it and [`faults_compiled`] reports `false`.

use crate::topology::PageId;

/// Whether fault-injection hooks are compiled into this build. The bench
/// crate asserts this is `false` so measured numbers are injection-free.
pub const fn faults_compiled() -> bool {
    cfg!(feature = "faults")
}

/// Declarative crash plan: freeze durability at persistence point `crash_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the persistence point at which durability freezes.
    pub crash_at: u64,
    /// Torn-store mode: if the plan fires exactly at a *data store* point
    /// and that store spans more than one aligned 8-byte word, an aligned
    /// prefix of the store (length drawn from the sim RNG, so replayable
    /// from the seed) reaches media while the tail is lost. Models the
    /// platform's 8-byte-atomicity floor: nothing larger than one word
    /// persists atomically across a power cut.
    pub torn: bool,
}

impl FaultPlan {
    /// Plan a crash at persistence point `k` (0-based, execution order).
    pub fn crash_at_point(k: u64) -> Self {
        FaultPlan { crash_at: k, torn: false }
    }

    /// Same plan, with the torn 8-byte-store mode enabled.
    pub fn with_torn_store(mut self) -> Self {
        self.torn = true;
        self
    }
}

/// Where inside request servicing a delegation worker is killed. The
/// three points bracket the idempotence window: `AfterPop` dies before
/// any byte is applied, `MidPayload` dies with the request partially
/// applied (token not yet recorded), `BeforeReply` dies with everything
/// applied and the idempotence token recorded but the reply unsent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerKillPoint {
    /// Immediately after popping the request off the ring.
    AfterPop = 0,
    /// After applying the first run of a multi-run payload.
    MidPayload = 1,
    /// After full application (and token record), before the reply send.
    BeforeReply = 2,
}

impl WorkerKillPoint {
    /// All kill points, in servicing order — chaos sweeps iterate this.
    pub const ALL: [WorkerKillPoint; 3] =
        [WorkerKillPoint::AfterPop, WorkerKillPoint::MidPayload, WorkerKillPoint::BeforeReply];

    pub fn as_str(self) -> &'static str {
        match self {
            WorkerKillPoint::AfterPop => "after-pop",
            WorkerKillPoint::MidPayload => "mid-payload",
            WorkerKillPoint::BeforeReply => "before-reply",
        }
    }

    /// Inverse of `as u8` (chaos harnesses store the point in an atomic).
    pub fn from_index(i: u8) -> Option<WorkerKillPoint> {
        WorkerKillPoint::ALL.get(i as usize).copied()
    }
}

/// Declarative worker-death plan: kill the delegation worker servicing
/// the `at_request`-th popped request (0-based, counted across all
/// workers in pop order, which is deterministic under the sim) at the
/// given kill point. Consumed by the kernel's delegation pool; lives
/// here because it is part of the fault vocabulary a chaos sweep replays
/// from `(seed, request, point)` alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerKillPlan {
    /// Global pop index of the doomed request.
    pub at_request: u64,
    /// Where inside servicing the worker dies.
    pub point: WorkerKillPoint,
}

impl WorkerKillPlan {
    pub fn kill_at(at_request: u64, point: WorkerKillPoint) -> Self {
        WorkerKillPlan { at_request, point }
    }
}

/// Structured result of [`crate::NvmDevice::crash`]: what the power cut
/// destroyed, and how to replay it. Test harnesses print this on failure so
/// a red run can be reproduced from the `(seed, point)` pair alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// Cache lines reverted to their pre-store images.
    pub lost_lines: usize,
    /// Pages that lost at least one line, ascending, deduplicated.
    pub affected_pages: Vec<PageId>,
    /// Total persistence points observed before the crash.
    pub points_seen: u64,
    /// The plan point at which durability froze, if a plan fired.
    pub crash_point: Option<u64>,
}

impl CrashReport {
    /// Hand-rolled JSON for CI artifacts (the workspace is dependency-free
    /// by policy, so no serde; see [`crate::sanitize`] module docs).
    pub fn to_json(&self) -> String {
        let pages: Vec<String> = self.affected_pages.iter().map(|p| p.0.to_string()).collect();
        format!(
            "{{\"lost_lines\":{},\"affected_pages\":[{}],\"points_seen\":{},\"crash_point\":{}}}",
            self.lost_lines,
            pages.join(","),
            self.points_seen,
            match self.crash_point {
                Some(k) => k.to_string(),
                None => "null".to_string(),
            }
        )
    }
}

impl std::fmt::Display for CrashReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash report: {} cache lines reverted across {} pages",
            self.lost_lines,
            self.affected_pages.len()
        )?;
        if !self.affected_pages.is_empty() {
            let ids: Vec<String> =
                self.affected_pages.iter().map(|p| p.0.to_string()).collect();
            write!(f, " [{}]", ids.join(", "))?;
        }
        write!(f, "; {} persistence points seen", self.points_seen)?;
        match self.crash_point {
            Some(k) => write!(f, "; plan fired at point {k}"),
            None => write!(f, "; no fault plan armed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_is_replayable() {
        let r = CrashReport {
            lost_lines: 3,
            affected_pages: vec![PageId(4), PageId(9)],
            points_seen: 120,
            crash_point: Some(57),
        };
        let s = r.to_string();
        assert!(s.contains("3 cache lines"));
        assert!(s.contains("[4, 9]"));
        assert!(s.contains("point 57"));
    }

    #[test]
    fn plan_constructor() {
        assert_eq!(FaultPlan::crash_at_point(7).crash_at, 7);
        assert!(!FaultPlan::crash_at_point(7).torn);
        assert!(FaultPlan::crash_at_point(7).with_torn_store().torn);
    }

    #[test]
    fn kill_point_round_trips_through_index() {
        for p in WorkerKillPoint::ALL {
            assert_eq!(WorkerKillPoint::from_index(p as u8), Some(p));
        }
        assert_eq!(WorkerKillPoint::from_index(3), None);
        let plan = WorkerKillPlan::kill_at(12, WorkerKillPoint::MidPayload);
        assert_eq!(plan.at_request, 12);
        assert_eq!(plan.point.as_str(), "mid-payload");
    }

    #[test]
    fn report_json_shape() {
        let r = CrashReport {
            lost_lines: 2,
            affected_pages: vec![PageId(4), PageId(9)],
            points_seen: 120,
            crash_point: Some(57),
        };
        assert_eq!(
            r.to_json(),
            "{\"lost_lines\":2,\"affected_pages\":[4,9],\"points_seen\":120,\"crash_point\":57}"
        );
        let none = CrashReport {
            lost_lines: 0,
            affected_pages: Vec::new(),
            points_seen: 0,
            crash_point: None,
        };
        assert!(none.to_json().ends_with("\"crash_point\":null}"));
    }
}
