//! Streaming data checksum for the delegated write path (DESIGN.md §17).
//!
//! A seahash-style construction: four 64-bit lanes absorb the input in
//! 8-byte words round-robin, each absorption followed by a multiply/xor
//! diffusion, and finalization folds the lanes plus the total length into
//! one 64-bit digest. The point is not cryptographic strength — a LibFS
//! that can forge checksums can already write the data pages — but cheap,
//! strong-enough corruption detection that a delegation worker can fold
//! into the single pass it already makes over the payload, so recording
//! per-page integrity costs no extra traversal (the verifier recomputes
//! and compares during its walk).
//!
//! Hand-rolled because the workspace is dependency-free; the construction
//! follows the published seahash design (ticki, 2016) without copying its
//! implementation.

/// Lane seeds (the seahash paper's defaults; any fixed odd constants work,
/// but using published ones makes the digest comparable across builds).
const SEED: [u64; 4] = [
    0x16f1_1fe8_9b0d_677c,
    0xb480_a793_d8e6_c86c,
    0x6fe2_e5aa_f078_ebc9,
    0x14f9_94a4_c525_9381,
];

/// The diffusion multiplier (a large odd constant with good bit mixing).
const PRIME: u64 = 0x6eed_0e9d_a4d9_4a4f;

/// One diffusion round: multiply, then xor-shift by a data-dependent
/// amount, then multiply again. Invertible (so no entropy is lost) and
/// avalanching (one flipped input bit flips ~half the output bits).
#[inline]
fn diffuse(mut x: u64) -> u64 {
    x = x.wrapping_mul(PRIME);
    let a = x >> 32;
    let b = x >> 60;
    x ^= a >> b;
    x.wrapping_mul(PRIME)
}

/// Incremental checksum state. Feed bytes in any chunking —
/// [`SeaHasher::write`] is associative over concatenation — and take the
/// digest with [`SeaHasher::finish`]. The digest depends on the byte
/// stream and its total length only, never on chunk boundaries, which is
/// what lets a delegation worker hash run-by-run while the verifier
/// re-hashes page-by-page.
#[derive(Clone, Debug)]
pub struct SeaHasher {
    lanes: [u64; 4],
    /// Which lane absorbs the next word.
    next: usize,
    /// Partial tail word (fewer than 8 bytes buffered).
    tail: u64,
    tail_len: usize,
    written: u64,
}

impl Default for SeaHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl SeaHasher {
    /// Fresh state with the default seeds.
    pub fn new() -> Self {
        SeaHasher { lanes: SEED, next: 0, tail: 0, tail_len: 0, written: 0 }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        let lane = &mut self.lanes[self.next];
        *lane = diffuse(*lane ^ word);
        self.next = (self.next + 1) % 4;
    }

    /// Absorbs `data` into the state.
    pub fn write(&mut self, data: &[u8]) {
        self.written += data.len() as u64;
        let mut rest = data;
        // Top up a partial tail word first.
        if self.tail_len > 0 {
            let need = 8 - self.tail_len;
            let take = need.min(rest.len());
            for (i, &b) in rest[..take].iter().enumerate() {
                self.tail |= (b as u64) << (8 * (self.tail_len + i));
            }
            self.tail_len += take;
            rest = &rest[take..];
            if self.tail_len < 8 {
                return;
            }
            let w = self.tail;
            self.tail = 0;
            self.tail_len = 0;
            self.absorb(w);
        }
        let mut chunks = rest.chunks_exact(8);
        for c in chunks.by_ref() {
            self.absorb(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= (b as u64) << (8 * i);
        }
        self.tail_len = chunks.remainder().len();
    }

    /// Finalizes: folds the lanes, the buffered tail, and the stream
    /// length into one digest. Non-consuming, so a caller can checkpoint
    /// a running hash (clone) and keep writing.
    pub fn finish(&self) -> u64 {
        let mut s = self.clone();
        if s.tail_len > 0 {
            let w = s.tail;
            s.absorb(w);
        }
        diffuse(
            s.lanes[0]
                ^ s.lanes[1]
                ^ s.lanes[2]
                ^ s.lanes[3]
                ^ s.written,
        )
    }
}

/// One-shot convenience: checksum of `data`.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h = SeaHasher::new();
    h.write(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(checksum(b"hello"), checksum(b"hello"));
        assert_ne!(checksum(b"hello"), checksum(b"hello\0"));
        assert_ne!(checksum(b""), checksum(b"\0"));
        // All-zero pages of different lengths must differ (the length is
        // folded in, so a truncated page cannot alias a full one).
        assert_ne!(checksum(&[0u8; 4096]), checksum(&[0u8; 2048]));
    }

    #[test]
    fn chunking_never_changes_the_digest() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = checksum(&data);
        for chunk in [1usize, 3, 7, 8, 64, 4096, 9999] {
            let mut h = SeaHasher::new();
            for c in data.chunks(chunk) {
                h.write(c);
            }
            assert_eq!(h.finish(), whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let mut page = vec![0xA5u8; 4096];
        let clean = checksum(&page);
        for pos in [0usize, 1, 7, 8, 63, 64, 2048, 4095] {
            for bit in 0..8 {
                page[pos] ^= 1 << bit;
                assert_ne!(checksum(&page), clean, "flip at {pos}.{bit} undetected");
                page[pos] ^= 1 << bit;
            }
        }
        assert_eq!(checksum(&page), clean);
    }

    #[test]
    fn finish_is_a_checkpoint_not_a_terminator() {
        let mut h = SeaHasher::new();
        h.write(b"abc");
        let mid = h.finish();
        assert_eq!(mid, checksum(b"abc"));
        h.write(b"def");
        assert_eq!(h.finish(), checksum(b"abcdef"));
    }

    #[test]
    fn swapped_words_change_the_digest() {
        // Lane round-robin means word order matters even at 8-byte
        // granularity (a plain xor accumulator would miss this).
        let a: Vec<u8> = [1u64, 2u64].iter().flat_map(|w| w.to_le_bytes()).collect();
        let b: Vec<u8> = [2u64, 1u64].iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_ne!(checksum(&a), checksum(&b));
    }
}
