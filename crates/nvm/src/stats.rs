//! Op-level data-path performance counters.
//!
//! One [`PathStats`] instance is shared by the kernel controller, its
//! delegation pool, and every mounted LibFS, so a bench can snapshot the
//! whole data path at once: how many bytes went through delegation vs
//! direct access, how often the adaptive policy picked each, how the ring
//! round-trip latency distributes, and how well the allocator fast path
//! is doing. Counters are relaxed atomics — the recording cost must stay
//! negligible next to the modeled media costs — and recording never
//! charges virtual time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two histogram buckets for ring round-trip latency. Bucket `i`
/// covers `[2^i, 2^(i+1))` ns (zero-ns hops have their own dedicated
/// counter, so bucket 0 holds exactly the 1 ns hops); the last bucket is
/// open-ended. 24 buckets reach ~16 ms, far past the delegation deadline.
pub const HIST_BUCKETS: usize = 24;

/// Every call site that may take the kernel's registry control lock,
/// so a `registry_locks` regression is attributable to the path that
/// caused it instead of showing up as an anonymous aggregate (the
/// 450 → 642 regression this enum was written to diagnose was three
/// uninstrumented free/spill sites plus refill growth).
///
/// The headline `registry_locks` counter only counts the *hot* sites —
/// the ones on the steady-state alloc/free/truncate path that the perf
/// gate budgets. Control-plane sites (map, verify, register, scrub,
/// quarantine) are off the data path by design and tracked per-site
/// only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum RegistryLockSite {
    /// Allocator cache refill (hot; lock-free since the sharded refactor).
    AllocRefill,
    /// `free_pages` validation (hot; lock-free since the sharded refactor).
    Free,
    /// Cache high-water spill to the pools (hot; lock-free now).
    Spill,
    /// Truncate/unlink returning file pages whose provenance is still
    /// `InFile` (hot slow-path; the all-private fast path takes no lock).
    ReturnFile,
    /// Mapping a file into an actor.
    Map,
    /// Releasing a mapping.
    Release,
    /// Committing a shadow update.
    Commit,
    /// File reclaim (unlink of an adopted file).
    Reclaim,
    /// LibFS registration.
    Register,
    /// LibFS unregistration.
    Unregister,
    /// Administrative ops: setattr, update_root, ino grants.
    Admin,
    /// Full-tree fsck.
    Fsck,
    /// Patrol-scrub repair/migration (probe reads are lock-free).
    Scrub,
    /// Quarantine entry / repair / readmission.
    Quarantine,
}

impl RegistryLockSite {
    /// Number of distinct sites (array dimension).
    pub const COUNT: usize = 14;

    /// Every site, in counter-array order.
    pub const ALL: [RegistryLockSite; Self::COUNT] = [
        RegistryLockSite::AllocRefill,
        RegistryLockSite::Free,
        RegistryLockSite::Spill,
        RegistryLockSite::ReturnFile,
        RegistryLockSite::Map,
        RegistryLockSite::Release,
        RegistryLockSite::Commit,
        RegistryLockSite::Reclaim,
        RegistryLockSite::Register,
        RegistryLockSite::Unregister,
        RegistryLockSite::Admin,
        RegistryLockSite::Fsck,
        RegistryLockSite::Scrub,
        RegistryLockSite::Quarantine,
    ];

    /// Stable snake_case name (JSON key in `registry_lock_sites`).
    pub fn as_str(self) -> &'static str {
        match self {
            RegistryLockSite::AllocRefill => "alloc_refill",
            RegistryLockSite::Free => "free",
            RegistryLockSite::Spill => "spill",
            RegistryLockSite::ReturnFile => "return_file",
            RegistryLockSite::Map => "map",
            RegistryLockSite::Release => "release",
            RegistryLockSite::Commit => "commit",
            RegistryLockSite::Reclaim => "reclaim",
            RegistryLockSite::Register => "register",
            RegistryLockSite::Unregister => "unregister",
            RegistryLockSite::Admin => "admin",
            RegistryLockSite::Fsck => "fsck",
            RegistryLockSite::Scrub => "scrub",
            RegistryLockSite::Quarantine => "quarantine",
        }
    }

    /// Whether the site sits on the steady-state data path and therefore
    /// counts against the headline `registry_locks` budget.
    pub fn is_hot(self) -> bool {
        matches!(
            self,
            RegistryLockSite::AllocRefill
                | RegistryLockSite::Free
                | RegistryLockSite::Spill
                | RegistryLockSite::ReturnFile
        )
    }
}

/// Geometric midpoint of log bucket `i` (`[2^i, 2^(i+1))`): `2^i·√2`, the
/// unbiased point estimate for a log-uniform sample. Reporting this
/// instead of the lower bound removes the up-to-2× downward bias the old
/// `1 << i` readout carried. Bucket 0 holds only the value 1.
fn bucket_midpoint_ns(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        ((1u64 << i) as f64 * std::f64::consts::SQRT_2) as u64
    }
}

/// Shared relaxed-atomic counters for the hot data path.
#[derive(Default)]
pub struct PathStats {
    // -- delegation client --
    delegated_read_bytes: AtomicU64,
    delegated_write_bytes: AtomicU64,
    direct_read_bytes: AtomicU64,
    direct_write_bytes: AtomicU64,
    /// Scatter-gather node-batches submitted to delegation rings.
    deleg_requests: AtomicU64,
    /// Node-contiguous runs carried inside those batches.
    deleg_runs: AtomicU64,
    /// Node-batches re-enqueued after a deadline miss.
    deleg_retries: AtomicU64,
    /// Deadline misses observed by clients.
    deleg_timeouts: AtomicU64,
    /// Whole ops that exhausted the attempt budget and went direct.
    deleg_fallbacks: AtomicU64,
    /// Write-payload buffer materializations (one `Arc<[u8]>` per op on
    /// the zero-copy path; retries must not add to this).
    payload_copies: AtomicU64,
    /// Submissions that found the ring full and had to block.
    ring_backpressure: AtomicU64,
    /// Malformed / out-of-bounds delegation requests the workers refused
    /// to serve (hostile or corrupt run lists; see DESIGN.md §14).
    deleg_rejected: AtomicU64,
    /// Payload bytes checksummed inline by a delegation worker's single
    /// write pass (DESIGN.md §17). On a healthy path this equals
    /// `delegated_write_bytes`: every delegated byte was hashed on its way
    /// into NVM, for free.
    checksummed_bytes: AtomicU64,
    /// Grant windows registered (persistent buffer registrations and
    /// transient per-op grants alike).
    grant_registers: AtomicU64,
    /// Grant windows revoked (completion, fallback, unregister, quarantine).
    grant_revokes: AtomicU64,
    /// Requests refused because their grant was missing, foreign, revoked,
    /// or mutated mid-flight — the submitter broke the grant contract.
    grant_faults: AtomicU64,
    /// Ring round-trip latency (submit → reply) histogram.
    ring_hop_hist: [AtomicU64; HIST_BUCKETS],
    /// Ring hops measured at exactly 0 ns (same-instant reply in virtual
    /// time). Kept out of the log buckets so a zero-cost sim hop is never
    /// aliased with a 1 ns one.
    ring_hop_zero: AtomicU64,
    /// Delegated ops currently between submit and completion — a gauge,
    /// not a counter. `reset()` debug-asserts it is 0: resetting while
    /// workers are in flight would mix pre/post-reset counts in one
    /// measured window (use snapshot deltas instead).
    in_flight: AtomicU64,
    // -- adaptive policy --
    /// Policy decisions that kept an eligible access on the direct path.
    adaptive_direct: AtomicU64,
    /// Policy decisions that sent an access through delegation.
    adaptive_delegated: AtomicU64,
    // -- kernel allocator --
    /// `alloc_pages` calls served entirely from the per-actor cache.
    alloc_fast_hits: AtomicU64,
    /// Batch refills of a per-actor cache from the global pools.
    alloc_refills: AtomicU64,
    /// Pages moved by those refills.
    alloc_refill_pages: AtomicU64,
    /// Freed pages parked in the per-actor cache.
    free_cached: AtomicU64,
    /// Freed pages spilled past the cache high-water mark to the pools.
    free_spills: AtomicU64,
    /// Global registry lock acquisitions on the alloc/free path.
    registry_locks: AtomicU64,
    /// Per-call-site registry lock acquisitions (attribution for the
    /// headline counter; indexed by [`RegistryLockSite`]).
    registry_lock_sites: [AtomicU64; RegistryLockSite::COUNT],
    /// Kernel events evicted from the bounded event ring by overflow.
    events_dropped: AtomicU64,
    // -- failure domains --
    /// Delegation workers observed dead by the watchdog.
    worker_deaths: AtomicU64,
    /// Dead workers respawned by the watchdog.
    worker_restarts: AtomicU64,
    /// Orphaned in-flight requests re-dispatched after a worker death.
    deleg_redispatches: AtomicU64,
    /// Write requests skipped because their idempotence token was already
    /// recorded (the dead worker had applied them before dying).
    deleg_dedup_hits: AtomicU64,
    /// Transitions into degraded (direct-access) mode.
    degraded_enters: AtomicU64,
    /// Transitions back out of degraded mode.
    degraded_exits: AtomicU64,
    /// Allocation-cache refills retried after transient exhaustion.
    refill_retries: AtomicU64,
    /// Lease-wait retries on the mapping path.
    lease_retries: AtomicU64,
}

impl PathStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bump(c: &AtomicU64, by: u64) {
        c.fetch_add(by, Ordering::Relaxed);
    }

    /// Bytes moved through the delegation path.
    #[inline]
    pub fn record_delegated_bytes(&self, bytes: usize, is_write: bool) {
        let c = if is_write { &self.delegated_write_bytes } else { &self.delegated_read_bytes };
        Self::bump(c, bytes as u64);
    }

    /// Bytes moved by direct (non-delegated) access.
    #[inline]
    pub fn record_direct_bytes(&self, bytes: usize, is_write: bool) {
        let c = if is_write { &self.direct_write_bytes } else { &self.direct_read_bytes };
        Self::bump(c, bytes as u64);
    }

    /// One scatter-gather node-batch carrying `runs` runs was submitted.
    #[inline]
    pub fn record_submission(&self, runs: usize) {
        Self::bump(&self.deleg_requests, 1);
        Self::bump(&self.deleg_runs, runs as u64);
    }

    /// A node-batch was re-enqueued after a deadline miss.
    #[inline]
    pub fn record_retry(&self) {
        Self::bump(&self.deleg_retries, 1);
    }

    /// A client-side deadline miss.
    #[inline]
    pub fn record_timeout(&self) {
        Self::bump(&self.deleg_timeouts, 1);
    }

    /// A whole op gave up on delegation and went direct.
    #[inline]
    pub fn record_fallback(&self) {
        Self::bump(&self.deleg_fallbacks, 1);
    }

    /// A write payload buffer was materialized (copied).
    #[inline]
    pub fn record_payload_copy(&self) {
        Self::bump(&self.payload_copies, 1);
    }

    /// A submission found its ring full.
    #[inline]
    pub fn record_ring_backpressure(&self) {
        Self::bump(&self.ring_backpressure, 1);
    }

    /// A delegation worker refused a malformed request.
    #[inline]
    pub fn record_deleg_rejected(&self) {
        Self::bump(&self.deleg_rejected, 1);
    }

    /// A delegation worker folded `bytes` payload bytes into the inline
    /// streaming checksum during its write pass.
    #[inline]
    pub fn record_checksummed_bytes(&self, bytes: usize) {
        Self::bump(&self.checksummed_bytes, bytes as u64);
    }

    /// A grant window was registered.
    #[inline]
    pub fn record_grant_register(&self) {
        Self::bump(&self.grant_registers, 1);
    }

    /// A grant window was revoked.
    #[inline]
    pub fn record_grant_revoke(&self) {
        Self::bump(&self.grant_revokes, 1);
    }

    /// A request was refused over a missing/foreign/revoked/stale grant.
    #[inline]
    pub fn record_grant_fault(&self) {
        Self::bump(&self.grant_faults, 1);
    }

    /// Ring round-trip (submit → reply) of `ns` nanoseconds.
    #[inline]
    pub fn record_ring_hop(&self, ns: u64) {
        if ns == 0 {
            Self::bump(&self.ring_hop_zero, 1);
            return;
        }
        let bucket = (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        Self::bump(&self.ring_hop_hist[bucket], 1);
    }

    /// A delegated op entered the submit-and-collect loop.
    #[inline]
    pub fn enter_delegated_op(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A delegated op left the submit-and-collect loop (any outcome).
    #[inline]
    pub fn exit_delegated_op(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Delegated ops currently in flight (gauge; not part of snapshots).
    pub fn delegated_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The adaptive policy routed an eligible access.
    #[inline]
    pub fn record_adaptive(&self, delegated: bool) {
        let c = if delegated { &self.adaptive_delegated } else { &self.adaptive_direct };
        Self::bump(c, 1);
    }

    /// `alloc_pages` served from the per-actor cache without touching the
    /// global pools or registry.
    #[inline]
    pub fn record_alloc_fast_hit(&self) {
        Self::bump(&self.alloc_fast_hits, 1);
    }

    /// A batch refill moved `pages` pages into a per-actor cache.
    #[inline]
    pub fn record_alloc_refill(&self, pages: usize) {
        Self::bump(&self.alloc_refills, 1);
        Self::bump(&self.alloc_refill_pages, pages as u64);
    }

    /// Freed pages parked in the cache / spilled to the global pools.
    #[inline]
    pub fn record_free(&self, cached: usize, spilled: usize) {
        Self::bump(&self.free_cached, cached as u64);
        Self::bump(&self.free_spills, spilled as u64);
    }

    /// The global registry lock was taken on the alloc/free path.
    #[inline]
    pub fn record_registry_lock(&self) {
        Self::bump(&self.registry_locks, 1);
    }

    /// The registry control lock was taken at `site`. Always attributed
    /// per-site; only hot (data-path) sites feed the headline
    /// `registry_locks` counter the perf gate budgets.
    #[inline]
    pub fn record_registry_lock_site(&self, site: RegistryLockSite) {
        Self::bump(&self.registry_lock_sites[site as usize], 1);
        if site.is_hot() {
            Self::bump(&self.registry_locks, 1);
        }
    }

    /// The bounded kernel event ring evicted its oldest entry.
    #[inline]
    pub fn record_event_dropped(&self) {
        Self::bump(&self.events_dropped, 1);
    }

    /// The watchdog confirmed a delegation worker dead.
    #[inline]
    pub fn record_worker_death(&self) {
        Self::bump(&self.worker_deaths, 1);
    }

    /// The watchdog respawned a dead worker.
    #[inline]
    pub fn record_worker_restart(&self) {
        Self::bump(&self.worker_restarts, 1);
    }

    /// An orphaned request was re-dispatched to a healthy ring.
    #[inline]
    pub fn record_redispatch(&self) {
        Self::bump(&self.deleg_redispatches, 1);
    }

    /// A retried write was skipped: its idempotence token was already
    /// recorded, so the bytes are on media.
    #[inline]
    pub fn record_dedup_hit(&self) {
        Self::bump(&self.deleg_dedup_hits, 1);
    }

    /// The pool entered or left degraded (direct-access) mode.
    #[inline]
    pub fn record_degraded(&self, entered: bool) {
        let c = if entered { &self.degraded_enters } else { &self.degraded_exits };
        Self::bump(c, 1);
    }

    /// An allocation-cache refill was retried after exhaustion.
    #[inline]
    pub fn record_refill_retry(&self) {
        Self::bump(&self.refill_retries, 1);
    }

    /// A mapping-path lease wait was retried.
    #[inline]
    pub fn record_lease_retry(&self) {
        Self::bump(&self.lease_retries, 1);
    }

    /// Coherent-enough copy of every counter (relaxed loads; exact once
    /// the workload has quiesced).
    pub fn snapshot(&self) -> PathStatsSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (i, b) in self.ring_hop_hist.iter().enumerate() {
            hist[i] = b.load(Ordering::Relaxed);
        }
        let mut sites = [0u64; RegistryLockSite::COUNT];
        for (i, s) in self.registry_lock_sites.iter().enumerate() {
            sites[i] = s.load(Ordering::Relaxed);
        }
        PathStatsSnapshot {
            delegated_read_bytes: self.delegated_read_bytes.load(Ordering::Relaxed),
            delegated_write_bytes: self.delegated_write_bytes.load(Ordering::Relaxed),
            direct_read_bytes: self.direct_read_bytes.load(Ordering::Relaxed),
            direct_write_bytes: self.direct_write_bytes.load(Ordering::Relaxed),
            deleg_requests: self.deleg_requests.load(Ordering::Relaxed),
            deleg_runs: self.deleg_runs.load(Ordering::Relaxed),
            deleg_retries: self.deleg_retries.load(Ordering::Relaxed),
            deleg_timeouts: self.deleg_timeouts.load(Ordering::Relaxed),
            deleg_fallbacks: self.deleg_fallbacks.load(Ordering::Relaxed),
            payload_copies: self.payload_copies.load(Ordering::Relaxed),
            ring_backpressure: self.ring_backpressure.load(Ordering::Relaxed),
            deleg_rejected: self.deleg_rejected.load(Ordering::Relaxed),
            checksummed_bytes: self.checksummed_bytes.load(Ordering::Relaxed),
            grant_registers: self.grant_registers.load(Ordering::Relaxed),
            grant_revokes: self.grant_revokes.load(Ordering::Relaxed),
            grant_faults: self.grant_faults.load(Ordering::Relaxed),
            ring_hop_hist: hist,
            ring_hop_zero: self.ring_hop_zero.load(Ordering::Relaxed),
            adaptive_direct: self.adaptive_direct.load(Ordering::Relaxed),
            adaptive_delegated: self.adaptive_delegated.load(Ordering::Relaxed),
            alloc_fast_hits: self.alloc_fast_hits.load(Ordering::Relaxed),
            alloc_refills: self.alloc_refills.load(Ordering::Relaxed),
            alloc_refill_pages: self.alloc_refill_pages.load(Ordering::Relaxed),
            free_cached: self.free_cached.load(Ordering::Relaxed),
            free_spills: self.free_spills.load(Ordering::Relaxed),
            registry_locks: self.registry_locks.load(Ordering::Relaxed),
            registry_lock_sites: sites,
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            deleg_redispatches: self.deleg_redispatches.load(Ordering::Relaxed),
            deleg_dedup_hits: self.deleg_dedup_hits.load(Ordering::Relaxed),
            degraded_enters: self.degraded_enters.load(Ordering::Relaxed),
            degraded_exits: self.degraded_exits.load(Ordering::Relaxed),
            refill_retries: self.refill_retries.load(Ordering::Relaxed),
            lease_retries: self.lease_retries.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    ///
    /// Only valid on a quiesced path: resetting while delegated ops are in
    /// flight tears the measured window (a worker that entered before the
    /// reset keeps bumping counters after it). Bench and test windows
    /// should prefer [`PathStatsSnapshot::delta`] arithmetic, which needs
    /// no quiescence at all.
    pub fn reset(&self) {
        debug_assert_eq!(
            self.delegated_in_flight(),
            0,
            "PathStats::reset() with delegated ops in flight; \
             use snapshot deltas for measured windows"
        );
        self.delegated_read_bytes.store(0, Ordering::Relaxed);
        self.delegated_write_bytes.store(0, Ordering::Relaxed);
        self.direct_read_bytes.store(0, Ordering::Relaxed);
        self.direct_write_bytes.store(0, Ordering::Relaxed);
        self.deleg_requests.store(0, Ordering::Relaxed);
        self.deleg_runs.store(0, Ordering::Relaxed);
        self.deleg_retries.store(0, Ordering::Relaxed);
        self.deleg_timeouts.store(0, Ordering::Relaxed);
        self.deleg_fallbacks.store(0, Ordering::Relaxed);
        self.payload_copies.store(0, Ordering::Relaxed);
        self.ring_backpressure.store(0, Ordering::Relaxed);
        self.deleg_rejected.store(0, Ordering::Relaxed);
        self.checksummed_bytes.store(0, Ordering::Relaxed);
        self.grant_registers.store(0, Ordering::Relaxed);
        self.grant_revokes.store(0, Ordering::Relaxed);
        self.grant_faults.store(0, Ordering::Relaxed);
        for b in &self.ring_hop_hist {
            b.store(0, Ordering::Relaxed);
        }
        self.ring_hop_zero.store(0, Ordering::Relaxed);
        // `in_flight` is a gauge, not a counter: it survives the reset.
        self.adaptive_direct.store(0, Ordering::Relaxed);
        self.adaptive_delegated.store(0, Ordering::Relaxed);
        self.alloc_fast_hits.store(0, Ordering::Relaxed);
        self.alloc_refills.store(0, Ordering::Relaxed);
        self.alloc_refill_pages.store(0, Ordering::Relaxed);
        self.free_cached.store(0, Ordering::Relaxed);
        self.free_spills.store(0, Ordering::Relaxed);
        self.registry_locks.store(0, Ordering::Relaxed);
        for s in &self.registry_lock_sites {
            s.store(0, Ordering::Relaxed);
        }
        self.events_dropped.store(0, Ordering::Relaxed);
        self.worker_deaths.store(0, Ordering::Relaxed);
        self.worker_restarts.store(0, Ordering::Relaxed);
        self.deleg_redispatches.store(0, Ordering::Relaxed);
        self.deleg_dedup_hits.store(0, Ordering::Relaxed);
        self.degraded_enters.store(0, Ordering::Relaxed);
        self.degraded_exits.store(0, Ordering::Relaxed);
        self.refill_retries.store(0, Ordering::Relaxed);
        self.lease_retries.store(0, Ordering::Relaxed);
    }
}

/// Plain-value snapshot of [`PathStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathStatsSnapshot {
    pub delegated_read_bytes: u64,
    pub delegated_write_bytes: u64,
    pub direct_read_bytes: u64,
    pub direct_write_bytes: u64,
    pub deleg_requests: u64,
    pub deleg_runs: u64,
    pub deleg_retries: u64,
    pub deleg_timeouts: u64,
    pub deleg_fallbacks: u64,
    pub payload_copies: u64,
    pub ring_backpressure: u64,
    pub deleg_rejected: u64,
    pub checksummed_bytes: u64,
    pub grant_registers: u64,
    pub grant_revokes: u64,
    pub grant_faults: u64,
    pub ring_hop_hist: [u64; HIST_BUCKETS],
    pub ring_hop_zero: u64,
    pub adaptive_direct: u64,
    pub adaptive_delegated: u64,
    pub alloc_fast_hits: u64,
    pub alloc_refills: u64,
    pub alloc_refill_pages: u64,
    pub free_cached: u64,
    pub free_spills: u64,
    pub registry_locks: u64,
    pub registry_lock_sites: [u64; RegistryLockSite::COUNT],
    pub events_dropped: u64,
    pub worker_deaths: u64,
    pub worker_restarts: u64,
    pub deleg_redispatches: u64,
    pub deleg_dedup_hits: u64,
    pub degraded_enters: u64,
    pub degraded_exits: u64,
    pub refill_retries: u64,
    pub lease_retries: u64,
}

impl PathStatsSnapshot {
    /// Registry-lock acquisitions attributed to one call site.
    pub fn registry_lock_site(&self, site: RegistryLockSite) -> u64 {
        self.registry_lock_sites[site as usize]
    }

    /// Fraction of `alloc_pages` calls served from the per-actor cache.
    pub fn alloc_fast_hit_rate(&self) -> f64 {
        let total = self.alloc_fast_hits + self.alloc_refills;
        if total == 0 {
            0.0
        } else {
            self.alloc_fast_hits as f64 / total as f64
        }
    }

    /// Latency at the `num/den` quantile of the ring-hop distribution, in
    /// ns. Zero-ns hops count below bucket 0; samples inside a bucket are
    /// reported at the bucket's geometric midpoint (`2^i·√2`), not its
    /// lower bound — the lower bound understated skewed tails by up to 2×.
    /// Returns 0 when no hops were recorded.
    fn ring_hop_percentile_ns(&self, num: u64, den: u64) -> u64 {
        let total = self.ring_hop_zero + self.ring_hop_hist.iter().sum::<u64>();
        if total == 0 {
            return 0;
        }
        let mut seen = self.ring_hop_zero;
        if seen * den >= num * total {
            return 0;
        }
        for (i, &n) in self.ring_hop_hist.iter().enumerate() {
            seen += n;
            if seen * den >= num * total {
                return bucket_midpoint_ns(i);
            }
        }
        bucket_midpoint_ns(HIST_BUCKETS - 1)
    }

    /// Median ring hop latency (geometric bucket midpoint), in ns.
    pub fn ring_hop_p50_ns(&self) -> u64 {
        self.ring_hop_percentile_ns(1, 2)
    }

    /// 99th-percentile ring hop latency (geometric bucket midpoint), in ns.
    pub fn ring_hop_p99_ns(&self) -> u64 {
        self.ring_hop_percentile_ns(99, 100)
    }

    /// Counters accumulated since `earlier` (field-wise saturating
    /// subtraction). The race-free way to carve a measured window out of a
    /// shared live [`PathStats`]: snapshot before, snapshot after, delta —
    /// no quiescence needed, unlike [`PathStats::reset`].
    pub fn delta(&self, earlier: &PathStatsSnapshot) -> PathStatsSnapshot {
        let mut hist = [0u64; HIST_BUCKETS];
        for (i, h) in hist.iter_mut().enumerate() {
            *h = self.ring_hop_hist[i].saturating_sub(earlier.ring_hop_hist[i]);
        }
        let mut sites = [0u64; RegistryLockSite::COUNT];
        for (i, s) in sites.iter_mut().enumerate() {
            *s = self.registry_lock_sites[i].saturating_sub(earlier.registry_lock_sites[i]);
        }
        PathStatsSnapshot {
            delegated_read_bytes: self.delegated_read_bytes.saturating_sub(earlier.delegated_read_bytes),
            delegated_write_bytes: self.delegated_write_bytes.saturating_sub(earlier.delegated_write_bytes),
            direct_read_bytes: self.direct_read_bytes.saturating_sub(earlier.direct_read_bytes),
            direct_write_bytes: self.direct_write_bytes.saturating_sub(earlier.direct_write_bytes),
            deleg_requests: self.deleg_requests.saturating_sub(earlier.deleg_requests),
            deleg_runs: self.deleg_runs.saturating_sub(earlier.deleg_runs),
            deleg_retries: self.deleg_retries.saturating_sub(earlier.deleg_retries),
            deleg_timeouts: self.deleg_timeouts.saturating_sub(earlier.deleg_timeouts),
            deleg_fallbacks: self.deleg_fallbacks.saturating_sub(earlier.deleg_fallbacks),
            payload_copies: self.payload_copies.saturating_sub(earlier.payload_copies),
            ring_backpressure: self.ring_backpressure.saturating_sub(earlier.ring_backpressure),
            deleg_rejected: self.deleg_rejected.saturating_sub(earlier.deleg_rejected),
            checksummed_bytes: self.checksummed_bytes.saturating_sub(earlier.checksummed_bytes),
            grant_registers: self.grant_registers.saturating_sub(earlier.grant_registers),
            grant_revokes: self.grant_revokes.saturating_sub(earlier.grant_revokes),
            grant_faults: self.grant_faults.saturating_sub(earlier.grant_faults),
            ring_hop_hist: hist,
            ring_hop_zero: self.ring_hop_zero.saturating_sub(earlier.ring_hop_zero),
            adaptive_direct: self.adaptive_direct.saturating_sub(earlier.adaptive_direct),
            adaptive_delegated: self.adaptive_delegated.saturating_sub(earlier.adaptive_delegated),
            alloc_fast_hits: self.alloc_fast_hits.saturating_sub(earlier.alloc_fast_hits),
            alloc_refills: self.alloc_refills.saturating_sub(earlier.alloc_refills),
            alloc_refill_pages: self.alloc_refill_pages.saturating_sub(earlier.alloc_refill_pages),
            free_cached: self.free_cached.saturating_sub(earlier.free_cached),
            free_spills: self.free_spills.saturating_sub(earlier.free_spills),
            registry_locks: self.registry_locks.saturating_sub(earlier.registry_locks),
            registry_lock_sites: sites,
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
            worker_deaths: self.worker_deaths.saturating_sub(earlier.worker_deaths),
            worker_restarts: self.worker_restarts.saturating_sub(earlier.worker_restarts),
            deleg_redispatches: self
                .deleg_redispatches
                .saturating_sub(earlier.deleg_redispatches),
            deleg_dedup_hits: self.deleg_dedup_hits.saturating_sub(earlier.deleg_dedup_hits),
            degraded_enters: self.degraded_enters.saturating_sub(earlier.degraded_enters),
            degraded_exits: self.degraded_exits.saturating_sub(earlier.degraded_exits),
            refill_retries: self.refill_retries.saturating_sub(earlier.refill_retries),
            lease_retries: self.lease_retries.saturating_sub(earlier.lease_retries),
        }
    }

    /// Hand-rolled JSON object (the workspace is dependency-free). Keys
    /// are stable; `extra` appends caller context such as bench geometry.
    pub fn to_json(&self, extra: &[(&str, String)]) -> String {
        let mut out = String::from("{\n");
        let mut push = |k: &str, v: String| {
            out.push_str(&format!("  \"{k}\": {v},\n"));
        };
        for (k, v) in extra {
            push(k, v.clone());
        }
        push("delegated_read_bytes", self.delegated_read_bytes.to_string());
        push("delegated_write_bytes", self.delegated_write_bytes.to_string());
        push("direct_read_bytes", self.direct_read_bytes.to_string());
        push("direct_write_bytes", self.direct_write_bytes.to_string());
        push("deleg_requests", self.deleg_requests.to_string());
        push("deleg_runs", self.deleg_runs.to_string());
        push("deleg_retries", self.deleg_retries.to_string());
        push("deleg_timeouts", self.deleg_timeouts.to_string());
        push("deleg_fallbacks", self.deleg_fallbacks.to_string());
        push("payload_copies", self.payload_copies.to_string());
        push("ring_backpressure", self.ring_backpressure.to_string());
        push("deleg_rejected", self.deleg_rejected.to_string());
        push("checksummed_bytes", self.checksummed_bytes.to_string());
        push("grant_registers", self.grant_registers.to_string());
        push("grant_revokes", self.grant_revokes.to_string());
        push("grant_faults", self.grant_faults.to_string());
        push("adaptive_direct", self.adaptive_direct.to_string());
        push("adaptive_delegated", self.adaptive_delegated.to_string());
        push("alloc_fast_hits", self.alloc_fast_hits.to_string());
        push("alloc_refills", self.alloc_refills.to_string());
        push("alloc_refill_pages", self.alloc_refill_pages.to_string());
        push("free_cached", self.free_cached.to_string());
        push("free_spills", self.free_spills.to_string());
        push("registry_locks", self.registry_locks.to_string());
        let sites: Vec<String> = RegistryLockSite::ALL
            .iter()
            .map(|s| format!("\"{}\": {}", s.as_str(), self.registry_lock_site(*s)))
            .collect();
        push("registry_lock_sites", format!("{{{}}}", sites.join(", ")));
        push("events_dropped", self.events_dropped.to_string());
        push("worker_deaths", self.worker_deaths.to_string());
        push("worker_restarts", self.worker_restarts.to_string());
        push("deleg_redispatches", self.deleg_redispatches.to_string());
        push("deleg_dedup_hits", self.deleg_dedup_hits.to_string());
        push("degraded_enters", self.degraded_enters.to_string());
        push("degraded_exits", self.degraded_exits.to_string());
        push("refill_retries", self.refill_retries.to_string());
        push("lease_retries", self.lease_retries.to_string());
        push("alloc_fast_hit_rate", format!("{:.4}", self.alloc_fast_hit_rate()));
        push("ring_hop_p50_ns", self.ring_hop_p50_ns().to_string());
        push("ring_hop_p99_ns", self.ring_hop_p99_ns().to_string());
        push("ring_hop_zero", self.ring_hop_zero.to_string());
        let hist: Vec<String> = self.ring_hop_hist.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("  \"ring_hop_hist\": [{}]\n", hist.join(", ")));
        out.push('}');
        out
    }

    /// One-line human summary for bench footers.
    pub fn summary_line(&self) -> String {
        format!(
            "path: deleg {:.1} MiB w / {:.1} MiB r, direct {:.1} MiB w / {:.1} MiB r | \
             batches {} (runs {}), retries {}, fallbacks {}, backpressure {} | \
             ring p50/p99 {}/{} ns | alloc hit {:.0}%, registry locks {}",
            self.delegated_write_bytes as f64 / (1 << 20) as f64,
            self.delegated_read_bytes as f64 / (1 << 20) as f64,
            self.direct_write_bytes as f64 / (1 << 20) as f64,
            self.direct_read_bytes as f64 / (1 << 20) as f64,
            self.deleg_requests,
            self.deleg_runs,
            self.deleg_retries,
            self.deleg_fallbacks,
            self.ring_backpressure,
            self.ring_hop_p50_ns(),
            self.ring_hop_p99_ns(),
            self.alloc_fast_hit_rate() * 100.0,
            self.registry_locks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roundtrip_through_snapshot() {
        let s = PathStats::new();
        s.record_delegated_bytes(4096, true);
        s.record_delegated_bytes(100, false);
        s.record_direct_bytes(64, true);
        s.record_submission(3);
        s.record_retry();
        s.record_timeout();
        s.record_fallback();
        s.record_payload_copy();
        s.record_checksummed_bytes(4096);
        s.record_grant_register();
        s.record_grant_register();
        s.record_grant_revoke();
        s.record_grant_fault();
        s.record_ring_backpressure();
        s.record_adaptive(true);
        s.record_adaptive(false);
        s.record_alloc_fast_hit();
        s.record_alloc_refill(64);
        s.record_free(10, 2);
        s.record_registry_lock();
        s.record_registry_lock_site(RegistryLockSite::AllocRefill); // hot: headline too
        s.record_registry_lock_site(RegistryLockSite::Fsck); // cold: site only
        s.record_event_dropped();
        s.record_worker_death();
        s.record_worker_restart();
        s.record_redispatch();
        s.record_dedup_hit();
        s.record_degraded(true);
        s.record_degraded(false);
        s.record_refill_retry();
        s.record_lease_retry();
        let snap = s.snapshot();
        assert_eq!(snap.delegated_write_bytes, 4096);
        assert_eq!(snap.delegated_read_bytes, 100);
        assert_eq!(snap.direct_write_bytes, 64);
        assert_eq!(snap.deleg_requests, 1);
        assert_eq!(snap.deleg_runs, 3);
        assert_eq!(snap.deleg_retries, 1);
        assert_eq!(snap.deleg_timeouts, 1);
        assert_eq!(snap.deleg_fallbacks, 1);
        assert_eq!(snap.payload_copies, 1);
        assert_eq!(snap.checksummed_bytes, 4096);
        assert_eq!(snap.grant_registers, 2);
        assert_eq!(snap.grant_revokes, 1);
        assert_eq!(snap.grant_faults, 1);
        assert_eq!(snap.ring_backpressure, 1);
        assert_eq!(snap.adaptive_delegated, 1);
        assert_eq!(snap.adaptive_direct, 1);
        assert_eq!(snap.alloc_fast_hits, 1);
        assert_eq!(snap.alloc_refills, 1);
        assert_eq!(snap.alloc_refill_pages, 64);
        assert_eq!(snap.free_cached, 10);
        assert_eq!(snap.free_spills, 2);
        assert_eq!(snap.registry_locks, 2, "hot site feeds the headline counter");
        assert_eq!(snap.registry_lock_site(RegistryLockSite::AllocRefill), 1);
        assert_eq!(snap.registry_lock_site(RegistryLockSite::Fsck), 1);
        assert_eq!(snap.registry_lock_site(RegistryLockSite::Scrub), 0);
        assert_eq!(snap.events_dropped, 1);
        assert_eq!(snap.worker_deaths, 1);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.deleg_redispatches, 1);
        assert_eq!(snap.deleg_dedup_hits, 1);
        assert_eq!(snap.degraded_enters, 1);
        assert_eq!(snap.degraded_exits, 1);
        assert_eq!(snap.refill_retries, 1);
        assert_eq!(snap.lease_retries, 1);
        s.reset();
        assert_eq!(s.snapshot(), PathStatsSnapshot::default());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let s = PathStats::new();
        s.record_ring_hop(0); // dedicated zero counter, not a bucket
        s.record_ring_hop(1); // bucket 0
        s.record_ring_hop(2); // bucket 1
        s.record_ring_hop(1023); // bucket 9
        s.record_ring_hop(1024); // bucket 10
        s.record_ring_hop(u64::MAX); // clamped to last bucket
        let snap = s.snapshot();
        let h = snap.ring_hop_hist;
        assert_eq!(snap.ring_hop_zero, 1);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[9], 1);
        assert_eq!(h[10], 1);
        assert_eq!(h[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn p50_and_hit_rate() {
        let s = PathStats::new();
        for _ in 0..3 {
            s.record_ring_hop(512); // bucket 9, midpoint 512·√2 = 724
        }
        s.record_ring_hop(100_000);
        assert_eq!(s.snapshot().ring_hop_p50_ns(), 724);
        for _ in 0..9 {
            s.record_alloc_fast_hit();
        }
        s.record_alloc_refill(64);
        let snap = s.snapshot();
        assert!((snap.alloc_fast_hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn percentiles_pin_against_hand_computed_histogram() {
        // 2 zero-ns hops, 3 samples in bucket 9, 1 sample in bucket 16.
        // Ranked: [0, 0, b9, b9, b9, b16]; p50 rank = 3rd sample → bucket 9
        // midpoint 724; p99 rank = 6th sample → bucket 16 midpoint
        // 65536·√2 = 92681.
        let s = PathStats::new();
        s.record_ring_hop(0);
        s.record_ring_hop(0);
        for _ in 0..3 {
            s.record_ring_hop(600);
        }
        s.record_ring_hop(70_000);
        let snap = s.snapshot();
        assert_eq!(snap.ring_hop_p50_ns(), 724);
        assert_eq!(snap.ring_hop_p99_ns(), 92_681);

        // Zero-dominated distribution: the median falls in the zero mass.
        let z = PathStats::new();
        for _ in 0..10 {
            z.record_ring_hop(0);
        }
        z.record_ring_hop(64);
        let zs = z.snapshot();
        assert_eq!(zs.ring_hop_p50_ns(), 0);
        assert_eq!(zs.ring_hop_p99_ns(), 90); // 64·√2

        // Empty histogram reports 0, not bucket 0's midpoint.
        assert_eq!(PathStatsSnapshot::default().ring_hop_p50_ns(), 0);
        assert_eq!(PathStatsSnapshot::default().ring_hop_p99_ns(), 0);
    }

    #[test]
    fn zero_ns_hops_do_not_alias_one_ns_hops() {
        let s = PathStats::new();
        s.record_ring_hop(0);
        s.record_ring_hop(0);
        s.record_ring_hop(1);
        let snap = s.snapshot();
        assert_eq!(snap.ring_hop_zero, 2);
        assert_eq!(snap.ring_hop_hist[0], 1);
    }

    #[test]
    fn delta_isolates_a_measured_window() {
        let s = PathStats::new();
        s.record_submission(4);
        s.record_delegated_bytes(1 << 20, true);
        s.record_ring_hop(512);
        let base = s.snapshot();
        s.record_submission(2);
        s.record_delegated_bytes(4096, true);
        s.record_ring_hop(0);
        s.record_ring_hop(2048);
        let win = s.snapshot().delta(&base);
        assert_eq!(win.deleg_requests, 1);
        assert_eq!(win.deleg_runs, 2);
        assert_eq!(win.delegated_write_bytes, 4096);
        assert_eq!(win.ring_hop_zero, 1);
        assert_eq!(win.ring_hop_hist[9], 0); // pre-window hop subtracted out
        assert_eq!(win.ring_hop_hist[11], 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "in flight")]
    fn reset_asserts_quiesced() {
        let s = PathStats::new();
        s.enter_delegated_op();
        s.reset();
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = PathStats::new();
        s.record_submission(2);
        let j = s.snapshot().to_json(&[("threads", "28".into())]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"threads\": 28"));
        assert!(j.contains("\"deleg_requests\": 1"));
        assert!(j.contains("\"registry_lock_sites\": {\"alloc_refill\": 0"));
        assert!(j.contains("\"scrub\": 0"));
        assert!(j.contains("\"events_dropped\": 0"));
        assert!(j.contains("\"worker_deaths\": 0"));
        assert!(j.contains("\"deleg_dedup_hits\": 0"));
        assert!(j.contains("\"degraded_enters\": 0"));
        assert!(j.contains("\"ring_hop_p99_ns\": "));
        assert!(j.contains("\"ring_hop_zero\": "));
        assert!(j.contains("\"ring_hop_hist\": ["));
    }
}
