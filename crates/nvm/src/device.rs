//! The emulated NVM device: page store, MMU, timing, crash injection.

use trio_sim::plock::Mutex;
use trio_sim::race::RaceDetector;
use trio_sim::{in_sim, work, Nanos};

#[cfg(feature = "faults")]
use std::collections::HashSet;
#[cfg(feature = "faults")]
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::fault::CrashReport;
#[cfg(feature = "faults")]
use crate::fault::FaultPlan;
use crate::perf::{BandwidthModel, NodeLoad};
use crate::persist::PersistTracker;
use crate::prot::{ActorId, PagePerm, PageProt, ProtError, KERNEL_ACTOR};
#[cfg(feature = "sanitize")]
use crate::sanitize::SanitizeReport;
use crate::topology::CACHE_LINE;
use crate::topology::{NodeId, PageId, Topology, PAGE_SIZE};

/// Cost of an `sfence` after flushing.
const SFENCE_NS: Nanos = 30;

/// Cost per `clwb` of one cache line (overlapped; the sustained-write
/// bandwidth model already covers the media cost).
const CLWB_LINE_NS: Nanos = 8;

/// Device construction parameters.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// NUMA geometry.
    pub topology: Topology,
    /// Latency/bandwidth model.
    pub model: BandwidthModel,
    /// Record dirty cache lines for crash injection (slower; tests only).
    pub track_persistence: bool,
}

impl DeviceConfig {
    /// A small single-node device for unit tests.
    pub fn small() -> Self {
        DeviceConfig {
            topology: Topology::new(1, 4096),
            model: BandwidthModel::default(),
            track_persistence: false,
        }
    }

    /// The paper-shaped geometry: 8 NUMA nodes. `pages_per_node` is chosen
    /// by the experiment (capacity is DRAM-bounded).
    pub fn eight_node(pages_per_node: usize) -> Self {
        DeviceConfig {
            topology: Topology::new(8, pages_per_node),
            model: BandwidthModel::default(),
            track_persistence: false,
        }
    }
}

struct PageSlot {
    /// Lazily allocated contents; `None` reads as zeros.
    data: Option<Box<[u8]>>,
    prot: PageProt,
    /// Data checksum recorded by a delegation worker's streaming write pass
    /// (DESIGN.md §17), valid only while the page still holds exactly the
    /// bytes that pass wrote. Kernel-maintained volatile metadata, like the
    /// MMU table: any ordinary store, restore, scrub, or crash invalidates
    /// it, and the verifier only checks pages whose sidecar is present.
    csum: Option<u64>,
}

impl PageSlot {
    fn ensure_data(&mut self) -> &mut [u8] {
        self.data.get_or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice())
    }
}

/// The emulated device. Unprivileged code accesses it through
/// [`crate::NvmHandle`]; the kernel controller uses the privileged methods
/// directly.
pub struct NvmDevice {
    topo: Topology,
    model: BandwidthModel,
    pages: Vec<Mutex<PageSlot>>,
    loads: Vec<Mutex<NodeLoad>>,
    tracker: Option<PersistTracker>,
    /// Optional cross-actor race detector (see [`trio_sim::race`]); when
    /// installed, every page access is reported with its cache-line span.
    /// Absent on the hot path: one pointer load.
    race: OnceLock<Arc<RaceDetector>>,
    /// Poisoned (uncorrectable) cache lines; reads overlapping one fault
    /// with [`ProtError::Poisoned`]. A store covering a whole line repairs
    /// it, as writing a full line does on real PM.
    #[cfg(feature = "faults")]
    poisoned: Mutex<HashSet<(u64, u16)>>,
    /// Fast-path poison count so the un-injected hot path is one relaxed
    /// load, not a lock acquisition.
    #[cfg(feature = "faults")]
    poison_count: AtomicUsize,
}

impl NvmDevice {
    /// Builds a device; memory is committed lazily per page.
    pub fn new(config: DeviceConfig) -> Self {
        let total = config.topology.total_pages() as usize;
        let mut pages = Vec::with_capacity(total);
        for _ in 0..total {
            pages.push(Mutex::new(PageSlot { data: None, prot: PageProt::default(), csum: None }));
        }
        NvmDevice {
            topo: config.topology,
            model: config.model,
            pages,
            loads: (0..config.topology.nodes).map(|_| Mutex::new(NodeLoad::default())).collect(),
            tracker: config.track_persistence.then(PersistTracker::new),
            race: OnceLock::new(),
            #[cfg(feature = "faults")]
            poisoned: Mutex::new(HashSet::new()),
            #[cfg(feature = "faults")]
            poison_count: AtomicUsize::new(0),
        }
    }

    /// Device geometry.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The timing model in force.
    pub fn model(&self) -> &BandwidthModel {
        &self.model
    }

    fn slot(&self, page: PageId) -> Result<&Mutex<PageSlot>, ProtError> {
        self.pages.get(page.0 as usize).ok_or(ProtError::OutOfRange)
    }

    /// Charges virtual time for moving `bytes` at `node`, sampling the
    /// node's concurrency level. Public so multi-page extent operations can
    /// charge once per node-contiguous run instead of per page.
    pub fn charge_transfer(&self, node: NodeId, bytes: usize, is_write: bool, home: NodeId) {
        if !in_sim() || bytes == 0 {
            return;
        }
        let k = self.loads[node].lock().enter(is_write);
        let ns = self.model.transfer_ns(bytes, k, is_write, node != home);
        work(ns);
        self.loads[node].lock().exit(is_write);
    }

    /// Current same-kind accessor count on `node` — the load signal the
    /// adaptive delegation policy reads before routing an access. A cheap
    /// sampled observation, not a reservation: the level can change the
    /// moment the lock drops.
    pub fn node_load_level(&self, node: NodeId, is_write: bool) -> u32 {
        self.loads[node].lock().level(is_write)
    }

    /// Copies out of a page with a permission check, without charging time
    /// (the caller charges per extent). `off + buf.len()` must fit the page.
    pub fn copy_from_page(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        if off + buf.len() > PAGE_SIZE {
            return Err(ProtError::OutOfRange);
        }
        let slot = self.slot(page)?.lock();
        slot.prot.check(actor, false)?;
        #[cfg(feature = "faults")]
        self.poison_check_read(page, off, buf.len())?;
        #[cfg(feature = "sanitize")]
        if let Some(t) = &self.tracker {
            t.recovery_read_check(page, off, buf.len());
        }
        self.race_check(actor, page, off, buf.len(), false);
        match &slot.data {
            Some(d) => buf.copy_from_slice(&d[off..off + buf.len()]),
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Copies into a page with a permission check, without charging time.
    pub fn copy_to_page(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        self.copy_to_page_csum(actor, page, off, data, None)
    }

    /// [`Self::copy_to_page`] that additionally records (or, with `None`,
    /// invalidates) the page's integrity sidecar atomically under the slot
    /// lock, so a concurrent writer can never leave a stale checksum
    /// describing someone else's bytes. `Some` requires a full-page store —
    /// the checksum covers the whole page, so a partial store cannot vouch
    /// for bytes it did not write.
    pub fn copy_to_page_csum(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        data: &[u8],
        csum: Option<u64>,
    ) -> Result<(), ProtError> {
        if off + data.len() > PAGE_SIZE {
            return Err(ProtError::OutOfRange);
        }
        debug_assert!(
            csum.is_none() || (off == 0 && data.len() == PAGE_SIZE),
            "checksum sidecar requires a full-page store"
        );
        let mut slot = self.slot(page)?.lock();
        slot.prot.check(actor, true)?;
        #[cfg(feature = "faults")]
        self.poison_check_write(page, off, data.len())?;
        self.race_check(actor, page, off, data.len(), true);
        if let Some(t) = &self.tracker {
            t.record_store_data(page, off, data, slot.data.as_deref());
        }
        slot.ensure_data()[off..off + data.len()].copy_from_slice(data);
        slot.csum = csum;
        Ok(())
    }

    /// The integrity sidecar recorded for `page`, if still valid.
    /// Privileged (verifier walk).
    pub fn page_csum(&self, page: PageId) -> Result<Option<u64>, ProtError> {
        Ok(self.slot(page)?.lock().csum)
    }

    /// Installs a cross-actor race detector. Returns `false` (and leaves
    /// the existing detector in place) if one was already installed.
    pub fn set_race_detector(&self, d: Arc<RaceDetector>) -> bool {
        self.race.set(d).is_ok()
    }

    /// Reports an access to the installed race detector, if any, one cache
    /// line at a time. Runs under the page-slot lock, so for a given line
    /// the detector observes accesses in a deterministic (virtual-time)
    /// order.
    #[inline]
    fn race_check(&self, actor: ActorId, page: PageId, off: usize, len: usize, is_write: bool) {
        if len == 0 {
            return;
        }
        if let Some(rd) = self.race.get() {
            let (first, last) = (off / CACHE_LINE, (off + len - 1) / CACHE_LINE);
            for line in first..=last {
                rd.on_access(page.0, line as u16, is_write, actor.0 as u64);
            }
        }
    }

    /// Fails a read overlapping any poisoned line.
    #[cfg(feature = "faults")]
    fn poison_check_read(&self, page: PageId, off: usize, len: usize) -> Result<(), ProtError> {
        if len == 0 || self.poison_count.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let set = self.poisoned.lock();
        let (first, last) = (off / CACHE_LINE, (off + len - 1) / CACHE_LINE);
        for line in first..=last {
            if set.contains(&(page.0, line as u16)) {
                return Err(ProtError::Poisoned);
            }
        }
        Ok(())
    }

    /// A store that fully covers a poisoned line repairs it; one that only
    /// partially covers it would have to read-modify-write the bad line, so
    /// it faults instead. Checks everything before repairing anything.
    #[cfg(feature = "faults")]
    fn poison_check_write(&self, page: PageId, off: usize, len: usize) -> Result<(), ProtError> {
        if len == 0 || self.poison_count.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let mut set = self.poisoned.lock();
        let (first, last) = (off / CACHE_LINE, (off + len - 1) / CACHE_LINE);
        let mut repaired = Vec::new();
        for line in first..=last {
            if set.contains(&(page.0, line as u16)) {
                let covered = off <= line * CACHE_LINE && (line + 1) * CACHE_LINE <= off + len;
                if !covered {
                    return Err(ProtError::Poisoned);
                }
                repaired.push(line as u16);
            }
        }
        for line in repaired {
            set.remove(&(page.0, line));
            self.poison_count.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Timed single-page read.
    pub fn read(
        &self,
        actor: ActorId,
        home: NodeId,
        page: PageId,
        off: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        // Fault before paying the media cost, as a real MMU would.
        self.slot(page)?.lock().prot.check(actor, false)?;
        self.charge_transfer(self.topo.node_of(page), buf.len(), false, home);
        self.copy_from_page(actor, page, off, buf)
    }

    /// Timed single-page write.
    pub fn write(
        &self,
        actor: ActorId,
        home: NodeId,
        page: PageId,
        off: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        self.slot(page)?.lock().prot.check(actor, true)?;
        self.charge_transfer(self.topo.node_of(page), data.len(), true, home);
        self.copy_to_page(actor, page, off, data)
    }

    /// 8-byte atomic read (used for inode fields, index slots).
    pub fn read_u64(&self, actor: ActorId, page: PageId, off: usize) -> Result<u64, ProtError> {
        if !off.is_multiple_of(8) {
            return Err(ProtError::Misaligned);
        }
        let mut b = [0u8; 8];
        self.copy_from_page(actor, page, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// 8-byte atomic durable store: store + `clwb` + `sfence`. This is the
    /// publication primitive of §4.4 (e.g. flipping an inode number from 0
    /// to its final value commits a creation).
    pub fn write_u64_persist(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        v: u64,
    ) -> Result<(), ProtError> {
        if !off.is_multiple_of(8) {
            return Err(ProtError::Misaligned);
        }
        self.copy_to_page(actor, page, off, &v.to_le_bytes())?;
        self.flush(page, off, 8);
        self.fence();
        Ok(())
    }

    /// [`Self::write_u64_persist`] with declared publication dependencies:
    /// the byte ranges that must already be durable when this commit store
    /// becomes visible (§4.4 "prepare, persist, then publish"). Under the
    /// `sanitize` feature each dependency line is checked and a
    /// not-yet-durable one records a `publish-before-persist` hazard;
    /// without it the dependencies are documentation.
    pub fn publish_u64(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        v: u64,
        deps: &[(PageId, usize, usize)],
    ) -> Result<(), ProtError> {
        #[cfg(feature = "sanitize")]
        if let Some(t) = &self.tracker {
            for &(dp, doff, dlen) in deps {
                t.assert_durable(dp, doff, dlen);
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = deps;
        self.write_u64_persist(actor, page, off, v)
    }

    /// [`Self::publish_u64`] for the typestate API (DESIGN.md §18): the
    /// dependencies arrive as a [`crate::typestate::Spans`] witness
    /// instead of a slice, so the typed commit point enumerates them
    /// without materializing a `Vec`. Identical store + `clwb` + `sfence`
    /// sequence; under `sanitize` each witnessed line is re-checked
    /// against the tracker (the oracle for forged `assume_durable`
    /// witnesses).
    pub fn publish_u64_spans(
        &self,
        actor: ActorId,
        page: PageId,
        off: usize,
        v: u64,
        deps: &dyn crate::typestate::Spans,
    ) -> Result<(), ProtError> {
        #[cfg(feature = "sanitize")]
        if let Some(t) = &self.tracker {
            deps.for_each(&mut |dp, doff, dlen| t.assert_durable(dp, doff, dlen));
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = deps;
        self.write_u64_persist(actor, page, off, v)
    }

    /// Re-checks a range an [`crate::NvmHandle::assume_durable`] caller
    /// claims is durable: every covered line that is not actually durable
    /// records a `publish-before-persist` hazard, so a forged witness is
    /// caught by the same oracle as a raw early publish.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_assert_durable(&self, page: PageId, off: usize, len: usize) {
        if let Some(t) = &self.tracker {
            t.assert_durable(page, off, len);
        }
    }

    /// `clwb` of the lines covering the range: stages them for the next
    /// [`Self::fence`] (durability advances at the fence, not here) and
    /// charges the (small) flush cost.
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        if let Some(t) = &self.tracker {
            t.flush(page, off, len);
        }
        if in_sim() && len > 0 {
            let lines = (len as u64).div_ceil(CACHE_LINE as u64);
            work(lines * CLWB_LINE_NS);
        }
    }

    /// `sfence`: retires all staged write-backs, making flushed lines
    /// durable for crash injection.
    pub fn fence(&self) {
        if let Some(t) = &self.tracker {
            t.fence();
        }
        if in_sim() {
            work(SFENCE_NS);
        }
    }

    // ---------------------------------------------------------------
    // Privileged interface (kernel controller / integrity verifier).
    // ---------------------------------------------------------------

    /// Programs the MMU: grants `actor` access to `page`. Privileged; the
    /// kernel charges [`trio_sim::cost::MMU_PROGRAM_PAGE_NS`] per call.
    pub fn mmu_map(&self, actor: ActorId, page: PageId, perm: PagePerm) -> Result<(), ProtError> {
        assert_ne!(actor, KERNEL_ACTOR, "kernel needs no mappings");
        self.slot(page)?.lock().prot.map(actor, perm);
        Ok(())
    }

    /// Revokes `actor`'s mapping of `page`.
    pub fn mmu_unmap(&self, actor: ActorId, page: PageId) -> Result<bool, ProtError> {
        Ok(self.slot(page)?.lock().prot.unmap(actor))
    }

    /// Current permission of `actor` on `page`.
    pub fn mmu_perm(&self, actor: ActorId, page: PageId) -> Result<Option<PagePerm>, ProtError> {
        Ok(self.slot(page)?.lock().prot.perm_of(actor))
    }

    /// Clears a page: drops contents (reads as zeros) and all mappings.
    /// Used when the kernel frees or re-allocates a page, so no data leaks
    /// across LibFSes.
    pub fn reset_page(&self, page: PageId) -> Result<(), ProtError> {
        let mut slot = self.slot(page)?.lock();
        if let (Some(t), Some(d)) = (&self.tracker, slot.data.as_deref()) {
            // The disappearance of the old contents is itself a store, and a
            // scrub must be durable before the page is recycled: otherwise a
            // later crash would revert still-unflushed lines to the previous
            // owner's data (a security leak, and stale garbage in any file
            // that reuses the page without rewriting every line).
            t.record_store(page, 0, PAGE_SIZE, Some(d));
            t.flush(page, 0, PAGE_SIZE);
            t.fence();
        }
        slot.data = None;
        slot.prot = PageProt::default();
        slot.csum = None;
        #[cfg(feature = "faults")]
        self.clear_page_poison(page);
        Ok(())
    }

    /// Copies a whole page (checkpointing). Privileged.
    pub fn snapshot_page(&self, page: PageId) -> Result<Box<[u8]>, ProtError> {
        let slot = self.slot(page)?.lock();
        Ok(match &slot.data {
            Some(d) => d.clone(),
            None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
        })
    }

    /// Restores a page image (rollback). Privileged; leaves mappings alone.
    pub fn restore_page(&self, page: PageId, image: &[u8]) -> Result<(), ProtError> {
        assert_eq!(image.len(), PAGE_SIZE);
        let mut slot = self.slot(page)?.lock();
        if let Some(t) = &self.tracker {
            t.record_store(page, 0, PAGE_SIZE, slot.data.as_deref());
            // Rollback writes are made durable on the spot.
            t.flush(page, 0, PAGE_SIZE);
            t.fence();
        }
        slot.ensure_data().copy_from_slice(image);
        slot.csum = None;
        // A full-page restore rewrites every line, repairing media errors.
        #[cfg(feature = "faults")]
        self.clear_page_poison(page);
        Ok(())
    }

    /// Injects a crash: every line not durable (not yet fenced, or fenced
    /// only after an armed [`FaultPlan`] froze durability) is reverted to
    /// its pre-image. Only meaningful with `track_persistence`. The returned
    /// [`CrashReport`] is deterministic for a given sim seed and plan.
    pub fn crash(&self) -> CrashReport {
        #[cfg(feature = "faults")]
        let (points_seen, crash_point) = match &self.tracker {
            Some(t) => (t.points_seen(), t.fired_at()),
            None => (0, None),
        };
        #[cfg(not(feature = "faults"))]
        let (points_seen, crash_point) = (0, None);

        let Some(t) = &self.tracker else {
            return CrashReport {
                lost_lines: 0,
                affected_pages: Vec::new(),
                points_seen,
                crash_point,
            };
        };
        // Sidecar checksums are volatile kernel metadata (like the MMU
        // table): reboot loses them all, and the verifier simply has no
        // sidecar to check until fresh delegated writes repopulate them.
        for slot in &self.pages {
            slot.lock().csum = None;
        }
        let lost = t.drain_for_crash();
        let mut affected_pages: Vec<PageId> = Vec::new();
        for (page, off, img) in &lost {
            if affected_pages.last() != Some(page) {
                affected_pages.push(*page); // Drain is sorted by (page, off).
            }
            if let Ok(slot) = self.slot(*page) {
                let mut slot = slot.lock();
                slot.ensure_data()[*off..*off + img.len()].copy_from_slice(img);
            }
        }
        CrashReport { lost_lines: lost.len(), affected_pages, points_seen, crash_point }
    }

    /// Drops every MMU mapping on the device (except nothing — the kernel
    /// actor never needs one). Recovery uses this to model the loss of all
    /// volatile page-table state at reboot.
    pub fn clear_mappings(&self) {
        for slot in &self.pages {
            slot.lock().prot = PageProt::default();
        }
    }

    /// Revokes **every** mapping `actor` holds, device-wide, and returns
    /// how many pages were unmapped. This is the quarantine hook: when the
    /// kernel confirms an integrity violation it pulls the offending
    /// LibFS's page tables in one sweep, so no further store can land
    /// anywhere — not even on pages the kernel's books say are clean.
    pub fn revoke_actor(&self, actor: ActorId) -> usize {
        let mut revoked = 0;
        for slot in &self.pages {
            if slot.lock().prot.unmap(actor) {
                revoked += 1;
            }
        }
        revoked
    }

    /// Not-yet-durable (unfenced) line count; 0 when tracking is disabled.
    pub fn dirty_lines(&self) -> usize {
        self.tracker.as_ref().map(|t| t.dirty_lines()).unwrap_or(0)
    }

    // ---------------------------------------------------------------
    // Fault injection (only with the `faults` feature).
    // ---------------------------------------------------------------

    /// Arms a crash plan on the persistence tracker.
    ///
    /// # Panics
    ///
    /// Panics if the device was built without `track_persistence` — an
    /// armed plan would silently never fire, which is a test bug.
    #[cfg(feature = "faults")]
    pub fn arm_crash_plan(&self, plan: FaultPlan) {
        self.tracker
            .as_ref()
            .expect("arm_crash_plan requires DeviceConfig::track_persistence")
            .arm(plan);
    }

    /// Persistence points observed so far (0 without tracking).
    #[cfg(feature = "faults")]
    pub fn persistence_points(&self) -> u64 {
        self.tracker.as_ref().map(|t| t.points_seen()).unwrap_or(0)
    }

    /// Whether an armed crash plan has fired, and at which point.
    #[cfg(feature = "faults")]
    pub fn crash_plan_fired(&self) -> Option<u64> {
        self.tracker.as_ref().and_then(|t| t.fired_at())
    }

    /// Marks one cache line as an uncorrectable media error.
    #[cfg(feature = "faults")]
    pub fn poison_line(&self, page: PageId, line: u16) {
        debug_assert!((line as usize) < PAGE_SIZE / CACHE_LINE);
        // The count must move while the set lock is still held: dropping
        // the guard between `insert` and the counter update opens a window
        // where a concurrent `clear_poison` decrements first and the
        // counter transiently underflows (or drifts from the set length).
        let mut set = self.poisoned.lock();
        if set.insert((page.0, line)) {
            self.poison_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clears one poisoned line (e.g. after the file system rewrote it out
    /// of band). Returns whether it was poisoned.
    #[cfg(feature = "faults")]
    pub fn clear_poison(&self, page: PageId, line: u16) -> bool {
        let mut set = self.poisoned.lock();
        let removed = set.remove(&(page.0, line));
        if removed {
            self.poison_count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of currently poisoned lines.
    #[cfg(feature = "faults")]
    pub fn poisoned_lines(&self) -> usize {
        self.poison_count.load(Ordering::Relaxed)
    }

    /// Exact length of the poison set (takes the lock). The patrol-scrub
    /// race test pins [`Self::poisoned_lines`] against this under
    /// concurrent poison/clear/scrub traffic.
    #[cfg(feature = "faults")]
    pub fn poison_set_len(&self) -> usize {
        self.poisoned.lock().len()
    }

    /// Flips one byte of `page` *without* touching the integrity sidecar,
    /// the persistence tracker, or the MMU — silent bit rot, the exact
    /// failure the checksum walk exists to catch. Test-only by
    /// construction: real corruption does not announce itself either.
    #[cfg(feature = "faults")]
    pub fn corrupt_for_test(&self, page: PageId, off: usize) -> Result<(), ProtError> {
        if off >= PAGE_SIZE {
            return Err(ProtError::OutOfRange);
        }
        let mut slot = self.slot(page)?.lock();
        slot.ensure_data()[off] ^= 0x40;
        Ok(())
    }

    #[cfg(feature = "faults")]
    fn clear_page_poison(&self, page: PageId) {
        let mut set = self.poisoned.lock();
        let before = set.len();
        set.retain(|&(p, _)| p != page.0);
        self.poison_count.fetch_sub(before - set.len(), Ordering::Relaxed);
    }
}

/// Media-health probe surface for the patrol scrubber (DESIGN.md §19).
/// Compiled unconditionally so the layout/kernel/verifier crates can call
/// it without feature gymnastics; without `faults` there is no poison
/// model and the probes report a clean device.
impl NvmDevice {
    /// Poisoned cache lines on `page`, sorted. Empty without `faults`.
    pub fn page_poisoned_lines(&self, page: PageId) -> Vec<u16> {
        #[cfg(feature = "faults")]
        {
            if self.poison_count.load(Ordering::Relaxed) == 0 {
                return Vec::new();
            }
            let set = self.poisoned.lock();
            let mut lines: Vec<u16> =
                set.iter().filter(|&&(p, _)| p == page.0).map(|&(_, l)| l).collect();
            lines.sort_unstable();
            lines
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = page;
            Vec::new()
        }
    }

    /// Whether `page` carries at least one poisoned line.
    pub fn page_has_poison(&self, page: PageId) -> bool {
        #[cfg(feature = "faults")]
        {
            if self.poison_count.load(Ordering::Relaxed) == 0 {
                return false;
            }
            return self.poisoned.lock().iter().any(|&(p, _)| p == page.0);
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = page;
            false
        }
    }

    /// Clears every poisoned line on `page` (the scrubber calls this after
    /// rewriting the page from a replica or checkpoint — the rewrite is
    /// what repairs the media; this retires the bookkeeping). Returns the
    /// number of lines cleared. Count and set move under one lock hold.
    pub fn scrub_page(&self, page: PageId) -> usize {
        #[cfg(feature = "faults")]
        {
            let mut set = self.poisoned.lock();
            let before = set.len();
            set.retain(|&(p, _)| p != page.0);
            let cleared = before - set.len();
            self.poison_count.fetch_sub(cleared, Ordering::Relaxed);
            cleared
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = page;
            0
        }
    }

    /// Recomputes `page`'s content hash against its integrity sidecar.
    /// `Ok(None)` when no sidecar is recorded (nothing to verify),
    /// `Ok(Some(true))` on a match, `Ok(Some(false))` on silent bit rot.
    /// Reads the raw slot (privileged, poison-blind): a poisoned line is
    /// the *other* failure mode, surfaced by [`Self::page_poisoned_lines`].
    pub fn page_csum_ok(&self, page: PageId) -> Result<Option<bool>, ProtError> {
        let slot = self.slot(page)?.lock();
        let Some(want) = slot.csum else { return Ok(None) };
        let got = match &slot.data {
            Some(d) => crate::checksum::checksum(d),
            None => crate::checksum::checksum(&[0u8; PAGE_SIZE]),
        };
        Ok(Some(got == want))
    }

    /// Moves a page's contents and integrity sidecar to another page in
    /// one privileged, immediately durable operation — the bad-page
    /// retirement path's migration primitive. The destination's poison
    /// bookkeeping is cleared (every line was just rewritten); the source
    /// is left untouched for the caller to retire. Mappings are the
    /// caller's business. The source must be media-clean — migrating a
    /// poisoned page would launder lost lines into "good" bytes.
    pub fn migrate_page(&self, from: PageId, to: PageId) -> Result<(), ProtError> {
        if self.page_has_poison(from) {
            return Err(ProtError::Poisoned);
        }
        let (img, csum) = {
            let slot = self.slot(from)?.lock();
            let img: Box<[u8]> = match &slot.data {
                Some(d) => d.clone(),
                None => vec![0u8; PAGE_SIZE].into_boxed_slice(),
            };
            (img, slot.csum)
        };
        let mut dst = self.slot(to)?.lock();
        if let Some(t) = &self.tracker {
            t.record_store(to, 0, PAGE_SIZE, dst.data.as_deref());
            t.flush(to, 0, PAGE_SIZE);
            t.fence();
        }
        dst.ensure_data().copy_from_slice(&img);
        dst.csum = csum;
        drop(dst);
        #[cfg(feature = "faults")]
        self.clear_page_poison(to);
        Ok(())
    }

    /// Fault injection: silently flips one byte of `page` *without*
    /// touching the integrity sidecar or the persistence tracker — the
    /// bit-rot failure mode, undetectable by reads and caught only by a
    /// checksum-verifying scrub. Returns whether a sidecar was present
    /// (i.e. whether the rot is detectable at all). Test-only, like
    /// [`Self::poison_line`].
    #[cfg(feature = "faults")]
    pub fn rot_byte(&self, page: PageId, off: usize) -> bool {
        let Ok(slot) = self.slot(page) else { return false };
        let mut slot = slot.lock();
        let data = slot.ensure_data();
        data[off % PAGE_SIZE] ^= 0xFF;
        slot.csum.is_some()
    }

    /// Marks every line of `page` unreadable — uncorrectable-media
    /// containment. The scrubber calls this when a checksum proves a
    /// page's bytes wrong and no replica exists to heal from: failing
    /// loudly on every subsequent read beats silently returning rot.
    /// Returns the number of lines newly fenced off; a no-op (0) without
    /// the `faults` feature, which has no poison model to mark with.
    pub fn fence_off_page(&self, page: PageId) -> usize {
        #[cfg(feature = "faults")]
        {
            if self.slot(page).is_err() {
                return 0;
            }
            let mut set = self.poisoned.lock();
            let mut added = 0;
            for line in 0..(PAGE_SIZE / CACHE_LINE) as u16 {
                if set.insert((page.0, line)) {
                    added += 1;
                }
            }
            self.poison_count.fetch_add(added, Ordering::Relaxed);
            added
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = page;
            0
        }
    }
}

/// Persistence-order sanitizer surface (only with the `sanitize` feature;
/// all methods are no-ops without `track_persistence`).
#[cfg(feature = "sanitize")]
impl NvmDevice {
    /// Quiescence check: records a hazard for every line that is not yet
    /// durable — `missing-flush` for dirty lines, `missing-fence` for
    /// flushed-but-unfenced ones. Call where the workload claims all its
    /// writes have been persisted.
    pub fn sanitize_quiesce_check(&self) {
        if let Some(t) = &self.tracker {
            t.quiesce_check();
        }
    }

    /// Arms or disarms recovery mode: while armed, any read overlapping a
    /// not-yet-durable line records a `read-not-durable` hazard.
    pub fn set_recovery_mode(&self, on: bool) {
        if let Some(t) = &self.tracker {
            t.set_recovery_mode(on);
        }
    }

    /// Hazards observed so far (cheap poll; does not clear).
    pub fn sanitize_hazard_count(&self) -> usize {
        self.tracker.as_ref().map(|t| t.hazard_count()).unwrap_or(0)
    }

    /// Takes all hazards observed so far into a [`SanitizeReport`] tagged
    /// with the run's sim seed, clearing the tracker's hazard list.
    pub fn take_sanitize_report(&self, seed: u64) -> SanitizeReport {
        SanitizeReport {
            seed,
            hazards: self.tracker.as_ref().map(|t| t.take_hazards()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prot::ActorId;

    fn dev() -> NvmDevice {
        NvmDevice::new(DeviceConfig::small())
    }

    #[test]
    fn unmapped_access_faults() {
        let d = dev();
        let a = ActorId(1);
        let mut buf = [0u8; 8];
        assert_eq!(d.copy_from_page(a, PageId(0), 0, &mut buf), Err(ProtError::NotMapped));
        assert_eq!(d.copy_to_page(a, PageId(0), 0, &buf), Err(ProtError::NotMapped));
    }

    #[test]
    fn mapped_write_roundtrips() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(2), PagePerm::Write).unwrap();
        d.copy_to_page(a, PageId(2), 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        d.copy_from_page(a, PageId(2), 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn read_only_mapping_blocks_stores() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(1), PagePerm::Read).unwrap();
        let mut buf = [0u8; 4];
        assert!(d.copy_from_page(a, PageId(1), 0, &mut buf).is_ok());
        assert_eq!(d.copy_to_page(a, PageId(1), 0, &buf), Err(ProtError::ReadOnly));
    }

    #[test]
    fn unallocated_page_reads_zero() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(9), PagePerm::Read).unwrap();
        let mut buf = [7u8; 16];
        d.copy_from_page(a, PageId(9), 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn atomic_u64_alignment_enforced() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        assert_eq!(d.read_u64(a, PageId(0), 4), Err(ProtError::Misaligned));
        d.write_u64_persist(a, PageId(0), 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(d.read_u64(a, PageId(0), 8), Ok(0xDEAD_BEEF));
    }

    #[test]
    fn reset_page_clears_data_and_mappings() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(3), PagePerm::Write).unwrap();
        d.copy_to_page(a, PageId(3), 0, b"secret").unwrap();
        d.reset_page(PageId(3)).unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(d.copy_from_page(a, PageId(3), 0, &mut buf), Err(ProtError::NotMapped));
        // Remap as a different actor: contents must be zeros, not "secret".
        let b = ActorId(2);
        d.mmu_map(b, PageId(3), PagePerm::Read).unwrap();
        d.copy_from_page(b, PageId(3), 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 6]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(5), PagePerm::Write).unwrap();
        d.copy_to_page(a, PageId(5), 0, b"v1").unwrap();
        let snap = d.snapshot_page(PageId(5)).unwrap();
        d.copy_to_page(a, PageId(5), 0, b"v2").unwrap();
        d.restore_page(PageId(5), &snap).unwrap();
        let mut buf = [0u8; 2];
        d.copy_from_page(a, PageId(5), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"v1");
    }

    #[test]
    fn crash_reverts_unflushed_stores() {
        let mut cfg = DeviceConfig::small();
        cfg.track_persistence = true;
        let d = NvmDevice::new(cfg);
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        d.copy_to_page(a, PageId(0), 0, b"durable!").unwrap();
        d.flush(PageId(0), 0, 8);
        d.fence(); // Durability advances at the fence, not the flush.
        d.copy_to_page(a, PageId(0), 64, b"volatile").unwrap();
        assert!(d.dirty_lines() > 0);
        let report = d.crash();
        assert_eq!(report.lost_lines, 1);
        assert_eq!(report.affected_pages, vec![PageId(0)]);
        let mut keep = [0u8; 8];
        d.copy_from_page(a, PageId(0), 0, &mut keep).unwrap();
        assert_eq!(&keep, b"durable!");
        let mut lost = [0u8; 8];
        d.copy_from_page(a, PageId(0), 64, &mut lost).unwrap();
        assert_eq!(lost, [0u8; 8]);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn poisoned_line_faults_reads_until_rewritten() {
        use crate::topology::CACHE_LINE;
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(2), PagePerm::Write).unwrap();
        d.copy_to_page(a, PageId(2), 0, &[7u8; 256]).unwrap();
        d.poison_line(PageId(2), 1);
        let mut buf = [0u8; 8];
        // Reads overlapping line 1 fault; other lines are fine.
        assert_eq!(d.copy_from_page(a, PageId(2), CACHE_LINE, &mut buf), Err(ProtError::Poisoned));
        assert_eq!(
            d.copy_from_page(a, PageId(2), CACHE_LINE - 4, &mut buf),
            Err(ProtError::Poisoned)
        );
        assert!(d.copy_from_page(a, PageId(2), 0, &mut buf).is_ok());
        // A partial store into the bad line faults too...
        assert_eq!(d.copy_to_page(a, PageId(2), CACHE_LINE, &buf), Err(ProtError::Poisoned));
        // ...but a store covering the whole line repairs it.
        d.copy_to_page(a, PageId(2), CACHE_LINE, &[0u8; CACHE_LINE]).unwrap();
        assert_eq!(d.poisoned_lines(), 0);
        assert!(d.copy_from_page(a, PageId(2), CACHE_LINE, &mut buf).is_ok());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn crash_plan_freezes_durability_at_point() {
        use crate::fault::FaultPlan;
        let mut cfg = DeviceConfig::small();
        cfg.track_persistence = true;
        let d = NvmDevice::new(cfg);
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        // Points: store=0 flush=1 fence=2 | store=3 flush=4 fence=5. Crash
        // at point 3: the first store/flush/fence triple is durable, the
        // second store never lands.
        d.arm_crash_plan(FaultPlan::crash_at_point(3));
        d.copy_to_page(a, PageId(0), 0, b"first!!!").unwrap();
        d.flush(PageId(0), 0, 8);
        d.fence();
        d.copy_to_page(a, PageId(0), 64, b"second!!").unwrap();
        d.flush(PageId(0), 64, 8);
        d.fence(); // Frozen: no durable effect.
        let report = d.crash();
        assert_eq!(report.crash_point, Some(3));
        assert_eq!(report.points_seen, 6);
        let mut buf = [0u8; 8];
        d.copy_from_page(a, PageId(0), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"first!!!");
        d.copy_from_page(a, PageId(0), 64, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn csum_sidecar_set_read_and_invalidated_by_plain_stores() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(4), PagePerm::Write).unwrap();
        let img = vec![0x5Au8; PAGE_SIZE];
        let c = crate::checksum::checksum(&img);
        d.copy_to_page_csum(a, PageId(4), 0, &img, Some(c)).unwrap();
        assert_eq!(d.page_csum(PageId(4)).unwrap(), Some(c));
        // Any ordinary store invalidates: the sidecar can no longer vouch.
        d.copy_to_page(a, PageId(4), 16, b"dirty").unwrap();
        assert_eq!(d.page_csum(PageId(4)).unwrap(), None);
        // Scrub clears it too.
        d.copy_to_page_csum(a, PageId(4), 0, &img, Some(c)).unwrap();
        d.reset_page(PageId(4)).unwrap();
        assert_eq!(d.page_csum(PageId(4)).unwrap(), None);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn corrupt_for_test_is_silent_bit_rot() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(6), PagePerm::Write).unwrap();
        let img = vec![0x11u8; PAGE_SIZE];
        let c = crate::checksum::checksum(&img);
        d.copy_to_page_csum(a, PageId(6), 0, &img, Some(c)).unwrap();
        d.corrupt_for_test(PageId(6), 100).unwrap();
        // The sidecar survives (that is the point), but the data changed.
        assert_eq!(d.page_csum(PageId(6)).unwrap(), Some(c));
        let mut buf = vec![0u8; PAGE_SIZE];
        d.copy_from_page(a, PageId(6), 0, &mut buf).unwrap();
        assert_ne!(crate::checksum::checksum(&buf), c);
    }

    #[test]
    fn clear_mappings_drops_all_actors() {
        let d = dev();
        d.mmu_map(ActorId(1), PageId(0), PagePerm::Write).unwrap();
        d.mmu_map(ActorId(2), PageId(3), PagePerm::Read).unwrap();
        d.clear_mappings();
        assert_eq!(d.mmu_perm(ActorId(1), PageId(0)).unwrap(), None);
        assert_eq!(d.mmu_perm(ActorId(2), PageId(3)).unwrap(), None);
    }

    #[test]
    fn cross_page_access_rejected() {
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        let buf = [0u8; 64];
        assert_eq!(d.copy_to_page(a, PageId(0), PAGE_SIZE - 32, &buf), Err(ProtError::OutOfRange));
    }

    #[test]
    fn timed_ops_work_outside_sim_without_charging() {
        // Outside a sim-thread `read`/`write` must not panic.
        let d = dev();
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        d.write(a, 0, PageId(0), 0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        d.read(a, 0, PageId(0), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn timed_ops_charge_inside_sim() {
        use std::sync::Arc;
        use trio_sim::SimRuntime;
        let rt = SimRuntime::new(0);
        let d = Arc::new(dev());
        let a = ActorId(1);
        d.mmu_map(a, PageId(0), PagePerm::Write).unwrap();
        let d2 = Arc::clone(&d);
        rt.spawn("t", move || {
            d2.write(a, 0, PageId(0), 0, &[0u8; 4096]).unwrap();
        });
        let t = rt.run();
        // A 4 KiB write at k=1 costs latency + media time; must be over 500ns.
        assert!(t > 500, "charged {t}ns");
    }
}
