//! Optane-style performance model.
//!
//! Calibrated against the published characterization studies the paper
//! cites (Izraelevitz et al., arXiv:1903.05714; Yang et al., FAST '20) and
//! OdinFS (OSDI '22), whose motivation figures show per-node Optane
//! bandwidth peaking at a small number of concurrent threads and then
//! *collapsing* — dramatically for writes — while remote-NUMA access adds a
//! further multiplicative penalty. These two effects are what make
//! opportunistic delegation (paper §4.5) profitable, so they are the heart
//! of the model.

use trio_sim::Nanos;

use crate::topology::NodeId;

/// Tunable bandwidth/latency model for one device.
#[derive(Clone, Debug)]
pub struct BandwidthModel {
    /// Idle read latency per access (ns).
    pub read_latency_ns: Nanos,
    /// Posted write latency per access (ns).
    pub write_latency_ns: Nanos,
    /// Peak per-node read bandwidth (bytes/ns == GB/s).
    pub node_read_bw: f64,
    /// Peak per-node write bandwidth (bytes/ns == GB/s).
    pub node_write_bw: f64,
    /// Multiplier on transfer time for remote-NUMA reads.
    pub remote_read_penalty: f64,
    /// Multiplier on transfer time for remote-NUMA writes.
    pub remote_write_penalty: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        // ~32 GB/s read and ~11 GB/s write per fully-populated node at the
        // sweet spot, matching the 6-DIMM-per-socket testbed class.
        BandwidthModel {
            read_latency_ns: 300,
            write_latency_ns: 100,
            node_read_bw: 32.0,
            node_write_bw: 11.0,
            remote_read_penalty: 1.7,
            remote_write_penalty: 2.3,
        }
    }
}

/// Relative node efficiency at `k` concurrent readers (fraction of peak
/// bandwidth the node delivers in aggregate). Reads saturate around 8
/// threads, plateau through the delegation-pool sizes, and degrade gently
/// beyond.
fn read_efficiency(k: u32) -> f64 {
    // Per-thread read bandwidth is latency/queue-depth bound (~2.3 GB/s of
    // a 32 GB/s node); aggregate saturates around 12–16 threads and then
    // degrades gently.
    match k {
        0 | 1 => 0.072,
        2 => 0.14,
        3 => 0.21,
        4 => 0.28,
        5..=8 => 0.55,
        9..=12 => 0.80,
        13..=16 => 1.00,
        17..=32 => 0.95,
        33..=64 => 0.85,
        _ => 0.75,
    }
}

/// Relative node efficiency at `k` concurrent writers. Optane's combining
/// buffer keeps up through a bounded pool of writers (OdinFS picks 12 per
/// node) and thrashes beyond; aggregate bandwidth collapses.
fn write_efficiency(k: u32) -> f64 {
    // Single-thread writes run ~2 GB/s (of an 11 GB/s node); the combining
    // buffer keeps up through a bounded pool of writers (OdinFS picks 12
    // per node) and thrashes beyond — aggregate bandwidth collapses.
    match k {
        0 | 1 => 0.18,
        2 => 0.35,
        3 => 0.50,
        4 => 0.65,
        5..=7 => 0.85,
        8..=12 => 1.00,
        13..=16 => 0.60,
        17..=32 => 0.30,
        33..=64 => 0.13,
        _ => 0.07,
    }
}

impl BandwidthModel {
    /// Time for one actor to move `bytes` to/from a node that currently has
    /// `k` concurrent accessors of the same kind (including this one).
    ///
    /// The node's aggregate bandwidth `peak * eff(k)` is shared equally by
    /// the `k` accessors, so per-thread time is
    /// `bytes * k / (peak * eff(k))` plus the access latency, times the
    /// remote penalty when crossing sockets.
    pub fn transfer_ns(&self, bytes: usize, k: u32, is_write: bool, remote: bool) -> Nanos {
        let k = k.max(1);
        let (peak, eff, lat, pen) = if is_write {
            (
                self.node_write_bw,
                write_efficiency(k),
                self.write_latency_ns,
                if remote { self.remote_write_penalty } else { 1.0 },
            )
        } else {
            (
                self.node_read_bw,
                read_efficiency(k),
                self.read_latency_ns,
                if remote { self.remote_read_penalty } else { 1.0 },
            )
        };
        let per_thread_bw = peak * eff / k as f64; // bytes per ns
        let xfer = bytes as f64 / per_thread_bw * pen;
        lat + xfer as Nanos
    }

    /// Bandwidth (GB/s) one thread observes at concurrency `k` — used by
    /// model unit tests and the EXPERIMENTS.md calibration table.
    pub fn observed_bw(&self, k: u32, is_write: bool) -> f64 {
        let t = self.transfer_ns(1 << 20, k, is_write, false);
        (1u64 << 20) as f64 / t as f64
    }

    /// The collapse knee: the largest concurrency at which the node still
    /// delivers (within 0.1% of) its peak aggregate bandwidth. Beyond it,
    /// adding accessors shrinks the aggregate — the regime delegation
    /// exists to prevent. The adaptive policy uses this as its default
    /// delegation threshold (writes: 12, the OdinFS pool size; reads: 16).
    pub fn collapse_knee(&self, is_write: bool) -> u32 {
        let agg = |k: u32| self.observed_bw(k, is_write) * k as f64;
        let peak = (1..=64).map(agg).fold(0.0f64, f64::max);
        (1..=64).rev().find(|&k| agg(k) >= peak * 0.999).unwrap_or(1)
    }
}

/// Per-node concurrency bookkeeping. Entry/exit brackets every transfer so
/// `k` reflects virtual-time overlap.
#[derive(Default, Debug)]
pub struct NodeLoad {
    readers: u32,
    writers: u32,
}

impl NodeLoad {
    /// Registers an accessor; returns the new count of same-kind accessors.
    pub fn enter(&mut self, is_write: bool) -> u32 {
        if is_write {
            self.writers += 1;
            self.writers
        } else {
            self.readers += 1;
            self.readers
        }
    }

    /// Deregisters an accessor.
    pub fn exit(&mut self, is_write: bool) {
        if is_write {
            debug_assert!(self.writers > 0);
            self.writers = self.writers.saturating_sub(1);
        } else {
            debug_assert!(self.readers > 0);
            self.readers = self.readers.saturating_sub(1);
        }
    }

    /// Current same-kind accessor count.
    pub fn level(&self, is_write: bool) -> u32 {
        if is_write {
            self.writers
        } else {
            self.readers
        }
    }
}

/// Identifies which node a transfer targets and whether it is remote from
/// the accessor's perspective.
#[derive(Clone, Copy, Debug)]
pub struct Placement {
    /// Node holding the data.
    pub node: NodeId,
    /// Whether the accessor sits on a different node.
    pub remote: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_write_bandwidth_collapses_past_four() {
        let m = BandwidthModel::default();
        // Aggregate = per-thread observed * k.
        let agg = |k: u32| m.observed_bw(k, true) * k as f64;
        assert!(agg(4) > agg(1) * 1.5, "ramp to the sweet spot");
        assert!(agg(28) < agg(4) * 0.5, "collapse under excessive concurrency");
    }

    #[test]
    fn read_bandwidth_degrades_more_gently() {
        let m = BandwidthModel::default();
        let agg = |k: u32| m.observed_bw(k, false) * k as f64;
        assert!(agg(8) > agg(1));
        // Reads keep over a third of peak even at high thread counts.
        assert!(agg(64) > agg(8) * 0.3);
    }

    #[test]
    fn remote_access_costs_more() {
        let m = BandwidthModel::default();
        let local = m.transfer_ns(1 << 20, 1, true, false);
        let remote = m.transfer_ns(1 << 20, 1, true, true);
        assert!(remote as f64 > local as f64 * 2.0);
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let m = BandwidthModel::default();
        let t = m.transfer_ns(8, 1, false, false);
        assert!((300..400).contains(&t), "8-byte read ~ latency: {t}");
    }

    #[test]
    fn collapse_knee_matches_efficiency_tables() {
        let m = BandwidthModel::default();
        // Writes peak through the 8..=12 plateau (the OdinFS pool size);
        // reads through 13..=16.
        assert_eq!(m.collapse_knee(true), 12);
        assert_eq!(m.collapse_knee(false), 16);
    }

    #[test]
    fn node_load_tracks_levels() {
        let mut l = NodeLoad::default();
        assert_eq!(l.enter(true), 1);
        assert_eq!(l.enter(true), 2);
        assert_eq!(l.enter(false), 1);
        l.exit(true);
        assert_eq!(l.level(true), 1);
        assert_eq!(l.level(false), 1);
    }
}
