//! Persistence-order sanitizer types: hazards and structured reports.
//!
//! Compiled only with the `sanitize` feature (which implies `faults`, so
//! every hazard carries the persistence-point index of the fault engine —
//! the same `(seed, point)` pair that replays a crash replays a hazard).
//!
//! The tracker records hazards instead of panicking: a workload runs to
//! completion, then the harness collects a [`SanitizeReport`] and decides.
//! That keeps hazard detection composable with the crash sweeps (which
//! must run the workload to its end) and makes "the unmutated path is
//! report-clean" a positive assertion rather than the absence of a panic.
//!
//! # Serialization
//!
//! The workspace is dependency-free by policy, so instead of deriving
//! `serde::Serialize` the reports hand-roll the tiny JSON subset they need
//! ([`SanitizeReport::to_json`], [`crate::CrashReport::to_json`]) and CI
//! dumps them with [`dump_artifact`]. The output is plain JSON; anything
//! that can read a serde dump can read these.

use std::fmt;

/// One persistence-ordering violation observed by the tracker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// A line was still `Dirty` (never flushed) at a quiescence check.
    MissingFlush,
    /// A line was still `Flushed` (never fenced) at a quiescence check.
    MissingFence,
    /// A line already staged for write-back was flushed again before any
    /// fence — wasted `clwb` work, and usually a sign of confused
    /// flush bookkeeping.
    RedundantFlush,
    /// A store landed in a line between its flush and the fence — the
    /// queued write-back no longer covers the new bytes, so the code
    /// path's "flush then fence" reasoning is broken.
    StoreWhileFlushed,
    /// A publication (8-byte commit store) declared a dependency on a
    /// range that was not yet durable: readers can observe the commit
    /// before the data it commits.
    PublishBeforePersist,
    /// A recovery path read a line that is not yet durable: it is
    /// consuming bytes a crash at this instant would revert.
    ReadNotDurable,
}

impl HazardKind {
    /// Stable machine-readable name (used in JSON and diagnostics).
    pub fn as_str(self) -> &'static str {
        match self {
            HazardKind::MissingFlush => "missing-flush",
            HazardKind::MissingFence => "missing-fence",
            HazardKind::RedundantFlush => "redundant-flush",
            HazardKind::StoreWhileFlushed => "store-while-flushed",
            HazardKind::PublishBeforePersist => "publish-before-persist",
            HazardKind::ReadNotDurable => "read-not-durable",
        }
    }
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One hazard occurrence: what, where, and when (persistence point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hazard {
    /// The violation class.
    pub kind: HazardKind,
    /// Page holding the offending cache line.
    pub page: u64,
    /// Cache-line index within the page.
    pub line: u16,
    /// Persistence point at which the hazard was observed. With the run's
    /// seed this replays the exact event (same numbering the fault
    /// engine's crash plans use).
    pub point: u64,
}

impl Hazard {
    fn to_json(self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"page\":{},\"line\":{},\"point\":{}}}",
            self.kind.as_str(),
            self.page,
            self.line,
            self.point
        )
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on page {} line {} at persistence point {}",
            self.kind, self.page, self.line, self.point
        )
    }
}

/// The sanitizer's verdict on one run: the sim seed plus every hazard, in
/// observation order. Empty `hazards` means the run was sanitizer-clean.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Seed of the deterministic run that produced these hazards.
    pub seed: u64,
    /// All hazards observed, in persistence-point order.
    pub hazards: Vec<Hazard>,
}

impl SanitizeReport {
    /// `true` when no hazards were observed.
    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Hazards of one kind (mutation tests assert on exactly one class).
    pub fn of_kind(&self, kind: HazardKind) -> Vec<Hazard> {
        self.hazards.iter().copied().filter(|h| h.kind == kind).collect()
    }

    /// Hand-rolled JSON (see module docs for why not serde).
    pub fn to_json(&self) -> String {
        let hazards: Vec<String> = self.hazards.iter().map(|h| h.to_json()).collect();
        format!("{{\"seed\":{},\"hazards\":[{}]}}", self.seed, hazards.join(","))
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "sanitize report: clean (seed {:#x})", self.seed);
        }
        writeln!(
            f,
            "sanitize report: {} hazard(s), seed {:#x} — replay with (seed, point):",
            self.hazards.len(),
            self.seed
        )?;
        for h in &self.hazards {
            writeln!(f, "  {h}")?;
        }
        Ok(())
    }
}

/// Writes a JSON report to `target/sanitize-report.json` (relative to the
/// working directory, which for `cargo test` is the package root) so CI
/// uploads a replayable artifact instead of a truncated panic message.
/// Returns the path written. Errors are returned, not swallowed — but
/// callers on a failure path typically `ok()` them: a failed dump must not
/// mask the test failure itself.
pub fn dump_artifact(json: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("sanitize-report.json");
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let r = SanitizeReport {
            seed: 7,
            hazards: vec![
                Hazard { kind: HazardKind::MissingFence, page: 4, line: 2, point: 19 },
                Hazard { kind: HazardKind::RedundantFlush, page: 9, line: 0, point: 33 },
            ],
        };
        assert_eq!(
            r.to_json(),
            "{\"seed\":7,\"hazards\":[\
             {\"kind\":\"missing-fence\",\"page\":4,\"line\":2,\"point\":19},\
             {\"kind\":\"redundant-flush\",\"page\":9,\"line\":0,\"point\":33}]}"
        );
    }

    #[test]
    fn clean_report() {
        let r = SanitizeReport { seed: 1, hazards: Vec::new() };
        assert!(r.is_clean());
        assert_eq!(r.to_json(), "{\"seed\":1,\"hazards\":[]}");
        assert!(r.to_string().contains("clean"));
    }

    #[test]
    fn display_lists_replay_pairs() {
        let r = SanitizeReport {
            seed: 0xA5,
            hazards: vec![Hazard {
                kind: HazardKind::PublishBeforePersist,
                page: 12,
                line: 3,
                point: 101,
            }],
        };
        let s = r.to_string();
        assert!(s.contains("publish-before-persist"));
        assert!(s.contains("point 101"));
        assert!(s.contains("0xa5"));
    }
}
