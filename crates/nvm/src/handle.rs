//! Unprivileged per-actor access handle.
//!
//! An [`NvmHandle`] is a LibFS's "virtual address space window" onto the
//! device: every access is checked against the MMU state for the handle's
//! actor. Threads declare their NUMA placement with [`set_home_node`];
//! accesses to other nodes pay the remote penalty.

use std::cell::Cell;
use std::sync::Arc;

use crate::device::NvmDevice;
use crate::prot::{ActorId, ProtError};
use crate::topology::{NodeId, PageId, PAGE_SIZE};

thread_local! {
    static HOME_NODE: Cell<NodeId> = const { Cell::new(0) };
}

/// Declares the calling thread's NUMA node (sticks for the thread's life).
pub fn set_home_node(node: NodeId) {
    HOME_NODE.with(|h| h.set(node));
}

/// The calling thread's NUMA node.
pub fn home_node() -> NodeId {
    HOME_NODE.with(|h| h.get())
}

/// A per-actor (per-LibFS) view of the device.
#[derive(Clone)]
pub struct NvmHandle {
    dev: Arc<NvmDevice>,
    actor: ActorId,
}

impl NvmHandle {
    /// Creates a handle for `actor`. Handing out a handle grants no access
    /// by itself — the MMU state does.
    pub fn new(dev: Arc<NvmDevice>, actor: ActorId) -> Self {
        NvmHandle { dev, actor }
    }

    /// The actor this handle authenticates as.
    pub fn actor(&self) -> ActorId {
        self.actor
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<NvmDevice> {
        &self.dev
    }

    /// Timed read within one page.
    pub fn read(&self, page: PageId, off: usize, buf: &mut [u8]) -> Result<(), ProtError> {
        self.dev.read(self.actor, home_node(), page, off, buf)
    }

    /// Timed write within one page.
    pub fn write(&self, page: PageId, off: usize, data: &[u8]) -> Result<(), ProtError> {
        self.dev.write(self.actor, home_node(), page, off, data)
    }

    /// Untimed read (callers charge per extent via [`NvmHandle::read_extent`]
    /// or deliberately model zero-cost cached access).
    pub fn read_untimed(&self, page: PageId, off: usize, buf: &mut [u8]) -> Result<(), ProtError> {
        self.dev.copy_from_page(self.actor, page, off, buf)
    }

    /// Untimed write.
    pub fn write_untimed(&self, page: PageId, off: usize, data: &[u8]) -> Result<(), ProtError> {
        self.dev.copy_to_page(self.actor, page, off, data)
    }

    /// 8-byte read.
    pub fn read_u64(&self, page: PageId, off: usize) -> Result<u64, ProtError> {
        self.dev.read_u64(self.actor, page, off)
    }

    /// 8-byte atomic durable store (§4.4 publication primitive).
    pub fn write_u64_persist(&self, page: PageId, off: usize, v: u64) -> Result<(), ProtError> {
        self.dev.write_u64_persist(self.actor, page, off, v)
    }

    /// [`Self::write_u64_persist`] with declared publication dependencies:
    /// byte ranges `(page, off, len)` that must already be durable when
    /// this commit store lands. The persistence-order sanitizer checks
    /// them (`sanitize` feature); otherwise they are documentation.
    pub fn publish_u64(
        &self,
        page: PageId,
        off: usize,
        v: u64,
        deps: &[(PageId, usize, usize)],
    ) -> Result<(), ProtError> {
        self.dev.publish_u64(self.actor, page, off, v, deps)
    }

    /// `clwb` + bookkeeping for a range.
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        self.dev.flush(page, off, len);
    }

    /// `sfence`.
    pub fn fence(&self) {
        self.dev.fence();
    }

    /// Reads a byte range spanning `pages` (each holding `PAGE_SIZE` bytes
    /// of the extent, in order) starting at byte `start` within the extent.
    /// Charges the media cost once per node-contiguous run of pages, so a
    /// large sequential access costs `O(nodes)` scheduler events instead of
    /// `O(pages)`.
    pub fn read_extent(
        &self,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        self.extent_op(pages, start, buf.len(), false, |page, off, pos, len, me, b: &mut [u8]| {
            me.dev.copy_from_page(me.actor, page, off, &mut b[pos..pos + len])
        }, buf)
    }

    /// Writes a byte range spanning `pages` starting at byte `start`.
    /// Data is flushed per page (persistent-write model).
    pub fn write_extent(
        &self,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        let mut data_mut = data; // Only read; unified helper wants one buffer type.
        let res = self.extent_op(
            pages,
            start,
            data.len(),
            true,
            |page, off, pos, len, me, b: &mut &[u8]| {
                me.dev.copy_to_page(me.actor, page, off, &b[pos..pos + len])?;
                me.dev.flush(page, off, len);
                Ok(())
            },
            &mut data_mut,
        );
        if res.is_ok() {
            self.dev.fence();
        }
        res
    }

    /// [`Self::write_extent`] with inline streaming integrity (DESIGN.md
    /// §17): the one pass that moves each byte into NVM also folds it into
    /// a seahash-style checksum, and every segment that covers a whole page
    /// records its digest in the page's sidecar atomically with the store.
    /// Partial head/tail segments cannot vouch for bytes outside the write,
    /// so they invalidate the sidecar exactly as an ordinary store would.
    /// Used by delegation workers, where the payload arrives by grant
    /// reference and this is the only traversal the data ever gets.
    pub fn write_extent_hashed(
        &self,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<(), ProtError> {
        let mut data_mut = data;
        let res = self.extent_op(
            pages,
            start,
            data.len(),
            true,
            |page, off, pos, len, me, b: &mut &[u8]| {
                let seg = &b[pos..pos + len];
                let csum =
                    (off == 0 && len == PAGE_SIZE).then(|| crate::checksum::checksum(seg));
                me.dev.copy_to_page_csum(me.actor, page, off, seg, csum)?;
                me.dev.flush(page, off, len);
                Ok(())
            },
            &mut data_mut,
        );
        if res.is_ok() {
            self.dev.fence();
        }
        res
    }

    #[allow(clippy::needless_range_loop)] // `pi` also derives byte offsets
    fn extent_op<B: ?Sized>(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
        is_write: bool,
        mut op: impl FnMut(PageId, usize, usize, usize, &Self, &mut B) -> Result<(), ProtError>,
        buf: &mut B,
    ) -> Result<(), ProtError> {
        if len == 0 {
            return Ok(());
        }
        if start + len > pages.len() * PAGE_SIZE {
            return Err(ProtError::OutOfRange);
        }
        let topo = self.dev.topology();
        let home = home_node();
        // Pass 1: charge once per node-contiguous run.
        let first_page = start / PAGE_SIZE;
        let last_page = (start + len - 1) / PAGE_SIZE;
        let mut run_node = topo.node_of(pages[first_page]);
        let mut run_bytes = 0usize;
        for pi in first_page..=last_page {
            let page_start = pi * PAGE_SIZE;
            let seg_start = start.max(page_start);
            let seg_end = (start + len).min(page_start + PAGE_SIZE);
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                self.dev.charge_transfer(run_node, run_bytes, is_write, home);
                run_node = node;
                run_bytes = 0;
            }
            run_bytes += seg_end - seg_start;
        }
        self.dev.charge_transfer(run_node, run_bytes, is_write, home);
        // Pass 2: per-page copies (no timing).
        let mut pos = 0usize;
        for pi in first_page..=last_page {
            let page_start = pi * PAGE_SIZE;
            let seg_start = start.max(page_start);
            let seg_end = (start + len).min(page_start + PAGE_SIZE);
            let seg_len = seg_end - seg_start;
            op(pages[pi], seg_start - page_start, pos, seg_len, self, buf)?;
            pos += seg_len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::prot::PagePerm;

    fn setup() -> (Arc<NvmDevice>, NvmHandle) {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(Arc::clone(&dev), ActorId(1));
        (dev, h)
    }

    #[test]
    fn extent_roundtrip_across_pages() {
        let (dev, h) = setup();
        let pages = [PageId(10), PageId(11), PageId(12)];
        for p in pages {
            dev.mmu_map(ActorId(1), p, PagePerm::Write).unwrap();
        }
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        h.write_extent(&pages, 100, &data).unwrap();
        let mut out = vec![0u8; 9000];
        h.read_extent(&pages, 100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn extent_out_of_range() {
        let (dev, h) = setup();
        dev.mmu_map(ActorId(1), PageId(0), PagePerm::Write).unwrap();
        let pages = [PageId(0)];
        let mut buf = [0u8; 16];
        assert_eq!(h.read_extent(&pages, PAGE_SIZE - 8, &mut buf), Err(ProtError::OutOfRange));
    }

    #[test]
    fn extent_respects_protection() {
        let (dev, h) = setup();
        let pages = [PageId(1), PageId(2)];
        dev.mmu_map(ActorId(1), pages[0], PagePerm::Write).unwrap();
        // pages[1] unmapped: the write must fault.
        let data = vec![3u8; PAGE_SIZE + 10];
        assert_eq!(h.write_extent(&pages, 0, &data), Err(ProtError::NotMapped));
    }

    #[test]
    fn hashed_extent_records_sidecars_on_full_pages_only() {
        let (dev, h) = setup();
        let pages = [PageId(20), PageId(21), PageId(22)];
        for p in pages {
            dev.mmu_map(ActorId(1), p, PagePerm::Write).unwrap();
        }
        // Start mid-page: head and tail are partial, the middle page full.
        let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        h.write_extent_hashed(&pages, 100, &data).unwrap();
        assert_eq!(dev.page_csum(pages[0]).unwrap(), None);
        let mid = &data[PAGE_SIZE - 100..2 * PAGE_SIZE - 100];
        assert_eq!(dev.page_csum(pages[1]).unwrap(), Some(crate::checksum::checksum(mid)));
        assert_eq!(dev.page_csum(pages[2]).unwrap(), None);
        // The data itself round-trips identically to the plain path.
        let mut out = vec![0u8; data.len()];
        h.read_extent(&pages, 100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn home_node_tls_defaults_to_zero() {
        assert_eq!(home_node(), 0);
        set_home_node(3);
        assert_eq!(home_node(), 3);
        set_home_node(0);
    }

    #[test]
    fn empty_extent_is_noop() {
        let (_, h) = setup();
        let mut buf = [0u8; 0];
        h.read_extent(&[], 0, &mut buf).unwrap();
    }
}
