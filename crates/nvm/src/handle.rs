//! Unprivileged per-actor access handle.
//!
//! An [`NvmHandle`] is a LibFS's "virtual address space window" onto the
//! device: every access is checked against the MMU state for the handle's
//! actor. Threads declare their NUMA placement with [`set_home_node`];
//! accesses to other nodes pay the remote penalty.

use std::cell::Cell;
use std::sync::Arc;

use crate::device::NvmDevice;
use crate::prot::{ActorId, ProtError};
use crate::topology::{NodeId, PageId, PAGE_SIZE};
use crate::typestate::{Dirty, Durable, ExtentProof, Flushed, Span, Spans};

thread_local! {
    static HOME_NODE: Cell<NodeId> = const { Cell::new(0) };
}

/// Declares the calling thread's NUMA node (sticks for the thread's life).
pub fn set_home_node(node: NodeId) {
    HOME_NODE.with(|h| h.set(node));
}

/// The calling thread's NUMA node.
pub fn home_node() -> NodeId {
    HOME_NODE.with(|h| h.get())
}

/// A per-actor (per-LibFS) view of the device.
#[derive(Clone)]
pub struct NvmHandle {
    dev: Arc<NvmDevice>,
    actor: ActorId,
}

impl NvmHandle {
    /// Creates a handle for `actor`. Handing out a handle grants no access
    /// by itself — the MMU state does.
    pub fn new(dev: Arc<NvmDevice>, actor: ActorId) -> Self {
        NvmHandle { dev, actor }
    }

    /// The actor this handle authenticates as.
    pub fn actor(&self) -> ActorId {
        self.actor
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<NvmDevice> {
        &self.dev
    }

    /// Timed read within one page.
    pub fn read(&self, page: PageId, off: usize, buf: &mut [u8]) -> Result<(), ProtError> {
        self.dev.read(self.actor, home_node(), page, off, buf)
    }

    /// Timed write within one page.
    pub fn write(&self, page: PageId, off: usize, data: &[u8]) -> Result<(), ProtError> {
        self.dev.write(self.actor, home_node(), page, off, data)
    }

    /// Untimed read (callers charge per extent via [`NvmHandle::read_extent`]
    /// or deliberately model zero-cost cached access).
    pub fn read_untimed(&self, page: PageId, off: usize, buf: &mut [u8]) -> Result<(), ProtError> {
        self.dev.copy_from_page(self.actor, page, off, buf)
    }

    /// Untimed write.
    pub fn write_untimed(&self, page: PageId, off: usize, data: &[u8]) -> Result<(), ProtError> {
        self.dev.copy_to_page(self.actor, page, off, data)
    }

    /// 8-byte read.
    pub fn read_u64(&self, page: PageId, off: usize) -> Result<u64, ProtError> {
        self.dev.read_u64(self.actor, page, off)
    }

    /// 8-byte atomic durable store (§4.4 publication primitive).
    pub fn write_u64_persist(&self, page: PageId, off: usize, v: u64) -> Result<(), ProtError> {
        self.dev.write_u64_persist(self.actor, page, off, v)
    }

    // -----------------------------------------------------------------
    // Typestate persist pipeline (DESIGN.md §18): Dirty -> Flushed ->
    // Durable, with publish_u64 as the only dependent commit point.
    // Each method performs exactly the hardware step its raw predecessor
    // did — same stores, same clwb/sfence costs, same sanitizer events —
    // the tokens only add compile-time ordering evidence.
    // -----------------------------------------------------------------

    /// Untimed store returning a [`Dirty`] token for the written range —
    /// the entry point of the typestate pipeline.
    pub fn write_dirty(
        &self,
        page: PageId,
        off: usize,
        data: &[u8],
    ) -> Result<Dirty<Span>, ProtError> {
        self.dev.copy_to_page(self.actor, page, off, data)?;
        Ok(Dirty::new(Span::new(page, off, data.len())))
    }

    /// 8-byte store (no flush, no fence) returning its [`Dirty`] token:
    /// for protocols that batch several word stores under one flush/fence
    /// pair (e.g. the rename journal record).
    pub fn store_u64_dirty(
        &self,
        page: PageId,
        off: usize,
        v: u64,
    ) -> Result<Dirty<Span>, ProtError> {
        if !off.is_multiple_of(8) {
            return Err(ProtError::Misaligned);
        }
        self.write_dirty(page, off, &v.to_le_bytes())
    }

    /// Mints a [`Dirty`] token for ranges the caller already stored via
    /// [`Self::write`]/[`Self::write_untimed`] (e.g. a batch of index
    /// entries flushed as one coalesced range). Safe in the claiming
    /// direction: declaring clean bytes dirty only costs an extra
    /// write-back; the unsafe direction — claiming durability — stays
    /// gated behind the fence.
    pub fn dirty_spans(&self, spans: Vec<Span>) -> Dirty<Vec<Span>> {
        Dirty::new(spans)
    }

    /// `clwb` of every range the token carries, consuming [`Dirty`] into
    /// [`Flushed`]. One flush call per span: callers batching stores that
    /// share cache lines should carry one coalesced span (the sanitizer
    /// flags per-line re-flushes as `redundant-flush`).
    pub fn flush_dirty<T: Spans>(&self, d: Dirty<T>) -> Flushed<T> {
        let t = d.into_inner();
        t.for_each(&mut |page, off, len| self.dev.flush(page, off, len));
        Flushed::new(t)
    }

    /// `sfence`, consuming [`Flushed`] into a [`Durable`] witness. The
    /// fence is global: one call retires every staged line, so join
    /// tokens with [`Flushed::and`] rather than fencing per range.
    pub fn fence_flushed<T>(&self, f: Flushed<T>) -> Durable<T> {
        self.dev.fence();
        Durable::new(f.into_inner())
    }

    /// Flush + fence in one step (the common single-range persist).
    pub fn persist_dirty<T: Spans>(&self, d: Dirty<T>) -> Durable<T> {
        self.fence_flushed(self.flush_dirty(d))
    }

    /// [`Self::write_u64_persist`] as a dependent commit point: the typed
    /// §4.4 publication primitive. The store only type-checks with a
    /// [`Durable`] witness, so publish-before-persist, missing-flush and
    /// missing-fence are compile errors. Under `sanitize` every witnessed
    /// range is additionally re-checked against the persistence tracker —
    /// the runtime oracle that the token (or an [`Self::assume_durable`]
    /// escape) is truthful.
    pub fn publish_u64<T: Spans>(
        &self,
        page: PageId,
        off: usize,
        v: u64,
        deps: &Durable<T>,
    ) -> Result<(), ProtError> {
        self.dev.publish_u64_spans(self.actor, page, off, v, deps.witness())
    }

    /// Untyped escape hatch: [`Self::publish_u64`] with raw
    /// `(page, off, len)` dependency tuples and no compile-time evidence.
    /// Reserved for `trio-nvm` internals and test harnesses that
    /// deliberately construct hazards — the `raw-publish` xtask lint
    /// forbids it elsewhere.
    pub fn publish_u64_raw(
        &self,
        page: PageId,
        off: usize,
        v: u64,
        deps: &[(PageId, usize, usize)],
    ) -> Result<(), ProtError> {
        self.dev.publish_u64(self.actor, page, off, v, deps)
    }

    /// Escape hatch minting a [`Durable`] witness from a *claim* instead
    /// of a fence — for ranges whose durability predates this process
    /// (e.g. a slot published in a previous mount). Under `sanitize` the
    /// claim is checked immediately: a forged witness records the same
    /// `publish-before-persist` hazard a raw early publish would.
    /// Restricted by the `raw-publish` lint outside `trio-nvm`.
    pub fn assume_durable(&self, page: PageId, off: usize, len: usize) -> Durable<Span> {
        #[cfg(feature = "sanitize")]
        self.dev.sanitize_assert_durable(page, off, len);
        Durable::new(Span::new(page, off, len))
    }

    /// `clwb` + bookkeeping for a range. Raw half of the typestate
    /// pipeline — outside `trio-nvm`, use [`Self::flush_dirty`] (the
    /// `raw-publish` lint enforces this in shipped crates).
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        self.dev.flush(page, off, len);
    }

    /// `sfence`. Raw half of the typestate pipeline — outside `trio-nvm`,
    /// use [`Self::fence_flushed`].
    pub fn fence(&self) {
        self.dev.fence();
    }

    /// Reads a byte range spanning `pages` (each holding `PAGE_SIZE` bytes
    /// of the extent, in order) starting at byte `start` within the extent.
    /// Charges the media cost once per node-contiguous run of pages, so a
    /// large sequential access costs `O(nodes)` scheduler events instead of
    /// `O(pages)`.
    pub fn read_extent(
        &self,
        pages: &[PageId],
        start: usize,
        buf: &mut [u8],
    ) -> Result<(), ProtError> {
        self.extent_op(pages, start, buf.len(), false, |page, off, pos, len, me, b: &mut [u8]| {
            me.dev.copy_from_page(me.actor, page, off, &mut b[pos..pos + len])
        }, buf)
    }

    /// Writes a byte range spanning `pages` starting at byte `start`.
    /// Data is flushed per page and fenced before returning
    /// (persistent-write model), so the returned [`Durable`] witness is
    /// minted by construction.
    pub fn write_extent(
        &self,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<Durable<ExtentProof>, ProtError> {
        let mut data_mut = data; // Only read; unified helper wants one buffer type.
        self.extent_op(
            pages,
            start,
            data.len(),
            true,
            |page, off, pos, len, me, b: &mut &[u8]| {
                me.dev.copy_to_page(me.actor, page, off, &b[pos..pos + len])?;
                me.dev.flush(page, off, len);
                Ok(())
            },
            &mut data_mut,
        )?;
        self.dev.fence();
        Ok(Durable::new(ExtentProof::new(data.len())))
    }

    /// [`Self::write_extent`] with inline streaming integrity (DESIGN.md
    /// §17): the one pass that moves each byte into NVM also folds it into
    /// a seahash-style checksum, and every segment that covers a whole page
    /// records its digest in the page's sidecar atomically with the store.
    /// Partial head/tail segments cannot vouch for bytes outside the write,
    /// so they invalidate the sidecar exactly as an ordinary store would.
    /// Used by delegation workers, where the payload arrives by grant
    /// reference and this is the only traversal the data ever gets.
    pub fn write_extent_hashed(
        &self,
        pages: &[PageId],
        start: usize,
        data: &[u8],
    ) -> Result<Durable<ExtentProof>, ProtError> {
        let mut data_mut = data;
        self.extent_op(
            pages,
            start,
            data.len(),
            true,
            |page, off, pos, len, me, b: &mut &[u8]| {
                let seg = &b[pos..pos + len];
                let csum =
                    (off == 0 && len == PAGE_SIZE).then(|| crate::checksum::checksum(seg));
                me.dev.copy_to_page_csum(me.actor, page, off, seg, csum)?;
                me.dev.flush(page, off, len);
                Ok(())
            },
            &mut data_mut,
        )?;
        self.dev.fence();
        Ok(Durable::new(ExtentProof::new(data.len())))
    }

    #[allow(clippy::needless_range_loop)] // `pi` also derives byte offsets
    fn extent_op<B: ?Sized>(
        &self,
        pages: &[PageId],
        start: usize,
        len: usize,
        is_write: bool,
        mut op: impl FnMut(PageId, usize, usize, usize, &Self, &mut B) -> Result<(), ProtError>,
        buf: &mut B,
    ) -> Result<(), ProtError> {
        if len == 0 {
            return Ok(());
        }
        if start + len > pages.len() * PAGE_SIZE {
            return Err(ProtError::OutOfRange);
        }
        let topo = self.dev.topology();
        let home = home_node();
        // Pass 1: charge once per node-contiguous run.
        let first_page = start / PAGE_SIZE;
        let last_page = (start + len - 1) / PAGE_SIZE;
        let mut run_node = topo.node_of(pages[first_page]);
        let mut run_bytes = 0usize;
        for pi in first_page..=last_page {
            let page_start = pi * PAGE_SIZE;
            let seg_start = start.max(page_start);
            let seg_end = (start + len).min(page_start + PAGE_SIZE);
            let node = topo.node_of(pages[pi]);
            if node != run_node {
                self.dev.charge_transfer(run_node, run_bytes, is_write, home);
                run_node = node;
                run_bytes = 0;
            }
            run_bytes += seg_end - seg_start;
        }
        self.dev.charge_transfer(run_node, run_bytes, is_write, home);
        // Pass 2: per-page copies (no timing).
        let mut pos = 0usize;
        for pi in first_page..=last_page {
            let page_start = pi * PAGE_SIZE;
            let seg_start = start.max(page_start);
            let seg_end = (start + len).min(page_start + PAGE_SIZE);
            let seg_len = seg_end - seg_start;
            op(pages[pi], seg_start - page_start, pos, seg_len, self, buf)?;
            pos += seg_len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::prot::PagePerm;

    fn setup() -> (Arc<NvmDevice>, NvmHandle) {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(Arc::clone(&dev), ActorId(1));
        (dev, h)
    }

    #[test]
    fn extent_roundtrip_across_pages() {
        let (dev, h) = setup();
        let pages = [PageId(10), PageId(11), PageId(12)];
        for p in pages {
            dev.mmu_map(ActorId(1), p, PagePerm::Write).unwrap();
        }
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        h.write_extent(&pages, 100, &data).unwrap();
        let mut out = vec![0u8; 9000];
        h.read_extent(&pages, 100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn extent_out_of_range() {
        let (dev, h) = setup();
        dev.mmu_map(ActorId(1), PageId(0), PagePerm::Write).unwrap();
        let pages = [PageId(0)];
        let mut buf = [0u8; 16];
        assert_eq!(h.read_extent(&pages, PAGE_SIZE - 8, &mut buf), Err(ProtError::OutOfRange));
    }

    #[test]
    fn extent_respects_protection() {
        let (dev, h) = setup();
        let pages = [PageId(1), PageId(2)];
        dev.mmu_map(ActorId(1), pages[0], PagePerm::Write).unwrap();
        // pages[1] unmapped: the write must fault.
        let data = vec![3u8; PAGE_SIZE + 10];
        assert_eq!(h.write_extent(&pages, 0, &data), Err(ProtError::NotMapped));
    }

    #[test]
    fn hashed_extent_records_sidecars_on_full_pages_only() {
        let (dev, h) = setup();
        let pages = [PageId(20), PageId(21), PageId(22)];
        for p in pages {
            dev.mmu_map(ActorId(1), p, PagePerm::Write).unwrap();
        }
        // Start mid-page: head and tail are partial, the middle page full.
        let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        h.write_extent_hashed(&pages, 100, &data).unwrap();
        assert_eq!(dev.page_csum(pages[0]).unwrap(), None);
        let mid = &data[PAGE_SIZE - 100..2 * PAGE_SIZE - 100];
        assert_eq!(dev.page_csum(pages[1]).unwrap(), Some(crate::checksum::checksum(mid)));
        assert_eq!(dev.page_csum(pages[2]).unwrap(), None);
        // The data itself round-trips identically to the plain path.
        let mut out = vec![0u8; data.len()];
        h.read_extent(&pages, 100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn home_node_tls_defaults_to_zero() {
        assert_eq!(home_node(), 0);
        set_home_node(3);
        assert_eq!(home_node(), 3);
        set_home_node(0);
    }

    #[test]
    fn empty_extent_is_noop() {
        let (_, h) = setup();
        let mut buf = [0u8; 0];
        h.read_extent(&[], 0, &mut buf).unwrap();
    }
}
