//! Cache-line persistence tracking, crash injection, and (with the
//! `sanitize` feature) persistence-order hazard detection.
//!
//! Every store records the *last-persisted* image of each cache line it
//! dirties, and the line walks a three-state machine:
//!
//! ```text
//!   store            flush             fence
//! ───────▶  Dirty  ────────▶ Flushed ────────▶ durable (dropped)
//!             ▲                  │ store
//!             └──────────────────┘  (StoreWhileFlushed hazard)
//! ```
//!
//! A line becomes durable only at the **fence** following its flush — a
//! `clwb` alone queues the write-back but guarantees nothing until the
//! next `sfence` retires. Injecting a crash restores every line that has
//! not reached the durable state to its pre-image, so both a missing
//! flush *and* a missing fence are caught by the crash-consistency
//! sweeps. (Earlier revisions treated a flushed line as durable at flush
//! time; that blind spot is exactly what this module now closes.)
//!
//! With the `faults` feature, the tracker additionally numbers every
//! *persistence point* (each recorded store, each flush, and each fence)
//! and can be armed with a [`FaultPlan`]: once point `crash_at` is
//! reached the tracker **freezes** — later fences stop promoting flushed
//! lines — so a subsequent crash reverts the media to its durable state
//! *as of that point*. See [`crate::fault`] for the model.
//!
//! With the `sanitize` feature (which implies `faults`), the tracker also
//! records ordering [`Hazard`]s: redundant flushes, stores into a
//! flushed-but-unfenced line, publications whose declared dependencies
//! are not yet durable, recovery-path reads of not-yet-durable lines, and
//! — at an explicit quiescence check — lines that never got their flush
//! or fence. Each hazard carries the persistence-point index at which it
//! was observed, so `(seed, point)` replays it exactly like a crash.

use std::collections::HashMap;

use trio_sim::plock::Mutex;

#[cfg(feature = "faults")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(feature = "faults")]
use trio_sim::{in_sim, rng::with_rng};

#[cfg(feature = "faults")]
use crate::fault::FaultPlan;
#[cfg(feature = "sanitize")]
use crate::sanitize::{Hazard, HazardKind};
use crate::topology::{PageId, CACHE_LINE, PAGE_SIZE};

/// Sentinel for "no plan armed" / "plan never fired".
#[cfg(feature = "faults")]
const UNSET: u64 = u64::MAX;

/// Where a tracked (not yet durable) line sits in the state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LinePhase {
    /// Stored but not flushed: lost on any crash.
    Dirty,
    /// Flushed (`clwb`) but not fenced: still lost on a crash — the
    /// write-back has been queued, not retired.
    Flushed,
}

/// Pre-image and phase of one tracked cache line.
struct LineState {
    /// First-store-wins image of the line's last durable contents.
    preimage: [u8; CACHE_LINE],
    phase: LinePhase,
}

/// Pre-images and phases of all not-yet-durable cache lines.
#[derive(Default)]
pub struct PersistTracker {
    lines: Mutex<HashMap<(u64, u16), LineState>>,
    /// Persistence points observed so far (stores + flushes + fences).
    #[cfg(feature = "faults")]
    points: AtomicU64,
    /// Point index at which to freeze durability; `UNSET` = disarmed.
    #[cfg(feature = "faults")]
    crash_at: AtomicU64,
    /// Once set, fences no longer promote flushed lines to durable.
    #[cfg(feature = "faults")]
    frozen: AtomicBool,
    /// Point at which the plan fired; `UNSET` until then.
    #[cfg(feature = "faults")]
    fired_at: AtomicU64,
    /// Torn-store mode of the armed plan (see [`FaultPlan::torn`]).
    #[cfg(feature = "faults")]
    torn: AtomicBool,
    /// Ordering hazards observed so far.
    #[cfg(feature = "sanitize")]
    hazards: Mutex<Vec<Hazard>>,
    /// When set, reads overlapping a not-yet-durable line are hazards:
    /// a recovery path is consuming data a crash could still take away.
    #[cfg(feature = "sanitize")]
    recovery_mode: AtomicBool,
}

impl PersistTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        let t = Self::default();
        #[cfg(feature = "faults")]
        {
            t.crash_at.store(UNSET, Ordering::Relaxed);
            t.fired_at.store(UNSET, Ordering::Relaxed);
        }
        t
    }

    /// Counts one persistence point, freezing if the armed plan's point is
    /// reached. Returns the index of the point just consumed (always 0
    /// without the `faults` feature, where nothing is counted).
    #[inline]
    fn point_tick(&self) -> u64 {
        #[cfg(feature = "faults")]
        {
            let p = self.points.fetch_add(1, Ordering::Relaxed);
            if p == self.crash_at.load(Ordering::Relaxed) {
                self.frozen.store(true, Ordering::Relaxed);
                self.fired_at.store(p, Ordering::Relaxed);
            }
            p
        }
        #[cfg(not(feature = "faults"))]
        0
    }

    #[inline]
    fn is_frozen(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.frozen.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// Records an ordering hazard, stamped with the index of the most
    /// recent persistence point (for event-coupled hazards that is the
    /// offending event itself; for quiescence/read checks it is the last
    /// event before the check).
    #[cfg(feature = "sanitize")]
    fn hazard(&self, kind: HazardKind, page: u64, line: u16) {
        let point = self.points.load(Ordering::Relaxed).saturating_sub(1);
        self.hazards.lock().push(Hazard { kind, page, line, point });
    }

    /// Arms a crash plan: durability freezes at persistence point
    /// `plan.crash_at`. Re-arming replaces the previous plan (only a plan
    /// that has not yet fired can be replaced meaningfully).
    #[cfg(feature = "faults")]
    pub fn arm(&self, plan: FaultPlan) {
        self.fired_at.store(UNSET, Ordering::Relaxed);
        self.torn.store(plan.torn, Ordering::Relaxed);
        self.crash_at.store(plan.crash_at, Ordering::Relaxed);
    }

    /// Persistence points observed so far.
    #[cfg(feature = "faults")]
    pub fn points_seen(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// The point at which the armed plan fired, if it has.
    #[cfg(feature = "faults")]
    pub fn fired_at(&self) -> Option<u64> {
        match self.fired_at.load(Ordering::Relaxed) {
            UNSET => None,
            p => Some(p),
        }
    }

    /// Records pre-images for the lines of `page` covered by
    /// `[off, off+len)`, given the page's current (pre-store) contents.
    /// `current` is the full page; `None` means the page reads as zeros.
    ///
    /// Counts one persistence point. Stores after a freeze still record
    /// pre-images (they will be reverted by the crash): for a line that was
    /// durable at freeze time, the page content at store time *is* its
    /// durable image, so first-store-wins capture remains correct.
    ///
    /// A store into a `Flushed` line demotes it back to `Dirty` (the
    /// queued write-back no longer covers the new bytes) and, under
    /// `sanitize`, records a [`HazardKind::StoreWhileFlushed`] hazard.
    pub fn record_store(&self, page: PageId, off: usize, len: usize, current: Option<&[u8]>) {
        self.record_store_inner(page, off, len, current, None);
    }

    /// Like [`Self::record_store`], but with the store's actual bytes, so
    /// an armed torn-store plan firing at exactly this point can let an
    /// aligned 8-byte prefix of the store escape to media (the escaped
    /// words are patched into the pre-images the crash will restore).
    /// The data path uses this variant; metadata-free internal writes
    /// (rollback, page reset) keep the length-only form and never tear.
    pub fn record_store_data(&self, page: PageId, off: usize, data: &[u8], current: Option<&[u8]>) {
        self.record_store_inner(page, off, data.len(), current, Some(data));
    }

    fn record_store_inner(
        &self,
        page: PageId,
        off: usize,
        len: usize,
        current: Option<&[u8]>,
        new_data: Option<&[u8]>,
    ) {
        debug_assert!(off + len <= PAGE_SIZE);
        if len == 0 {
            return;
        }
        let point = self.point_tick();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut lines = self.lines.lock();
        for line in first..=last {
            match lines.entry((page.0, line as u16)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    let mut img = [0u8; CACHE_LINE];
                    if let Some(cur) = current {
                        img.copy_from_slice(&cur[line * CACHE_LINE..(line + 1) * CACHE_LINE]);
                    }
                    v.insert(LineState { preimage: img, phase: LinePhase::Dirty });
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if o.get().phase == LinePhase::Flushed {
                        #[cfg(feature = "sanitize")]
                        self.hazard(HazardKind::StoreWhileFlushed, page.0, line as u16);
                        o.get_mut().phase = LinePhase::Dirty;
                    }
                }
            }
        }
        #[cfg(feature = "faults")]
        if let Some(data) = new_data {
            if self.torn.load(Ordering::Relaxed)
                && self.fired_at.load(Ordering::Relaxed) == point
            {
                self.tear_store(&mut lines, page, off, data);
            }
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = (point, new_data);
        }
    }

    /// Realizes a torn store: a prefix of the crash-point store reached
    /// media before the cut, so those bytes are patched into the
    /// pre-images the crash will restore. The cut falls on an 8-byte
    /// *page-aligned* boundary — hardware store atomicity is address
    /// aligned, not store-relative — drawn from the sim RNG
    /// (deterministic per seed); outside the sim it falls at the middle
    /// boundary. A store confined to one aligned word never tears.
    #[cfg(feature = "faults")]
    fn tear_store(
        &self,
        lines: &mut HashMap<(u64, u16), LineState>,
        page: PageId,
        off: usize,
        data: &[u8],
    ) {
        let store_end = off + data.len();
        // Candidate cuts: aligned boundaries strictly inside the store.
        let first_cut = (off / 8 + 1) * 8;
        if first_cut >= store_end {
            return;
        }
        let cuts = (store_end - first_cut).div_ceil(8);
        let draw = if in_sim() { with_rng(|r| r.gen_range(cuts as u64)) } else { cuts as u64 / 2 };
        let (start, end) = (off, first_cut + 8 * draw as usize);
        debug_assert!(end < store_end && end.is_multiple_of(8));
        for line in start / CACHE_LINE..=(end - 1) / CACHE_LINE {
            let Some(st) = lines.get_mut(&(page.0, line as u16)) else { continue };
            let lo = start.max(line * CACHE_LINE);
            let hi = end.min((line + 1) * CACHE_LINE);
            st.preimage[lo - line * CACHE_LINE..hi - line * CACHE_LINE]
                .copy_from_slice(&data[lo - off..hi - off]);
        }
    }

    /// Stages the lines covering `[off, off+len)` of `page` for the next
    /// fence (`clwb`). The lines stay non-durable until [`Self::fence`].
    ///
    /// Counts one persistence point. Flushing a clean (already durable)
    /// line is a no-op — range flushes legitimately cover clean lines —
    /// but re-flushing an already staged line is, under `sanitize`, a
    /// [`HazardKind::RedundantFlush`] hazard.
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert!(off + len <= PAGE_SIZE);
        self.point_tick();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut lines = self.lines.lock();
        for line in first..=last {
            if let Some(e) = lines.get_mut(&(page.0, line as u16)) {
                match e.phase {
                    LinePhase::Dirty => e.phase = LinePhase::Flushed,
                    LinePhase::Flushed => {
                        #[cfg(feature = "sanitize")]
                        self.hazard(HazardKind::RedundantFlush, page.0, line as u16);
                    }
                }
            }
        }
    }

    /// Retires all staged write-backs (`sfence`): every `Flushed` line
    /// becomes durable and its pre-image is dropped. `Dirty` lines are
    /// untouched — a fence orders flushes, it does not replace them.
    ///
    /// Counts one persistence point. After a freeze the fence is a no-op
    /// on the durable set: the power failed at the frozen point, so this
    /// fence never retired anything.
    pub fn fence(&self) {
        self.point_tick();
        if self.is_frozen() {
            return;
        }
        self.lines.lock().retain(|_, e| e.phase != LinePhase::Flushed);
    }

    /// Number of not-yet-durable (would-be-lost) lines, dirty or staged.
    pub fn dirty_lines(&self) -> usize {
        self.lines.lock().len()
    }

    /// Takes all pre-images, leaving the tracker clean and disarmed. The
    /// device applies them to the page store to realize the crash. The
    /// result is sorted by `(page, offset)` so crash realization — and any
    /// report derived from it — is byte-identical across runs.
    pub fn drain_for_crash(&self) -> Vec<(PageId, usize, [u8; CACHE_LINE])> {
        let mut lines = self.lines.lock();
        let mut v: Vec<(PageId, usize, [u8; CACHE_LINE])> = lines
            .drain()
            .map(|((page, line), st)| (PageId(page), line as usize * CACHE_LINE, st.preimage))
            .collect();
        v.sort_unstable_by_key(|(p, off, _)| (p.0, *off));
        #[cfg(feature = "faults")]
        {
            self.crash_at.store(UNSET, Ordering::Relaxed);
            self.frozen.store(false, Ordering::Relaxed);
            self.torn.store(false, Ordering::Relaxed);
        }
        v
    }
}

/// Sanitizer-only surface: hazard collection, quiescence and recovery
/// checks, publication dependencies.
#[cfg(feature = "sanitize")]
impl PersistTracker {
    /// Quiescence check: at a point where the workload claims everything
    /// it wrote is durable, any line still `Dirty` is a missing flush and
    /// any line still `Flushed` is a missing fence. Records one hazard
    /// per offending line; the lines themselves are left untouched.
    pub fn quiesce_check(&self) {
        let lines = self.lines.lock();
        let mut offenders: Vec<(u64, u16, LinePhase)> =
            lines.iter().map(|(&(p, l), e)| (p, l, e.phase)).collect();
        drop(lines);
        // Deterministic hazard order regardless of hash-map iteration.
        offenders.sort_unstable_by_key(|&(p, l, _)| (p, l));
        for (page, line, phase) in offenders {
            let kind = match phase {
                LinePhase::Dirty => HazardKind::MissingFlush,
                LinePhase::Flushed => HazardKind::MissingFence,
            };
            self.hazard(kind, page, line);
        }
    }

    /// Enters or leaves recovery mode. While set, reads overlapping a
    /// not-yet-durable line record [`HazardKind::ReadNotDurable`]: a
    /// recovery or observer path is consuming bytes that a crash at this
    /// instant would still revert.
    pub fn set_recovery_mode(&self, on: bool) {
        self.recovery_mode.store(on, Ordering::Relaxed);
    }

    /// Read-side check, called by the device on every read while recovery
    /// mode is armed.
    pub fn recovery_read_check(&self, page: PageId, off: usize, len: usize) {
        if len == 0 || !self.recovery_mode.load(Ordering::Relaxed) {
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let lines = self.lines.lock();
        let mut bad: Vec<u16> = (first..=last)
            .map(|l| l as u16)
            .filter(|l| lines.contains_key(&(page.0, *l)))
            .collect();
        drop(lines);
        bad.sort_unstable();
        for line in bad {
            self.hazard(HazardKind::ReadNotDurable, page.0, line);
        }
    }

    /// Publication dependency check: every line covering `[off, off+len)`
    /// must already be durable (untracked). Records one
    /// [`HazardKind::PublishBeforePersist`] hazard per line that is not.
    pub fn assert_durable(&self, page: PageId, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let lines = self.lines.lock();
        let mut bad: Vec<u16> = (first..=last)
            .map(|l| l as u16)
            .filter(|l| lines.contains_key(&(page.0, *l)))
            .collect();
        drop(lines);
        bad.sort_unstable();
        for line in bad {
            self.hazard(HazardKind::PublishBeforePersist, page.0, line);
        }
    }

    /// Takes (and clears) all hazards observed so far.
    pub fn take_hazards(&self) -> Vec<Hazard> {
        std::mem::take(&mut *self.hazards.lock())
    }

    /// Number of hazards observed so far.
    pub fn hazard_count(&self) -> usize {
        self.hazards.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_flush_fence_leaves_nothing_tracked() {
        let t = PersistTracker::new();
        t.record_store(PageId(3), 10, 100, None);
        assert_eq!(t.dirty_lines(), 2); // Lines 0 and 1 (bytes 10..110).
        t.flush(PageId(3), 0, 128);
        // Flushed but not fenced: still revertible.
        assert_eq!(t.dirty_lines(), 2);
        t.fence();
        assert_eq!(t.dirty_lines(), 0);
    }

    #[test]
    fn fence_without_flush_keeps_dirty_lines() {
        let t = PersistTracker::new();
        t.record_store(PageId(1), 0, 64, None);
        t.fence(); // No flush: the fence has nothing to retire.
        assert_eq!(t.dirty_lines(), 1);
    }

    #[test]
    fn preimage_is_first_store_wins() {
        let t = PersistTracker::new();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAA;
        t.record_store(PageId(1), 0, 8, Some(&page));
        // A second store to the same line must not overwrite the pre-image.
        page[0] = 0xBB;
        t.record_store(PageId(1), 8, 8, Some(&page));
        let drained = t.drain_for_crash();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].2[0], 0xAA);
    }

    #[test]
    fn store_into_flushed_line_demotes_it() {
        let t = PersistTracker::new();
        t.record_store(PageId(2), 0, 8, None);
        t.flush(PageId(2), 0, 8);
        // The store lands after the clwb was queued: the line must go back
        // to Dirty so the following fence does NOT make it durable.
        t.record_store(PageId(2), 8, 8, None);
        t.fence();
        assert_eq!(t.dirty_lines(), 1);
    }

    #[test]
    fn partial_flush_then_fence_keeps_other_lines() {
        let t = PersistTracker::new();
        t.record_store(PageId(0), 0, 256, None); // Lines 0..4.
        t.flush(PageId(0), 0, 64); // Only line 0.
        t.fence();
        assert_eq!(t.dirty_lines(), 3);
    }

    #[test]
    fn drain_is_sorted() {
        let t = PersistTracker::new();
        t.record_store(PageId(9), 128, 64, None);
        t.record_store(PageId(2), 0, 64, None);
        t.record_store(PageId(9), 0, 64, None);
        let d = t.drain_for_crash();
        let keys: Vec<(u64, usize)> = d.iter().map(|(p, off, _)| (p.0, *off)).collect();
        assert_eq!(keys, vec![(2, 0), (9, 0), (9, 128)]);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn freeze_stops_fences_from_retiring() {
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(2));
        t.record_store(PageId(0), 0, 8, None); // point 0
        t.flush(PageId(0), 0, 8); // point 1
        t.fence(); // point 2 — plan fires *at* this fence, so the
                   // retirement itself is already lost.
        assert_eq!(t.fired_at(), Some(2));
        assert_eq!(t.dirty_lines(), 1);
        t.record_store(PageId(0), 64, 8, None); // point 3, still recorded
        t.flush(PageId(0), 64, 8); // point 4
        t.fence(); // point 5, no durable effect
        assert_eq!(t.dirty_lines(), 2);
        assert_eq!(t.points_seen(), 6);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn torn_store_lets_an_aligned_prefix_escape() {
        // Outside the sim the split falls at the midpoint: a 32-byte
        // store at the crash point keeps chunks = 31/8 = 3, draw = 1,
        // escaped = 16 bytes.
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(0).with_torn_store());
        let page = vec![0x11u8; PAGE_SIZE];
        let data = [0x22u8; 32];
        t.record_store_data(PageId(1), 64, &data, Some(&page)); // point 0, fires
        let drained = t.drain_for_crash();
        assert_eq!(drained.len(), 1);
        let (p, off, img) = &drained[0];
        assert_eq!((p.0, *off), (1, 64));
        // First 16 bytes of the store escaped; the tail reverts.
        assert!(img[..16].iter().all(|&b| b == 0x22), "escaped prefix");
        assert!(img[16..48].iter().all(|&b| b == 0x11), "lost tail");
        assert!(img[48..].iter().all(|&b| b == 0x11), "untouched remainder");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn torn_mode_never_tears_single_word_stores() {
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(0).with_torn_store());
        let page = vec![0x11u8; PAGE_SIZE];
        t.record_store_data(PageId(1), 0, &[0x22u8; 8], Some(&page)); // atomic
        let drained = t.drain_for_crash();
        assert!(drained[0].2[..8].iter().all(|&b| b == 0x11), "8-byte store is atomic");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn torn_mode_only_fires_at_the_plan_point() {
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(0).with_torn_store());
        let page = vec![0x11u8; PAGE_SIZE];
        t.record_store_data(PageId(1), 0, &[0x22u8; 32], Some(&page)); // point 0, tears
        t.record_store_data(PageId(2), 0, &[0x33u8; 32], Some(&page)); // point 1, whole store lost
        let drained = t.drain_for_crash();
        assert_eq!(drained.len(), 2);
        assert!(drained[1].2[..32].iter().all(|&b| b == 0x11), "post-freeze store fully reverts");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn fence_before_freeze_is_durable() {
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(3));
        t.record_store(PageId(0), 0, 8, None); // point 0
        t.flush(PageId(0), 0, 8); // point 1
        t.fence(); // point 2 — durable before the freeze
        t.record_store(PageId(0), 64, 8, None); // point 3 — freeze fires
        assert_eq!(t.fired_at(), Some(3));
        assert_eq!(t.dirty_lines(), 1);
    }

    #[cfg(feature = "sanitize")]
    mod sanitize {
        use super::*;
        use crate::sanitize::HazardKind;

        fn kinds(t: &PersistTracker) -> Vec<HazardKind> {
            t.take_hazards().into_iter().map(|h| h.kind).collect()
        }

        #[test]
        fn clean_protocol_records_no_hazards() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 100, None);
            t.flush(PageId(1), 0, 100);
            t.fence();
            t.quiesce_check();
            assert!(kinds(&t).is_empty());
        }

        #[test]
        fn missing_flush_and_fence_flagged_at_quiesce() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 8, None); // Never flushed.
            t.record_store(PageId(2), 0, 8, None);
            t.flush(PageId(2), 0, 8); // Flushed, never fenced.
            t.quiesce_check();
            assert_eq!(kinds(&t), vec![HazardKind::MissingFlush, HazardKind::MissingFence]);
        }

        #[test]
        fn redundant_flush_flagged() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 8, None);
            t.flush(PageId(1), 0, 8);
            t.flush(PageId(1), 0, 8);
            assert_eq!(kinds(&t), vec![HazardKind::RedundantFlush]);
        }

        #[test]
        fn flushing_clean_lines_is_not_redundant() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 8, None);
            // A range flush covering clean neighbours is normal.
            t.flush(PageId(1), 0, PAGE_SIZE);
            t.fence();
            assert!(kinds(&t).is_empty());
        }

        #[test]
        fn store_while_flushed_flagged() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 8, None);
            t.flush(PageId(1), 0, 8);
            t.record_store(PageId(1), 8, 8, None);
            assert_eq!(kinds(&t), vec![HazardKind::StoreWhileFlushed]);
        }

        #[test]
        fn publish_dependency_checked() {
            let t = PersistTracker::new();
            t.record_store(PageId(5), 0, 8, None);
            t.assert_durable(PageId(5), 0, 8); // Dirty: hazard.
            t.flush(PageId(5), 0, 8);
            t.assert_durable(PageId(5), 0, 8); // Flushed, unfenced: hazard.
            t.fence();
            t.assert_durable(PageId(5), 0, 8); // Durable: clean.
            assert_eq!(
                kinds(&t),
                vec![HazardKind::PublishBeforePersist, HazardKind::PublishBeforePersist]
            );
        }

        #[test]
        fn recovery_reads_of_nondurable_lines_flagged() {
            let t = PersistTracker::new();
            t.record_store(PageId(7), 0, 8, None);
            t.recovery_read_check(PageId(7), 0, 8); // Mode off: clean.
            t.set_recovery_mode(true);
            t.recovery_read_check(PageId(7), 0, 8); // Dirty line: hazard.
            t.recovery_read_check(PageId(8), 0, 8); // Untracked: clean.
            t.set_recovery_mode(false);
            assert_eq!(kinds(&t), vec![HazardKind::ReadNotDurable]);
        }

        #[test]
        fn hazards_carry_replayable_points() {
            let t = PersistTracker::new();
            t.record_store(PageId(1), 0, 8, None); // point 0
            t.flush(PageId(1), 0, 8); // point 1
            t.flush(PageId(1), 0, 8); // point 2 — redundant
            let h = t.take_hazards();
            assert_eq!(h.len(), 1);
            assert_eq!(h[0].point, 2);
            assert_eq!(h[0].page, 1);
        }
    }
}
