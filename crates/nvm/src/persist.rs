//! Cache-line persistence tracking and crash injection.
//!
//! When enabled, every store records the *last-persisted* image of each
//! cache line it dirties; `flush` discards the pre-image (the line is now
//! durable). Injecting a crash restores every still-dirty line to its
//! pre-image — i.e. the store never reached the media. Crash-consistency
//! tests drive file system operations, crash at chosen points, run
//! recovery, and assert the invariants the paper's §4.4 design guarantees.
//!
//! With the `faults` feature, the tracker additionally numbers every
//! *persistence point* (each recorded store and each flush) and can be
//! armed with a [`FaultPlan`]: once point `crash_at` is reached the tracker
//! **freezes** — later flushes stop discarding pre-images — so a subsequent
//! crash reverts the media to its durable state *as of that point*. See
//! [`crate::fault`] for the model.
//!
//! Simplification (documented in DESIGN.md): a flushed line is considered
//! durable at flush time rather than at the next fence, so a missing
//! *flush* is always caught while a missing *fence* alone is not. ArckFS's
//! consistency mechanism always pairs them, and the ordering bugs the tests
//! target are missing/mis-ordered flushes.

use std::collections::HashMap;

use trio_sim::plock::Mutex;

#[cfg(feature = "faults")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(feature = "faults")]
use crate::fault::FaultPlan;
use crate::topology::{PageId, CACHE_LINE, PAGE_SIZE};

/// Sentinel for "no plan armed" / "plan never fired".
#[cfg(feature = "faults")]
const UNSET: u64 = u64::MAX;

/// Pre-images of dirty (unflushed) cache lines.
#[derive(Default)]
pub struct PersistTracker {
    dirty: Mutex<HashMap<(u64, u16), [u8; CACHE_LINE]>>,
    /// Persistence points observed so far (stores + flushes).
    #[cfg(feature = "faults")]
    points: AtomicU64,
    /// Point index at which to freeze durability; `UNSET` = disarmed.
    #[cfg(feature = "faults")]
    crash_at: AtomicU64,
    /// Once set, flushes no longer discard pre-images.
    #[cfg(feature = "faults")]
    frozen: AtomicBool,
    /// Point at which the plan fired; `UNSET` until then.
    #[cfg(feature = "faults")]
    fired_at: AtomicU64,
}

impl PersistTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        let t = Self::default();
        #[cfg(feature = "faults")]
        {
            t.crash_at.store(UNSET, Ordering::Relaxed);
            t.fired_at.store(UNSET, Ordering::Relaxed);
        }
        t
    }

    /// Counts one persistence point, freezing if the armed plan's point is
    /// reached. Compiled out entirely without the `faults` feature.
    #[inline]
    fn point_tick(&self) {
        #[cfg(feature = "faults")]
        {
            let p = self.points.fetch_add(1, Ordering::Relaxed);
            if p == self.crash_at.load(Ordering::Relaxed) {
                self.frozen.store(true, Ordering::Relaxed);
                self.fired_at.store(p, Ordering::Relaxed);
            }
        }
    }

    #[inline]
    fn is_frozen(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.frozen.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// Arms a crash plan: durability freezes at persistence point
    /// `plan.crash_at`. Re-arming replaces the previous plan (only a plan
    /// that has not yet fired can be replaced meaningfully).
    #[cfg(feature = "faults")]
    pub fn arm(&self, plan: FaultPlan) {
        self.fired_at.store(UNSET, Ordering::Relaxed);
        self.crash_at.store(plan.crash_at, Ordering::Relaxed);
    }

    /// Persistence points observed so far.
    #[cfg(feature = "faults")]
    pub fn points_seen(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// The point at which the armed plan fired, if it has.
    #[cfg(feature = "faults")]
    pub fn fired_at(&self) -> Option<u64> {
        match self.fired_at.load(Ordering::Relaxed) {
            UNSET => None,
            p => Some(p),
        }
    }

    /// Records pre-images for the lines of `page` covered by
    /// `[off, off+len)`, given the page's current (pre-store) contents.
    /// `current` is the full page; `None` means the page reads as zeros.
    ///
    /// Counts one persistence point. Stores after a freeze still record
    /// pre-images (they will be reverted by the crash): for a line that was
    /// durable at freeze time, the page content at store time *is* its
    /// durable image, so first-store-wins capture remains correct.
    pub fn record_store(&self, page: PageId, off: usize, len: usize, current: Option<&[u8]>) {
        debug_assert!(off + len <= PAGE_SIZE);
        if len == 0 {
            return;
        }
        self.point_tick();
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut dirty = self.dirty.lock();
        for line in first..=last {
            dirty.entry((page.0, line as u16)).or_insert_with(|| {
                let mut img = [0u8; CACHE_LINE];
                if let Some(cur) = current {
                    img.copy_from_slice(&cur[line * CACHE_LINE..(line + 1) * CACHE_LINE]);
                }
                img
            });
        }
    }

    /// Marks the lines covering `[off, off+len)` of `page` durable.
    ///
    /// Counts one persistence point. After a freeze the flush is a no-op on
    /// the durable set: the power failed at the frozen point, so this flush
    /// never took effect.
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert!(off + len <= PAGE_SIZE);
        self.point_tick();
        if self.is_frozen() {
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut dirty = self.dirty.lock();
        for line in first..=last {
            dirty.remove(&(page.0, line as u16));
        }
    }

    /// Number of dirty (would-be-lost) lines.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.lock().len()
    }

    /// Takes all pre-images, leaving the tracker clean and disarmed. The
    /// device applies them to the page store to realize the crash. The
    /// result is sorted by `(page, offset)` so crash realization — and any
    /// report derived from it — is byte-identical across runs.
    pub fn drain_for_crash(&self) -> Vec<(PageId, usize, [u8; CACHE_LINE])> {
        let mut dirty = self.dirty.lock();
        let mut v: Vec<(PageId, usize, [u8; CACHE_LINE])> = dirty
            .drain()
            .map(|((page, line), img)| (PageId(page), line as usize * CACHE_LINE, img))
            .collect();
        v.sort_unstable_by_key(|(p, off, _)| (p.0, *off));
        #[cfg(feature = "faults")]
        {
            self.crash_at.store(UNSET, Ordering::Relaxed);
            self.frozen.store(false, Ordering::Relaxed);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_flush_leaves_nothing_dirty() {
        let t = PersistTracker::new();
        t.record_store(PageId(3), 10, 100, None);
        assert_eq!(t.dirty_lines(), 2); // Lines 0 and 1 (bytes 10..110).
        t.flush(PageId(3), 0, 128);
        assert_eq!(t.dirty_lines(), 0);
    }

    #[test]
    fn preimage_is_first_store_wins() {
        let t = PersistTracker::new();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAA;
        t.record_store(PageId(1), 0, 8, Some(&page));
        // A second store to the same line must not overwrite the pre-image.
        page[0] = 0xBB;
        t.record_store(PageId(1), 8, 8, Some(&page));
        let drained = t.drain_for_crash();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].2[0], 0xAA);
    }

    #[test]
    fn partial_flush_keeps_other_lines() {
        let t = PersistTracker::new();
        t.record_store(PageId(0), 0, 256, None); // Lines 0..4.
        t.flush(PageId(0), 0, 64); // Only line 0.
        assert_eq!(t.dirty_lines(), 3);
    }

    #[test]
    fn drain_is_sorted() {
        let t = PersistTracker::new();
        t.record_store(PageId(9), 128, 64, None);
        t.record_store(PageId(2), 0, 64, None);
        t.record_store(PageId(9), 0, 64, None);
        let d = t.drain_for_crash();
        let keys: Vec<(u64, usize)> = d.iter().map(|(p, off, _)| (p.0, *off)).collect();
        assert_eq!(keys, vec![(2, 0), (9, 0), (9, 128)]);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn freeze_stops_flushes_from_counting() {
        let t = PersistTracker::new();
        t.arm(FaultPlan::crash_at_point(1));
        t.record_store(PageId(0), 0, 8, None); // point 0
        t.flush(PageId(0), 0, 8); // point 1 — plan fires *at* this flush,
                                  // so the flush itself is already lost.
        assert_eq!(t.fired_at(), Some(1));
        assert_eq!(t.dirty_lines(), 1);
        t.record_store(PageId(0), 64, 8, None); // point 2, still recorded
        t.flush(PageId(0), 64, 8); // point 3, no durable effect
        assert_eq!(t.dirty_lines(), 2);
        assert_eq!(t.points_seen(), 4);
    }
}
