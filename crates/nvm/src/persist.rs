//! Cache-line persistence tracking and crash injection.
//!
//! When enabled, every store records the *last-persisted* image of each
//! cache line it dirties; `flush` discards the pre-image (the line is now
//! durable). Injecting a crash restores every still-dirty line to its
//! pre-image — i.e. the store never reached the media. Crash-consistency
//! tests drive file system operations, crash at chosen points, run
//! recovery, and assert the invariants the paper's §4.4 design guarantees.
//!
//! Simplification (documented in DESIGN.md): a flushed line is considered
//! durable at flush time rather than at the next fence, so a missing
//! *flush* is always caught while a missing *fence* alone is not. ArckFS's
//! consistency mechanism always pairs them, and the ordering bugs the tests
//! target are missing/mis-ordered flushes.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::topology::{PageId, CACHE_LINE, PAGE_SIZE};

/// Pre-images of dirty (unflushed) cache lines.
#[derive(Default)]
pub struct PersistTracker {
    dirty: Mutex<HashMap<(u64, u16), [u8; CACHE_LINE]>>,
}

impl PersistTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records pre-images for the lines of `page` covered by
    /// `[off, off+len)`, given the page's current (pre-store) contents.
    /// `current` is the full page; `None` means the page reads as zeros.
    pub fn record_store(&self, page: PageId, off: usize, len: usize, current: Option<&[u8]>) {
        debug_assert!(off + len <= PAGE_SIZE);
        if len == 0 {
            return;
        }
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut dirty = self.dirty.lock();
        for line in first..=last {
            dirty.entry((page.0, line as u16)).or_insert_with(|| {
                let mut img = [0u8; CACHE_LINE];
                if let Some(cur) = current {
                    img.copy_from_slice(&cur[line * CACHE_LINE..(line + 1) * CACHE_LINE]);
                }
                img
            });
        }
    }

    /// Marks the lines covering `[off, off+len)` of `page` durable.
    pub fn flush(&self, page: PageId, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert!(off + len <= PAGE_SIZE);
        let first = off / CACHE_LINE;
        let last = (off + len - 1) / CACHE_LINE;
        let mut dirty = self.dirty.lock();
        for line in first..=last {
            dirty.remove(&(page.0, line as u16));
        }
    }

    /// Number of dirty (would-be-lost) lines.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.lock().len()
    }

    /// Takes all pre-images, leaving the tracker clean. The device applies
    /// them to the page store to realize the crash.
    pub fn drain_for_crash(&self) -> Vec<(PageId, usize, [u8; CACHE_LINE])> {
        let mut dirty = self.dirty.lock();
        dirty
            .drain()
            .map(|((page, line), img)| (PageId(page), line as usize * CACHE_LINE, img))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_flush_leaves_nothing_dirty() {
        let t = PersistTracker::new();
        t.record_store(PageId(3), 10, 100, None);
        assert_eq!(t.dirty_lines(), 2); // Lines 0 and 1 (bytes 10..110).
        t.flush(PageId(3), 0, 128);
        assert_eq!(t.dirty_lines(), 0);
    }

    #[test]
    fn preimage_is_first_store_wins() {
        let t = PersistTracker::new();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAA;
        t.record_store(PageId(1), 0, 8, Some(&page));
        // A second store to the same line must not overwrite the pre-image.
        page[0] = 0xBB;
        t.record_store(PageId(1), 8, 8, Some(&page));
        let drained = t.drain_for_crash();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].2[0], 0xAA);
    }

    #[test]
    fn partial_flush_keeps_other_lines() {
        let t = PersistTracker::new();
        t.record_store(PageId(0), 0, 256, None); // Lines 0..4.
        t.flush(PageId(0), 0, 64); // Only line 0.
        assert_eq!(t.dirty_lines(), 3);
    }
}
