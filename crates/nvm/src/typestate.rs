//! Compiler-checked persistence ordering (DESIGN.md §18).
//!
//! The §4.4 crash-consistency discipline — *prepare, persist, then
//! publish* — is a strict pipeline: stores dirty cache lines, `clwb`
//! stages them for write-back, `sfence` makes the staged lines durable,
//! and only then may a commit word that *depends* on those bytes go
//! live. The PR 3 sanitizer checks this dynamically, but only on paths a
//! test happens to drive. Following SquirrelFS (arXiv 2406.09649), this
//! module encodes the pipeline in the type system so the two hazard
//! classes the sanitizer most often catches — publish-before-persist and
//! missing-fence — are unrepresentable at compile time:
//!
//! ```text
//! write_dirty ─► Dirty<T> ─flush_dirty─► Flushed<T> ─fence_flushed─► Durable<T>
//!                                                                        │
//!                    publish_u64(page, off, v, &Durable<T>)  ◄────────────┘
//! ```
//!
//! * [`Dirty`] — bytes stored but not yet staged for write-back. Affine:
//!   the only way forward is [`crate::NvmHandle::flush_dirty`], which
//!   consumes it. `#[must_use]`: dropping one silently loses the proof
//!   obligation, so the compiler flags it.
//! * [`Flushed`] — staged by `clwb`, still not durable (write-backs may
//!   sit in the memory controller). Consumed by
//!   [`crate::NvmHandle::fence_flushed`].
//! * [`Durable`] — minted only at an `sfence`. The typed commit point
//!   [`crate::NvmHandle::publish_u64`] demands `&Durable<T>`, so a
//!   publish whose dependencies were never flushed or never fenced is a
//!   type error, not a runtime hazard.
//!
//! Tokens carry the byte ranges they witness via [`Spans`], so the
//! `sanitize` build can re-check every typed publish against the
//! per-cache-line tracker: the runtime sanitizer stays the oracle that
//! the typestate encoding (and every `assume_durable` escape hatch) is
//! telling the truth. Token construction is private to `trio-nvm`;
//! outside code obtains them only from handle methods that perform the
//! matching hardware step, and the `raw-publish` xtask lint forbids the
//! untyped escape hatches outside this crate.
//!
//! The types are zero-cost on the data path: a token is just the range
//! it witnesses (or an empty marker for extent proofs), no heap, no
//! `Drop` impl, and every pipeline method charges exactly the same
//! virtual-time costs as the raw `flush`/`fence` calls it replaces — the
//! bench gate pins the delta at 0.00%.

use crate::topology::PageId;

/// One contiguous byte range `[off, off + len)` within a page — the unit
/// a persistence token witnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Page holding the range.
    pub page: PageId,
    /// Byte offset within the page.
    pub off: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Span {
    /// A span over `[off, off + len)` of `page`.
    pub fn new(page: PageId, off: usize, len: usize) -> Self {
        Span { page, off, len }
    }
}

/// Byte ranges a token witnesses, enumerable for the sanitizer's
/// publication-dependency check. Implemented for [`Span`], pairs (token
/// joins), and `Vec<Span>` (batched index updates).
pub trait Spans {
    /// Calls `f` once per witnessed `(page, off, len)` range.
    fn for_each(&self, f: &mut dyn FnMut(PageId, usize, usize));
}

impl Spans for Span {
    fn for_each(&self, f: &mut dyn FnMut(PageId, usize, usize)) {
        f(self.page, self.off, self.len)
    }
}

impl<A: Spans, B: Spans> Spans for (A, B) {
    fn for_each(&self, f: &mut dyn FnMut(PageId, usize, usize)) {
        self.0.for_each(f);
        self.1.for_each(f);
    }
}

impl Spans for Vec<Span> {
    fn for_each(&self, f: &mut dyn FnMut(PageId, usize, usize)) {
        for s in self {
            s.for_each(f)
        }
    }
}

/// Witness of a completed multi-page extent write
/// ([`crate::NvmHandle::write_extent`] / `write_extent_hashed`), which
/// flushes per page and fences internally before returning. Durability
/// of the extent's bytes is established *by construction* inside the
/// call, so the proof enumerates no spans — there is nothing left for
/// the sanitizer to re-check — but the `Durable<ExtentProof>` wrapper
/// still lets later commit points demand type-level evidence that the
/// fence happened (e.g. a size publish after a data write, or the
/// delegation worker's acked-implies-durable reply contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtentProof {
    bytes: usize,
}

impl ExtentProof {
    pub(crate) fn new(bytes: usize) -> Self {
        ExtentProof { bytes }
    }

    /// Bytes the fenced extent write covered.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Spans for ExtentProof {
    fn for_each(&self, _f: &mut dyn FnMut(PageId, usize, usize)) {}
}

/// Bytes stored but not yet staged for write-back. A crash now reverts
/// them. Consume with [`crate::NvmHandle::flush_dirty`] (or
/// [`crate::NvmHandle::persist_dirty`] for flush + fence in one step).
#[must_use = "a Dirty token is a pending proof obligation: flush it (flush_dirty) \
              or the stored bytes may never become durable (hazard: missing-flush)"]
#[derive(Debug, PartialEq, Eq)]
pub struct Dirty<T>(T);

/// Bytes staged by `clwb` but not yet retired by `sfence`. A crash now
/// may or may not keep them. Consume with
/// [`crate::NvmHandle::fence_flushed`].
#[must_use = "a Flushed token is a pending proof obligation: fence it \
              (fence_flushed) or the staged lines may never become durable \
              (hazard: missing-fence)"]
#[derive(Debug, PartialEq, Eq)]
pub struct Flushed<T>(T);

/// Witness that the carried ranges were flushed and then retired by an
/// `sfence`: the bytes survive any later crash. The typed commit point
/// [`crate::NvmHandle::publish_u64`] accepts only this.
#[derive(Debug, PartialEq, Eq)]
pub struct Durable<T>(T);

impl<T> Dirty<T> {
    pub(crate) fn new(t: T) -> Self {
        Dirty(t)
    }

    pub(crate) fn into_inner(self) -> T {
        self.0
    }

    /// Joins two dirty tokens: flush the pair with one `flush_dirty`.
    pub fn and<U>(self, other: Dirty<U>) -> Dirty<(T, U)> {
        Dirty((self.0, other.0))
    }
}

impl<T> Flushed<T> {
    pub(crate) fn new(t: T) -> Self {
        Flushed(t)
    }

    pub(crate) fn into_inner(self) -> T {
        self.0
    }

    /// Joins two flushed tokens: one fence retires both.
    pub fn and<U>(self, other: Flushed<U>) -> Flushed<(T, U)> {
        Flushed((self.0, other.0))
    }
}

impl<T> Durable<T> {
    pub(crate) fn new(t: T) -> Self {
        Durable(t)
    }

    /// The witnessed ranges (read-only: durability is permanent, so the
    /// witness is freely reusable across many publishes).
    pub fn witness(&self) -> &T {
        &self.0
    }

    /// Joins two durability witnesses into one (for a publish that
    /// depends on separately fenced ranges).
    pub fn and<U>(self, other: Durable<U>) -> Durable<(T, U)> {
        Durable((self.0, other.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_enumerate_joins() {
        let a = Span::new(PageId(1), 0, 64);
        let b = Span::new(PageId(2), 128, 8);
        let pair = (a, b);
        let mut seen = Vec::new();
        pair.for_each(&mut |p, o, l| seen.push((p, o, l)));
        assert_eq!(seen, vec![(PageId(1), 0, 64), (PageId(2), 128, 8)]);
    }

    #[test]
    fn extent_proof_is_empty_but_counts_bytes() {
        let p = ExtentProof::new(4096);
        assert_eq!(p.bytes(), 4096);
        let mut n = 0;
        p.for_each(&mut |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn vec_spans_enumerate_in_order() {
        let v = vec![Span::new(PageId(3), 0, 8), Span::new(PageId(3), 8, 8)];
        let mut seen = Vec::new();
        v.for_each(&mut |p, o, l| seen.push((p, o, l)));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1], (PageId(3), 8, 8));
    }
}
