//! Device geometry: pages, cache lines, NUMA nodes.

/// Bytes per NVM page — the protection and allocation granule.
pub const PAGE_SIZE: usize = 4096;

/// Bytes per cache line — the persistence granule (`clwb`).
pub const CACHE_LINE: usize = 64;

/// A NUMA node index.
pub type NodeId = usize;

/// A device-global page number.
///
/// Pages are striped contiguously within a node: page `p` lives on node
/// `p / pages_per_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page from the start of the device.
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// NUMA geometry of the emulated device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of NUMA nodes with NVM attached.
    pub nodes: usize,
    /// NVM pages per node.
    pub pages_per_node: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, pages_per_node: usize) -> Self {
        assert!(nodes > 0 && pages_per_node > 0);
        Topology { nodes, pages_per_node }
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        (self.nodes * self.pages_per_node) as u64
    }

    /// The node a page lives on.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn node_of(&self, page: PageId) -> NodeId {
        assert!(page.0 < self.total_pages(), "page {page:?} out of range");
        (page.0 / self.pages_per_node as u64) as NodeId
    }

    /// The first page of `node`.
    pub fn first_page_of(&self, node: NodeId) -> PageId {
        assert!(node < self.nodes);
        PageId((node * self.pages_per_node) as u64)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_is_contiguous() {
        let t = Topology::new(4, 100);
        assert_eq!(t.total_pages(), 400);
        assert_eq!(t.node_of(PageId(0)), 0);
        assert_eq!(t.node_of(PageId(99)), 0);
        assert_eq!(t.node_of(PageId(100)), 1);
        assert_eq!(t.node_of(PageId(399)), 3);
        assert_eq!(t.first_page_of(2), PageId(200));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_page_panics() {
        Topology::new(2, 10).node_of(PageId(20));
    }

    #[test]
    fn capacity_math() {
        let t = Topology::new(2, 256);
        assert_eq!(t.capacity_bytes(), 2 * 256 * 4096);
        assert_eq!(PageId(3).byte_offset(), 3 * 4096);
    }
}
