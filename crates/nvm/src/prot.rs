//! Page protection — the emulated MMU.
//!
//! Real Trio programs the hardware page table; here a per-page permission
//! record is checked on every [`crate::NvmHandle`] access. Only the kernel
//! controller holds the privileged [`crate::NvmDevice`] interface that can
//! change permissions, which is precisely the trust split the paper's
//! architecture relies on (§3.2 "Protected direct access").

/// An access-control principal: one LibFS instance (≈ one process or trust
/// group). Actor 0 is the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

/// The privileged kernel actor; bypasses permission checks (ring 0).
pub const KERNEL_ACTOR: ActorId = ActorId(0);

/// Page access permission, per actor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagePerm {
    /// Mapped read-only.
    Read,
    /// Mapped read-write.
    Write,
}

/// Protection fault raised by the emulated MMU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtError {
    /// The page is not mapped for this actor.
    NotMapped,
    /// The page is mapped read-only and a write was attempted.
    ReadOnly,
    /// Page number beyond the device.
    OutOfRange,
    /// Misaligned atomic access.
    Misaligned,
    /// The accessed range overlaps a poisoned (uncorrectable media error)
    /// cache line. Real PM raises a machine check; the emulation surfaces a
    /// recoverable error instead so file systems can degrade gracefully.
    Poisoned,
    /// A delegation grant window was revoked, unmapped, or mutated while a
    /// request referencing it was in flight. The submitter broke the grant
    /// contract (DESIGN.md §17); the op fails cleanly instead of tearing.
    GrantRevoked,
}

impl std::fmt::Display for ProtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtError::NotMapped => "page fault: not mapped",
            ProtError::ReadOnly => "page fault: write to read-only mapping",
            ProtError::OutOfRange => "page beyond device capacity",
            ProtError::Misaligned => "misaligned atomic NVM access",
            ProtError::Poisoned => "media error: poisoned cache line",
            ProtError::GrantRevoked => "delegation grant revoked mid-flight",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProtError {}

/// Per-page permission record. Most pages are mapped by zero or one actors,
/// so a small inline vector suffices.
#[derive(Default, Debug)]
pub struct PageProt {
    entries: Vec<(ActorId, PagePerm)>,
}

impl PageProt {
    /// Grants (or upgrades/downgrades) `actor`'s permission.
    pub fn map(&mut self, actor: ActorId, perm: PagePerm) {
        match self.entries.iter_mut().find(|(a, _)| *a == actor) {
            Some(e) => e.1 = perm,
            None => self.entries.push((actor, perm)),
        }
    }

    /// Revokes `actor`'s mapping; returns whether one existed.
    pub fn unmap(&mut self, actor: ActorId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(a, _)| *a != actor);
        self.entries.len() != before
    }

    /// Permission check for a read or write by `actor`.
    pub fn check(&self, actor: ActorId, write: bool) -> Result<(), ProtError> {
        if actor == KERNEL_ACTOR {
            return Ok(());
        }
        match self.entries.iter().find(|(a, _)| *a == actor) {
            Some((_, PagePerm::Write)) => Ok(()),
            Some((_, PagePerm::Read)) if !write => Ok(()),
            Some((_, PagePerm::Read)) => Err(ProtError::ReadOnly),
            None => Err(ProtError::NotMapped),
        }
    }

    /// Current permission of `actor`, if mapped.
    pub fn perm_of(&self, actor: ActorId) -> Option<PagePerm> {
        self.entries.iter().find(|(a, _)| *a == actor).map(|(_, p)| *p)
    }

    /// Actors currently holding a write mapping (at most one under Trio's
    /// sharing policy; the type does not enforce that — the kernel does).
    pub fn writers(&self) -> impl Iterator<Item = ActorId> + '_ {
        self.entries.iter().filter(|(_, p)| *p == PagePerm::Write).map(|(a, _)| *a)
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bypasses_checks() {
        let p = PageProt::default();
        assert!(p.check(KERNEL_ACTOR, true).is_ok());
        assert_eq!(p.check(ActorId(5), false), Err(ProtError::NotMapped));
    }

    #[test]
    fn read_mapping_rejects_writes() {
        let mut p = PageProt::default();
        p.map(ActorId(1), PagePerm::Read);
        assert!(p.check(ActorId(1), false).is_ok());
        assert_eq!(p.check(ActorId(1), true), Err(ProtError::ReadOnly));
    }

    #[test]
    fn upgrade_and_unmap() {
        let mut p = PageProt::default();
        p.map(ActorId(1), PagePerm::Read);
        p.map(ActorId(1), PagePerm::Write);
        assert_eq!(p.perm_of(ActorId(1)), Some(PagePerm::Write));
        assert_eq!(p.mapping_count(), 1);
        assert!(p.unmap(ActorId(1)));
        assert!(!p.unmap(ActorId(1)));
        assert_eq!(p.check(ActorId(1), false), Err(ProtError::NotMapped));
    }

    #[test]
    fn writers_iterator() {
        let mut p = PageProt::default();
        p.map(ActorId(1), PagePerm::Read);
        p.map(ActorId(2), PagePerm::Write);
        let w: Vec<ActorId> = p.writers().collect();
        assert_eq!(w, vec![ActorId(2)]);
    }
}
