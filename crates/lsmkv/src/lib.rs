//! A from-scratch LSM-tree key-value store in the LevelDB mould, running
//! entirely on the [`trio_fsapi::FileSystem`] trait.
//!
//! The paper's Table 5 evaluates LevelDB's `db_bench` over each file
//! system; what that workload exercises in the FS is LevelDB's file
//! footprint — sequential WAL appends with optional sync, SSTable
//! creation on memtable flush, compaction rewrites, and random reads of
//! SSTable blocks. This crate reproduces that footprint with a real
//! (correct, tested) LSM implementation:
//!
//! * an in-memory **memtable** (ordered map with tombstones),
//! * a **write-ahead log** with length-prefixed, checksummed records,
//! * immutable **SSTables** (sorted, with an in-memory index block and
//!   values fetched by `pread`),
//! * two-level **compaction** (L0 accumulates flushed memtables; when it
//!   fills, everything merges into a single sorted L1 run),
//! * a [`bench`] module driving the six `db_bench` workloads of Table 5.
//!
//! # Examples
//!
//! See `Db`'s method docs; end-to-end usage lives in `tests/` and the
//! `table5_leveldb` bench.

// The whole crate is plain safe Rust over the typed NvmHandle API; the
// xtask lint (safety-comment rule) found zero unsafe blocks, and this
// attribute keeps it that way.
#![forbid(unsafe_code)]

pub mod bench;
pub mod sstable;
pub mod wal;

use std::collections::BTreeMap;
use std::sync::Arc;

use trio_fsapi::{FileSystem, FsError, FsResult, Mode};
use trio_sim::sync::SimMutex;

use sstable::Table;
use wal::Wal;

/// FNV-32 checksum over key+value (shared by the WAL and SSTable record
/// formats).
pub(crate) fn wal_checksum(key: &[u8], value: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in key.iter().chain(value.iter()) {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// Database tunables.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Memtable flush threshold in bytes (LevelDB default 4 MiB; scaled).
    pub memtable_bytes: usize,
    /// L0 tables that trigger a full compaction.
    pub l0_trigger: usize,
    /// `fsync` the WAL after every write (`fillsync`).
    pub sync_writes: bool,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig { memtable_bytes: 1 << 20, l0_trigger: 4, sync_writes: false }
    }
}

struct DbInner {
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    mem_bytes: usize,
    wal: Wal,
    l0: Vec<Table>,
    l1: Vec<Table>,
    next_table: u64,
}

/// The key-value store. Writers serialize on an internal lock (LevelDB's
/// single writer thread); reads share it briefly to snapshot the level
/// structure.
pub struct Db {
    fs: Arc<dyn FileSystem>,
    dir: String,
    cfg: DbConfig,
    inner: SimMutex<DbInner>,
}

impl Db {
    /// Opens (creating) a database under `dir`.
    pub fn open(fs: Arc<dyn FileSystem>, dir: &str, cfg: DbConfig) -> FsResult<Db> {
        match fs.mkdir(dir, Mode::RWX) {
            Ok(()) | Err(FsError::Exists) => {}
            Err(e) => return Err(e),
        }
        let wal = Wal::create(&*fs, &format!("{dir}/wal.log"))?;
        Ok(Db {
            inner: SimMutex::new(DbInner {
                mem: BTreeMap::new(),
                mem_bytes: 0,
                wal,
                l0: Vec::new(),
                l1: Vec::new(),
                next_table: 0,
            }),
            fs,
            dir: dir.to_string(),
            cfg,
        })
    }

    /// Inserts or replaces `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> FsResult<()> {
        self.write(key, Some(value))
    }

    /// Deletes `key` (tombstone).
    pub fn delete(&self, key: &[u8]) -> FsResult<()> {
        self.write(key, None)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) -> FsResult<()> {
        let mut g = self.inner.lock();
        g.wal.append(&*self.fs, key, value, self.cfg.sync_writes)?;
        let added = key.len() + value.map(|v| v.len()).unwrap_or(0) + 16;
        g.mem.insert(key.to_vec(), value.map(|v| v.to_vec()));
        g.mem_bytes += added;
        if g.mem_bytes >= self.cfg.memtable_bytes {
            self.flush_locked(&mut g)?;
        }
        Ok(())
    }

    /// Reads `key`.
    pub fn get(&self, key: &[u8]) -> FsResult<Option<Vec<u8>>> {
        let g = self.inner.lock();
        if let Some(v) = g.mem.get(key) {
            return Ok(v.clone());
        }
        for t in g.l0.iter().rev() {
            if let Some(v) = t.get(&*self.fs, key)? {
                return Ok(v);
            }
        }
        for t in &g.l1 {
            if t.covers(key) {
                if let Some(v) = t.get(&*self.fs, key)? {
                    return Ok(v);
                }
            }
        }
        Ok(None)
    }

    /// Forces a memtable flush (tests; `db_bench` relies on thresholds).
    pub fn flush(&self) -> FsResult<()> {
        let mut g = self.inner.lock();
        self.flush_locked(&mut g)
    }

    /// Current SSTable counts `(l0, l1)` — compaction observability.
    pub fn table_counts(&self) -> (usize, usize) {
        let g = self.inner.lock();
        (g.l0.len(), g.l1.len())
    }

    fn flush_locked(&self, g: &mut DbInner) -> FsResult<()> {
        if g.mem.is_empty() {
            return Ok(());
        }
        let id = g.next_table;
        g.next_table += 1;
        let path = format!("{}/sst-{id:06}.tbl", self.dir);
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            std::mem::take(&mut g.mem).into_iter().collect();
        g.mem_bytes = 0;
        let table = Table::build(&*self.fs, &path, &entries)?;
        g.l0.push(table);
        g.wal.reset(&*self.fs)?;
        if g.l0.len() >= self.cfg.l0_trigger {
            self.compact_locked(g)?;
        }
        Ok(())
    }

    /// Merges every L0 table and the L1 run into one fresh sorted run,
    /// dropping tombstones (L1 is the bottom level).
    fn compact_locked(&self, g: &mut DbInner) -> FsResult<()> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest first so newer tables overwrite.
        for t in &g.l1 {
            for (k, v) in t.scan(&*self.fs)? {
                merged.insert(k, v);
            }
        }
        for t in &g.l0 {
            for (k, v) in t.scan(&*self.fs)? {
                merged.insert(k, v);
            }
        }
        let live: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        let id = g.next_table;
        g.next_table += 1;
        let path = format!("{}/sst-{id:06}.tbl", self.dir);
        let new_l1 = if live.is_empty() { None } else { Some(Table::build(&*self.fs, &path, &live)?) };
        for t in g.l0.drain(..).chain(g.l1.drain(..)) {
            t.remove(&*self.fs)?;
        }
        g.l1.extend(new_l1);
        Ok(())
    }

    /// Replays the WAL into a fresh memtable (crash recovery). SSTables
    /// are rediscovered by directory scan.
    pub fn recover(fs: Arc<dyn FileSystem>, dir: &str, cfg: DbConfig) -> FsResult<Db> {
        let db = Db::open(Arc::clone(&fs), dir, cfg)?;
        {
            let mut g = db.inner.lock();
            // Rediscover persisted tables (oldest-first into L0; their
            // relative order is the build order encoded in the name).
            let mut names: Vec<String> = fs
                .readdir(dir)?
                .into_iter()
                .map(|e| e.name)
                .filter(|n| n.starts_with("sst-"))
                .collect();
            names.sort();
            for n in &names {
                let path = format!("{dir}/{n}");
                let t = Table::load(&*fs, &path)?;
                g.l0.push(t);
            }
            if let Some(last) = names.last() {
                let id: u64 = last
                    .trim_start_matches("sst-")
                    .trim_end_matches(".tbl")
                    .parse()
                    .unwrap_or(0);
                g.next_table = id + 1;
            }
            // Replay intact WAL records into the memtable.
            let records = g.wal.replay(&*fs)?;
            for (k, v) in records {
                g.mem_bytes += k.len() + v.as_ref().map(|v| v.len()).unwrap_or(0) + 16;
                g.mem.insert(k, v);
            }
        }
        Ok(db)
    }
}
