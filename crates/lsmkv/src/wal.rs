//! Write-ahead log.
//!
//! Record format (little-endian):
//!
//! | field    | size | notes                          |
//! |----------|-----:|--------------------------------|
//! | klen     |    4 |                                |
//! | vlen     |    4 | `0xFFFF_FFFF` = tombstone      |
//! | checksum |    4 | FNV-32 over key+value          |
//! | key      | klen |                                |
//! | value    | vlen | absent for tombstones          |
//!
//! A record with a bad checksum or truncated body ends replay — the
//! standard torn-tail rule.

use trio_fsapi::{Fd, FileSystem, FsResult, Mode, OpenFlags};

/// Open WAL state.
pub struct Wal {
    path: String,
    fd: Fd,
    off: u64,
}

const TOMBSTONE: u32 = u32::MAX;

fn fnv32(parts: &[&[u8]]) -> u32 {
    debug_assert_eq!(parts.len(), 2);
    crate::wal_checksum(parts[0], parts[1])
}

impl Wal {
    /// Opens (creating) the log, appending after any existing records.
    pub fn create(fs: &dyn FileSystem, path: &str) -> FsResult<Wal> {
        let fd = fs.open(path, OpenFlags::CREATE | OpenFlags::RDWR, Mode::RW)?;
        let off = fs.fstat(fd)?.size;
        Ok(Wal { path: path.to_string(), fd, off })
    }

    /// Appends one record; optionally syncs.
    pub fn append(
        &mut self,
        fs: &dyn FileSystem,
        key: &[u8],
        value: Option<&[u8]>,
        sync: bool,
    ) -> FsResult<()> {
        let vlen = value.map(|v| v.len() as u32).unwrap_or(TOMBSTONE);
        let mut rec = Vec::with_capacity(12 + key.len() + value.map(|v| v.len()).unwrap_or(0));
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(&vlen.to_le_bytes());
        rec.extend_from_slice(&fnv32(&[key, value.unwrap_or(&[])]).to_le_bytes());
        rec.extend_from_slice(key);
        if let Some(v) = value {
            rec.extend_from_slice(v);
        }
        fs.pwrite(self.fd, self.off, &rec)?;
        self.off += rec.len() as u64;
        if sync {
            fs.fsync(self.fd)?;
        }
        Ok(())
    }

    /// Truncates the log after a successful memtable flush.
    pub fn reset(&mut self, fs: &dyn FileSystem) -> FsResult<()> {
        fs.truncate(&self.path, 0)?;
        self.off = 0;
        Ok(())
    }

    /// Reads every intact record from the start (recovery).
    #[allow(clippy::type_complexity)]
    pub fn replay(&self, fs: &dyn FileSystem) -> FsResult<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
        let size = fs.fstat(self.fd)?.size;
        let mut data = vec![0u8; size as usize];
        let mut done = 0;
        while (done as u64) < size {
            let n = fs.pread(self.fd, done as u64, &mut data[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        data.truncate(done);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 12 <= data.len() {
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4")) as usize;
            let vraw = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4"));
            let sum = u32::from_le_bytes(data[pos + 8..pos + 12].try_into().expect("4"));
            let vlen = if vraw == TOMBSTONE { 0 } else { vraw as usize };
            let body = pos + 12;
            if body + klen + vlen > data.len() {
                break; // Torn tail.
            }
            let key = &data[body..body + klen];
            let val = &data[body + klen..body + klen + vlen];
            if fnv32(&[key, val]) != sum {
                break; // Corrupt tail.
            }
            out.push((
                key.to_vec(),
                if vraw == TOMBSTONE { None } else { Some(val.to_vec()) },
            ));
            pos = body + klen + vlen;
        }
        Ok(out)
    }

    /// Bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.off
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.off == 0
    }
}
