//! Immutable sorted tables.
//!
//! On-media format: a sequence of records identical to the WAL's (klen,
//! vlen, checksum, key, value), written in ascending key order. At open
//! (or build) time the key index — `(key, value offset, vlen)` — is kept
//! in memory, like LevelDB's index block; `get` binary-searches the index
//! and `pread`s just the value, so point reads cost one small random read
//! on the file system under test.

use trio_fsapi::{FileSystem, FsResult, Mode, OpenFlags};

const TOMBSTONE: u32 = u32::MAX;

/// One immutable table.
pub struct Table {
    path: String,
    /// Sorted `(key, value_offset, vlen_raw)`.
    index: Vec<(Vec<u8>, u64, u32)>,
}

impl Table {
    /// Writes `entries` (sorted, as from a `BTreeMap`) to `path`.
    pub fn build(
        fs: &dyn FileSystem,
        path: &str,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> FsResult<Table> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "sorted input");
        let fd = fs.open(path, OpenFlags::CREATE | OpenFlags::WRONLY | OpenFlags::TRUNC, Mode::RW)?;
        let mut buf = Vec::with_capacity(1 << 16);
        let mut index = Vec::with_capacity(entries.len());
        let mut off = 0u64;
        for (k, v) in entries {
            let vlen_raw = v.as_ref().map(|v| v.len() as u32).unwrap_or(TOMBSTONE);
            let empty: &[u8] = &[];
            let vbytes = v.as_deref().unwrap_or(empty);
            let rec_start = off + buf.len() as u64;
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(&vlen_raw.to_le_bytes());
            buf.extend_from_slice(&crate::wal_checksum(k, vbytes).to_le_bytes());
            buf.extend_from_slice(k);
            buf.extend_from_slice(vbytes);
            index.push((k.clone(), rec_start + 12 + k.len() as u64, vlen_raw));
            if buf.len() >= 1 << 16 {
                fs.pwrite(fd, off, &buf)?;
                off += buf.len() as u64;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            fs.pwrite(fd, off, &buf)?;
        }
        fs.fsync(fd)?;
        fs.close(fd)?;
        Ok(Table { path: path.to_string(), index })
    }

    /// Opens an existing table, rebuilding the in-memory index from the
    /// file (recovery path).
    pub fn load(fs: &dyn FileSystem, path: &str) -> FsResult<Table> {
        let fd = fs.open(path, OpenFlags::RDONLY, Mode::empty())?;
        let size = fs.fstat(fd)?.size as usize;
        let mut data = vec![0u8; size];
        let mut done = 0;
        while done < size {
            let n = fs.pread(fd, done as u64, &mut data[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        fs.close(fd)?;
        data.truncate(done);
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos + 12 <= data.len() {
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4")) as usize;
            let vraw = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4"));
            let vlen = if vraw == TOMBSTONE { 0 } else { vraw as usize };
            let body = pos + 12;
            if body + klen + vlen > data.len() {
                break;
            }
            let key = data[body..body + klen].to_vec();
            index.push((key, (body + klen) as u64, vraw));
            pos = body + klen + vlen;
        }
        Ok(Table { path: path.to_string(), index })
    }

    /// First/last key coverage test (L1 is non-overlapping).
    pub fn covers(&self, key: &[u8]) -> bool {
        match (self.index.first(), self.index.last()) {
            (Some(first), Some(last)) => key >= first.0.as_slice() && key <= last.0.as_slice(),
            _ => false,
        }
    }

    /// Point lookup: index binary search + one value `pread`.
    /// `Ok(Some(None))` is a tombstone hit.
    #[allow(clippy::type_complexity)]
    pub fn get(&self, fs: &dyn FileSystem, key: &[u8]) -> FsResult<Option<Option<Vec<u8>>>> {
        let Ok(i) = self.index.binary_search_by(|(k, _, _)| k.as_slice().cmp(key)) else {
            return Ok(None);
        };
        let (_, voff, vraw) = &self.index[i];
        if *vraw == TOMBSTONE {
            return Ok(Some(None));
        }
        let fd = fs.open(&self.path, OpenFlags::RDONLY, Mode::empty())?;
        let mut val = vec![0u8; *vraw as usize];
        let mut done = 0;
        while done < val.len() {
            let n = fs.pread(fd, voff + done as u64, &mut val[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        fs.close(fd)?;
        Ok(Some(Some(val)))
    }

    /// Full scan (compaction input).
    #[allow(clippy::type_complexity)]
    pub fn scan(&self, fs: &dyn FileSystem) -> FsResult<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
        let mut out = Vec::with_capacity(self.index.len());
        let fd = fs.open(&self.path, OpenFlags::RDONLY, Mode::empty())?;
        for (k, voff, vraw) in &self.index {
            if *vraw == TOMBSTONE {
                out.push((k.clone(), None));
                continue;
            }
            let mut val = vec![0u8; *vraw as usize];
            let mut done = 0;
            while done < val.len() {
                let n = fs.pread(fd, voff + done as u64, &mut val[done..])?;
                if n == 0 {
                    break;
                }
                done += n;
            }
            out.push((k.clone(), Some(val)));
        }
        fs.close(fd)?;
        Ok(out)
    }

    /// Deletes the backing file (post-compaction).
    pub fn remove(&self, fs: &dyn FileSystem) -> FsResult<()> {
        fs.unlink(&self.path)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}
