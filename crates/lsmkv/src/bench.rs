//! `db_bench`-shaped workloads (paper Table 5).
//!
//! The paper runs LevelDB's default `db_bench`: one thread, 100-byte
//! values, one million objects. The six workloads here mirror its rows;
//! entry counts and value sizes are parameters so the harness can scale.

use trio_fsapi::FsResult;

use crate::Db;

/// One Table 5 row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbBench {
    /// Sequential fills with 100 KiB values.
    Fill100K,
    /// Sequential-key fills.
    FillSeq,
    /// Sequential fills with `sync_writes` (the DB must be opened so).
    FillSync,
    /// Random-key fills.
    FillRandom,
    /// Random point reads of existing keys.
    ReadRandom,
    /// Random deletes of existing keys.
    DeleteRandom,
}

/// All rows in Table 5's order.
pub const ALL_DB_BENCH: [DbBench; 6] = [
    DbBench::Fill100K,
    DbBench::FillSeq,
    DbBench::FillSync,
    DbBench::FillRandom,
    DbBench::ReadRandom,
    DbBench::DeleteRandom,
];

impl DbBench {
    /// `db_bench`'s row label.
    pub fn name(self) -> &'static str {
        match self {
            DbBench::Fill100K => "Fill 100K",
            DbBench::FillSeq => "Fill seq",
            DbBench::FillSync => "Fill sync",
            DbBench::FillRandom => "Fill random",
            DbBench::ReadRandom => "Read random",
            DbBench::DeleteRandom => "Delete random",
        }
    }

    /// Whether the DB should be opened with synchronous WAL writes.
    pub fn wants_sync(self) -> bool {
        self == DbBench::FillSync
    }

    /// Whether the workload expects pre-loaded data.
    pub fn needs_preload(self) -> bool {
        matches!(self, DbBench::ReadRandom | DbBench::DeleteRandom)
    }

    /// Value size (bytes); `db_bench` default is 100, Fill100K uses 100 KiB.
    pub fn value_size(self) -> usize {
        match self {
            DbBench::Fill100K => 100 * 1024,
            _ => 100,
        }
    }
}

fn key_for(i: u64, random: bool) -> [u8; 16] {
    let k = if random {
        // splitmix-style permutation.
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    } else {
        i
    };
    let mut out = [0u8; 16];
    out.copy_from_slice(format!("{k:016x}").as_bytes());
    out
}

/// Loads `n` sequential-key entries (pre-population for read/delete runs).
pub fn preload(db: &Db, n: u64, value_size: usize) -> FsResult<()> {
    let val = vec![0x33u8; value_size];
    for i in 0..n {
        db.put(&key_for(i, false), &val)?;
    }
    Ok(())
}

/// Runs `n` operations of the given workload; returns bytes moved.
pub fn run(db: &Db, op: DbBench, n: u64) -> FsResult<u64> {
    let vsize = op.value_size();
    let val = vec![0x44u8; vsize];
    let mut bytes = 0u64;
    for i in 0..n {
        match op {
            DbBench::Fill100K | DbBench::FillSeq | DbBench::FillSync => {
                db.put(&key_for(i, false), &val)?;
                bytes += vsize as u64;
            }
            DbBench::FillRandom => {
                db.put(&key_for(i, true), &val)?;
                bytes += vsize as u64;
            }
            DbBench::ReadRandom => {
                let got = db.get(&key_for(i % n, true))?;
                // Random keys over a sequential preload: hit when the
                // permuted key happens to exist; count bytes on hits.
                bytes += got.map(|v| v.len() as u64).unwrap_or(0);
                // Guarantee a hit half the time with a sequential probe.
                let got = db.get(&key_for(i % n, false))?;
                bytes += got.map(|v| v.len() as u64).unwrap_or(0);
            }
            DbBench::DeleteRandom => {
                db.delete(&key_for(i % n, false))?;
            }
        }
    }
    Ok(bytes)
}
