//! LSM store integration tests over ArckFS.

use std::sync::Arc;

use trio_fsapi::FileSystem;
use trio_lsmkv::bench::{preload, run, DbBench, ALL_DB_BENCH};
use trio_lsmkv::{Db, DbConfig};
use trio_sim::SimRuntime;

fn world() -> Arc<dyn FileSystem> {
    let dev = Arc::new(trio_nvm::NvmDevice::new(trio_nvm::DeviceConfig {
        topology: trio_nvm::Topology::new(1, 64 * 1024),
        ..trio_nvm::DeviceConfig::small()
    }));
    let kernel = trio_kernel::KernelController::format(dev, trio_kernel::KernelConfig::default());
    arckfs::ArckFs::mount(kernel, 0, 0, arckfs::ArckFsConfig::no_delegation())
}

fn in_sim(f: impl FnOnce() + Send + 'static) {
    let rt = SimRuntime::new(21);
    rt.spawn("lsm", f);
    rt.run();
}

#[test]
fn put_get_roundtrip_through_flushes() {
    in_sim(|| {
        let fs = world();
        let cfg = DbConfig { memtable_bytes: 4 * 1024, ..Default::default() };
        let db = Db::open(fs, "/db", cfg).unwrap();
        for i in 0..200u32 {
            db.put(format!("key-{i:04}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        // Small memtable forces several flushes (and one compaction).
        let (l0, l1) = db.table_counts();
        assert!(l0 + l1 >= 1, "tables flushed: l0={l0} l1={l1}");
        for i in 0..200u32 {
            let v = db.get(format!("key-{i:04}").as_bytes()).unwrap();
            assert_eq!(v.as_deref(), Some(format!("value-{i}").as_bytes()));
        }
        assert_eq!(db.get(b"absent").unwrap(), None);
    });
}

#[test]
fn overwrites_take_latest_value() {
    in_sim(|| {
        let fs = world();
        let cfg = DbConfig { memtable_bytes: 2 * 1024, ..Default::default() };
        let db = Db::open(fs, "/db", cfg).unwrap();
        for round in 0..5u32 {
            for i in 0..50u32 {
                db.put(format!("k{i}").as_bytes(), format!("r{round}-v{i}").as_bytes()).unwrap();
            }
        }
        for i in 0..50u32 {
            let v = db.get(format!("k{i}").as_bytes()).unwrap();
            assert_eq!(v.as_deref(), Some(format!("r4-v{i}").as_bytes()));
        }
    });
}

#[test]
fn deletes_shadow_older_values() {
    in_sim(|| {
        let fs = world();
        let cfg = DbConfig { memtable_bytes: 2 * 1024, ..Default::default() };
        let db = Db::open(fs, "/db", cfg).unwrap();
        for i in 0..100u32 {
            db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap(); // Values now live in tables.
        for i in (0..100u32).step_by(2) {
            db.delete(format!("k{i:03}").as_bytes()).unwrap();
        }
        for i in 0..100u32 {
            let v = db.get(format!("k{i:03}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(v, None, "k{i:03} deleted");
            } else {
                assert_eq!(v.as_deref(), Some(b"v".as_slice()));
            }
        }
        // Compaction drops tombstones but keeps semantics.
        db.flush().unwrap();
        for _ in 0..4 {
            db.put(b"fill", &[0u8; 1024]).unwrap();
            db.flush().unwrap();
        }
        assert_eq!(db.get(b"k000").unwrap(), None);
        assert_eq!(db.get(b"k001").unwrap().as_deref(), Some(b"v".as_slice()));
    });
}

#[test]
fn wal_recovery_restores_unflushed_writes() {
    in_sim(|| {
        let fs = world();
        let cfg = DbConfig { memtable_bytes: 1 << 20, ..Default::default() };
        {
            let db = Db::open(Arc::clone(&fs), "/db", cfg.clone()).unwrap();
            for i in 0..50u32 {
                db.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            // Drop without flushing: only the WAL has the data.
        }
        let db = Db::recover(fs, "/db", cfg).unwrap();
        for i in 0..50u32 {
            assert_eq!(
                db.get(format!("k{i}").as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
    });
}

#[test]
fn recovery_finds_flushed_tables_too() {
    in_sim(|| {
        let fs = world();
        let cfg = DbConfig { memtable_bytes: 2 * 1024, ..Default::default() };
        {
            let db = Db::open(Arc::clone(&fs), "/db", cfg.clone()).unwrap();
            for i in 0..100u32 {
                db.put(format!("k{i:03}").as_bytes(), &[7u8; 64]).unwrap();
            }
        }
        let db = Db::recover(fs, "/db", cfg).unwrap();
        for i in 0..100u32 {
            assert!(db.get(format!("k{i:03}").as_bytes()).unwrap().is_some(), "k{i:03}");
        }
    });
}

#[test]
fn all_db_bench_rows_execute() {
    in_sim(|| {
        for op in ALL_DB_BENCH {
            let fs = world();
            let cfg = DbConfig {
                memtable_bytes: 64 * 1024,
                sync_writes: op.wants_sync(),
                ..Default::default()
            };
            let db = Db::open(fs, "/db", cfg).unwrap();
            if op.needs_preload() {
                preload(&db, 64, 100).unwrap();
            }
            let n = if op == DbBench::Fill100K { 8 } else { 64 };
            let bytes = run(&db, op, n).unwrap();
            if op != DbBench::DeleteRandom {
                assert!(bytes > 0, "{op:?} moved no bytes");
            }
        }
    });
}
