//! Superblock format (device page 0) with a replicated twin.
//!
//! Byte layout (little-endian), identical on both copies:
//!
//! | offset | field                   |
//! |-------:|-------------------------|
//! |      0 | magic (`ARCKFS01`)      |
//! |      8 | total pages             |
//! |     16 | root: first index page  |
//! |     24 | root: live entry count  |
//! |     32 | root: mtime (virtual ns)|
//! |     40 | inode high-water mark   |
//! |     48 | seahash of bytes 0..48  |
//!
//! The whole record (fields + checksum) fits in cache line 0, so one
//! full-line store updates a copy atomically with respect to concurrent
//! readers (page stores run under the slot lock) and — on real PM — a
//! full-line write is what clears a poisoned line.
//!
//! **Replication (DESIGN.md §19).** The primary lives on page 0; a byte-
//! identical replica lives on the *last* device page (far from the
//! primary, reserved out of the allocator). Writers — only the kernel,
//! single-writer by the controller's superblock lock — update primary
//! first, then the replica. The checksum doubles as a consistency seal:
//! a reader that finds the primary poisoned, bit-rotted, or torn by a
//! crash falls back to the replica, which is stably old-consistent for
//! the whole primary-update window. The commit point of every update is
//! therefore the primary's fence: crash before it and the replica
//! restores the old record; crash after it and recovery resyncs the
//! replica from the new primary.
//!
//! The read path deliberately does **not** repair a bad primary in
//! place: a reader racing the single writer could otherwise resurrect
//! the old record over a freshly committed one. Durable repair is the
//! kernel's job — [`SuperblockRef::scrub`] under the controller's
//! superblock lock (patrol scrubber + recovery).
//!
//! A LibFS maps both copies read-only at mount; only the kernel
//! controller writes them. The root directory has no parent dirent, so
//! its inode fields live here (it is always a directory with mode 0o777,
//! uid/gid 0 in this reproduction).

use trio_nvm::{checksum::checksum, NvmHandle, PageId, ProtError, CACHE_LINE};

/// `b"ARCKFS01"` as a little-endian u64.
pub const MAGIC: u64 = u64::from_le_bytes(*b"ARCKFS01");

const OFF_MAGIC: usize = 0;
const OFF_TOTAL_PAGES: usize = 8;
const OFF_ROOT_FIRST_INDEX: usize = 16;
const OFF_ROOT_SIZE: usize = 24;
const OFF_ROOT_MTIME: usize = 32;
const OFF_NEXT_INO: usize = 40;
/// Seal over bytes `0..48`; lives in line 0 with the fields it covers so
/// a crash reverts field and seal together.
const OFF_CSUM: usize = 48;

/// The (primary) superblock page number.
pub const SUPERBLOCK_PAGE: PageId = PageId(0);

/// The replica page for a device of `total_pages`: the last page, as far
/// from the primary as the geometry allows. Reserved out of every
/// allocator pool at format/recovery time.
pub fn superblock_replica_page(total_pages: u64) -> PageId {
    PageId(total_pages.saturating_sub(1))
}

/// What [`SuperblockRef::scrub`] found (and did).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SbHealth {
    /// Both copies consistent and identical.
    Clean,
    /// Primary was poisoned/rotted/torn; rewritten from the replica.
    RepairedPrimary,
    /// Replica was poisoned/rotted/torn; rewritten from the primary.
    RepairedReplica,
    /// Both consistent but divergent (crash between the two writes);
    /// replica resynced from the newer primary.
    Resynced,
    /// Neither copy validates (unformatted device, or a double fault).
    Degraded,
}

/// Typed accessor over the replicated superblock.
#[derive(Clone)]
pub struct SuperblockRef<'a> {
    h: &'a NvmHandle,
}

fn get(buf: &[u8; CACHE_LINE], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

fn put(buf: &mut [u8; CACHE_LINE], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn sealed(buf: &[u8; CACHE_LINE]) -> bool {
    checksum(&buf[..OFF_CSUM]) == get(buf, OFF_CSUM)
}

impl<'a> SuperblockRef<'a> {
    /// Wraps a handle; no access is performed yet.
    pub fn new(h: &'a NvmHandle) -> Self {
        SuperblockRef { h }
    }

    /// The replica page on this handle's device.
    pub fn replica_page(&self) -> PageId {
        superblock_replica_page(self.h.device().topology().total_pages())
    }

    /// Reads one copy's record line. `Err` means the media itself faulted
    /// (poisoned line, unmapped page for an unprivileged reader).
    fn line0(&self, page: PageId) -> Result<[u8; CACHE_LINE], ProtError> {
        let mut buf = [0u8; CACHE_LINE];
        self.h.read_untimed(page, 0, &mut buf)?;
        Ok(buf)
    }

    /// Persists one full record line to one copy. The full-line store is
    /// what repairs a poisoned line in the device model.
    fn write_line0(&self, page: PageId, buf: &[u8; CACHE_LINE]) -> Result<(), ProtError> {
        let d = self.h.write_dirty(page, 0, buf)?;
        let _durable = self.h.persist_dirty(d);
        Ok(())
    }

    /// The best available record: primary if sealed, else replica if
    /// sealed, else (degraded — unformatted device or double fault) the
    /// raw primary, else the raw replica, else the primary's fault.
    fn best_line0(&self) -> Result<[u8; CACHE_LINE], ProtError> {
        let prim = self.line0(SUPERBLOCK_PAGE);
        if let Ok(b) = &prim {
            if sealed(b) {
                return Ok(*b);
            }
        }
        let rep = self.line0(self.replica_page());
        if let Ok(b) = &rep {
            if sealed(b) {
                return Ok(*b);
            }
        }
        match (prim, rep) {
            (Ok(b), _) => Ok(b),
            (Err(_), Ok(b)) => Ok(b),
            (Err(e), Err(_)) => Err(e),
        }
    }

    /// Fault-tolerant field read (see the module docs for the fallback
    /// ladder; no in-place repair on this path).
    fn read_word(&self, off: usize) -> Result<u64, ProtError> {
        Ok(get(&self.best_line0()?, off))
    }

    /// Read-modify-write of one field through both copies: reseal, then
    /// primary (the commit point), then replica. Callers in the kernel
    /// serialize through the controller's superblock lock; unprivileged
    /// actors fault on the first store.
    fn write_word(&self, off: usize, v: u64) -> Result<(), ProtError> {
        let mut buf = self.best_line0()?;
        put(&mut buf, off, v);
        let seal = checksum(&buf[..OFF_CSUM]);
        put(&mut buf, OFF_CSUM, seal);
        self.write_line0(SUPERBLOCK_PAGE, &buf)?;
        self.write_line0(self.replica_page(), &buf)
    }

    /// Repairs/resyncs the twin copies (kernel only, under the
    /// controller's superblock lock): the patrol scrubber's and the
    /// recovery path's entry point. Primary wins when both copies are
    /// sealed but divergent — the replica is always the older of the two.
    pub fn scrub(&self) -> Result<SbHealth, ProtError> {
        let prim = self.line0(SUPERBLOCK_PAGE).ok().filter(sealed);
        let rep = self.line0(self.replica_page()).ok().filter(sealed);
        match (prim, rep) {
            (Some(p), Some(r)) if p == r => Ok(SbHealth::Clean),
            (Some(p), Some(_)) => {
                self.write_line0(self.replica_page(), &p)?;
                Ok(SbHealth::Resynced)
            }
            (Some(p), None) => {
                self.write_line0(self.replica_page(), &p)?;
                Ok(SbHealth::RepairedReplica)
            }
            (None, Some(r)) => {
                self.write_line0(SUPERBLOCK_PAGE, &r)?;
                Ok(SbHealth::RepairedPrimary)
            }
            (None, None) => Ok(SbHealth::Degraded),
        }
    }

    /// Formats a fresh file system (kernel, at mkfs time): one sealed
    /// line-0 store per copy.
    pub fn format(&self, total_pages: u64, first_ino: u64) -> Result<(), ProtError> {
        let mut buf = [0u8; CACHE_LINE];
        put(&mut buf, OFF_MAGIC, MAGIC);
        put(&mut buf, OFF_TOTAL_PAGES, total_pages);
        put(&mut buf, OFF_ROOT_FIRST_INDEX, 0);
        put(&mut buf, OFF_ROOT_SIZE, 0);
        put(&mut buf, OFF_ROOT_MTIME, 0);
        put(&mut buf, OFF_NEXT_INO, first_ino);
        let seal = checksum(&buf[..OFF_CSUM]);
        put(&mut buf, OFF_CSUM, seal);
        self.write_line0(SUPERBLOCK_PAGE, &buf)?;
        self.write_line0(self.replica_page(), &buf)
    }

    /// Whether the magic matches a formatted file system.
    pub fn is_formatted(&self) -> Result<bool, ProtError> {
        Ok(self.read_word(OFF_MAGIC)? == MAGIC)
    }

    /// Total pages recorded at format time.
    pub fn total_pages(&self) -> Result<u64, ProtError> {
        self.read_word(OFF_TOTAL_PAGES)
    }

    /// Head of the root directory's index-page chain (0 = empty root).
    pub fn root_first_index(&self) -> Result<u64, ProtError> {
        self.read_word(OFF_ROOT_FIRST_INDEX)
    }

    /// Atomically publishes a new root index head.
    pub fn set_root_first_index(&self, page: u64) -> Result<(), ProtError> {
        self.write_word(OFF_ROOT_FIRST_INDEX, page)
    }

    /// Live entries in the root directory.
    pub fn root_size(&self) -> Result<u64, ProtError> {
        self.read_word(OFF_ROOT_SIZE)
    }

    /// Updates the root entry count.
    pub fn set_root_size(&self, n: u64) -> Result<(), ProtError> {
        self.write_word(OFF_ROOT_SIZE, n)
    }

    /// Root mtime (virtual ns).
    pub fn root_mtime(&self) -> Result<u64, ProtError> {
        self.read_word(OFF_ROOT_MTIME)
    }

    /// Updates the root mtime.
    pub fn set_root_mtime(&self, t: u64) -> Result<(), ProtError> {
        self.write_word(OFF_ROOT_MTIME, t)
    }

    /// Persisted inode high-water mark (kernel allocator).
    pub fn next_ino(&self) -> Result<u64, ProtError> {
        self.read_word(OFF_NEXT_INO)
    }

    /// Advances the inode high-water mark.
    pub fn set_next_ino(&self, v: u64) -> Result<(), ProtError> {
        self.write_word(OFF_NEXT_INO, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trio_nvm::{DeviceConfig, NvmDevice, KERNEL_ACTOR};

    #[test]
    fn format_and_read_back() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(dev, KERNEL_ACTOR);
        let sb = SuperblockRef::new(&h);
        assert!(!sb.is_formatted().unwrap());
        sb.format(4096, 2).unwrap();
        assert!(sb.is_formatted().unwrap());
        assert_eq!(sb.total_pages().unwrap(), 4096);
        assert_eq!(sb.root_first_index().unwrap(), 0);
        assert_eq!(sb.next_ino().unwrap(), 2);
        sb.set_root_first_index(17).unwrap();
        sb.set_root_size(3).unwrap();
        assert_eq!(sb.root_first_index().unwrap(), 17);
        assert_eq!(sb.root_size().unwrap(), 3);
        assert_eq!(sb.scrub().unwrap(), SbHealth::Clean);
    }

    #[test]
    fn unprivileged_actor_cannot_write_superblock() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        SuperblockRef::new(&kh).format(4096, 2).unwrap();
        let uh = NvmHandle::new(Arc::clone(&dev), trio_nvm::ActorId(3));
        // Unmapped: cannot even read.
        assert!(SuperblockRef::new(&uh).is_formatted().is_err());
        dev.mmu_map(trio_nvm::ActorId(3), SUPERBLOCK_PAGE, trio_nvm::PagePerm::Read).unwrap();
        assert!(SuperblockRef::new(&uh).is_formatted().unwrap());
        assert!(SuperblockRef::new(&uh).set_root_size(9).is_err());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn poisoned_primary_falls_back_to_replica_and_scrub_repairs() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        let sb = SuperblockRef::new(&h);
        sb.format(4096, 7).unwrap();
        sb.set_root_size(5).unwrap();
        dev.poison_line(SUPERBLOCK_PAGE, 0);
        // Reads survive on the replica.
        assert_eq!(sb.root_size().unwrap(), 5);
        assert_eq!(sb.next_ino().unwrap(), 7);
        // The kernel's scrub rewrites line 0, clearing the poison.
        assert_eq!(sb.scrub().unwrap(), SbHealth::RepairedPrimary);
        assert!(!dev.page_has_poison(SUPERBLOCK_PAGE));
        assert_eq!(sb.root_size().unwrap(), 5);
        assert_eq!(sb.scrub().unwrap(), SbHealth::Clean);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn rotted_replica_detected_and_resealed() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        let sb = SuperblockRef::new(&h);
        sb.format(4096, 7).unwrap();
        let rep = sb.replica_page();
        dev.corrupt_for_test(rep, 24).unwrap(); // silent bit rot in root_size
        assert_eq!(sb.scrub().unwrap(), SbHealth::RepairedReplica);
        assert_eq!(sb.scrub().unwrap(), SbHealth::Clean);
        // A writer that finds a rotted replica heals it on the next seal.
        dev.corrupt_for_test(rep, 24).unwrap();
        sb.set_root_size(9).unwrap();
        assert_eq!(sb.scrub().unwrap(), SbHealth::Clean);
        assert_eq!(sb.root_size().unwrap(), 9);
    }
}
