//! Superblock format (device page 0).
//!
//! Byte layout (little-endian):
//!
//! | offset | field                   |
//! |-------:|-------------------------|
//! |      0 | magic (`ARCKFS01`)      |
//! |      8 | total pages             |
//! |     16 | root: first index page  |
//! |     24 | root: live entry count  |
//! |     32 | root: mtime (virtual ns)|
//! |     40 | inode high-water mark   |
//!
//! A LibFS maps the superblock read-only at mount; only the kernel
//! controller writes it. The root directory has no parent dirent, so its
//! inode fields live here (it is always a directory with mode 0o777,
//! uid/gid 0 in this reproduction).

use trio_nvm::{NvmHandle, PageId, ProtError};

/// `b"ARCKFS01"` as a little-endian u64.
pub const MAGIC: u64 = u64::from_le_bytes(*b"ARCKFS01");

const OFF_MAGIC: usize = 0;
const OFF_TOTAL_PAGES: usize = 8;
const OFF_ROOT_FIRST_INDEX: usize = 16;
const OFF_ROOT_SIZE: usize = 24;
const OFF_ROOT_MTIME: usize = 32;
const OFF_NEXT_INO: usize = 40;

/// The superblock page number.
pub const SUPERBLOCK_PAGE: PageId = PageId(0);

/// Typed accessor over the superblock page.
#[derive(Clone)]
pub struct SuperblockRef<'a> {
    h: &'a NvmHandle,
}

impl<'a> SuperblockRef<'a> {
    /// Wraps a handle; no access is performed yet.
    pub fn new(h: &'a NvmHandle) -> Self {
        SuperblockRef { h }
    }

    /// Formats a fresh file system (kernel, at mkfs time).
    pub fn format(&self, total_pages: u64, first_ino: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_MAGIC, MAGIC)?;
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_TOTAL_PAGES, total_pages)?;
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_FIRST_INDEX, 0)?;
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_SIZE, 0)?;
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_MTIME, 0)?;
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_NEXT_INO, first_ino)?;
        Ok(())
    }

    /// Whether the magic matches a formatted file system.
    pub fn is_formatted(&self) -> Result<bool, ProtError> {
        Ok(self.h.read_u64(SUPERBLOCK_PAGE, OFF_MAGIC)? == MAGIC)
    }

    /// Total pages recorded at format time.
    pub fn total_pages(&self) -> Result<u64, ProtError> {
        self.h.read_u64(SUPERBLOCK_PAGE, OFF_TOTAL_PAGES)
    }

    /// Head of the root directory's index-page chain (0 = empty root).
    pub fn root_first_index(&self) -> Result<u64, ProtError> {
        self.h.read_u64(SUPERBLOCK_PAGE, OFF_ROOT_FIRST_INDEX)
    }

    /// Atomically publishes a new root index head.
    pub fn set_root_first_index(&self, page: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_FIRST_INDEX, page)
    }

    /// Live entries in the root directory.
    pub fn root_size(&self) -> Result<u64, ProtError> {
        self.h.read_u64(SUPERBLOCK_PAGE, OFF_ROOT_SIZE)
    }

    /// Updates the root entry count.
    pub fn set_root_size(&self, n: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_SIZE, n)
    }

    /// Root mtime (virtual ns).
    pub fn root_mtime(&self) -> Result<u64, ProtError> {
        self.h.read_u64(SUPERBLOCK_PAGE, OFF_ROOT_MTIME)
    }

    /// Updates the root mtime.
    pub fn set_root_mtime(&self, t: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_ROOT_MTIME, t)
    }

    /// Persisted inode high-water mark (kernel allocator).
    pub fn next_ino(&self) -> Result<u64, ProtError> {
        self.h.read_u64(SUPERBLOCK_PAGE, OFF_NEXT_INO)
    }

    /// Advances the inode high-water mark.
    pub fn set_next_ino(&self, v: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(SUPERBLOCK_PAGE, OFF_NEXT_INO, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trio_nvm::{DeviceConfig, NvmDevice, KERNEL_ACTOR};

    #[test]
    fn format_and_read_back() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let h = NvmHandle::new(dev, KERNEL_ACTOR);
        let sb = SuperblockRef::new(&h);
        assert!(!sb.is_formatted().unwrap());
        sb.format(4096, 2).unwrap();
        assert!(sb.is_formatted().unwrap());
        assert_eq!(sb.total_pages().unwrap(), 4096);
        assert_eq!(sb.root_first_index().unwrap(), 0);
        assert_eq!(sb.next_ino().unwrap(), 2);
        sb.set_root_first_index(17).unwrap();
        sb.set_root_size(3).unwrap();
        assert_eq!(sb.root_first_index().unwrap(), 17);
        assert_eq!(sb.root_size().unwrap(), 3);
    }

    #[test]
    fn unprivileged_actor_cannot_write_superblock() {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        let kh = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
        SuperblockRef::new(&kh).format(4096, 2).unwrap();
        let uh = NvmHandle::new(Arc::clone(&dev), trio_nvm::ActorId(3));
        // Unmapped: cannot even read.
        assert!(SuperblockRef::new(&uh).is_formatted().is_err());
        dev.mmu_map(trio_nvm::ActorId(3), SUPERBLOCK_PAGE, trio_nvm::PagePerm::Read).unwrap();
        assert!(SuperblockRef::new(&uh).is_formatted().unwrap());
        assert!(SuperblockRef::new(&uh).set_root_size(9).is_err());
    }
}
