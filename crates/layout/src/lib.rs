//! ArckFS **core state**: the explicitly-specified on-NVM data layout that
//! is *common knowledge* among every LibFS, the kernel controller, and the
//! integrity verifier (paper §3.2, §4.1).
//!
//! Everything in this crate is byte-exact: offsets are constants, values
//! are little-endian, and the 8-byte fields that commit operations are
//! updated with the device's atomic-persist primitive (§4.4). A LibFS may
//! build any *auxiliary* state it likes on top (radix trees, hash tables,
//! full-path indexes…), but it cannot change these formats — that is what
//! lets differently-customized LibFSes share files and lets the verifier
//! check them.
//!
//! The core state of one *file* (the unit of sharing and verification) is:
//!
//! * its 256-byte **dirent/inode slot** in the parent directory's data page
//!   (co-location, §4.1) — name, inode number, type, permissions, size, and
//!   the head of the index-page chain;
//! * its chain of **index pages** — 511 slots pointing at data pages plus a
//!   `next` pointer in the last slot;
//! * its **data pages** — raw bytes for regular files, arrays of sixteen
//!   dirent slots for directories.
//!
//! Page number 0 is the superblock, so `0` doubles as the null page
//! pointer, and inode number 0 marks a free/uncommitted dirent slot — the
//! creation protocol writes the whole slot with `ino = 0`, persists it,
//! then atomically publishes the real inode number.

// The whole crate is plain safe Rust over the typed NvmHandle API; the
// xtask lint (safety-comment rule) found zero unsafe blocks, and this
// attribute keeps it that way.
#![forbid(unsafe_code)]

pub mod dirent;
pub mod index;
pub mod superblock;
pub mod walk;

pub use dirent::{DirentData, DirentLoc, DirentRef, DIRENTS_PER_PAGE, DIRENT_SIZE, MAX_NAME};
pub use index::{IndexPageRef, ENTRIES_PER_INDEX};
pub use superblock::{superblock_replica_page, SbHealth, SuperblockRef};
pub use walk::{walk_file, FilePages, WalkError};

/// An inode number. `0` is "none"/free; [`ROOT_INO`] is the root directory.
pub type Ino = u64;

/// The root directory's inode number.
pub const ROOT_INO: Ino = 1;

/// On-disk file-type tags (field `ftype` of a dirent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreFileType {
    /// Regular file.
    Regular = 1,
    /// Directory.
    Directory = 2,
}

impl CoreFileType {
    /// Parses the on-media tag; anything else is corruption (check I1).
    pub fn from_raw(v: u8) -> Option<CoreFileType> {
        match v {
            1 => Some(CoreFileType::Regular),
            2 => Some(CoreFileType::Directory),
            _ => None,
        }
    }

    /// Conversion to the API-level type.
    pub fn to_fsapi(self) -> trio_fsapi::FileType {
        match self {
            CoreFileType::Regular => trio_fsapi::FileType::Regular,
            CoreFileType::Directory => trio_fsapi::FileType::Directory,
        }
    }
}
