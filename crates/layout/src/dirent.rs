//! Directory-entry/inode slots (co-located, paper §4.1).
//!
//! A directory's data pages each hold [`DIRENTS_PER_PAGE`] fixed-size
//! 256-byte slots. Each live slot is simultaneously the child's directory
//! entry *and* its inode — so `stat`, `create`, and `delete` need only the
//! parent directory's pages, and mapping those pages is what the MMU
//! enforces.
//!
//! Slot layout (little-endian):
//!
//! | offset | size | field                              |
//! |-------:|-----:|------------------------------------|
//! |      0 |    8 | inode number (0 = free slot)       |
//! |      8 |    8 | first index page (0 = empty file)  |
//! |     16 |    8 | size (bytes; dirs: live entries)   |
//! |     24 |    8 | mtime (virtual ns)                 |
//! |     32 |    8 | attr word: mode:16 type:8 nlen:8 … |
//! |     40 |    8 | uid:32 gid:32                      |
//! |     48 |    8 | reserved (generation)              |
//! |     56 |  200 | name bytes                         |
//!
//! The attr and owner words are single u64s so permission or name-length
//! changes are 8-byte-atomic; the inode number at offset 0 is the commit
//! point for creation (§4.4).

use trio_fsapi::Mode;
use trio_nvm::{Durable, NvmHandle, PageId, ProtError, Span, Spans, PAGE_SIZE};

use crate::{CoreFileType, Ino};

/// Bytes per dirent slot.
pub const DIRENT_SIZE: usize = 256;

/// Slots per 4 KiB directory data page.
pub const DIRENTS_PER_PAGE: usize = PAGE_SIZE / DIRENT_SIZE;

/// Maximum name length storable in a slot.
pub const MAX_NAME: usize = DIRENT_SIZE - OFF_NAME;

const OFF_INO: usize = 0;
const OFF_FIRST_INDEX: usize = 8;
const OFF_SIZE: usize = 16;
const OFF_MTIME: usize = 24;
const OFF_ATTR: usize = 32;
const OFF_OWNER: usize = 40;
#[allow(dead_code)]
const OFF_RESERVED: usize = 48;
const OFF_NAME: usize = 56;

/// Location of a dirent slot: `(directory data page, slot index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DirentLoc {
    /// Directory data page holding the slot.
    pub page: PageId,
    /// Slot index within the page (`0..DIRENTS_PER_PAGE`).
    pub slot: usize,
}

impl DirentLoc {
    /// Byte offset of the slot within its page.
    pub fn byte_off(self) -> usize {
        self.slot * DIRENT_SIZE
    }
}

/// Decoded dirent/inode contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirentData {
    /// Inode number (0 = free slot).
    pub ino: Ino,
    /// First index page of the child (0 = no pages yet).
    pub first_index: u64,
    /// File size in bytes (directories: live entry count).
    pub size: u64,
    /// Modification time, virtual ns.
    pub mtime: u64,
    /// Permission bits.
    pub mode: Mode,
    /// Raw file-type tag (validated via [`CoreFileType::from_raw`]).
    pub ftype_raw: u8,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// File name (possibly invalid UTF-8/or containing `/` if corrupted —
    /// the verifier checks, so raw bytes are preserved).
    pub name: Vec<u8>,
}

impl DirentData {
    /// A fresh entry for `create`/`mkdir`, before the inode number is
    /// published.
    pub fn new(name: &[u8], ftype: CoreFileType, mode: Mode, uid: u32, gid: u32) -> Self {
        DirentData {
            ino: 0,
            first_index: 0,
            size: 0,
            mtime: 0,
            mode,
            ftype_raw: ftype as u8,
            uid,
            gid,
            name: name.to_vec(),
        }
    }

    /// Parsed file type, if the tag is valid.
    pub fn ftype(&self) -> Option<CoreFileType> {
        CoreFileType::from_raw(self.ftype_raw)
    }

    /// Name as UTF-8, if valid.
    pub fn name_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.name).ok()
    }

    /// Serializes the slot to its on-media image.
    pub fn encode_bytes(&self) -> [u8; DIRENT_SIZE] {
        self.encode()
    }

    /// Parses an on-media slot image (shared knowledge — the verifier and
    /// any LibFS decode slots the same way).
    pub fn decode_bytes(b: &[u8; DIRENT_SIZE]) -> Self {
        Self::decode(b)
    }

    fn encode(&self) -> [u8; DIRENT_SIZE] {
        let mut b = [0u8; DIRENT_SIZE];
        b[OFF_INO..OFF_INO + 8].copy_from_slice(&self.ino.to_le_bytes());
        b[OFF_FIRST_INDEX..OFF_FIRST_INDEX + 8].copy_from_slice(&self.first_index.to_le_bytes());
        b[OFF_SIZE..OFF_SIZE + 8].copy_from_slice(&self.size.to_le_bytes());
        b[OFF_MTIME..OFF_MTIME + 8].copy_from_slice(&self.mtime.to_le_bytes());
        let attr = attr_word(self.mode, self.ftype_raw, self.name.len() as u8);
        b[OFF_ATTR..OFF_ATTR + 8].copy_from_slice(&attr.to_le_bytes());
        let owner = (self.uid as u64) | ((self.gid as u64) << 32);
        b[OFF_OWNER..OFF_OWNER + 8].copy_from_slice(&owner.to_le_bytes());
        let n = self.name.len().min(MAX_NAME);
        b[OFF_NAME..OFF_NAME + n].copy_from_slice(&self.name[..n]);
        b
    }

    fn decode(b: &[u8; DIRENT_SIZE]) -> Self {
        let rd = |off: usize| u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"));
        let attr = rd(OFF_ATTR);
        let owner = rd(OFF_OWNER);
        let name_len = ((attr >> 24) & 0xFF) as usize;
        let name = b[OFF_NAME..OFF_NAME + name_len.min(MAX_NAME)].to_vec();
        DirentData {
            ino: rd(OFF_INO),
            first_index: rd(OFF_FIRST_INDEX),
            size: rd(OFF_SIZE),
            mtime: rd(OFF_MTIME),
            mode: Mode((attr & 0xFFFF) as u16),
            ftype_raw: ((attr >> 16) & 0xFF) as u8,
            uid: (owner & 0xFFFF_FFFF) as u32,
            gid: (owner >> 32) as u32,
            name,
        }
    }

    /// Raw name length recorded in the attr word even when it exceeds
    /// [`MAX_NAME`] (corruption detection needs the raw value).
    pub fn raw_name_len(b: &[u8; DIRENT_SIZE]) -> usize {
        let attr = u64::from_le_bytes(b[OFF_ATTR..OFF_ATTR + 8].try_into().expect("8 bytes"));
        ((attr >> 24) & 0xFF) as usize
    }
}

fn attr_word(mode: Mode, ftype: u8, name_len: u8) -> u64 {
    (mode.0 as u64) | ((ftype as u64) << 16) | ((name_len as u64) << 24)
}

/// Typed accessor for one dirent slot.
pub struct DirentRef<'a> {
    h: &'a NvmHandle,
    loc: DirentLoc,
}

impl<'a> DirentRef<'a> {
    /// Wraps a slot location.
    pub fn new(h: &'a NvmHandle, loc: DirentLoc) -> Self {
        DirentRef { h, loc }
    }

    /// The slot's location.
    pub fn loc(&self) -> DirentLoc {
        self.loc
    }

    /// Reads the inode number only (cheap liveness probe).
    pub fn ino(&self) -> Result<Ino, ProtError> {
        self.h.read_u64(self.loc.page, self.loc.byte_off() + OFF_INO)
    }

    /// Reads and decodes the whole slot.
    pub fn load(&self) -> Result<DirentData, ProtError> {
        let mut b = [0u8; DIRENT_SIZE];
        self.h.read_untimed(self.loc.page, self.loc.byte_off(), &mut b)?;
        Ok(DirentData::decode(&b))
    }

    /// Creation step 1 (§4.4): writes the whole slot with `ino = 0` and
    /// persists it. The slot stays invisible to readers. The returned
    /// [`Durable`] witness is the only way to call [`Self::publish`] —
    /// publishing an unprepared slot no longer type-checks.
    pub fn prepare(&self, data: &DirentData) -> Result<Durable<Span>, ProtError> {
        let mut img = data.encode();
        img[OFF_INO..OFF_INO + 8].copy_from_slice(&0u64.to_le_bytes());
        let dirty = self.h.write_dirty(self.loc.page, self.loc.byte_off(), &img)?;
        Ok(self.h.persist_dirty(dirty))
    }

    /// Creation step 2: atomically publishes the inode number, committing
    /// the entry. `prepared` is the durability witness from
    /// [`Self::prepare`] (or a join that includes it); under `sanitize`
    /// the tracker re-checks every witnessed range.
    pub fn publish<T: Spans>(&self, ino: Ino, prepared: &Durable<T>) -> Result<(), ProtError> {
        debug_assert_ne!(ino, 0);
        self.h.publish_u64(self.loc.page, self.loc.byte_off() + OFF_INO, ino, prepared)
    }

    /// Deletion: atomically clears the inode number; the slot becomes free.
    pub fn clear(&self) -> Result<(), ProtError> {
        self.h.write_u64_persist(self.loc.page, self.loc.byte_off() + OFF_INO, 0)
    }

    /// Atomically updates the size field.
    pub fn set_size(&self, size: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(self.loc.page, self.loc.byte_off() + OFF_SIZE, size)
    }

    /// [`Self::set_size`] as a dependent commit point: the size word only
    /// goes live against a [`Durable`] witness for the data it describes
    /// (e.g. an extent-write proof). Readers that trust `size` then never
    /// see bytes that could still be torn by a crash.
    pub fn set_size_durable<T: Spans>(
        &self,
        size: u64,
        data: &Durable<T>,
    ) -> Result<(), ProtError> {
        self.h.publish_u64(self.loc.page, self.loc.byte_off() + OFF_SIZE, size, data)
    }

    /// Atomically updates the mtime field.
    pub fn set_mtime(&self, t: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(self.loc.page, self.loc.byte_off() + OFF_MTIME, t)
    }

    /// Atomically publishes a new index-chain head (first append/truncate
    /// to empty).
    pub fn set_first_index(&self, page: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(self.loc.page, self.loc.byte_off() + OFF_FIRST_INDEX, page)
    }

    /// Atomically rewrites the attr word (chmod — note the kernel's shadow
    /// table, not this cached copy, is the I4 ground truth).
    pub fn set_attr(&self, mode: Mode, ftype_raw: u8, name_len: u8) -> Result<(), ProtError> {
        let w = attr_word(mode, ftype_raw, name_len);
        self.h.write_u64_persist(self.loc.page, self.loc.byte_off() + OFF_ATTR, w)
    }

    /// Reads size.
    pub fn size(&self) -> Result<u64, ProtError> {
        self.h.read_u64(self.loc.page, self.loc.byte_off() + OFF_SIZE)
    }

    /// Reads the index-chain head.
    pub fn first_index(&self) -> Result<u64, ProtError> {
        self.h.read_u64(self.loc.page, self.loc.byte_off() + OFF_FIRST_INDEX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trio_nvm::{ActorId, DeviceConfig, NvmDevice, PagePerm};

    fn handle() -> NvmHandle {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        dev.mmu_map(ActorId(1), PageId(7), PagePerm::Write).unwrap();
        NvmHandle::new(dev, ActorId(1))
    }

    #[test]
    fn sixteen_slots_per_page() {
        assert_eq!(DIRENTS_PER_PAGE, 16);
        assert_eq!(MAX_NAME, 200);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = DirentData {
            ino: 42,
            first_index: 9,
            size: 12345,
            mtime: 777,
            mode: Mode(0o640),
            ftype_raw: CoreFileType::Regular as u8,
            uid: 1000,
            gid: 2000,
            name: b"report.txt".to_vec(),
        };
        let h = handle();
        let loc = DirentLoc { page: PageId(7), slot: 3 };
        let r = DirentRef::new(&h, loc);
        let w = r.prepare(&d).unwrap();
        // Before publish the slot reads as free.
        assert_eq!(r.ino().unwrap(), 0);
        r.publish(42, &w).unwrap();
        let back = r.load().unwrap();
        assert_eq!(back, d);
        assert_eq!(back.ftype(), Some(CoreFileType::Regular));
        assert_eq!(back.name_str(), Some("report.txt"));
    }

    #[test]
    fn clear_frees_slot() {
        let h = handle();
        let loc = DirentLoc { page: PageId(7), slot: 0 };
        let r = DirentRef::new(&h, loc);
        let d = DirentData::new(b"x", CoreFileType::Directory, Mode::RWX, 0, 0);
        let w = r.prepare(&d).unwrap();
        r.publish(5, &w).unwrap();
        assert_eq!(r.ino().unwrap(), 5);
        r.clear().unwrap();
        assert_eq!(r.ino().unwrap(), 0);
    }

    #[test]
    fn atomic_field_updates() {
        let h = handle();
        let loc = DirentLoc { page: PageId(7), slot: 15 };
        let r = DirentRef::new(&h, loc);
        let d = DirentData::new(b"f", CoreFileType::Regular, Mode::RW, 1, 1);
        let w = r.prepare(&d).unwrap();
        r.publish(6, &w).unwrap();
        r.set_size(4096).unwrap();
        r.set_first_index(33).unwrap();
        r.set_mtime(99).unwrap();
        let back = r.load().unwrap();
        assert_eq!(back.size, 4096);
        assert_eq!(back.first_index, 33);
        assert_eq!(back.mtime, 99);
        assert_eq!(r.size().unwrap(), 4096);
        assert_eq!(r.first_index().unwrap(), 33);
    }

    #[test]
    fn name_is_truncated_to_max() {
        let long = vec![b'a'; 300];
        let d = DirentData::new(&long, CoreFileType::Regular, Mode::RW, 0, 0);
        let h = handle();
        let r = DirentRef::new(&h, DirentLoc { page: PageId(7), slot: 1 });
        let w = r.prepare(&d).unwrap();
        r.publish(9, &w).unwrap();
        let back = r.load().unwrap();
        // name_len wraps at u8 (300 & 0xFF = 44); raw layout preserves the
        // mismatch for the verifier to flag rather than hiding it.
        assert!(back.name.len() <= MAX_NAME);
    }
}
