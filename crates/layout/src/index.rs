//! Index pages (paper §4.1, Figure 4).
//!
//! An index page is an array of 512 u64 slots. Slots `0..511` hold data
//! page numbers (0 = hole); slot 511 holds the next index page in the chain
//! (0 = end). Page numbers are device-global, so the kernel's provenance
//! checks (I2) can validate every slot.

use trio_nvm::{NvmHandle, PageId, ProtError, PAGE_SIZE};

/// Data-page slots per index page (the 512th u64 is the `next` pointer).
pub const ENTRIES_PER_INDEX: usize = PAGE_SIZE / 8 - 1;

const NEXT_SLOT_OFF: usize = ENTRIES_PER_INDEX * 8;

/// Typed accessor over one index page.
pub struct IndexPageRef<'a> {
    h: &'a NvmHandle,
    page: PageId,
}

impl<'a> IndexPageRef<'a> {
    /// Wraps an index page.
    pub fn new(h: &'a NvmHandle, page: PageId) -> Self {
        IndexPageRef { h, page }
    }

    /// The page this accessor wraps.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// Reads data-page slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ENTRIES_PER_INDEX`.
    pub fn entry(&self, i: usize) -> Result<u64, ProtError> {
        assert!(i < ENTRIES_PER_INDEX);
        self.h.read_u64(self.page, i * 8)
    }

    /// Atomically publishes data-page slot `i` (appends commit this way).
    pub fn set_entry(&self, i: usize, v: u64) -> Result<(), ProtError> {
        assert!(i < ENTRIES_PER_INDEX);
        self.h.write_u64_persist(self.page, i * 8, v)
    }

    /// Reads the next-index-page pointer.
    pub fn next(&self) -> Result<u64, ProtError> {
        self.h.read_u64(self.page, NEXT_SLOT_OFF)
    }

    /// Atomically publishes the next-index-page pointer.
    pub fn set_next(&self, v: u64) -> Result<(), ProtError> {
        self.h.write_u64_persist(self.page, NEXT_SLOT_OFF, v)
    }

    /// Reads all 511 entries plus next in one bulk access (aux-state
    /// rebuild and verification path).
    pub fn load_all(&self) -> Result<(Vec<u64>, u64), ProtError> {
        let mut buf = [0u8; PAGE_SIZE];
        self.h.read_untimed(self.page, 0, &mut buf)?;
        let mut entries = Vec::with_capacity(ENTRIES_PER_INDEX);
        for i in 0..ENTRIES_PER_INDEX {
            entries.push(u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().expect("8 bytes")));
        }
        let next = u64::from_le_bytes(buf[NEXT_SLOT_OFF..NEXT_SLOT_OFF + 8].try_into().expect("8"));
        Ok((entries, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trio_nvm::{ActorId, DeviceConfig, NvmDevice, PagePerm};

    fn handle() -> NvmHandle {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        dev.mmu_map(ActorId(1), PageId(3), PagePerm::Write).unwrap();
        NvmHandle::new(dev, ActorId(1))
    }

    #[test]
    fn geometry() {
        assert_eq!(ENTRIES_PER_INDEX, 511);
    }

    #[test]
    fn entries_and_next_roundtrip() {
        let h = handle();
        let ip = IndexPageRef::new(&h, PageId(3));
        ip.set_entry(0, 100).unwrap();
        ip.set_entry(510, 200).unwrap();
        ip.set_next(77).unwrap();
        assert_eq!(ip.entry(0).unwrap(), 100);
        assert_eq!(ip.entry(510).unwrap(), 200);
        assert_eq!(ip.entry(1).unwrap(), 0);
        assert_eq!(ip.next().unwrap(), 77);
        let (entries, next) = ip.load_all().unwrap();
        assert_eq!(entries[0], 100);
        assert_eq!(entries[510], 200);
        assert_eq!(next, 77);
    }

    #[test]
    #[should_panic]
    fn entry_511_is_not_a_data_slot() {
        let h = handle();
        let _ = IndexPageRef::new(&h, PageId(3)).entry(511);
    }
}
