//! Index-chain traversal — shared by LibFS aux-state rebuilding, the kernel
//! controller's mapping path, and the integrity verifier.
//!
//! The walk is defensive: the chain being traversed may have been written
//! by a malicious LibFS, so it bounds its length, rejects out-of-range page
//! numbers, and detects cycles (attack #4 in the paper's §6.5 test suite
//! creates loops within a file's index pages).

use std::collections::HashSet;

use trio_nvm::{NvmHandle, PageId, ProtError};

use crate::index::{IndexPageRef, ENTRIES_PER_INDEX};

/// The pages making up one file's core state (excluding its dirent slot).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilePages {
    /// Index pages in chain order.
    pub index_pages: Vec<PageId>,
    /// Data-page slots in logical order; `None` is a hole.
    pub data_pages: Vec<Option<PageId>>,
}

impl FilePages {
    /// All pages (index + live data), for mapping and provenance checks.
    pub fn all_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.index_pages.iter().copied().chain(self.data_pages.iter().filter_map(|p| *p))
    }

    /// Number of live data pages.
    pub fn live_data_pages(&self) -> usize {
        self.data_pages.iter().filter(|p| p.is_some()).count()
    }

    /// Capacity in bytes covered by the data-page slots.
    pub fn capacity_bytes(&self) -> u64 {
        self.data_pages.len() as u64 * trio_nvm::PAGE_SIZE as u64
    }
}

/// Structural corruption found while walking a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkError {
    /// An index `next` pointer or data slot names a page beyond the device.
    PageOutOfRange(PageId),
    /// The chain revisits an index page.
    IndexCycle(PageId),
    /// The same data page appears in two slots.
    DuplicateDataPage(PageId),
    /// The chain exceeds `max_index_pages` (runaway/corrupt).
    ChainTooLong,
    /// The walker itself lacks access (not corruption — caller's fault).
    Fault(ProtError),
}

impl From<ProtError> for WalkError {
    fn from(e: ProtError) -> Self {
        WalkError::Fault(e)
    }
}

/// Walks a file's index chain starting at `first_index` (0 ⇒ empty file),
/// returning its pages. `max_index_pages` bounds the walk.
pub fn walk_file(
    h: &NvmHandle,
    first_index: u64,
    max_index_pages: usize,
) -> Result<FilePages, WalkError> {
    let total = h.device().topology().total_pages();
    let mut out = FilePages::default();
    let mut seen_index = HashSet::new();
    let mut seen_data = HashSet::new();
    let mut cur = first_index;
    while cur != 0 {
        if cur >= total {
            return Err(WalkError::PageOutOfRange(PageId(cur)));
        }
        let page = PageId(cur);
        if !seen_index.insert(cur) {
            return Err(WalkError::IndexCycle(page));
        }
        if out.index_pages.len() >= max_index_pages {
            return Err(WalkError::ChainTooLong);
        }
        out.index_pages.push(page);
        let (entries, next) = IndexPageRef::new(h, page).load_all()?;
        for (i, &e) in entries.iter().enumerate() {
            debug_assert!(i < ENTRIES_PER_INDEX);
            if e == 0 {
                out.data_pages.push(None);
            } else {
                if e >= total {
                    return Err(WalkError::PageOutOfRange(PageId(e)));
                }
                if !seen_data.insert(e) || seen_index.contains(&e) {
                    return Err(WalkError::DuplicateDataPage(PageId(e)));
                }
                out.data_pages.push(Some(PageId(e)));
            }
        }
        cur = next;
    }
    // Trim trailing holes so data_pages.len() tracks the allocated extent.
    while matches!(out.data_pages.last(), Some(None)) {
        out.data_pages.pop();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trio_nvm::{ActorId, DeviceConfig, NvmDevice, PagePerm};

    fn handle() -> NvmHandle {
        let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
        for p in 1..64 {
            dev.mmu_map(ActorId(1), PageId(p), PagePerm::Write).unwrap();
        }
        NvmHandle::new(dev, ActorId(1))
    }

    #[test]
    fn empty_file_walks_to_nothing() {
        let h = handle();
        let fp = walk_file(&h, 0, 16).unwrap();
        assert!(fp.index_pages.is_empty());
        assert!(fp.data_pages.is_empty());
    }

    #[test]
    fn single_index_page_with_holes() {
        let h = handle();
        let ip = IndexPageRef::new(&h, PageId(2));
        ip.set_entry(0, 10).unwrap();
        ip.set_entry(2, 11).unwrap(); // Slot 1 is a hole.
        let fp = walk_file(&h, 2, 16).unwrap();
        assert_eq!(fp.index_pages, vec![PageId(2)]);
        assert_eq!(fp.data_pages, vec![Some(PageId(10)), None, Some(PageId(11))]);
        assert_eq!(fp.live_data_pages(), 2);
    }

    #[test]
    fn chained_index_pages() {
        let h = handle();
        let ip1 = IndexPageRef::new(&h, PageId(2));
        ip1.set_entry(0, 10).unwrap();
        ip1.set_next(3).unwrap();
        let ip2 = IndexPageRef::new(&h, PageId(3));
        ip2.set_entry(0, 11).unwrap();
        let fp = walk_file(&h, 2, 16).unwrap();
        assert_eq!(fp.index_pages, vec![PageId(2), PageId(3)]);
        assert_eq!(fp.data_pages.len(), ENTRIES_PER_INDEX + 1);
        assert_eq!(fp.data_pages[ENTRIES_PER_INDEX], Some(PageId(11)));
    }

    #[test]
    fn detects_index_cycle() {
        let h = handle();
        IndexPageRef::new(&h, PageId(2)).set_next(3).unwrap();
        IndexPageRef::new(&h, PageId(3)).set_next(2).unwrap();
        assert_eq!(walk_file(&h, 2, 16), Err(WalkError::IndexCycle(PageId(2))));
    }

    #[test]
    fn detects_duplicate_data_page() {
        let h = handle();
        let ip = IndexPageRef::new(&h, PageId(2));
        ip.set_entry(0, 10).unwrap();
        ip.set_entry(1, 10).unwrap();
        assert_eq!(walk_file(&h, 2, 16), Err(WalkError::DuplicateDataPage(PageId(10))));
    }

    #[test]
    fn detects_out_of_range_pointer() {
        let h = handle();
        IndexPageRef::new(&h, PageId(2)).set_entry(0, 1 << 40).unwrap();
        assert!(matches!(walk_file(&h, 2, 16), Err(WalkError::PageOutOfRange(_))));
    }

    #[test]
    fn bounds_chain_length() {
        let h = handle();
        // 1 -> 2 -> 3 chain but allow only 2 index pages.
        IndexPageRef::new(&h, PageId(1)).set_next(2).unwrap();
        IndexPageRef::new(&h, PageId(2)).set_next(3).unwrap();
        assert_eq!(walk_file(&h, 1, 2), Err(WalkError::ChainTooLong));
    }

    #[test]
    fn data_page_equal_to_index_page_is_duplicate() {
        let h = handle();
        let ip = IndexPageRef::new(&h, PageId(2));
        ip.set_entry(0, 2).unwrap(); // Data slot points at the index page itself.
        assert_eq!(walk_file(&h, 2, 16), Err(WalkError::DuplicateDataPage(PageId(2))));
    }
}
