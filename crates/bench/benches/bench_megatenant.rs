//! Mega-tenant control-plane bench: the numbers behind
//! `BENCH_megatenant.json` and the scaling gate in `scripts/verify.sh`.
//!
//! One kernel, N independent LibFS instances (N = 8, 32, 128 — each its
//! own registered actor, *not* a trust group), every tenant working in a
//! private directory. Two measured phases per rung:
//!
//! 1. **Metadata churn** — create/unlink bursts, the pure control-plane
//!    traffic: every create allocates inos and dirent pages, every
//!    unlink frees them. This is the phase the scaling gate reads:
//!    per-tenant op rate at 128 tenants over the rate at 8 must stay
//!    near 1.0. The sharded provenance maps and lock-free allocator
//!    caches make each tenant's alloc/free private; the old single
//!    registry mutex serialized all of it (128 tenants → 1/16th the
//!    per-tenant rate).
//! 2. **Delegated-write burst** — 64 KiB writes through the rings.
//!    Reported as aggregate bandwidth, *not* gated on scaling: the
//!    worker pool is sized per NUMA node, so its capacity is fixed by
//!    the machine, not the tenant count. What the rung must show is
//!    `registry_locks ≈ 0` while 128 tenants hammer the grant table and
//!    allocator concurrently.
//!
//! Both phases are deterministic virtual time. Output: human-readable
//! lines on stdout, JSON to `$TRIO_BENCH_OUT` (default
//! `BENCH_megatenant.json` in the current directory).

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig};
use trio_fsapi::{FileSystem, Mode, OpenFlags};
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{BandwidthModel, DeviceConfig, NvmDevice, PathStatsSnapshot, Topology};
use trio_workloads::{run_parallel, Measurement, OpCount};

/// Tenant counts on the x-axis. The first and last anchor the scaling
/// gate; the middle rung is for the EXPERIMENTS.md curve.
const RUNGS: [usize; 3] = [8, 32, 128];

/// Create/unlink rounds per tenant in the metadata phase.
const META_FILES: usize = 60;
/// Delegated 64 KiB writes per tenant in the data phase.
const DATA_OPS: u64 = 8;

/// One rung's results.
struct Rung {
    n: usize,
    meta: Measurement,
    data: Measurement,
    snap: PathStatsSnapshot,
}

/// Runs one rung: a fresh kernel, `n` mounted LibFS instances, all
/// tenants concurrent. The per-tenant directories are created in the
/// setup window (root-directory handover is inherently serial — one
/// write lease — and not what this bench measures).
fn run_rung(n: usize) -> Rung {
    let nodes = 8;
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(nodes, 32 * 1024),
        model: BandwidthModel::default(),
        track_persistence: false,
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let stats = Arc::clone(kernel.path_stats());
    let tenants: Arc<Vec<Arc<ArckFs>>> = Arc::new(
        (0..n)
            .map(|_| ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::default()))
            .collect(),
    );

    // Phase 1: metadata churn, no delegation involved.
    let setup_tenants = Arc::clone(&tenants);
    let work_tenants = Arc::clone(&tenants);
    let meta = run_parallel(
        42 + n as u64,
        n,
        nodes,
        move || {
            for (i, fs) in setup_tenants.iter().enumerate() {
                fs.mkdir(&format!("/t{i}"), Mode(0o777)).expect("tenant mkdir");
            }
        },
        move |i| {
            let fs = &work_tenants[i];
            let mut ops = 0u64;
            for k in 0..META_FILES {
                let p = format!("/t{i}/f{k}");
                fs.create(&p, Mode(0o666)).expect("tenant create");
                ops += 1;
                if k % 2 == 0 {
                    fs.unlink(&p).expect("tenant unlink");
                    ops += 1;
                }
            }
            OpCount { ops, bytes: 0 }
        },
        || {},
    );

    // Phase 2: delegated-write burst through the rings.
    let work_tenants = Arc::clone(&tenants);
    let k_start = Arc::clone(&kernel);
    let k_stop = Arc::clone(&kernel);
    let data = run_parallel(
        4200 + n as u64,
        n,
        nodes,
        move || {
            let _ = k_start.delegation().start();
        },
        move |i| {
            let fs = &work_tenants[i];
            let block = vec![0xB5u8; 64 * 1024];
            let fd = fs
                .open(&format!("/t{i}/data"), OpenFlags::CREATE | OpenFlags::WRONLY, Mode(0o666))
                .expect("tenant data open");
            let mut bytes = 0u64;
            for k in 0..DATA_OPS {
                fs.pwrite(fd, k * block.len() as u64, &block).expect("tenant pwrite");
                bytes += block.len() as u64;
            }
            fs.close(fd).expect("tenant close");
            OpCount { ops: DATA_OPS, bytes }
        },
        move || {
            k_stop.delegation().shutdown();
        },
    );

    Rung { n, meta, data, snap: stats.snapshot() }
}

/// Ops per virtual second per tenant.
fn per_tenant_rate(m: &Measurement, n: usize) -> f64 {
    m.ops as f64 / (m.elapsed_ns as f64 / 1e9) / n as f64
}

fn main() {
    println!("# Mega-tenant control-plane bench (virtual time, {RUNGS:?} tenants)");

    let rungs: Vec<Rung> = RUNGS.iter().map(|n| run_rung(*n)).collect();
    for r in &rungs {
        let meta_rate = per_tenant_rate(&r.meta, r.n);
        let data_gib_s = r.data.bytes as f64 / (1u64 << 30) as f64
            / (r.data.elapsed_ns as f64 / 1e9);
        println!(
            "{:>4} tenants   metadata {meta_rate:>12.0} ops/s/tenant   delegated {data_gib_s:>7.2} GiB/s   ({} hot registry locks)",
            r.n, r.snap.registry_locks
        );
        println!("#   {}", r.snap.summary_line());
        assert_eq!(
            r.meta.ops,
            (META_FILES + META_FILES / 2) as u64 * r.n as u64,
            "every tenant completed its metadata script"
        );
        assert!(r.snap.delegated_write_bytes > 0, "64 KiB writes must delegate");
    }

    let first = &rungs[0];
    let last = &rungs[rungs.len() - 1];
    let scaling = per_tenant_rate(&last.meta, last.n) / per_tenant_rate(&first.meta, first.n);
    println!(
        "per-tenant metadata scaling {} -> {} tenants: {scaling:.3} (1.0 = perfectly linear)",
        first.n, last.n
    );
    let max_hot_locks = rungs.iter().map(|r| r.snap.registry_locks).max().unwrap_or(0);

    let json = last.snap.to_json(&[
        ("tenant_rungs", format!("[{}]", RUNGS.map(|n| n.to_string()).join(", "))),
        (
            "meta_ops_per_sec_per_tenant",
            format!(
                "[{}]",
                rungs
                    .iter()
                    .map(|r| format!("{:.0}", per_tenant_rate(&r.meta, r.n)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        ("scaling_8_to_128", format!("{scaling:.4}")),
        ("max_hot_registry_locks", max_hot_locks.to_string()),
    ]);
    let out = std::env::var("TRIO_BENCH_OUT").unwrap_or_else(|_| "BENCH_megatenant.json".into());
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    println!("# wrote {out}");
}
