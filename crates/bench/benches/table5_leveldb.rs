//! **Table 5** — LevelDB `db_bench` over each file system (one thread,
//! 100-byte values; Fill100K uses 100 KiB values).
//!
//! Paper shape: ArckFS wins every row (up to 3.1× over WineFS, 1.5–17×
//! over ext4); ArckFS-nd beats ArckFS on the small-value rows (delegation
//! striping overhead) but loses on Fill100K (parallelized large writes).

use std::sync::Arc;

use trio_sim::plock::Mutex;
use trio_bench::{scale, World};
use trio_lsmkv::bench::{preload, run, DbBench, ALL_DB_BENCH};
use trio_lsmkv::{Db, DbConfig};

fn point(fs_name: &str, op: DbBench, n: u64) -> f64 {
    let world = World::build(fs_name, 8, 64 * 1024);
    let fs = Arc::clone(&world.fs);
    let kernel = world.kernel.clone();
    let kernel2 = world.kernel.clone();
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = Arc::clone(&out);
    let rt = trio_sim::SimRuntime::new(55);
    rt.spawn("dbbench", move || {
        if let Some(k) = &kernel {
            let _ = k.delegation().start();
        }
        let cfg = DbConfig {
            memtable_bytes: (4 << 20) / scale(),
            sync_writes: op.wants_sync(),
            ..Default::default()
        };
        let db = Db::open(fs, "/db", cfg).expect("open db");
        if op.needs_preload() {
            preload(&db, n, 100).expect("preload");
        }
        let t0 = trio_sim::now();
        run(&db, op, n).expect("db_bench");
        let dt = trio_sim::now() - t0;
        *out2.lock() = n as f64 / (dt as f64 / 1e6); // ops per virtual ms.
        if let Some(k) = &kernel2 {
            k.delegation().shutdown();
        }
    });
    rt.run();
    let v = *out.lock();
    v
}

fn main() {
    let s = scale();
    println!("# Table 5: LevelDB db_bench, ops/ms (scale 1/{s})");
    let fs_list = ["ext4", "NOVA", "WineFS", "ArckFS", "ArckFS-nd"];
    print!("{:<14}", "workload");
    for fs in fs_list {
        print!(" {fs:>10}");
    }
    println!();
    let n_small = (1_000_000 / s as u64 / 16).max(2_000);
    for op in ALL_DB_BENCH {
        let n = if op == DbBench::Fill100K { (n_small / 40).max(100) } else { n_small };
        print!("{:<14}", op.name());
        for fs in fs_list {
            print!(" {:>10.2}", point(fs, op, n));
        }
        println!("   [ops/ms, n={n}]");
    }
}
