//! **Figure 6** — data-operation throughput vs thread count, on one and
//! eight NUMA nodes, for 4 KiB and 2 MiB reads and writes.
//!
//! Paper shapes to reproduce: on one node every FS rises to the node's
//! bandwidth ceiling and then collapses under excessive concurrency; on
//! eight nodes only OdinFS and ArckFS keep scaling (delegation bounds
//! per-node writers and stripes big I/O), with ArckFS ahead of OdinFS
//! thanks to kernel bypass; ext4(RAID0) scales 2 MiB reads but not 4 KiB.

use std::sync::Arc;

use trio_bench::{eight_node_threads, one_node_threads, print_row, print_thread_header, scale, World};
use trio_workloads::fio::{Fio, FioOp};

fn panel(title: &str, fs_list: &[&str], nodes: usize, block: usize, op: FioOp, threads: &[usize]) {
    print_thread_header(title, threads);
    #[cfg(feature = "obs")]
    let obs_base = trio_obs::snapshot();
    let max_threads = *threads.iter().max().unwrap();
    for fs in fs_list {
        let mut vals = Vec::new();
        let mut top_stats = None;
        for &t in threads {
            // Budget: keep per-thread footprint bounded at high counts.
            let file_bytes =
                (((1u64 << 30) / scale() as u64).min(8 << 20)).max(4 * block as u64);
            let ops = if block >= 1 << 20 { 8 } else { 192 };
            let pages_per_node =
                (max_threads * 2 * file_bytes as usize / 4096 / nodes).max(16 * 1024);
            let world = World::build(fs, nodes, pages_per_node);
            let stats = world.path_stats();
            let wl = Arc::new(Fio { op, block, file_bytes, ops_per_thread: ops });
            vals.push(world.measure(wl, t, 42).gib_per_sec());
            if t == max_threads {
                top_stats = stats.map(|s| s.snapshot());
            }
        }
        print_row(fs, &vals, "GiB/s");
        if let Some(snap) = top_stats {
            println!("#   {fs} @{max_threads}t  {}", snap.summary_line());
        }
    }
    // Per-stage latency breakdown for the whole panel (all FSes, all
    // rungs); EXPERIMENTS.md's fig6 table reads the (f) panel of this.
    #[cfg(feature = "obs")]
    for line in trio_obs::snapshot().delta(&obs_base).table_lines() {
        println!("# obs {line}");
    }
}

fn main() {
    println!("# Figure 6: fio throughput scaling (scale 1/{})", scale());
    let one = one_node_threads();
    let eight = eight_node_threads();

    let one_fs = ["ext4", "PMFS", "NOVA", "WineFS", "SplitFS", "ArckFS-nd"];
    panel("(a) 4KB read, 1 NUMA node", &one_fs, 1, 4096, FioOp::Read, &one);
    panel("(b) 4KB write, 1 NUMA node", &one_fs, 1, 4096, FioOp::Write, &one);
    panel("(c) 2MB read, 1 NUMA node", &one_fs, 1, 2 << 20, FioOp::Read, &one);
    panel("(d) 2MB write, 1 NUMA node", &one_fs, 1, 2 << 20, FioOp::Write, &one);

    let eight_fs =
        ["ext4", "ext4-RAID0", "PMFS", "NOVA", "WineFS", "SplitFS", "OdinFS", "ArckFS"];
    panel("(e) 4KB read, 8 NUMA nodes", &eight_fs, 8, 4096, FioOp::Read, &eight);
    panel("(f) 4KB write, 8 NUMA nodes", &eight_fs, 8, 4096, FioOp::Write, &eight);
    panel("(g) 2MB read, 8 NUMA nodes", &eight_fs, 8, 2 << 20, FioOp::Read, &eight);
    panel("(h) 2MB write, 8 NUMA nodes", &eight_fs, 8, 2 << 20, FioOp::Write, &eight);

    // Read variant of the delegated lane: 64 KiB is past the delegation
    // knee at every rung, so the ArckFS row here is pure delegated-read
    // traffic through the grant-window machinery (the `deleg … r` term of
    // the summary line must be the whole transfer).
    panel(
        "(i) 64KB read, 8 NUMA nodes (delegated lane)",
        &["OdinFS", "ArckFS"],
        8,
        64 * 1024,
        FioOp::Read,
        &eight,
    );
}
