//! **Figure 8** — breakdown of ArckFS's sharing cost into map, unmap,
//! verification, and auxiliary-state rebuilding.
//!
//! Paper shape: for `4KB-write` on the large file, mapping+unmapping
//! contribute ~99% of the transfer overhead (page-table programming over
//! 262K pages); for `create-100`, verification dominates (~81%) with
//! aux-rebuild second (~12%).

use trio_bench::{run_sharing_create, run_sharing_write, scale};

fn print_breakdown(label: &str, map: u64, unmap: u64, verify: u64, rebuild: u64) {
    let total = (map + unmap + verify + rebuild).max(1) as f64;
    println!(
        "{label:<22} map {:>5.1}%  unmap {:>5.1}%  verifier {:>5.1}%  aux-rebuild {:>5.1}%",
        map as f64 / total * 100.0,
        unmap as f64 / total * 100.0,
        verify as f64 / total * 100.0,
        rebuild as f64 / total * 100.0
    );
}

fn main() {
    let s = scale();
    println!("# Figure 8: breakdown of ArckFS's sharing cost (scale 1/{s})");
    let big = (1u64 << 30) / s as u64;

    let w = run_sharing_write(big, 60_000, false);
    print_breakdown(
        &format!("4KB-write {}MB", big >> 20),
        w.phases.map_ns,
        w.phases.unmap_ns,
        w.phases.verify_ns + w.phases.checkpoint_ns,
        w.rebuild_ns,
    );

    let c = run_sharing_create(100, 400, false);
    print_breakdown(
        "create-100",
        c.phases.map_ns,
        c.phases.unmap_ns,
        c.phases.verify_ns + c.phases.checkpoint_ns,
        c.rebuild_ns,
    );
}
