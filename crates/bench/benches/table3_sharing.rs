//! **Table 3** — sharing cost when two untrusted processes concurrently
//! update the same file or directory.
//!
//! Paper rows: 4KB-write over a 2 MB and a 1 GB shared file (GiB/s), and
//! create in a shared directory of 10 and 100 entries (µs/op), for NOVA
//! (kernel FS baseline), ArckFS (two untrusted LibFSes with the full
//! lease/verify/transfer protocol), and ArckFS in a trust group (one
//! shared LibFS, no transfer cost). Paper shape: negligible overhead on
//! the small file, large overhead (map/unmap dominated) on the big file,
//! verification-dominated overhead for create-100, and trust groups
//! eliminating all of it.

use trio_bench::{run_sharing_create, run_sharing_nova, run_sharing_write, scale};

fn main() {
    let s = scale();
    println!("# Table 3: sharing cost, two concurrent updaters (scale 1/{s})");
    let small = 2u64 << 20;
    let big = (1u64 << 30) / s as u64;
    let write_ops = 150_000u64;
    let create_ops = 400u64;

    println!("\n{:<22} {:>12} {:>12} {:>12}", "workload", "NOVA", "ArckFS", "ArckFS-tg");

    let nova = run_sharing_nova(Some(small), 0, write_ops);
    let arck = run_sharing_write(small, write_ops, false);
    let tg = run_sharing_write(small, write_ops, true);
    println!(
        "{:<22} {:>9.2}GiB/s {:>9.2}GiB/s {:>9.2}GiB/s",
        "4KB-write 2MB",
        nova.gib_per_sec(),
        arck.gib_per_sec(),
        tg.gib_per_sec()
    );

    let nova = run_sharing_nova(Some(big), 0, write_ops);
    let arck = run_sharing_write(big, write_ops, false);
    let tg = run_sharing_write(big, write_ops, true);
    println!(
        "{:<22} {:>9.2}GiB/s {:>9.2}GiB/s {:>9.2}GiB/s",
        format!("4KB-write {}MB", big >> 20),
        nova.gib_per_sec(),
        arck.gib_per_sec(),
        tg.gib_per_sec()
    );

    let nova = run_sharing_nova(None, 10, create_ops);
    let arck = run_sharing_create(10, create_ops, false);
    let tg = run_sharing_create(10, create_ops, true);
    println!(
        "{:<22} {:>10.1}us {:>10.1}us {:>10.1}us",
        "create, 10 files",
        nova.usec_per_op(),
        arck.usec_per_op(),
        tg.usec_per_op()
    );

    let nova = run_sharing_nova(None, 100, create_ops);
    let arck = run_sharing_create(100, create_ops, false);
    let tg = run_sharing_create(100, create_ops, true);
    println!(
        "{:<22} {:>10.1}us {:>10.1}us {:>10.1}us",
        "create, 100 files",
        nova.usec_per_op(),
        arck.usec_per_op(),
        tg.usec_per_op()
    );
}
