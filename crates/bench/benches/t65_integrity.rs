//! **§6.5** — metadata-integrity enforcement: the eleven handcrafted
//! attacks plus scripted corruption sweeps, and the verification latency
//! the paper reports ("several to hundreds of microseconds for
//! medium-sized files").

use std::sync::Arc;

use arckfs::attack::{run_attack, ALL_ATTACKS};
use arckfs::{ArckFs, ArckFsConfig};
use trio_sim::plock::Mutex;
use trio_bench::build_arckfs_world;
use trio_fsapi::{FileSystem, Mode};
use trio_kernel::registry::KernelEvent;
use trio_sim::SimRuntime;

/// Runs one attack end-to-end; returns (detected, recovered, verify_ns).
fn attack_round(attack: arckfs::attack::Attack) -> (bool, bool, u64) {
    let (_, kernel, evil) = build_arckfs_world(1, 32 * 1024, ArckFsConfig::no_delegation());
    let victim_fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let out = Arc::new(Mutex::new((false, false, 0u64)));
    let out2 = Arc::clone(&out);
    let rt = SimRuntime::new(99);
    rt.spawn("attack", move || {
        use trio_fsapi::OpenFlags;
        // The attacker legitimately builds a small tree and hands it over.
        evil.mkdir("/dir", Mode(0o777)).unwrap();
        evil.mkdir("/dir/victim-sub", Mode(0o777)).unwrap();
        evil.create("/dir/victim-sub/inner", Mode(0o666)).unwrap();
        trio_fsapi::write_file(&*evil, "/dir/victim", &vec![7u8; 64 * 1024]).unwrap();
        evil.release_path("/dir").unwrap();
        // The victim maps the clean state (adopt + verify + claim).
        let _ = victim_fs.readdir("/dir").unwrap();
        let _ = trio_fsapi::read_file(&*victim_fs, "/dir/victim").unwrap();
        // The attacker legitimately regains write grants (the kernel
        // checkpoints here — the rollback baseline).
        let fd = evil.open("/dir/victim", OpenFlags::RDWR, Mode(0o666)).unwrap();
        evil.pwrite(fd, 0, &[7u8]).unwrap();
        evil.close(fd).unwrap();
        evil.create("/dir/warmup", Mode(0o666)).unwrap();
        evil.unlink("/dir/warmup").unwrap();
        // ...and corrupts core state with raw stores through its mapping.
        let target = if attack == arckfs::attack::Attack::RemoveNonEmptyDir {
            "victim-sub"
        } else {
            "victim"
        };
        run_attack(&evil, attack, "/dir", target).unwrap();
        evil.release_path("/dir/victim").unwrap();
        evil.release_path("/dir").unwrap();
        let _ = kernel.take_phase_stats();
        // The victim now maps the corrupted state: detection + recovery.
        let _ = victim_fs.readdir("/dir");
        let _ = trio_fsapi::read_file(&*victim_fs, "/dir/victim");
        let _ = victim_fs.stat("/dir/victim-sub");
        let events = kernel.take_events();
        let detected =
            events.iter().any(|e| matches!(e, KernelEvent::CorruptionDetected { .. }));
        let recovered = events.iter().any(|e| matches!(e, KernelEvent::RolledBack { .. }));
        let verify_ns = kernel.take_phase_stats().verify_ns;
        *out2.lock() = (detected, recovered, verify_ns);
    });
    rt.run();
    let r = *out.lock();
    r
}

/// Verification latency for a directory of `entries` files.
fn verify_latency(entries: usize) -> u64 {
    let (_, kernel, a) = build_arckfs_world(1, 64 * 1024, ArckFsConfig::no_delegation());
    let b = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let out = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let rt = SimRuntime::new(3);
    rt.spawn("verify", move || {
        a.mkdir("/d", Mode(0o777)).unwrap();
        for i in 0..entries {
            a.create(&format!("/d/f{i}"), Mode(0o666)).unwrap();
        }
        a.release_path("/d").unwrap();
        let _ = kernel.take_phase_stats();
        let _ = b.readdir("/d").unwrap();
        *out2.lock() = kernel.take_phase_stats().verify_ns;
    });
    rt.run();
    let v = *out.lock();
    v
}

fn main() {
    println!("# Section 6.5: metadata integrity under attack");
    println!("\n== handcrafted malicious-LibFS attacks ==");
    let mut detected = 0;
    let mut recovered = 0;
    for attack in ALL_ATTACKS {
        let (d, r, vns) = attack_round(attack);
        println!(
            "{:<22} detected={}  recovered={}  verify={:.1}us",
            format!("{attack:?}"),
            d,
            r,
            vns as f64 / 1000.0
        );
        detected += d as u32;
        recovered += r as u32;
    }
    println!("-- {detected}/11 detected, {recovered}/11 rolled back --");

    println!("\n== verification latency vs directory size ==");
    for entries in [10, 100, 1000, 5000] {
        println!("{entries:>6} entries: {:.1}us", verify_latency(entries) as f64 / 1000.0);
    }
}
