//! **Figure 5** — single-thread performance.
//!
//! Panels: (a) 4 KiB read/write GiB/s, (b) 2 MiB read/write GiB/s,
//! (c) read-metadata ops/µs (open in five-deep dirs), (d) write-metadata
//! ops/µs (create, delete). One thread, eight NUMA nodes (the paper's
//! default setup; ArckFS-nd shows the no-delegation configuration).

use std::sync::Arc;

use trio_bench::{print_row, scale, World};
use trio_workloads::fio::{Fio, FioOp};
use trio_workloads::fxmark::{FxBench, FxMark};

const PAGES_PER_NODE: usize = 48 * 1024; // 8 nodes x 192 MiB.

fn data_point(fs: &str, block: usize, op: FioOp) -> f64 {
    let file_bytes = ((1u64 << 30) / scale() as u64).min(48 << 20);
    let ops = if block >= 1 << 20 { 24 } else { 512 };
    let world = World::build(fs, 8, PAGES_PER_NODE);
    let wl = Arc::new(Fio { op, block, file_bytes, ops_per_thread: ops });
    world.measure(wl, 1, 42).gib_per_sec()
}

fn meta_point(fs: &str, bench: FxBench) -> f64 {
    let world = World::build(fs, 8, PAGES_PER_NODE);
    let wl = Arc::new(FxMark { bench, ops_per_thread: 400, pool_files: 64 });
    world.measure(wl, 1, 42).ops_per_usec()
}

fn main() {
    println!("# Figure 5: single-thread performance (scale 1/{})", scale());
    println!("# paper: SplitFS/ArckFS-nd beat NOVA by 9-31% on 4KB (direct access);");
    println!("#        OdinFS/ArckFS dominate 2MB (parallel delegation);");
    println!("#        ArckFS leads open/create/delete by 1.6x-9.4x.");

    let data_fs = ["NOVA", "SplitFS", "OdinFS", "ArckFS-nd", "ArckFS"];
    println!("\n== (a) 4KB data, 1 thread ==");
    println!("{:<14} {:>9} {:>9}", "fs", "read", "write");
    for fs in data_fs {
        let r = data_point(fs, 4096, FioOp::Read);
        let w = data_point(fs, 4096, FioOp::Write);
        print_row(fs, &[r, w], "GiB/s");
    }

    println!("\n== (b) 2MB data, 1 thread ==");
    println!("{:<14} {:>9} {:>9}", "fs", "read", "write");
    for fs in data_fs {
        let r = data_point(fs, 2 << 20, FioOp::Read);
        let w = data_point(fs, 2 << 20, FioOp::Write);
        print_row(fs, &[r, w], "GiB/s");
    }

    let meta_fs = ["ext4", "NOVA", "Strata", "ArckFS"];
    println!("\n== (c) read metadata: open (five-deep dir) ==");
    println!("{:<14} {:>9}", "fs", "open");
    for fs in meta_fs {
        print_row(fs, &[meta_point(fs, FxBench::Mrpl)], "ops/us");
    }

    println!("\n== (d) write metadata: create / delete ==");
    println!("{:<14} {:>9} {:>9}", "fs", "create", "delete");
    for fs in meta_fs {
        let c = meta_point(fs, FxBench::Mwcl);
        let d = meta_point(fs, FxBench::Mwul);
        print_row(fs, &[c, d], "ops/us");
    }
}
