//! Data-path smoke bench: the numbers behind `BENCH_datapath.json` and
//! the CI perf gate in `scripts/verify.sh`.
//!
//! Two quick, fully deterministic scenarios (fixed seed, virtual time):
//!
//! 1. **Delegated-write latency** — 64 KiB writes (always delegated) from
//!    a handful of threads over 8 nodes. Mean virtual ns per op is the
//!    gate metric: it moves whenever the batched submission path, the
//!    ring protocol, or the device model regress, and it is immune to
//!    host noise because it is simulated time.
//! 2. **Loaded multi-phase run** — three phases against one live kernel:
//!    the fig6(f) 4 KiB-write shape at one thread count (headline
//!    throughput), a delegated 64 KiB read phase (the read lane of the
//!    same grant-window machinery), and a truncate/re-extend churn phase
//!    that exercises the per-actor free-page cache. The final
//!    [`PathStats`] snapshot must show zero payload copies, checksummed
//!    bytes equal to delegated write bytes, delegated read traffic, and
//!    a live free cache.
//!
//! Output: human-readable lines on stdout, JSON to `$TRIO_BENCH_OUT`
//! (default `BENCH_datapath.json` in the current directory).

use std::sync::Arc;

use trio_bench::World;
use trio_fsapi::{FileSystem, Mode, OpenFlags};
use trio_workloads::fio::{Fio, FioOp};
use trio_workloads::{OpCount, Workload};

/// Truncate/re-extend churn: each thread repeatedly fills a private file
/// through a registered grant window (no payload bytes on submit), then
/// truncates it to zero. The truncate path parks the freed pages in the
/// actor's scrubbed allocator cache, and the next round's extension
/// allocates straight out of it — so a healthy run shows `free_cached`,
/// `free_spills`, and a fast-path allocator hit rate in the snapshot.
struct Churn {
    /// Bytes each round writes before truncating.
    file_bytes: u64,
    /// Fill-then-truncate rounds per thread.
    rounds: u32,
}

impl Workload for Churn {
    fn setup(&self, _fs: &dyn FileSystem, _threads: usize) {}

    fn run_thread(&self, fs: &dyn FileSystem, thread: usize) -> OpCount {
        let path = format!("/churn-{thread}");
        let chunk = vec![0x5Cu8; (1 << 20).min(self.file_bytes as usize)];
        let reg = fs.register_write_buffer(&chunk).expect("churn grant");
        let mut bytes = 0u64;
        for _ in 0..self.rounds {
            let fd = fs
                .open(&path, OpenFlags::CREATE | OpenFlags::WRONLY, Mode::RW)
                .expect("churn open");
            let mut off = 0u64;
            while off < self.file_bytes {
                let n = chunk.len().min((self.file_bytes - off) as usize);
                fs.pwrite_registered(fd, off, reg, 0, n).expect("churn write");
                off += n as u64;
            }
            bytes += off;
            fs.close(fd).expect("churn close");
            // Frees every data page; the kernel parks them in this
            // actor's allocator cache for the next round's extension.
            fs.truncate(&path, 0).expect("churn truncate");
        }
        fs.unregister_write_buffer(reg).expect("churn unregister");
        OpCount { ops: self.rounds as u64, bytes }
    }

    fn name(&self) -> String {
        "churn-truncate-extend".into()
    }
}

fn main() {
    println!("# Data-path smoke bench (virtual time, seed 42)");

    // Scenario 1: the gate metric.
    #[cfg(feature = "obs")]
    let obs_base = trio_obs::snapshot();
    let world = World::build("ArckFS", 8, 64 * 1024);
    let stats = world.path_stats().expect("ArckFS world has a kernel");
    let wl = Arc::new(Fio {
        op: FioOp::Write,
        block: 64 * 1024,
        file_bytes: 8 << 20,
        ops_per_thread: 128,
    });
    let threads = 8;
    let m = world.measure(wl, threads, 42);
    let deleg_snap = stats.snapshot();
    // Total thread-time over total ops = mean per-op latency.
    let deleg_write_ns_per_op = m.elapsed_ns as f64 * threads as f64 / m.ops as f64;
    println!("delegated 64KiB write      {deleg_write_ns_per_op:>10.0} ns/op ({} ops)", m.ops);
    println!("#   {}", deleg_snap.summary_line());
    assert!(
        deleg_snap.delegated_write_bytes > 0,
        "64 KiB writes must take the delegated path"
    );
    #[cfg(feature = "obs")]
    let obs_base = {
        let snap = trio_obs::snapshot();
        for line in snap.delta(&obs_base).table_lines() {
            println!("# obs {line}");
        }
        snap
    };

    // Scenario 2: three phases against one live kernel — loaded small
    // writes (fig6(f) shape at one rung), delegated 64 KiB reads, then
    // truncate/re-extend churn over the free-page cache.
    let world = World::build("ArckFS", 8, 128 * 1024);
    let stats = world.path_stats().expect("ArckFS world has a kernel");
    let threads = 112;
    let read_threads = 8;
    let phases: Vec<(Arc<dyn Workload>, usize)> = vec![
        (
            Arc::new(Fio { op: FioOp::Write, block: 4096, file_bytes: 4 << 20, ops_per_thread: 192 }),
            threads,
        ),
        // The read phase reuses the first 8 fio files prefilled above
        // (Fio::setup skips existing files), so every read is over a
        // fully mapped 4 MiB extent.
        (
            Arc::new(Fio {
                op: FioOp::Read,
                block: 64 * 1024,
                file_bytes: 4 << 20,
                ops_per_thread: 128,
            }),
            read_threads,
        ),
        (Arc::new(Churn { file_bytes: 4 << 20, rounds: 4 }), read_threads),
    ];
    let ms = world.measure_phases(phases, 42);
    let loaded_snap = stats.snapshot();
    let w4k_gib_s = ms[0].gib_per_sec();
    let deleg_read_ns_per_op = ms[1].elapsed_ns as f64 * read_threads as f64 / ms[1].ops as f64;
    println!("4KiB write @{threads}t, 8 nodes  {w4k_gib_s:>10.2} GiB/s");
    println!(
        "delegated 64KiB read       {deleg_read_ns_per_op:>10.0} ns/op ({} ops)",
        ms[1].ops
    );
    println!("churn @{read_threads}t                  {:>10.2} GiB moved", ms[2].bytes as f64 / (1u64 << 30) as f64);
    println!("#   {}", loaded_snap.summary_line());
    assert!(
        loaded_snap.delegated_read_bytes > 0,
        "64 KiB reads must take the delegated path"
    );
    assert!(
        loaded_snap.free_cached > 0,
        "churn truncates must park freed pages in the actor cache"
    );
    assert_eq!(
        loaded_snap.payload_copies, 0,
        "registered writes must not materialize payloads on the submit path"
    );
    assert_eq!(
        loaded_snap.checksummed_bytes, loaded_snap.delegated_write_bytes,
        "every delegated write byte must be checksummed inline"
    );

    let json = loaded_snap.to_json(&[
        ("delegated_write_ns_per_op", format!("{deleg_write_ns_per_op:.0}")),
        ("delegated_read_ns_per_op", format!("{deleg_read_ns_per_op:.0}")),
        ("w4k_112t_gib_s", format!("{w4k_gib_s:.3}")),
        ("gate_threads", threads.to_string()),
    ]);
    let out = std::env::var("TRIO_BENCH_OUT").unwrap_or_else(|_| "BENCH_datapath.json".into());
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    println!("# wrote {out}");

    // With obs on, also print the per-stage latency table for scenario 2
    // (EXPERIMENTS.md's breakdown table comes from here) and leave a
    // timeline artifact for the verify.sh obs gate to validate.
    #[cfg(feature = "obs")]
    {
        for line in trio_obs::snapshot().delta(&obs_base).table_lines() {
            println!("# obs {line}");
        }
        let path = trio_obs::dump_now("bench-datapath").expect("write obs timeline");
        println!("# wrote {}", path.display());
    }
}
