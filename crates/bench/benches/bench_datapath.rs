//! Data-path smoke bench: the numbers behind `BENCH_datapath.json` and
//! the CI perf gate in `scripts/verify.sh`.
//!
//! Two quick, fully deterministic scenarios (fixed seed, virtual time):
//!
//! 1. **Delegated-write latency** — 64 KiB writes (always delegated) from
//!    a handful of threads over 8 nodes. Mean virtual ns per op is the
//!    gate metric: it moves whenever the batched submission path, the
//!    ring protocol, or the device model regress, and it is immune to
//!    host noise because it is simulated time.
//! 2. **Loaded 4 KiB writes** — the fig6(f) shape at one thread count,
//!    for headline throughput plus the full [`PathStats`] snapshot
//!    (routing mix, allocator hit rate, registry lock count).
//!
//! Output: human-readable lines on stdout, JSON to `$TRIO_BENCH_OUT`
//! (default `BENCH_datapath.json` in the current directory).

use std::sync::Arc;

use trio_bench::World;
use trio_workloads::fio::{Fio, FioOp};

fn main() {
    println!("# Data-path smoke bench (virtual time, seed 42)");

    // Scenario 1: the gate metric.
    #[cfg(feature = "obs")]
    let obs_base = trio_obs::snapshot();
    let world = World::build("ArckFS", 8, 64 * 1024);
    let stats = world.path_stats().expect("ArckFS world has a kernel");
    let wl = Arc::new(Fio {
        op: FioOp::Write,
        block: 64 * 1024,
        file_bytes: 8 << 20,
        ops_per_thread: 128,
    });
    let threads = 8;
    let m = world.measure(wl, threads, 42);
    let deleg_snap = stats.snapshot();
    // Total thread-time over total ops = mean per-op latency.
    let deleg_write_ns_per_op = m.elapsed_ns as f64 * threads as f64 / m.ops as f64;
    println!("delegated 64KiB write      {deleg_write_ns_per_op:>10.0} ns/op ({} ops)", m.ops);
    println!("#   {}", deleg_snap.summary_line());
    assert!(
        deleg_snap.delegated_write_bytes > 0,
        "64 KiB writes must take the delegated path"
    );
    #[cfg(feature = "obs")]
    let obs_base = {
        let snap = trio_obs::snapshot();
        for line in snap.delta(&obs_base).table_lines() {
            println!("# obs {line}");
        }
        snap
    };

    // Scenario 2: loaded small writes, fig6(f) shape at one rung.
    let world = World::build("ArckFS", 8, 128 * 1024);
    let stats = world.path_stats().expect("ArckFS world has a kernel");
    let wl = Arc::new(Fio {
        op: FioOp::Write,
        block: 4096,
        file_bytes: 4 << 20,
        ops_per_thread: 192,
    });
    let threads = 112;
    let m = world.measure(wl, threads, 42);
    let loaded_snap = stats.snapshot();
    let w4k_gib_s = m.gib_per_sec();
    println!("4KiB write @{threads}t, 8 nodes  {w4k_gib_s:>10.2} GiB/s");
    println!("#   {}", loaded_snap.summary_line());

    let json = loaded_snap.to_json(&[
        ("delegated_write_ns_per_op", format!("{deleg_write_ns_per_op:.0}")),
        ("w4k_112t_gib_s", format!("{w4k_gib_s:.3}")),
        ("gate_threads", threads.to_string()),
    ]);
    let out = std::env::var("TRIO_BENCH_OUT").unwrap_or_else(|_| "BENCH_datapath.json".into());
    std::fs::write(&out, format!("{json}\n")).expect("write bench json");
    println!("# wrote {out}");

    // With obs on, also print the per-stage latency table for scenario 2
    // (EXPERIMENTS.md's breakdown table comes from here) and leave a
    // timeline artifact for the verify.sh obs gate to validate.
    #[cfg(feature = "obs")]
    {
        for line in trio_obs::snapshot().delta(&obs_base).table_lines() {
            println!("# obs {line}");
        }
        let path = trio_obs::dump_now("bench-datapath").expect("write obs timeline");
        println!("# wrote {}", path.display());
    }
}
