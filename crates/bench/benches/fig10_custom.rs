//! **Figure 10** — customized file systems: KVFS on a key-value Webproxy,
//! FPFS on a 20-deep-directory Varmail (eight threads, paper §6.6).
//!
//! Paper shape: KVFS beats ArckFS by ~1.3× on Webproxy (no descriptors,
//! no index structures); FPFS beats ArckFS by ~1.2× on deep-path Varmail
//! (one hash probe instead of 20 directory hops); both crush the
//! baselines.

use std::sync::Arc;

use trio_sim::plock::Mutex;
use trio_bench::{build_kvfs_world, print_row, scale, World};
use trio_fsapi::KeyValueFs;
use trio_workloads::filebench::{
    run_kv_webproxy, setup_kv_webproxy, Filebench, Personality,
};

const THREADS: usize = 8;

fn webproxy_cfg() -> Filebench {
    let mut cfg = Filebench::table4(Personality::Webproxy, 6, scale());
    cfg.files_per_thread = 64;
    cfg.mean_file_size = cfg.mean_file_size.min(32 * 1024); // KVFS cap.
    cfg
}

fn varmail_cfg() -> Filebench {
    let mut cfg = Filebench::table4(Personality::Varmail, 6, scale());
    cfg.files_per_thread = 64;
    cfg.dir_depth = 20; // The paper's deep-path stress.
    cfg
}

fn posix_point(fs_name: &str, cfg: Filebench) -> f64 {
    let pages = (THREADS * cfg.files_per_thread * (cfg.mean_file_size / 4096 + 2) * 3 / 8)
        .max(24 * 1024);
    let world = World::build(fs_name, 8, pages);
    world.measure(Arc::new(cfg), THREADS, 42).kops_per_sec()
}

fn kvfs_point(cfg: Filebench) -> f64 {
    let (kernel, _fs, kv) = build_kvfs_world(8, 64 * 1024);
    let kv: Arc<dyn KeyValueFs> = kv;
    let kv_setup = Arc::clone(&kv);
    let cfg2 = cfg.clone();
    let kernel2 = Arc::clone(&kernel);
    let out = Arc::new(Mutex::new(0u64));
    let ops = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let ops2 = Arc::clone(&ops);
    let m = trio_workloads::run_parallel(
        42,
        THREADS,
        8,
        move || {
            let _ = kernel.delegation().start();
            setup_kv_webproxy(&kv_setup, THREADS, &cfg2);
        },
        move |i| run_kv_webproxy(&kv, i, &cfg),
        move || {
            kernel2.delegation().shutdown();
        },
    );
    *out2.lock() = m.elapsed_ns;
    *ops2.lock() = m.ops;
    m.kops_per_sec()
}

fn main() {
    println!("# Figure 10: customization (8 threads, scale 1/{})", scale());
    let fs_list = ["ext4", "NOVA", "WineFS", "OdinFS", "ArckFS"];

    println!("\n== Webproxy (key-value flowlets) ==");
    for fs in fs_list {
        print_row(fs, &[posix_point(fs, webproxy_cfg())], "Kops/s");
    }
    print_row("KVFS", &[kvfs_point(webproxy_cfg())], "Kops/s");

    println!("\n== Varmail (20-deep directories) ==");
    for fs in fs_list {
        print_row(fs, &[posix_point(fs, varmail_cfg())], "Kops/s");
    }
    print_row("FPFS", &[posix_point("FPFS", varmail_cfg())], "Kops/s");
}
