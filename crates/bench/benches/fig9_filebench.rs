//! **Figure 9** — Filebench macrobenchmarks (Table 4 configurations).
//!
//! Paper shapes: all systems tie at one node; at eight nodes ArckFS and
//! OdinFS pull ahead on the data-heavy personalities (delegation) with
//! ArckFS on top (direct access); on the metadata/small-file personalities
//! (Webproxy, Varmail — up to 16 threads, as in the paper) ArckFS wins by
//! larger factors.

use std::sync::Arc;

use trio_bench::{print_row, print_thread_header, scale, World};
use trio_workloads::filebench::{Filebench, Personality};

fn panel(title: &str, p: Personality, fs_list: &[&str], nodes: usize, threads: &[usize]) {
    print_thread_header(title, threads);
    for fs in fs_list {
        let mut vals = Vec::new();
        for &t in threads {
            let mut cfg = Filebench::table4(p, 6, scale());
            // Keep the per-thread fileset bounded for big thread counts.
            cfg.files_per_thread = cfg.files_per_thread.min(1024 / t.max(1)).max(8);
            let pages = (t * cfg.files_per_thread * (cfg.mean_file_size / 4096 + 2) * 3
                / nodes)
                .max(24 * 1024);
            let world = World::build(fs, nodes, pages);
            vals.push(world.measure(Arc::new(cfg), t, 42).kops_per_sec());
        }
        print_row(fs, &vals, "Kops/s (flowlets)");
    }
}

fn main() {
    println!("# Figure 9: Filebench (scale 1/{})", scale());
    let one = vec![1, 4, 16];
    let eight = if trio_bench::full_run() {
        vec![1, 8, 28, 112, 224]
    } else {
        vec![1, 28, 224]
    };
    let small = vec![1, 8, 16];

    let one_fs = ["ext4", "NOVA", "WineFS", "SplitFS", "ArckFS-nd"];
    let eight_fs = ["ext4", "ext4-RAID0", "NOVA", "WineFS", "OdinFS", "ArckFS"];

    panel("(a) Fileserver, 1 node", Personality::Fileserver, &one_fs, 1, &one);
    panel("(b) Webserver, 1 node", Personality::Webserver, &one_fs, 1, &one);
    panel("(c) Fileserver, 8 nodes", Personality::Fileserver, &eight_fs, 8, &eight);
    panel("(d) Webserver, 8 nodes", Personality::Webserver, &eight_fs, 8, &eight);
    panel("(e) Webproxy, 8 nodes (<=16 thr)", Personality::Webproxy, &eight_fs, 8, &small);
    panel("(f) Varmail, 8 nodes (<=16 thr)", Personality::Varmail, &eight_fs, 8, &small);
}
