//! Microbenchmarks on the core data structures (wall-clock, no
//! simulation) — the ablation-level measurements behind DESIGN.md's
//! data-structure choices: dirent codec, directory hash table vs linear
//! scan, the defensive index walk, and the verifier itself.
//!
//! Doubles as the zero-overhead gate for the `faults` feature: built
//! standalone (`cargo bench -p trio-bench`), trio-bench does not enable
//! `faults`, and the check in `main` proves every injection hook
//! compiled down to a no-op on the measured hot paths. (A full-workspace
//! build unifies features and defeats the point — build this package
//! alone for the guarantee.)

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use trio_fsapi::Mode;
use trio_layout::{
    walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, IndexPageRef,
};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, NvmHandle, PageId, KERNEL_ACTOR};
use trio_verifier::{
    InoProvenance, PageProvenance, ResourceView, ShadowAttr, VerifyRequest, Verifier,
};

/// Times `op` for ~200 ms of wall clock (after a short warm-up) and
/// prints mean ns/op. Batched so `Instant::now` overhead stays negligible.
fn bench<R>(name: &str, mut op: impl FnMut() -> R) {
    const BATCH: u64 = 64;
    const TARGET_MS: u128 = 200;
    for _ in 0..BATCH {
        std::hint::black_box(op());
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed().as_millis() < TARGET_MS {
        for _ in 0..BATCH {
            std::hint::black_box(op());
        }
        iters += BATCH;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<28} {ns:>10.1} ns/op   ({iters} iters)");
}

fn dirent_codec() {
    let d = DirentData::new(b"some-file-name.dat", CoreFileType::Regular, Mode::RW, 1000, 1000);
    bench("dirent_encode", || d.encode_bytes());
    let img = d.encode_bytes();
    bench("dirent_decode", || DirentData::decode_bytes(&img));
}

fn dir_hash_table() {
    use arckfs::node::{DirAux, DirEntryAux};
    let aux = DirAux::new();
    for i in 0..1000 {
        aux.insert(DirEntryAux {
            name: format!("file-{i:05}"),
            ino: i + 10,
            loc: DirentLoc { page: PageId(1 + i / 16), slot: (i % 16) as usize },
            ftype: CoreFileType::Regular,
        });
    }
    let mut i = 0u64;
    bench("dir_hash_lookup_1000", || {
        i = (i + 7) % 1000;
        aux.lookup(&format!("file-{i:05}"))
    });
    bench("dir_hash_insert_remove", || {
        aux.insert(DirEntryAux {
            name: "transient".into(),
            ino: 5,
            loc: DirentLoc { page: PageId(1), slot: 0 },
            ftype: CoreFileType::Regular,
        });
        aux.remove("transient");
    });
}

fn index_walk() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    // A 2-index-page file with 600 data pages.
    let ip1 = PageId(10);
    let ip2 = PageId(11);
    for i in 0..511usize {
        IndexPageRef::new(&h, ip1).set_entry(i, 100 + i as u64).unwrap();
    }
    IndexPageRef::new(&h, ip1).set_next(ip2.0).unwrap();
    for i in 0..89usize {
        IndexPageRef::new(&h, ip2).set_entry(i, 700 + i as u64).unwrap();
    }
    bench("walk_file_600_pages", || walk_file(&h, ip1.0, 64).unwrap());
}

struct BenchView;
impl ResourceView for BenchView {
    fn page_provenance(&self, _p: PageId) -> PageProvenance {
        PageProvenance::AllocatedTo(ActorId(7))
    }
    fn ino_provenance(&self, _i: u64) -> InoProvenance {
        InoProvenance::AllocatedTo(ActorId(7))
    }
    fn shadow_attr(&self, _i: u64) -> Option<ShadowAttr> {
        None
    }
    fn is_mapped(&self, _i: u64) -> bool {
        false
    }
}

fn verifier_speed() {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    // Build a 160-entry directory: index page 5 -> data pages 20..30.
    let ip = PageId(5);
    for (slot, page) in (20..30).enumerate() {
        IndexPageRef::new(&h, ip).set_entry(slot, page).unwrap();
        for s in 0..16 {
            let loc = DirentLoc { page: PageId(page), slot: s };
            let idx = (page - 20) * 16 + s as u64;
            let d = DirentData::new(
                format!("entry-{idx:04}").as_bytes(),
                CoreFileType::Regular,
                Mode::RW,
                0,
                0,
            );
            let r = DirentRef::new(&h, loc);
            let w = r.prepare(&d).unwrap();
            r.publish(1000 + idx, &w).unwrap();
        }
    }
    // The directory's own dirent.
    let own = DirentLoc { page: PageId(3), slot: 0 };
    let mut dd = DirentData::new(b"bigdir", CoreFileType::Directory, Mode::RWX, 0, 0);
    dd.first_index = ip.0;
    dd.size = 160;
    let r = DirentRef::new(&h, own);
    let w = r.prepare(&dd).unwrap();
    r.publish(999, &w).unwrap();
    r.set_first_index(ip.0).unwrap();
    r.set_size(160).unwrap();

    let verifier = Verifier::new(NvmHandle::new(dev, KERNEL_ACTOR));
    let ck: HashSet<u64> = HashSet::new();
    bench("verify_dir_160_entries", || {
        let req = VerifyRequest {
            ino: 999,
            ftype: CoreFileType::Directory,
            dirent: Some(own),
            first_index: ip.0,
            dirty_actor: ActorId(7),
            checkpoint_children: Some(&ck),
            max_index_pages: 64,
            max_dir_entries: 1 << 20,
        };
        let rep = verifier.verify(&req, &BenchView);
        assert!(rep.ok(), "{:?}", rep.violations);
        rep
    });
}

fn path_stats_counters() {
    use trio_nvm::PathStats;
    let stats = PathStats::new();
    // The counters sit on every read/write; they must stay in the
    // few-nanosecond range or the "op-level observability is free" claim
    // in DESIGN.md §12 is wrong.
    bench("stats_record_direct_4k", || stats.record_direct_bytes(4096, true));
    bench("stats_record_deleg_4k", || {
        stats.record_delegated_bytes(4096, true);
        stats.record_submission(1);
    });
    let mut ns = 100u64;
    bench("stats_record_ring_hop", || {
        ns = ns.wrapping_mul(2862933555777941757).wrapping_add(3037000493) % 1_000_000;
        stats.record_ring_hop(ns)
    });
    bench("stats_snapshot", || stats.snapshot());
}

fn main() {
    // Zero-overhead gate: the hot paths measured below must be the same
    // machine code the release benches run — no fault-injection hooks.
    // Hard-failing would misfire under workspace-wide feature unification
    // (`cargo bench` from the root unifies `faults` on), so warn there
    // and only guarantee the gate for standalone `-p trio-bench` builds.
    if trio_nvm::faults_compiled() {
        println!(
            "# WARNING: `faults` compiled in (workspace feature unification?) — \
             numbers include injection-hook overhead."
        );
        println!("# For the zero-overhead gate: cargo bench -p trio-bench --bench micro_components");
    } else {
        println!("# faults_compiled() == false: injection hooks are no-ops in this build.");
    }
    println!("# Microbenchmarks: core data structures (mean over >=200ms each)");
    dirent_codec();
    dir_hash_table();
    index_walk();
    verifier_speed();
    path_stats_counters();
}
