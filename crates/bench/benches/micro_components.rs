//! Criterion microbenchmarks on the core data structures (wall-clock, no
//! simulation) — the ablation-level measurements behind DESIGN.md's
//! data-structure choices: dirent codec, directory hash table vs linear
//! scan, the defensive index walk, and the verifier itself.

use std::collections::HashSet;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use trio_fsapi::Mode;
use trio_layout::{
    walk_file, CoreFileType, DirentData, DirentLoc, DirentRef, IndexPageRef,
};
use trio_nvm::{ActorId, DeviceConfig, NvmDevice, NvmHandle, PageId, KERNEL_ACTOR};
use trio_verifier::{
    InoProvenance, PageProvenance, ResourceView, ShadowAttr, VerifyRequest, Verifier,
};

fn dirent_codec(c: &mut Criterion) {
    let d = DirentData::new(b"some-file-name.dat", CoreFileType::Regular, Mode::RW, 1000, 1000);
    c.bench_function("dirent_encode", |b| b.iter(|| std::hint::black_box(d.encode_bytes())));
    let img = d.encode_bytes();
    c.bench_function("dirent_decode", |b| {
        b.iter(|| std::hint::black_box(DirentData::decode_bytes(&img)))
    });
}

fn dir_hash_table(c: &mut Criterion) {
    use arckfs::node::{DirAux, DirEntryAux};
    let aux = DirAux::new();
    for i in 0..1000 {
        aux.insert(DirEntryAux {
            name: format!("file-{i:05}"),
            ino: i + 10,
            loc: DirentLoc { page: PageId(1 + i / 16), slot: (i % 16) as usize },
            ftype: CoreFileType::Regular,
        });
    }
    c.bench_function("dir_hash_lookup_1000", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            std::hint::black_box(aux.lookup(&format!("file-{i:05}")))
        })
    });
    c.bench_function("dir_hash_insert_remove", |b| {
        b.iter_batched(
            || (),
            |_| {
                aux.insert(DirEntryAux {
                    name: "transient".into(),
                    ino: 5,
                    loc: DirentLoc { page: PageId(1), slot: 0 },
                    ftype: CoreFileType::Regular,
                });
                aux.remove("transient");
            },
            BatchSize::SmallInput,
        )
    });
}

fn index_walk(c: &mut Criterion) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    // A 2-index-page file with 600 data pages.
    let ip1 = PageId(10);
    let ip2 = PageId(11);
    for i in 0..511usize {
        IndexPageRef::new(&h, ip1).set_entry(i, 100 + i as u64).unwrap();
    }
    IndexPageRef::new(&h, ip1).set_next(ip2.0).unwrap();
    for i in 0..89usize {
        IndexPageRef::new(&h, ip2).set_entry(i, 700 + i as u64).unwrap();
    }
    c.bench_function("walk_file_600_pages", |b| {
        b.iter(|| std::hint::black_box(walk_file(&h, ip1.0, 64).unwrap()))
    });
}

struct BenchView;
impl ResourceView for BenchView {
    fn page_provenance(&self, _p: PageId) -> PageProvenance {
        PageProvenance::AllocatedTo(ActorId(7))
    }
    fn ino_provenance(&self, _i: u64) -> InoProvenance {
        InoProvenance::AllocatedTo(ActorId(7))
    }
    fn shadow_attr(&self, _i: u64) -> Option<ShadowAttr> {
        None
    }
    fn is_mapped(&self, _i: u64) -> bool {
        false
    }
}

fn verifier_speed(c: &mut Criterion) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig::small()));
    let h = NvmHandle::new(Arc::clone(&dev), KERNEL_ACTOR);
    // Build a 160-entry directory: index page 5 -> data pages 20..30.
    let ip = PageId(5);
    for (slot, page) in (20..30).enumerate() {
        IndexPageRef::new(&h, ip).set_entry(slot, page).unwrap();
        for s in 0..16 {
            let loc = DirentLoc { page: PageId(page), slot: s };
            let idx = (page - 20) * 16 + s as u64;
            let d = DirentData::new(
                format!("entry-{idx:04}").as_bytes(),
                CoreFileType::Regular,
                Mode::RW,
                0,
                0,
            );
            let r = DirentRef::new(&h, loc);
            r.prepare(&d).unwrap();
            r.publish(1000 + idx).unwrap();
        }
    }
    // The directory's own dirent.
    let own = DirentLoc { page: PageId(3), slot: 0 };
    let mut dd = DirentData::new(b"bigdir", CoreFileType::Directory, Mode::RWX, 0, 0);
    dd.first_index = ip.0;
    dd.size = 160;
    let r = DirentRef::new(&h, own);
    r.prepare(&dd).unwrap();
    r.publish(999).unwrap();
    r.set_first_index(ip.0).unwrap();
    r.set_size(160).unwrap();

    let verifier = Verifier::new(NvmHandle::new(dev, KERNEL_ACTOR));
    let ck: HashSet<u64> = HashSet::new();
    c.bench_function("verify_dir_160_entries", |b| {
        b.iter(|| {
            let req = VerifyRequest {
                ino: 999,
                ftype: CoreFileType::Directory,
                dirent: Some(own),
                first_index: ip.0,
                dirty_actor: ActorId(7),
                checkpoint_children: Some(&ck),
                max_index_pages: 64,
            };
            let rep = verifier.verify(&req, &BenchView);
            assert!(rep.ok(), "{:?}", rep.violations);
            std::hint::black_box(rep)
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = dirent_codec, dir_hash_table, index_walk, verifier_speed
}
criterion_main!(components);
