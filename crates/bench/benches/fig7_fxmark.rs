//! **Figure 7** — FxMark metadata scalability (twelve panels, Table 2).
//!
//! Paper shapes: the baselines scale only MRPL/MRDL (everything else hits
//! VFS's global dcache-modification and rename locks or per-dentry
//! refcount convoys); ArckFS scales DWTL and the read-dominated panels
//! linearly, keeps creates/unlinks high, and degrades on the shared-
//! directory write panels only through its own hash-table/tail contention.

use std::sync::Arc;

use trio_bench::{eight_node_threads, print_row, print_thread_header, World};
use trio_workloads::fxmark::{FxMark, ALL_FXMARK};

const PAGES_PER_NODE: usize = 64 * 1024;

fn main() {
    println!("# Figure 7: FxMark metadata scalability");
    let threads = eight_node_threads();
    let fs_list = if trio_bench::full_run() {
        vec!["ext4", "ext4-RAID0", "PMFS", "NOVA", "WineFS", "SplitFS", "OdinFS", "ArckFS"]
    } else {
        vec!["ext4", "NOVA", "WineFS", "OdinFS", "ArckFS"]
    };
    for bench in ALL_FXMARK {
        print_thread_header(bench.name(), &threads);
        #[cfg(feature = "obs")]
        let obs_base = trio_obs::snapshot();
        for fs in &fs_list {
            let mut vals = Vec::new();
            let mut top_stats = None;
            let max_threads = *threads.iter().max().unwrap();
            for &t in &threads {
                // Bound total ops at high thread counts to keep runtime sane.
                let ops = (20_000 / t as u64).clamp(40, 400);
                let world = World::build(fs, 8, PAGES_PER_NODE);
                let stats = world.path_stats();
                let wl = Arc::new(FxMark { bench, ops_per_thread: ops, pool_files: 64 });
                vals.push(world.measure(wl, t, 42).ops_per_usec());
                if t == max_threads {
                    top_stats = stats.map(|s| s.snapshot());
                }
            }
            print_row(fs, &vals, "ops/us");
            if let Some(snap) = top_stats {
                println!("#   {fs} @{max_threads}t  {}", snap.summary_line());
            }
        }
        // Per-stage latency breakdown across the panel's delegated ops.
        #[cfg(feature = "obs")]
        for line in trio_obs::snapshot().delta(&obs_base).table_lines() {
            println!("# obs {line}");
        }
    }
}
