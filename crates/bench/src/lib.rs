//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every bench target builds *worlds* through [`World::build`]: a fresh
//! emulated device plus one file system under test, with matching
//! delegation-pool lifecycle closures for `trio_workloads::drive`. A world
//! is used for exactly one measurement point (one `(fs, threads)` cell of
//! a figure), keeping points independent and deterministic.
//!
//! Scaling: paper-scale byte sizes are divided by [`scale`] (default 16;
//! override with `TRIO_SCALE`). Benches print the scale in their header so
//! EXPERIMENTS.md can record the configuration alongside results.

use std::sync::Arc;

use arckfs::{ArckFs, ArckFsConfig, FpFs, KvFs};
use trio_fsapi::FileSystem;
use trio_kernel::{KernelConfig, KernelController};
use trio_nvm::{BandwidthModel, DeviceConfig, NvmDevice, Topology};
use trio_workloads::{drive, Measurement, Workload};

/// File systems a figure can put on its x-axis.
pub const ALL_FS: [&str; 10] = [
    "ext4",
    "ext4-RAID0",
    "PMFS",
    "NOVA",
    "WineFS",
    "OdinFS",
    "SplitFS",
    "Strata",
    "ArckFS-nd",
    "ArckFS",
];

/// The paper's figure-5/6 subset (kernel + userspace baselines + ArckFS).
pub const MAIN_FS: [&str; 8] =
    ["ext4", "PMFS", "NOVA", "WineFS", "OdinFS", "SplitFS", "ArckFS-nd", "ArckFS"];

/// Global byte-size scale divisor (paper sizes / scale).
pub fn scale() -> usize {
    std::env::var("TRIO_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// Whether to run the full thread ladder (slower).
pub fn full_run() -> bool {
    std::env::var("TRIO_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Thread ladder for one-NUMA-node panels (paper: 1..28).
pub fn one_node_threads() -> Vec<usize> {
    if full_run() {
        vec![1, 2, 4, 8, 16, 28]
    } else {
        vec![1, 4, 16, 28]
    }
}

/// Thread ladder for eight-node panels (paper: 1..224).
pub fn eight_node_threads() -> Vec<usize> {
    if full_run() {
        vec![1, 2, 4, 8, 16, 28, 56, 112, 168, 224]
    } else {
        vec![1, 8, 28, 112, 224]
    }
}

/// A file system under test plus its lifecycle hooks.
pub struct World {
    /// The device (kept alive for inspection).
    pub dev: Arc<NvmDevice>,
    /// The Trio kernel controller, when the FS is Trio-based.
    pub kernel: Option<Arc<KernelController>>,
    /// The system under test.
    pub fs: Arc<dyn FileSystem>,
    /// NUMA nodes in the device.
    pub nodes: usize,
    /// OdinFS's delegation pool (baselines only).
    baseline_delegation: Option<Arc<trio_kernel::delegation::DelegationPool>>,
}

impl World {
    /// Builds a world for `fs_name` over `nodes` NUMA nodes with
    /// `pages_per_node` pages each.
    pub fn build(fs_name: &str, nodes: usize, pages_per_node: usize) -> World {
        let dev = Arc::new(NvmDevice::new(DeviceConfig {
            topology: Topology::new(nodes, pages_per_node),
            model: BandwidthModel::default(),
            track_persistence: false,
        }));
        match fs_name {
            "ArckFS" | "ArckFS-nd" | "KVFS" | "FPFS" | "ArckFS-tg" => {
                let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
                let cfg = if fs_name == "ArckFS-nd" {
                    ArckFsConfig::no_delegation()
                } else {
                    ArckFsConfig::default()
                };
                let arck = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, cfg);
                let fs: Arc<dyn FileSystem> = match fs_name {
                    "FPFS" => FpFs::new(arck),
                    _ => arck,
                };
                World { dev, kernel: Some(kernel), fs, nodes, baseline_delegation: None }
            }
            other => {
                let delegation = if other == "OdinFS" {
                    Some(Arc::new(trio_kernel::delegation::DelegationPool::new(
                        Arc::clone(&dev),
                        12,
                    )))
                } else {
                    None
                };
                let fs = trio_baselines::build(other, Arc::clone(&dev), delegation.clone());
                World { dev, kernel: None, fs, nodes, baseline_delegation: delegation }
            }
        }
    }

    /// The kernel's data-path counters (Trio-based worlds only). Grab the
    /// `Arc` before `measure` consumes the world, snapshot after.
    pub fn path_stats(&self) -> Option<Arc<trio_nvm::PathStats>> {
        self.kernel.as_ref().map(|k| Arc::clone(k.path_stats()))
    }

    /// Runs `workload` on this world with the right delegation lifecycle.
    pub fn measure(
        self,
        workload: Arc<dyn Workload>,
        threads: usize,
        seed: u64,
    ) -> Measurement {
        let nodes = self.nodes;
        let kernel = self.kernel.clone();
        let kernel2 = self.kernel.clone();
        let pool = self.baseline_delegation.clone();
        let pool2 = self.baseline_delegation.clone();
        drive(
            Arc::clone(&self.fs),
            workload,
            threads,
            nodes,
            seed,
            move || {
                if let Some(k) = &kernel {
                    let _ = k.delegation().start();
                }
                if let Some(p) = &pool {
                    let _ = p.start();
                }
            },
            move || {
                if let Some(k) = &kernel2 {
                    k.delegation().shutdown();
                }
                if let Some(p) = &pool2 {
                    p.shutdown();
                }
            },
        )
    }

    /// Runs several workload phases back to back on this world inside one
    /// simulation, with a single delegation-pool start/shutdown around the
    /// whole sequence (pools cannot restart). Returns one measurement per
    /// phase, in order.
    pub fn measure_phases(
        self,
        phases: Vec<(Arc<dyn Workload>, usize)>,
        seed: u64,
    ) -> Vec<Measurement> {
        let nodes = self.nodes;
        let kernel = self.kernel.clone();
        let kernel2 = self.kernel.clone();
        let pool = self.baseline_delegation.clone();
        let pool2 = self.baseline_delegation.clone();
        trio_workloads::drive_phases(
            Arc::clone(&self.fs),
            phases,
            nodes,
            seed,
            move || {
                if let Some(k) = &kernel {
                    let _ = k.delegation().start();
                }
                if let Some(p) = &pool {
                    let _ = p.start();
                }
            },
            move || {
                if let Some(k) = &kernel2 {
                    k.delegation().shutdown();
                }
                if let Some(p) = &pool2 {
                    p.shutdown();
                }
            },
        )
    }
}

/// Builds an ArckFS world returning the concrete LibFS (for KVFS/FPFS and
/// sharing benches that need the full API).
pub fn build_arckfs_world(
    nodes: usize,
    pages_per_node: usize,
    cfg: ArckFsConfig,
) -> (Arc<NvmDevice>, Arc<KernelController>, Arc<ArckFs>) {
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(nodes, pages_per_node),
        model: BandwidthModel::default(),
        track_persistence: false,
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, cfg);
    (dev, kernel, fs)
}

/// Builds a KVFS view over a fresh ArckFS world.
pub fn build_kvfs_world(
    nodes: usize,
    pages_per_node: usize,
) -> (Arc<KernelController>, Arc<ArckFs>, Arc<KvFs>) {
    let (_, kernel, fs) = build_arckfs_world(nodes, pages_per_node, ArckFsConfig::default());
    // KvFs::new touches the FS; outside sim this is fine (setup-time).
    let kv = KvFs::new(Arc::clone(&fs), "/kv").expect("kv root");
    (kernel, fs, kv)
}

/// Result of a sharing-cost scenario (Table 3 / Figure 8).
#[derive(Clone, Copy, Debug)]
pub struct SharingResult {
    /// Virtual time of the measured window.
    pub elapsed_ns: u64,
    /// Total operations.
    pub ops: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Kernel-side phase breakdown.
    pub phases: trio_kernel::PhaseStats,
    /// LibFS aux-rebuild time.
    pub rebuild_ns: u64,
}

impl SharingResult {
    /// GiB per virtual second.
    pub fn gib_per_sec(&self) -> f64 {
        self.bytes as f64 / (1u64 << 30) as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Mean µs per op (per process).
    pub fn usec_per_op(&self) -> f64 {
        self.elapsed_ns as f64 / 1_000.0 / (self.ops as f64 / 2.0).max(1.0)
    }
}

/// Two untrusted processes concurrently writing 4 KiB blocks to one shared
/// file (Table 3's `4KB-write` rows). With `trust_group` both "processes"
/// share one LibFS (paper §3.2), eliminating the transfer cost.
pub fn run_sharing_write(file_bytes: u64, ops_per_proc: u64, trust_group: bool) -> SharingResult {
    use trio_fsapi::{Mode, OpenFlags};
    let pages_per_node = (file_bytes as usize / 4096 * 3).max(16 * 1024);
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, pages_per_node),
        model: BandwidthModel::default(),
        track_persistence: false,
    }));
    // The paper's 100 ms lease; only byte sizes scale.
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs_a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let fs_b = if trust_group {
        Arc::clone(&fs_a) // Same LibFS: a trust group.
    } else {
        ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation())
    };
    let fs_a2 = Arc::clone(&fs_a);
    let kernel2 = Arc::clone(&kernel);
    let procs: Vec<Arc<ArckFs>> = vec![fs_a, fs_b];
    let m = trio_workloads::run_parallel(
        77,
        2,
        1,
        move || {
            // Proc A builds the shared file and releases it.
            let fd = fs_a2
                .open("/shared", OpenFlags::CREATE | OpenFlags::WRONLY, Mode(0o666))
                .expect("create shared");
            let chunk = vec![0u8; 1 << 20];
            let mut off = 0u64;
            while off < file_bytes {
                let n = chunk.len().min((file_bytes - off) as usize);
                fs_a2.pwrite(fd, off, &chunk[..n]).expect("prefill");
                off += n as u64;
            }
            fs_a2.close(fd).expect("close");
            fs_a2.release_path("/shared").expect("release");
            let _ = kernel2.take_phase_stats(); // Exclude setup from Fig 8.
        },
        move |i| {
            use trio_fsapi::FileSystem;
            let fs = &procs[i];
            let fd = fs.open("/shared", OpenFlags::RDWR, Mode(0o666)).expect("open shared");
            let block = vec![i as u8 + 1; 4096];
            let blocks = file_bytes / 4096;
            for k in 0..ops_per_proc {
                fs.pwrite(fd, (k % blocks) * 4096, &block).expect("shared write");
            }
            let _ = fs.close(fd);
            trio_workloads::OpCount { ops: ops_per_proc, bytes: ops_per_proc * 4096 }
        },
        || {},
    );
    SharingResult {
        elapsed_ns: m.elapsed_ns,
        ops: m.ops,
        bytes: m.bytes,
        phases: kernel.take_phase_stats(),
        rebuild_ns: 0,
    }
}

/// Two untrusted processes creating (and unlinking) empty files in a
/// shared directory pre-populated with `dir_files` entries, releasing the
/// directory after every operation (Table 3's `create` rows; the paper
/// stresses the unmap path the same way).
pub fn run_sharing_create(dir_files: usize, ops_per_proc: u64, trust_group: bool) -> SharingResult {
    use trio_fsapi::{FileSystem, Mode};
    let dev = Arc::new(NvmDevice::new(DeviceConfig {
        topology: Topology::new(1, 32 * 1024),
        model: BandwidthModel::default(),
        track_persistence: false,
    }));
    let kernel = KernelController::format(Arc::clone(&dev), KernelConfig::default());
    let fs_a = ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation());
    let fs_b = if trust_group {
        Arc::clone(&fs_a)
    } else {
        ArckFs::mount(Arc::clone(&kernel), 1000, 1000, ArckFsConfig::no_delegation())
    };
    let fs_a2 = Arc::clone(&fs_a);
    let kernel2 = Arc::clone(&kernel);
    let rebuild_a = Arc::clone(&fs_a);
    let rebuild_b = Arc::clone(&fs_b);
    let procs: Vec<Arc<ArckFs>> = vec![fs_a, fs_b];
    let procs_after: Vec<Arc<ArckFs>> = procs.clone();
    let m = trio_workloads::run_parallel(
        78,
        2,
        1,
        move || {
            fs_a2.mkdir("/shared", Mode(0o777)).expect("mkdir");
            for i in 0..dir_files {
                fs_a2.create(&format!("/shared/base-{i}"), Mode(0o666)).expect("seed");
            }
            fs_a2.release_path("/shared").expect("release");
            let _ = kernel2.take_phase_stats();
            let _ = rebuild_a.take_rebuild_ns();
            let _ = rebuild_b.take_rebuild_ns();
        },
        move |i| {
            let fs = &procs[i];
            for k in 0..ops_per_proc {
                let name = format!("/shared/p{i}-tmp{k}");
                fs.create(&name, Mode(0o666)).expect("shared create");
                fs.unlink(&name).expect("shared unlink");
                // Unmap after each operation to stress the transfer path.
                if !trust_group {
                    let _ = fs.release_path("/shared");
                }
            }
            trio_workloads::OpCount { ops: ops_per_proc, bytes: 0 }
        },
        || {},
    );
    let rebuild_ns = procs_after[0].take_rebuild_ns()
        + if trust_group { 0 } else { procs_after[1].take_rebuild_ns() };
    SharingResult {
        elapsed_ns: m.elapsed_ns,
        ops: m.ops,
        bytes: m.bytes,
        phases: kernel.take_phase_stats(),
        rebuild_ns,
    }
}

/// The NOVA comparison rows of Table 3 (a kernel FS has no transfer cost).
pub fn run_sharing_nova(write_file_bytes: Option<u64>, dir_files: usize, ops_per_proc: u64) -> SharingResult {
    use trio_fsapi::{Mode, OpenFlags};
    let world = World::build("NOVA", 1, 64 * 1024);
    let fs = Arc::clone(&world.fs);
    let fs_setup = Arc::clone(&fs);
    let m = trio_workloads::run_parallel(
        79,
        2,
        1,
        move || match write_file_bytes {
            Some(fb) => {
                let fd = fs_setup
                    .open("/shared", OpenFlags::CREATE | OpenFlags::WRONLY, Mode(0o666))
                    .expect("create");
                let chunk = vec![0u8; 1 << 20];
                let mut off = 0u64;
                while off < fb {
                    let n = chunk.len().min((fb - off) as usize);
                    fs_setup.pwrite(fd, off, &chunk[..n]).expect("prefill");
                    off += n as u64;
                }
                fs_setup.close(fd).expect("close");
            }
            None => {
                fs_setup.mkdir("/shared", Mode(0o777)).expect("mkdir");
                for i in 0..dir_files {
                    fs_setup.create(&format!("/shared/base-{i}"), Mode(0o666)).expect("seed");
                }
            }
        },
        move |i| match write_file_bytes {
            Some(fb) => {
                let fd = fs.open("/shared", OpenFlags::RDWR, Mode(0o666)).expect("open");
                let block = vec![i as u8 + 1; 4096];
                let blocks = fb / 4096;
                for k in 0..ops_per_proc {
                    fs.pwrite(fd, (k % blocks) * 4096, &block).expect("write");
                }
                let _ = fs.close(fd);
                trio_workloads::OpCount { ops: ops_per_proc, bytes: ops_per_proc * 4096 }
            }
            None => {
                for k in 0..ops_per_proc {
                    let name = format!("/shared/p{i}-tmp{k}");
                    fs.create(&name, Mode(0o666)).expect("create");
                    fs.unlink(&name).expect("unlink");
                }
                trio_workloads::OpCount { ops: ops_per_proc, bytes: 0 }
            }
        },
        || {},
    );
    SharingResult {
        elapsed_ns: m.elapsed_ns,
        ops: m.ops,
        bytes: m.bytes,
        phases: trio_kernel::PhaseStats::default(),
        rebuild_ns: 0,
    }
}

/// Pretty-prints one figure row: `label` then `value` per column.
pub fn print_row(label: &str, values: &[f64], unit: &str) {
    print!("{label:<14}");
    for v in values {
        if *v >= 100.0 {
            print!(" {v:>9.0}");
        } else if *v >= 1.0 {
            print!(" {v:>9.2}");
        } else {
            print!(" {v:>9.3}");
        }
    }
    println!("   [{unit}]");
}

/// Prints a header row of thread counts.
pub fn print_thread_header(title: &str, threads: &[usize]) {
    println!("\n== {title} ==");
    print!("{:<14}", "fs \\ threads");
    for t in threads {
        print!(" {t:>9}");
    }
    println!();
}
